(* Traceability under evolution (paper §5/§7): requirements and
   architecture co-evolve; the explicit mapping lets each change be
   traced to its impact on the other side, and kept synchronized.

     dune exec examples/evolution_trace.exe *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  let architecture = Casestudies.Pims.architecture in
  let mapping = Casestudies.Pims.mapping in

  rule "Impact of changing an event type";
  (* The stakeholders redefine what "system saves" means. *)
  Format.printf "%a@." Mapping.Trace.pp_impact
    (Mapping.Trace.of_event_type_change mapping "system-saves");

  rule "Impact of changing a component";
  (* The Data Access layer is being rewritten. *)
  Format.printf "%a@." Mapping.Trace.pp_impact
    (Mapping.Trace.of_component_change mapping "data-access");

  rule "Architecture edit: replace the Loader by a Price Service";
  let ops =
    [
      Adl.Diff.Rename_element { old_id = "loader"; new_id = "price-service" };
    ]
  in
  List.iter
    (fun op ->
      Format.printf "edit: %a@." Adl.Diff.pp_op op;
      Format.printf "%a@." Mapping.Trace.pp_impact (Mapping.Trace.of_arch_op mapping op))
    ops;
  let architecture' = Adl.Diff.apply_all architecture ops in
  let mapping' = List.fold_left Mapping.Trace.apply_arch_op mapping ops in
  Printf.printf "mapping entries now targeting price-service: %s\n"
    (String.concat ", " (Mapping.Types.event_types_of mapping' "price-service"));

  rule "Re-evaluating after the edit";
  let set = Casestudies.Pims.scenario_set in
  let r =
    Walkthrough.Engine.evaluate_set ~set ~architecture:architecture' ~mapping:mapping' ()
  in
  List.iter
    (fun sr -> print_endline (Walkthrough.Report.summary_line sr))
    r.Walkthrough.Engine.results;
  Printf.printf "consistent after rename: %b\n" r.Walkthrough.Engine.consistent;

  rule "Edit script between intact and broken PIMS (Fig. 4 as a diff)";
  let script = Adl.Diff.diff architecture Casestudies.Pims.broken_architecture in
  List.iter (fun op -> Format.printf "  %a@." Adl.Diff.pp_op op) script;

  rule "Requirements-side evolution: rename an event type everywhere";
  let evolved_ontology =
    Ontology.Evolve.apply Casestudies.Pims.ontology
      (Ontology.Evolve.Rename_event_type
         { old_id = "system-downloads"; new_id = "system-fetches" })
  in
  let evolved_set =
    Casestudies.Pims.scenario_set
    |> Scenarioml.Refactor.rename_event_type ~old_id:"system-downloads"
         ~new_id:"system-fetches"
    |> Scenarioml.Refactor.with_ontology evolved_ontology
  in
  let evolved_mapping =
    Mapping.Build.rename_event_type ~old_id:"system-downloads" ~new_id:"system-fetches"
      mapping
  in
  Printf.printf "scenario validation problems after the rename: %d\n"
    (List.length (Scenarioml.Validate.check evolved_set));
  let r =
    Walkthrough.Engine.evaluate_set ~set:evolved_set ~architecture
      ~mapping:evolved_mapping ()
  in
  Printf.printf "all scenarios still consistent: %b\n" r.Walkthrough.Engine.consistent;

  rule "Implied successions the scenarios never exercise (paper 8)";
  let candidates =
    Walkthrough.Implied.implied ~set ~architecture ~mapping ()
  in
  Printf.printf "%d implied event-type successions; first few:\n" (List.length candidates);
  List.iteri
    (fun i c -> if i < 5 then Format.printf "  %a@." Walkthrough.Implied.pp_candidate c)
    candidates
