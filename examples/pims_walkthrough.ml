(* The paper's §4.1 PIMS study, reproduced end to end: scenarios and
   ontology (Fig. 2), architecture (Fig. 3), mapping (Table 1), and the
   walkthrough with the artificially excised link (Fig. 4).

     dune exec examples/pims_walkthrough.exe *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "PIMS ontology and focal scenarios (Fig. 2)";
  print_endline (Ontology.Pretty.summary Casestudies.Pims.ontology);
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Pims.ontology)
    Casestudies.Pims.create_portfolio;
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Pims.ontology)
    Casestudies.Pims.get_share_prices;

  rule "PIMS layered architecture (Fig. 3)";
  Format.printf "%a@." Adl.Pretty.pp_layered Casestudies.Pims.architecture;
  print_endline (Adl.Pretty.summary Casestudies.Pims.architecture);

  rule "Event type / component mapping (Table 1)";
  print_string
    (Mapping.Pretty.table_to_string
       ~event_type_label:Casestudies.Pims.event_type_label
       ~component_label:Casestudies.Pims.component_label Casestudies.Pims.mapping);

  rule "Walkthrough on the intact architecture";
  let set = Casestudies.Pims.scenario_set in
  let eval arch s =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture:arch
      ~mapping:Casestudies.Pims.mapping s
  in
  List.iter
    (fun s -> print_endline (Walkthrough.Report.summary_line (eval Casestudies.Pims.architecture s)))
    set.Scenarioml.Scen.scenarios;

  rule "Walkthrough after excising the Loader / Data Access link (Fig. 4)";
  let broken = Casestudies.Pims.broken_architecture in
  Format.printf "%a@." Walkthrough.Report.pp_scenario_result
    (eval broken Casestudies.Pims.create_portfolio);
  Format.printf "%a@." Walkthrough.Report.pp_scenario_result
    (eval broken Casestudies.Pims.get_share_prices)
