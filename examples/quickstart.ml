(* Quickstart: the four steps of the approach on a tiny meeting-room
   booking system, end to end.

     dune exec examples/quickstart.exe *)

let () =
  (* Step 1 — requirements-level scenarios in ScenarioML.

     First the ontology: domain classes, individuals, and the event
     types the scenarios will instantiate. *)
  let ontology =
    let open Ontology.Build in
    create ~id:"booking-ontology" ~name:"Room booking domain"
    |> add_class ~id:"actor" ~name:"Actor"
    |> add_class ~id:"user" ~name:"User" ~super:"actor"
    |> add_class ~id:"thing" ~name:"Thing"
    |> add_class ~id:"room" ~name:"Meeting room" ~super:"thing"
    |> add_individual ~id:"alice" ~name:"Alice" ~cls:"user"
    |> add_event_type ~id:"requests" ~name:"requests"
         ~params:[ ("what", "thing") ]
         ~template:"The user requests {what}" ~actor:"user"
    |> add_event_type ~id:"checks" ~name:"checks availability"
         ~params:[ ("what", "thing") ]
         ~template:"The system checks availability of {what}"
    |> add_event_type ~id:"confirms" ~name:"confirms"
         ~params:[ ("what", "thing") ]
         ~template:"The system confirms the booking of {what}"
  in
  let scenario =
    Scenarioml.Scen.scenario ~id:"book-room" ~name:"Book a room" ~actors:[ "alice" ]
      [
        Scenarioml.Event.typed ~id:"e1" ~event_type:"requests"
          [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
        Scenarioml.Event.typed ~id:"e2" ~event_type:"checks"
          [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
        Scenarioml.Event.typed ~id:"e3" ~event_type:"confirms"
          [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
      ]
  in
  let set = Scenarioml.Scen.make_set ~id:"booking" ~name:"Booking scenarios" ontology [ scenario ] in

  (* Step 2 — the candidate architecture. *)
  let architecture =
    let open Adl.Build in
    create ~id:"booking-arch" ~name:"Booking system" ()
    |> add_component ~id:"ui" ~name:"Web UI" ~responsibilities:[ "interact with users" ]
    |> add_component ~id:"scheduler" ~name:"Scheduler"
         ~responsibilities:[ "check availability"; "confirm bookings" ]
    |> add_component ~id:"store" ~name:"Calendar store"
         ~responsibilities:[ "persist bookings" ]
    |> add_connector ~id:"http" ~name:"HTTP"
    |> fun t ->
    biconnect t "ui" "http" |> fun t ->
    biconnect t "http" "scheduler" |> fun t -> biconnect t "scheduler" "store"
  in

  (* Step 3 — map ontology event types to components. *)
  let mapping =
    let open Mapping.Build in
    create ~id:"booking-mapping" ~ontology ~architecture
    |> map ~event_type:"requests" ~to_:[ "ui" ]
    |> map ~event_type:"checks" ~to_:[ "scheduler"; "store" ]
    |> map ~event_type:"confirms" ~to_:[ "scheduler"; "ui" ]
  in

  (* Step 4 — walk the scenarios through the architecture. *)
  let project = { Core.Sosae.scenarios = set; architecture; mapping } in
  let validation = Core.Sosae.validate project in
  Format.printf "%a@.@." Core.Sosae.pp_validation validation;
  let result = Core.Sosae.evaluate project in
  Format.printf "%a@." Walkthrough.Report.pp_set_result result;

  (* And what the evaluation catches: sever the scheduler/store link and
     the "checks availability" event can no longer be realized. *)
  let broken = Adl.Diff.excise_link_between architecture "scheduler" "store" in
  let result =
    Core.Sosae.evaluate { project with Core.Sosae.architecture = broken }
  in
  Format.printf "@.After removing the scheduler->store link:@.%a@."
    Walkthrough.Report.pp_set_result result
