(* The paper's §8 OWL direction: export the ScenarioML ontology and the
   mapping as OWL triples, and answer mapping questions with the
   RDFS/OWL reasoner instead of the native structures.

     dune exec examples/owl_export.exe *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "CRASH ontology and mapping as Turtle";
  let store =
    Semweb.Export.full_export Casestudies.Crash.ontology Casestudies.Crash.entity_mapping
  in
  Printf.printf "%d triples exported\n" (Semweb.Store.size store);
  print_string (Semweb.Turtle.to_string store);

  rule "Reasoning: closure size";
  let closed = Semweb.Reason.closure store in
  Printf.printf "closure: %d triples (%d derived)\n" (Semweb.Store.size closed)
    (Semweb.Store.size closed - Semweb.Store.size store);

  rule "Query: which components realize sendRequest?";
  (* send-request has no mapsTo of its own; the reasoner finds its
     super event type send-message's components via subClassOf. *)
  let components = Semweb.Export.components_realizing store ~event_type:"send-request" in
  List.iter (fun c -> print_endline ("  " ^ c)) components;

  rule "Query: all organizations (instances of the organization class)";
  let orgs =
    Semweb.Reason.instances_of store (Semweb.Export.iri_of "organization")
  in
  List.iter (fun t -> print_endline ("  " ^ Semweb.Term.to_string t)) orgs;

  rule "Graph-pattern query: which components realize which event types?";
  let rows =
    Semweb.Query.select store
      [
        Semweb.Query.pattern (Semweb.Query.v "event")
          (Semweb.Query.iri (Semweb.Term.Vocab.sosae "mapsTo"))
          (Semweb.Query.v "component");
      ]
  in
  List.iteri
    (fun i b -> if i < 6 then print_endline ("  " ^ Semweb.Query.bindings_to_string b))
    rows;
  Printf.printf "  ... %d rows total\n" (List.length rows);

  rule "Consistency: disjointness clash detection";
  let tainted = Semweb.Store.copy store in
  ignore
    (Semweb.Store.add tainted
       (Semweb.Term.triple
          (Semweb.Term.iri (Semweb.Export.iri_of "request"))
          Semweb.Term.Vocab.owl_disjoint_with
          (Semweb.Term.iri (Semweb.Export.iri_of "notification"))));
  ignore
    (Semweb.Store.add tainted
       (Semweb.Term.triple
          (Semweb.Term.iri (Semweb.Export.iri_of "msg1"))
          Semweb.Term.Vocab.rdf_type
          (Semweb.Term.iri (Semweb.Export.iri_of "request"))));
  ignore
    (Semweb.Store.add tainted
       (Semweb.Term.triple
          (Semweb.Term.iri (Semweb.Export.iri_of "msg1"))
          Semweb.Term.Vocab.rdf_type
          (Semweb.Term.iri (Semweb.Export.iri_of "notification"))));
  List.iter
    (fun clash -> Format.printf "  %a@." Semweb.Reason.pp_clash clash)
    (Semweb.Reason.inconsistencies tainted);

  rule "Round trip: Turtle -> store -> Turtle";
  let reparsed = Semweb.Turtle.of_string (Semweb.Turtle.to_string store) in
  Printf.printf "reparsed %d triples (original %d)\n" (Semweb.Store.size reparsed)
    (Semweb.Store.size store)
