(* The paper's §4.2 CRASH study: the C2 entity architecture (Fig. 7),
   the high-level peer architecture (Fig. 5), the availability and
   message-sequence scenarios (Figs. 6/8), their static walkthroughs,
   and the dynamic simulations that decide the quality attributes.

     dune exec examples/crash_dependability.exe *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let () =
  rule "CRASH high-level architecture (Fig. 5)";
  let hl = Casestudies.Crash.high_level_architecture () in
  print_endline (Adl.Pretty.summary hl);
  List.iter
    (fun (org, name) -> Printf.printf "  peer %-14s %s\n" org name)
    Casestudies.Crash.organizations;

  rule "Entity Command and Control internals (Fig. 7, C2 style)";
  Format.printf "%a@." Adl.Pretty.pp Casestudies.Crash.entity_architecture;
  let violations = Styles.Check.check_declared Casestudies.Crash.entity_architecture in
  Printf.printf "C2 style violations: %d\n" (List.length violations);

  rule "Dependability scenarios (Fig. 6)";
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Crash.ontology)
    Casestudies.Crash.entity_availability;
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Crash.ontology)
    Casestudies.Crash.message_sequence;

  rule "Ontology / scenario / architecture mapping (Fig. 8)";
  print_string
    (Mapping.Pretty.table_to_string ~event_type_label:Casestudies.Crash.event_type_label
       ~component_label:Casestudies.Crash.component_label Casestudies.Crash.entity_mapping);

  rule "Static walkthroughs (entity view)";
  let set = Casestudies.Crash.entity_scenario_set in
  List.iter
    (fun s ->
      let r =
        Walkthrough.Engine.evaluate_scenario ~set
          ~architecture:Casestudies.Crash.entity_architecture
          ~mapping:Casestudies.Crash.entity_mapping s
      in
      print_endline (Walkthrough.Report.summary_line r))
    set.Scenarioml.Scen.scenarios;
  print_endline
    "(static walkthroughs have limited effectiveness for quality attributes — paper §4.2)";

  rule "Dynamic: Entity Availability";
  let a_on = Casestudies.Crash_sim.run_availability ~detector:true in
  let a_off = Casestudies.Crash_sim.run_availability ~detector:false in
  Format.printf "failure detector ON : %a@." Dsim.Checks.pp_availability
    a_on.Casestudies.Crash_sim.verdict;
  Format.printf "failure detector OFF: %a@." Dsim.Checks.pp_availability
    a_off.Casestudies.Crash_sim.verdict;
  Format.printf "network trace (detector on):@.%a@." Dsim.Trace_pp.pp_trace
    a_on.Casestudies.Crash_sim.events;

  rule "Dynamic: Message Sequence";
  let o_fifo = Casestudies.Crash_sim.run_ordering ~fifo:true () in
  let o_jitter = Casestudies.Crash_sim.run_ordering ~fifo:false () in
  Format.printf "FIFO channels    : %a@." Dsim.Checks.pp_ordering
    o_fifo.Casestudies.Crash_sim.verdict;
  Format.printf "jittered channels: %a@." Dsim.Checks.pp_ordering
    o_jitter.Casestudies.Crash_sim.verdict;

  rule "Negative scenario: unauthenticated access (paper 3.5)";
  let nset = Casestudies.Crash.network_scenario_set in
  let eval arch =
    Walkthrough.Engine.evaluate_scenario ~set:nset ~architecture:arch
      ~mapping:Casestudies.Crash.network_mapping Casestudies.Crash.unauthenticated_access
  in
  print_endline
    ("secure architecture    : "
    ^ Walkthrough.Report.summary_line (eval (Casestudies.Crash.high_level_architecture ~orgs:2 ())));
  print_endline
    ("vulnerable architecture: "
    ^ Walkthrough.Report.summary_line (eval Casestudies.Crash.vulnerable_architecture))
