(* The stakeholder-to-architect round trip the paper's §8 envisions:
   prose scenarios from stakeholders, assisted typing against the
   ontology, an architecture exchanged as Acme text, requirements
   constraints, and the walkthrough verdict travelling back.

     dune exec examples/stakeholder_pipeline.exe *)

let rule title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* Stakeholders write prose. *)
let stakeholder_prose =
  {|Scenario: Check a price and save it
(1) The user initiates the "refresh prices" functionality.
(2) The system downloads the current share prices from the share price web site.
(3) The system displays the current share prices.
(4) The system saves the current share prices.|}

(* Architects exchange Acme text (paper 8: Acme as interchange). *)
let architect_acme = Acme.Print.system_to_string (Acme.Convert.of_structure Casestudies.Pims.architecture)

(* Requirements impose communication constraints (paper 3.5). *)
let requirements_constraints =
  "# from the requirements document\n\
   connect master-controller -> remote-price-db\n\
   route loader -> data-repository via data-access\n\
   forbid remote-price-db -> data-repository\n"

let () =
  rule "1. Stakeholder prose";
  print_string stakeholder_prose;
  print_newline ();

  rule "2. Parse and type the events against the PIMS ontology";
  let ontology = Casestudies.Pims.ontology in
  let prose_scenario = Scenarioml.Text_io.of_prose stakeholder_prose in
  List.iter
    (fun event ->
      match event with
      | Scenarioml.Event.Simple { text; _ } ->
          (match Scenarioml.Suggest.for_text ~limit:1 ontology text with
          | [ s ] ->
              Printf.printf "  %-70s -> %s (%.2f)\n" text s.Scenarioml.Suggest.event_type
                s.Scenarioml.Suggest.score
          | _ -> Printf.printf "  %-70s -> (no suggestion)\n" text)
      | _ -> ())
    prose_scenario.Scenarioml.Scen.events;
  let typed = Scenarioml.Suggest.type_scenario ontology prose_scenario in
  let typed_count =
    List.length
      (List.filter
         (function Scenarioml.Event.Typed _ -> true | _ -> false)
         typed.Scenarioml.Scen.events)
  in
  Printf.printf "typed %d of %d events automatically\n" typed_count
    (List.length typed.Scenarioml.Scen.events);

  rule "3. The architecture arrives as Acme text";
  String.split_on_char '\n' architect_acme
  |> List.filteri (fun i _ -> i < 10)
  |> List.iter (fun l -> print_endline ("  " ^ l));
  print_endline "  ...";
  let architecture = Acme.Convert.to_structure (Acme.Parse.system architect_acme) in
  Printf.printf "parsed back: %s\n" (Adl.Pretty.summary architecture);

  rule "4. Requirements constraints";
  print_string requirements_constraints;
  let constraints = Styles.Constraint_lang.parse requirements_constraints in

  rule "5. Evaluate";
  let set =
    Scenarioml.Scen.make_set ~id:"stakeholder" ~name:"Stakeholder scenarios" ontology
      [ typed ]
  in
  let config = Walkthrough.Engine.config ~constraints () in
  let result =
    Walkthrough.Engine.evaluate_set ~config ~set ~architecture
      ~mapping:Casestudies.Pims.mapping ()
  in
  Format.printf "%a@." Walkthrough.Report.pp_set_result result;

  rule "6. The verdict travels back as prose";
  print_string (Scenarioml.Text_io.to_prose ontology set typed);
  let scenario_ok =
    List.for_all Walkthrough.Verdict.is_consistent result.Walkthrough.Engine.results
  in
  Printf.printf "=> scenario: %s\n"
    (if scenario_ok then "supported by the architecture" else "NOT supported");
  Printf.printf "=> requirements constraints: %s\n"
    (match result.Walkthrough.Engine.style_violations with
    | [] -> "all satisfied"
    | violations ->
        Printf.sprintf "%d violated (e.g. %s)" (List.length violations)
          (Format.asprintf "%a" Styles.Rule.pp_violation (List.hd violations)))
