(* Experiment harness: regenerates every table and figure of the paper
   (see EXPERIMENTS.md for the index) and runs the Bechamel
   micro-benchmarks.

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- fig4    # one artifact
     dune exec bench/main.exe -- bench   # micro-benchmarks only *)

let header id title =
  let line = String.make 74 '=' in
  Printf.printf "\n%s\n== [%s] %s\n%s\n" line id title line

(* ------------------------------------------------------------------ *)
(* FIG1: overview of the approach                                     *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  header "FIG1" "Overview of the approach (paper Fig. 1)";
  print_string
    "  (1) Scenarios      requirements-level scenarios in ScenarioML\n\
    \                     (library: scenarioml; ontology: ontology)\n\
    \  (2) Architecture   structural + behavioral description, xADL-style\n\
    \                     (libraries: adl, statechart; styles: styles)\n\
    \  (3) Mapping        ontology event types -> architecture components\n\
    \                     (library: mapping)\n\
    \  (4) Evaluation     scenario walkthroughs over the structure, plus\n\
    \                     dynamic simulation for quality attributes\n\
    \                     (libraries: walkthrough, dsim)\n"

(* ------------------------------------------------------------------ *)
(* FIG2: PIMS scenarios and ontology                                  *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  header "FIG2" "PIMS scenarios and ontology event types (paper Fig. 2)";
  let ontology = Casestudies.Pims.ontology in
  print_endline (Ontology.Pretty.summary ontology);
  print_endline "Ontology event types (excerpt: actions performed by the actors):";
  List.iter
    (fun id ->
      match Ontology.Types.find_event_type ontology id with
      | Some e -> Format.printf "  @[<v>%a@]@." (Ontology.Pretty.pp_event_type ontology) e
      | None -> ())
    [ "user-initiates"; "user-enters"; "system-prompts"; "system-downloads"; "system-saves" ];
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario ontology)
    Casestudies.Pims.create_portfolio;
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario ontology)
    Casestudies.Pims.get_share_prices

(* ------------------------------------------------------------------ *)
(* FIG3: PIMS architecture                                            *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  header "FIG3" "PIMS layered architecture in xADL (paper Fig. 3)";
  Format.printf "%a@." Adl.Pretty.pp_layered Casestudies.Pims.architecture;
  print_endline (Adl.Pretty.summary Casestudies.Pims.architecture);
  Printf.printf "style violations: %d\n"
    (List.length (Styles.Check.check_declared Casestudies.Pims.architecture));
  print_endline "xADL serialization (first lines):";
  let xml = Adl.Xml_io.to_string Casestudies.Pims.architecture in
  String.split_on_char '\n' xml
  |> List.filteri (fun i _ -> i < 12)
  |> List.iter (fun l -> print_endline ("  " ^ l))

(* ------------------------------------------------------------------ *)
(* TAB1: the mapping table                                            *)
(* ------------------------------------------------------------------ *)

let tab1 () =
  header "TAB1" "Mapping between ontology event types and components (paper Table 1)";
  print_string
    (Mapping.Pretty.table_to_string ~event_type_label:Casestudies.Pims.event_type_label
       ~component_label:Casestudies.Pims.component_label Casestudies.Pims.mapping);
  let summary =
    Mapping.Coverage.summarize Casestudies.Pims.ontology Casestudies.Pims.architecture
      Casestudies.Pims.mapping
  in
  Format.printf "%a@." Mapping.Coverage.pp_summary summary;
  Printf.printf
    "Table 1 property (every event type mapped, every component mapped to): %b\n"
    (Mapping.Coverage.is_total Casestudies.Pims.ontology Casestudies.Pims.architecture
       Casestudies.Pims.mapping)

(* ------------------------------------------------------------------ *)
(* FIG4 (+WALK-A/WALK-B): the excised-link walkthrough                *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  header "FIG4" "Failed walkthrough of \"Get the current prices of shares\" (paper Fig. 4)";
  let set = Casestudies.Pims.scenario_set in
  let eval arch s =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture:arch
      ~mapping:Casestudies.Pims.mapping s
  in
  print_endline "WALK-A/WALK-B expectations: \"our expectation was that the walkthrough of";
  print_endline "the Create portfolio scenario would succeed while the Get the current";
  print_endline "prices of shares scenario would fail.\"";
  print_endline "";
  print_endline "-- intact architecture --";
  print_endline
    (Walkthrough.Report.summary_line
       (eval Casestudies.Pims.architecture Casestudies.Pims.create_portfolio));
  print_endline
    (Walkthrough.Report.summary_line
       (eval Casestudies.Pims.architecture Casestudies.Pims.get_share_prices));
  print_endline "";
  print_endline "-- after excising the Loader / Data Access link --";
  let broken = Casestudies.Pims.broken_architecture in
  print_endline
    (Walkthrough.Report.summary_line (eval broken Casestudies.Pims.create_portfolio));
  Format.printf "%a@." Walkthrough.Report.pp_scenario_result
    (eval broken Casestudies.Pims.get_share_prices)

(* ------------------------------------------------------------------ *)
(* FIG5: CRASH high-level architecture                                *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  header "FIG5" "CRASH high-level architecture (paper Fig. 5)";
  let hl = Casestudies.Crash.high_level_architecture () in
  print_endline (Adl.Pretty.summary hl);
  List.iter
    (fun (org, name) ->
      Printf.printf "  %-14s %s: Display + Information Gathering Sources + C&C\n" org name)
    Casestudies.Crash.organizations;
  print_endline "  all Command and Control centers joined by the emergency ad hoc network";
  let g = Adl.Graph.of_structure hl in
  Printf.printf "  fire-cc can reach police-cc: %b\n"
    (Adl.Graph.reachable g "fire-cc" "police-cc");
  Printf.printf "  displays only reach their own C&C directly: %b\n"
    (Adl.Graph.reachable ~policy:Adl.Graph.Direct g "fire-display" "fire-cc"
    && not (Adl.Graph.reachable ~policy:Adl.Graph.Direct g "fire-display" "police-cc"))

(* ------------------------------------------------------------------ *)
(* FIG6: the Entity Availability scenario                             *)
(* ------------------------------------------------------------------ *)

let fig6 () =
  header "FIG6" "\"Entity Availability\" scenario in ScenarioML (paper Fig. 6)";
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Crash.ontology)
    Casestudies.Crash.entity_availability;
  print_endline "ScenarioML serialization:";
  print_string
    (Xmlight.Print.element_to_string
       (Scenarioml.Xml_io.scenario_to_element Casestudies.Crash.entity_availability));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* FIG7: CRASH entity internal architecture                           *)
(* ------------------------------------------------------------------ *)

let fig7 () =
  header "FIG7" "Architecture of each CRASH entity (paper Fig. 7, C2 style)";
  Format.printf "%a@." Adl.Pretty.pp Casestudies.Crash.entity_architecture;
  Printf.printf "C2 style violations: %d\n"
    (List.length (Styles.Check.check_declared Casestudies.Crash.entity_architecture))

(* ------------------------------------------------------------------ *)
(* FIG8: ontology / scenario / architecture mapping                   *)
(* ------------------------------------------------------------------ *)

let fig8 () =
  header "FIG8" "CRASH ontology, scenario, and architecture mapping (paper Fig. 8)";
  Format.printf "%a@."
    (Scenarioml.Pretty.pp_scenario Casestudies.Crash.ontology)
    Casestudies.Crash.message_sequence;
  print_string
    (Mapping.Pretty.table_to_string ~event_type_label:Casestudies.Crash.event_type_label
       ~component_label:Casestudies.Crash.component_label Casestudies.Crash.entity_mapping);
  Printf.printf "\nsendMessage maps to: %s\n"
    (String.concat ", "
       (List.map Casestudies.Crash.component_label
          (Mapping.Types.components_of Casestudies.Crash.entity_mapping "send-message")));
  print_endline "-- static walkthroughs over the entity architecture --";
  let set = Casestudies.Crash.entity_scenario_set in
  List.iter
    (fun s ->
      let r =
        Walkthrough.Engine.evaluate_scenario ~set
          ~architecture:Casestudies.Crash.entity_architecture
          ~mapping:Casestudies.Crash.entity_mapping s
      in
      print_endline ("  " ^ Walkthrough.Report.summary_line r))
    set.Scenarioml.Scen.scenarios

(* ------------------------------------------------------------------ *)
(* WALK-C: availability, dynamic                                      *)
(* ------------------------------------------------------------------ *)

let crash_avail () =
  header "WALK-C" "Dynamic evaluation: Entity Availability (paper 4.2)";
  print_endline "Expectation: the Fire operator is alerted iff the architecture provides";
  print_endline "a failure-detection mechanism.";
  let run detector =
    let r = Casestudies.Crash_sim.run_availability ~detector in
    Format.printf "failure detector %-3s: %a | operator chart alerted: %b@."
      (if detector then "ON" else "OFF")
      Dsim.Checks.pp_availability r.Casestudies.Crash_sim.verdict
      r.Casestudies.Crash_sim.fire_alerted;
    r
  in
  let on = run true in
  let _off = run false in
  print_endline "network trace with the detector on:";
  Format.printf "%a@." Dsim.Trace_pp.pp_trace on.Casestudies.Crash_sim.events

(* ------------------------------------------------------------------ *)
(* WALK-D: message ordering, dynamic                                  *)
(* ------------------------------------------------------------------ *)

let crash_order () =
  header "WALK-D" "Dynamic evaluation: Message Sequence (paper 4.2)";
  print_endline "Expectation: the sequence is preserved iff channels are FIFO.";
  let run fifo =
    let r = Casestudies.Crash_sim.run_ordering ~fifo () in
    Format.printf "%-17s: %a@."
      (if fifo then "FIFO channels" else "jittered channels")
      Dsim.Checks.pp_ordering r.Casestudies.Crash_sim.verdict
  in
  run true;
  run false;
  print_endline "";
  print_endline "the paper's exact workload (2 messages, 5 s apart) under small jitter:";
  let r =
    Casestudies.Crash_sim.run_ordering ~messages:2 ~gap:5.0 ~jitter:2.0 ~fifo:false ()
  in
  Format.printf "%a@." Dsim.Checks.pp_ordering r.Casestudies.Crash_sim.verdict

(* ------------------------------------------------------------------ *)
(* COMPLX: the ontology link-complexity claim                         *)
(* ------------------------------------------------------------------ *)

let complexity () =
  header "COMPLX" "Mapping complexity with vs without the ontology (paper 1/5)";
  print_endline "Claim: \"the more extensive the reuse of the ontology definitions in the";
  print_endline "scenarios, the greater is the reduction in complexity.\"";
  print_endline "";
  print_endline "-- measured on the PIMS case study --";
  let stats = Scenarioml.Stats.of_set Casestudies.Pims.scenario_set in
  let counts =
    Mapping.Complexity.measure Casestudies.Pims.mapping ~usage:stats.Scenarioml.Stats.usage
  in
  Format.printf "%a@." Scenarioml.Stats.pp stats;
  Printf.printf
    "links with ontology: %d (occurrence->definition %d + definition->component %d)\n"
    counts.Mapping.Complexity.with_ontology counts.Mapping.Complexity.occurrences
    counts.Mapping.Complexity.definition_links;
  Printf.printf "links without ontology: %d\nreduction factor: %.2f\n"
    counts.Mapping.Complexity.without_ontology counts.Mapping.Complexity.reduction;
  print_endline "";
  print_endline "-- synthetic sweep (20 event types, fanout 3, 8 components) --";
  Printf.printf "%8s | %12s | %15s | %9s\n" "reuse" "with ontol." "without ontol." "reduction";
  Printf.printf "%s\n" (String.make 55 '-');
  List.iter
    (fun (r, c) ->
      Printf.printf "%8d | %12d | %15d | %9.2f\n" r c.Mapping.Complexity.with_ontology
        c.Mapping.Complexity.without_ontology c.Mapping.Complexity.reduction)
    (Mapping.Complexity.sweep ~event_types:20 ~fanout:3 ~components:8
       ~reuse:[ 1; 2; 4; 8; 16; 32; 64 ])

(* ------------------------------------------------------------------ *)
(* COVER: which components the 22 use cases exercise                  *)
(* ------------------------------------------------------------------ *)

let cover () =
  header "COVER" "Component coverage of the PIMS scenarios (paper 3.3)";
  let result =
    Walkthrough.Engine.evaluate_set ~set:Casestudies.Pims.scenario_set
      ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping ()
  in
  Format.printf "%a@." Walkthrough.Coverage_report.pp
    (Walkthrough.Coverage_report.of_set_result Casestudies.Pims.architecture result)

(* ------------------------------------------------------------------ *)
(* ENTITY-SIM: executing messages on the Fig. 7 architecture          *)
(* ------------------------------------------------------------------ *)

let entity_sim () =
  header "ENTITY-SIM" "Executing messages on the entity architecture (Figs. 7/8)";
  print_endline "The operator composes a message at the User Interface; it must traverse";
  print_endline "exactly the three components Fig. 8 maps sendMessage to, then the network.";
  let r = Casestudies.Crash_behavior.run_message_paths () in
  Printf.printf "outgoing path : %s -> network (%s)\n"
    (String.concat " -> " r.Casestudies.Crash_behavior.outgoing_path)
    (if r.Casestudies.Crash_behavior.outgoing_reached_network then "delivered"
     else "LOST");
  Printf.printf "incoming path : %s (operator %s)\n"
    (String.concat " -> " r.Casestudies.Crash_behavior.incoming_path)
    (if r.Casestudies.Crash_behavior.incoming_informed_ui then "informed"
     else "NOT informed");
  print_endline "";
  print_endline "with the Sharing Info Manager severed from the lower bus:";
  let broken =
    Adl.Diff.excise_link_between Casestudies.Crash.entity_architecture
      "sharing-info-manager" "bus-bottom"
  in
  let r2 = Casestudies.Crash_behavior.run_message_paths_on broken in
  Printf.printf "outgoing path : %s (%s)\n"
    (String.concat " -> " r2.Casestudies.Crash_behavior.outgoing_path)
    (if r2.Casestudies.Crash_behavior.outgoing_reached_network then "delivered"
     else "message LOST before the network")

(* ------------------------------------------------------------------ *)
(* FAULTS: availability under intermittent failures and partitions    *)
(* ------------------------------------------------------------------ *)

let faults () =
  header "FAULTS" "Availability under intermittent failures (extension of WALK-C)";
  print_endline "Fire sends one request per second for 100 s; Police crash-restarts every";
  print_endline "10 s, staying down for a growing fraction of each period.";
  Printf.printf "%10s | %8s | %10s | %8s | %8s\n" "down frac" "sent" "delivered" "ratio"
    "notices";
  Printf.printf "%s\n" (String.make 56 '-');
  List.iter
    (fun p ->
      Printf.printf "%10.2f | %8d | %10d | %8.3f | %8d\n"
        p.Casestudies.Crash_sim.downtime_fraction p.Casestudies.Crash_sim.stats.Dsim.Checks.sent
        p.Casestudies.Crash_sim.stats.Dsim.Checks.delivered
        p.Casestudies.Crash_sim.stats.Dsim.Checks.delivery_ratio
        p.Casestudies.Crash_sim.failure_notices)
    (Casestudies.Crash_sim.run_fault_sweep
       ~downtime_fractions:[ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9 ]
       ());
  print_endline "";
  print_endline "Silent partition (no failure detector signal), healing at t=10 of 20:";
  let stats = Casestudies.Crash_sim.run_partition () in
  Format.printf "  %a@." Dsim.Checks.pp_stats stats

(* ------------------------------------------------------------------ *)
(* ABL-POLICY: routed vs direct hop policy                            *)
(* ------------------------------------------------------------------ *)

let ablation_policy () =
  header "ABL-POLICY" "Ablation: Routed vs Direct communication policy";
  print_endline "The paper's Fig. 4 narrative routes requests \"through intervening";
  print_endline "connectors and components\" (Routed); the stricter Direct policy only";
  print_endline "lets connectors relay. Effect on the 22 PIMS walkthroughs:";
  let count policy =
    let config = Walkthrough.Engine.config ~policy () in
    let r =
      Walkthrough.Engine.evaluate_set ~config ~set:Casestudies.Pims.scenario_set
        ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping ()
    in
    List.length (List.filter Walkthrough.Verdict.is_consistent r.Walkthrough.Engine.results)
  in
  Printf.printf "  Routed: %d/22 consistent\n" (count Adl.Graph.Routed);
  Printf.printf "  Direct: %d/22 consistent\n" (count Adl.Graph.Direct)

(* ------------------------------------------------------------------ *)
(* ABL-GENERAL: event generalization vs a flat event vocabulary       *)
(* ------------------------------------------------------------------ *)

let ablation_generalization () =
  header "ABL-GENERAL" "Ablation: generalized event types vs a flat per-occurrence vocabulary";
  print_endline "Without generalization every occurrence is its own definition (reuse 1);";
  print_endline "with the PIMS ontology occurrences share 17 definitions (paper 5).";
  let stats = Scenarioml.Stats.of_set Casestudies.Pims.scenario_set in
  let shared =
    Mapping.Complexity.measure Casestudies.Pims.mapping ~usage:stats.Scenarioml.Stats.usage
  in
  (* flat variant: one synthetic event type per occurrence, each mapped
     with its original fanout *)
  let flat_usage =
    List.concat_map
      (fun (et, n) -> List.init n (fun i -> (Printf.sprintf "%s#%d" et i, 1)))
      stats.Scenarioml.Stats.usage
  in
  let flat_mapping =
    {
      Mapping.Types.mapping_id = "flat";
      ontology_id = "flat";
      architecture_id = "pims-arch";
      entries =
        List.map
          (fun (et_occ, _) ->
            let base = List.hd (String.split_on_char '#' et_occ) in
            {
              Mapping.Types.event_type = et_occ;
              components = Mapping.Types.components_of Casestudies.Pims.mapping base;
              rationale = "flattened";
            })
          flat_usage;
    }
  in
  let flat = Mapping.Complexity.measure flat_mapping ~usage:flat_usage in
  Printf.printf "%24s | %10s | %10s\n" "" "shared" "flat";
  Printf.printf "%24s | %10d | %10d\n" "distinct definitions"
    stats.Scenarioml.Stats.distinct_event_types_used (List.length flat_usage);
  Printf.printf "%24s | %10d | %10d\n" "definition->component" shared.Mapping.Complexity.definition_links
    flat.Mapping.Complexity.definition_links;
  Printf.printf "%24s | %10d | %10d\n" "total maintained links" shared.Mapping.Complexity.with_ontology
    flat.Mapping.Complexity.with_ontology;
  Printf.printf "link growth without generalization: %.2fx\n"
    (float_of_int flat.Mapping.Complexity.with_ontology
    /. float_of_int shared.Mapping.Complexity.with_ontology)

(* ------------------------------------------------------------------ *)
(* ABL-DYNAMIC: static vs behavioral walkthrough                      *)
(* ------------------------------------------------------------------ *)

let ablation_dynamic () =
  header "ABL-DYNAMIC" "Ablation: static walkthrough vs behavioral execution";
  print_endline "A scenario that saves prices before downloading them: every hop exists";
  print_endline "structurally, but the Loader's statechart rejects the premature save.";
  let reordered = Casestudies.Pims_behavior.reordered_get_share_prices in
  let set =
    Scenarioml.Scen.make_set ~id:"abl" ~name:"Ablation" Casestudies.Pims.ontology
      [ reordered ]
  in
  let static =
    Walkthrough.Engine.evaluate_scenario ~set ~architecture:Casestudies.Pims.architecture
      ~mapping:Casestudies.Pims.mapping reordered
  in
  Printf.printf "  static    : %s\n"
    (match static.Walkthrough.Verdict.verdict with
    | Walkthrough.Verdict.Consistent -> "CONSISTENT (defect missed)"
    | Walkthrough.Verdict.Inconsistent -> "INCONSISTENT");
  let dynamic =
    Walkthrough.Dynamic.evaluate_scenario ~set ~mapping:Casestudies.Pims.mapping
      ~charts:Casestudies.Pims_behavior.charts reordered
  in
  Printf.printf "  behavioral: %s\n"
    (if dynamic.Walkthrough.Dynamic.ok then "ACCEPTED" else "REJECTED (defect caught)");
  Format.printf "%a@." Walkthrough.Dynamic.pp_result dynamic

(* ------------------------------------------------------------------ *)
(* ABL-INFER: manual vs entity-inferred mapping                       *)
(* ------------------------------------------------------------------ *)

let ablation_infer () =
  header "ABL-INFER" "Ablation: hand-written mapping vs entity-based inference (paper 8)";
  let associations =
    [
      { Mapping.Infer.entity = "user"; responsible = [ "master-controller" ] };
      { Mapping.Infer.entity = "system"; responsible = [ "master-controller" ] };
      { Mapping.Infer.entity = "portfolio"; responsible = [ "portfolio-manager" ] };
      { Mapping.Infer.entity = "transaction"; responsible = [ "transaction-manager" ] };
      { Mapping.Infer.entity = "share-price"; responsible = [ "loader" ] };
      { Mapping.Infer.entity = "password"; responsible = [ "authentication" ] };
      {
        Mapping.Infer.entity = "repository-data";
        responsible = [ "data-access"; "data-repository" ];
      };
      { Mapping.Infer.entity = "website"; responsible = [ "remote-price-db" ] };
    ]
  in
  let inferred =
    Mapping.Infer.infer ~id:"pims-inferred" ~ontology:Casestudies.Pims.ontology
      ~architecture:Casestudies.Pims.architecture associations
  in
  Printf.printf "entity associations: %d (vs %d hand-written mapping entries)\n"
    (List.length associations)
    (List.length Casestudies.Pims.mapping.Mapping.Types.entries);
  Printf.printf "inferred entries: %d, links: %d (manual links: %d)\n"
    (List.length inferred.Mapping.Types.entries)
    (Mapping.Types.link_count inferred)
    (Mapping.Types.link_count Casestudies.Pims.mapping);
  let divergences = Mapping.Infer.compare_mappings Casestudies.Pims.mapping inferred in
  Printf.printf "divergent event types: %d\n" (List.length divergences);
  List.iteri
    (fun i d -> if i < 6 then Format.printf "  %a@." Mapping.Infer.pp_divergence d)
    divergences

(* ------------------------------------------------------------------ *)
(* RANK: scenario prioritization                                      *)
(* ------------------------------------------------------------------ *)

let rank () =
  header "RANK" "Scenario prioritization (the ranking the paper leaves open, 3.2)";
  List.iter
    (fun sc -> Format.printf "  %a@." Scenarioml.Rank.pp_score sc)
    (Scenarioml.Rank.rank Casestudies.Pims.scenario_set);
  let top = Scenarioml.Rank.cover Casestudies.Pims.scenario_set 5 in
  Printf.printf "a 5-scenario evaluation suite: %s\n" (String.concat ", " top)

(* ------------------------------------------------------------------ *)
(* SCALE: walkthrough cost vs system size                             *)
(* ------------------------------------------------------------------ *)

(* A synthetic chain system: n components in a line, one scenario
   touching every component in order. *)
let synthetic_project n =
  let name i = Printf.sprintf "c%d" i in
  let ontology =
    List.fold_left
      (fun o i ->
        Ontology.Build.add_event_type ~id:(Printf.sprintf "e%d" i)
          ~name:(Printf.sprintf "e%d" i)
          ~template:(Printf.sprintf "step %d happens" i)
          o)
      (Ontology.Build.create ~id:"syn" ~name:"Synthetic")
      (List.init n Fun.id)
  in
  let architecture =
    let with_components =
      List.fold_left
        (fun t i ->
          Adl.Build.add_component ~id:(name i) ~name:(name i) ~responsibilities:[ "r" ] t)
        (Adl.Build.create ~id:"syn-arch" ~name:"Synthetic chain" ())
        (List.init n Fun.id)
    in
    List.fold_left
      (fun t i -> Adl.Build.biconnect t (name i) (name (i + 1)))
      with_components
      (List.init (n - 1) Fun.id)
  in
  let mapping =
    List.fold_left
      (fun m i ->
        Mapping.Build.map ~event_type:(Printf.sprintf "e%d" i) ~to_:[ name i ] m)
      (Mapping.Build.create ~id:"syn-map" ~ontology ~architecture)
      (List.init n Fun.id)
  in
  let scenario =
    Scenarioml.Scen.scenario ~id:"walk" ~name:"Walk the chain"
      (List.init n (fun i ->
           Scenarioml.Event.typed ~id:(Printf.sprintf "s%d" i)
             ~event_type:(Printf.sprintf "e%d" i) []))
  in
  let set = Scenarioml.Scen.make_set ~id:"syn-set" ~name:"Synthetic" ontology [ scenario ] in
  (set, architecture, mapping)

let scale_tests =
  let open Bechamel in
  List.map
    (fun n ->
      let set, architecture, mapping = synthetic_project n in
      Test.make ~name:(Printf.sprintf "walkthrough-chain-%03d" n)
        (Staged.stage (fun () ->
             Walkthrough.Engine.evaluate_set ~set ~architecture ~mapping ())))
    [ 8; 32; 128 ]

(* ------------------------------------------------------------------ *)
(* PERF: Bechamel micro-benchmarks                                    *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* INCR: full vs incremental re-evaluation after an edit              *)
(* ------------------------------------------------------------------ *)

(* A chain of [components], walked by [scenarios] scenarios that each
   touch a contiguous segment of [span] components (segments spread
   evenly over the chain). Excising one link in the middle then only
   dirties the scenarios whose segment crosses it — the workload shape
   an evaluation session exploits. *)
let synthetic_suite ~components ~scenarios ~span =
  let name i = Printf.sprintf "c%d" i in
  let ontology =
    List.fold_left
      (fun o i ->
        Ontology.Build.add_event_type ~id:(Printf.sprintf "e%d" i)
          ~name:(Printf.sprintf "e%d" i)
          ~template:(Printf.sprintf "step %d happens" i)
          o)
      (Ontology.Build.create ~id:"syn" ~name:"Synthetic")
      (List.init components Fun.id)
  in
  let architecture =
    let with_components =
      List.fold_left
        (fun t i ->
          Adl.Build.add_component ~id:(name i) ~name:(name i) ~responsibilities:[ "r" ] t)
        (Adl.Build.create ~id:"syn-arch" ~name:"Synthetic chain" ())
        (List.init components Fun.id)
    in
    List.fold_left
      (fun t i -> Adl.Build.biconnect t (name i) (name (i + 1)))
      with_components
      (List.init (components - 1) Fun.id)
  in
  let mapping =
    List.fold_left
      (fun m i ->
        Mapping.Build.map ~event_type:(Printf.sprintf "e%d" i) ~to_:[ name i ] m)
      (Mapping.Build.create ~id:"syn-map" ~ontology ~architecture)
      (List.init components Fun.id)
  in
  let span = min span components in
  let scenario k =
    let start = if scenarios = 1 then 0 else k * (components - span) / (scenarios - 1) in
    Scenarioml.Scen.scenario
      ~id:(Printf.sprintf "seg%d" k)
      ~name:(Printf.sprintf "Walk %d..%d" start (start + span - 1))
      (List.init span (fun i ->
           Scenarioml.Event.typed
             ~id:(Printf.sprintf "s%d-%d" k i)
             ~event_type:(Printf.sprintf "e%d" (start + i))
             []))
  in
  let set =
    Scenarioml.Scen.make_set ~id:"syn-set" ~name:"Synthetic" ontology
      (List.init scenarios scenario)
  in
  (set, architecture, mapping)

let links_between architecture a b =
  List.filter
    (fun l ->
      let f = l.Adl.Structure.link_from.Adl.Structure.anchor
      and t = l.Adl.Structure.link_to.Adl.Structure.anchor in
      (String.equal f a && String.equal t b) || (String.equal f b && String.equal t a))
    architecture.Adl.Structure.links

let incr_json : Jsonlight.t list ref = ref []

(* Timed comparison: after excising the links between [a] and [b],
   re-evaluate the whole suite. "full" runs a fresh evaluation; the
   session applies the diff to a warm cache and re-evaluates only what
   the excision touched. Warming the sessions (the state a long-lived
   tool already has) is not timed. *)
let incr_case ~label ~reps ~a ~b (set, architecture, mapping) =
  let ops =
    List.map
      (fun l -> Adl.Diff.Remove_link l.Adl.Structure.link_id)
      (links_between architecture a b)
  in
  assert (ops <> []);
  let time_ms f =
    (* compacting first puts both measurements in the same heap state,
       so earlier targets (the allocation-heavy micro-benchmarks in
       particular) don't skew whichever section happens to run next *)
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1000.0
  in
  let broken = Adl.Diff.apply_all architecture ops in
  let full_ms =
    time_ms (fun () ->
        for _ = 1 to reps do
          ignore (Walkthrough.Engine.evaluate_set ~set ~architecture:broken ~mapping ())
        done)
  in
  let project = { Core.Sosae.scenarios = set; architecture; mapping } in
  let sessions =
    List.init reps (fun _ ->
        let s = Core.Sosae.Session.create project in
        ignore (Core.Sosae.Session.evaluate s);
        s)
  in
  let incr_ms =
    time_ms (fun () ->
        List.iter
          (fun s ->
            Core.Sosae.Session.apply_diff s ops;
            ignore (Core.Sosae.Session.evaluate s))
          sessions)
  in
  let stats = Core.Sosae.Session.stats (List.hd sessions) in
  let total = List.length set.Scenarioml.Scen.scenarios in
  let re_evaluated = stats.Core.Sosae.Session.evaluations - total in
  let speedup = full_ms /. incr_ms in
  Printf.printf "%-26s | %9.2f | %9.2f | %7.1fx | %5d of %d\n" label
    (full_ms /. float_of_int reps)
    (incr_ms /. float_of_int reps)
    speedup re_evaluated total;
  incr_json :=
    Jsonlight.Obj
      [
        ("suite", Jsonlight.String label);
        ("scenarios", Jsonlight.Int total);
        ("reps", Jsonlight.Int reps);
        ("full_ms_per_rep", Jsonlight.Float (full_ms /. float_of_int reps));
        ("incremental_ms_per_rep", Jsonlight.Float (incr_ms /. float_of_int reps));
        ("speedup", Jsonlight.Float speedup);
        ("re_evaluated", Jsonlight.Int re_evaluated);
      ]
    :: !incr_json;
  speedup

(* CI smoke mode: tiny suites and rep counts, just enough to catch
   bit-rot in the harness itself (set SOSAE_BENCH_SMOKE=1). *)
let smoke = Sys.getenv_opt "SOSAE_BENCH_SMOKE" <> None

let incr () =
  header "INCR" "Full vs incremental re-evaluation after a single-link excision";
  print_endline "Each suite is re-evaluated after excising one link: \"full\" evaluates";
  print_endline "every scenario afresh; \"incremental\" replays a warm Sosae.Session";
  print_endline "(per-rep times; \"dirty\" = scenarios the session re-walked).";
  print_endline "";
  Printf.printf "%-26s | %9s | %9s | %8s | %s\n" "suite" "full ms" "incr ms" "speedup"
    "dirty";
  Printf.printf "%s\n" (String.make 72 '-');
  let chain components =
    let scenarios = components / 8 and span = 12 in
    let mid = components / 2 in
    let label = Printf.sprintf "chain-%04d (%d scen.)" components scenarios in
    incr_case ~label
      ~reps:(if smoke then 2 else max 3 (2048 / components))
      ~a:(Printf.sprintf "c%d" mid)
      ~b:(Printf.sprintf "c%d" (mid + 1))
      (synthetic_suite ~components ~scenarios ~span)
  in
  let _ = chain 64 in
  let largest =
    if smoke then chain 128
    else begin
      let _ = chain 256 in
      chain 1024
    end
  in
  let pims =
    incr_case ~label:"pims-excise-loader-da" ~reps:(if smoke then 5 else 100) ~a:"loader"
      ~b:"data-access"
      ( Casestudies.Pims.scenario_set,
        Casestudies.Pims.architecture,
        Casestudies.Pims.mapping )
  in
  print_endline "";
  Printf.printf "largest chain speedup: %.1fx, PIMS speedup: %.1fx%s\n" largest pims
    (if largest >= 2.0 then " (acceptance: >= 2x ok)" else " (below 2x target!)")

(* ------------------------------------------------------------------ *)
(* SCALE: parallel suite evaluation vs number of domains              *)
(* ------------------------------------------------------------------ *)

let scale_json : Jsonlight.t list ref = ref []

let scale_case ~label ~reps (set, architecture, mapping) =
  let project = { Core.Sosae.scenarios = set; architecture; mapping } in
  let time_ms jobs =
    ignore (Core.Sosae.evaluate ~jobs project) (* warm-up, not timed *);
    Gc.compact ();
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Core.Sosae.evaluate ~jobs project)
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int reps
  in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let timings = List.map (fun jobs -> (jobs, time_ms jobs)) jobs_list in
  let base = List.assoc 1 timings in
  let rows =
    List.map
      (fun (jobs, ms) ->
        let speedup = base /. ms in
        Printf.printf "%-26s | %4d | %9.2f | %7.2fx\n" label jobs ms speedup;
        Jsonlight.Obj
          [
            ("jobs", Jsonlight.Int jobs);
            ("ms_per_eval", Jsonlight.Float ms);
            ("speedup", Jsonlight.Float speedup);
          ])
      timings
  in
  scale_json :=
    Jsonlight.Obj
      [
        ("suite", Jsonlight.String label);
        ("scenarios", Jsonlight.Int (List.length set.Scenarioml.Scen.scenarios));
        ("reps", Jsonlight.Int reps);
        ("cores", Jsonlight.Int (Core.Sosae.default_jobs ()));
        ("runs", Jsonlight.List rows);
      ]
    :: !scale_json;
  base /. List.assoc 4 timings

let scale () =
  header "SCALE" "Suite evaluation wall-clock vs domain-pool size (--jobs)";
  Printf.printf
    "Every scenario of a suite is an independent walkthrough; Sosae.evaluate ~jobs\n\
     fans them out over an OCaml 5 domain pool (per-rep times; host reports %d\n\
     recommended domain(s) — speedup > 1 needs more than one core).\n\n"
    (Core.Sosae.default_jobs ());
  Printf.printf "%-26s | %4s | %9s | %8s\n" "suite" "jobs" "ms/eval" "speedup";
  Printf.printf "%s\n" (String.make 56 '-');
  let chain components =
    let scenarios = components / 8 and span = 12 in
    scale_case
      ~label:(Printf.sprintf "chain-%04d (%d scen.)" components scenarios)
      ~reps:(if smoke then 2 else max 3 (4096 / components))
      (synthetic_suite ~components ~scenarios ~span)
  in
  let _ = chain 64 in
  let largest = if smoke then chain 128 else begin let _ = chain 256 in chain 1024 end in
  print_endline "";
  Printf.printf "largest chain speedup at jobs=4: %.2fx%s\n" largest
    (if largest >= 2.0 then " (acceptance: >= 2x ok)"
     else " (below 2x target — needs >= 4 cores)")

(* ------------------------------------------------------------------ *)
(* SERVE: HTTP evaluation-server throughput                           *)
(* ------------------------------------------------------------------ *)

let serve_json : Jsonlight.t list ref = ref []

(* nearest-rank quantile over a sorted latency array *)
let quantile sorted q =
  let n = Array.length sorted in
  sorted.(min (n - 1) (int_of_float (q *. float_of_int n)))

(* [clients] keep-alive connections each issue [requests] back-to-back
   requests; per-request latency is measured client-side, so the
   quantiles include the full loopback round trip. [sink] picks which
   JSON section the case lands in (the repl section reuses this
   machinery against a replica daemon). *)
let serve_case ?(headers = []) ?(expect = 200) ?(sink = serve_json) daemon
    ~label ~clients ~requests ~meth ~target ~body =
  let port = Server.Daemon.port daemon in
  let latencies = Array.make (clients * requests) 0.0 in
  let errors = Atomic.make 0 in
  let worker ci =
    let c = Server.Client.connect ~port () in
    Fun.protect
      ~finally:(fun () -> Server.Client.close c)
      (fun () ->
        for ri = 0 to requests - 1 do
          let t0 = Unix.gettimeofday () in
          (match Server.Client.request c ~headers ?body meth target with
          | Ok { Server.Client.status; _ } when status = expect -> ()
          | Ok _ | Error _ -> Atomic.incr errors);
          latencies.((ci * requests) + ri) <- Unix.gettimeofday () -. t0
        done)
  in
  Gc.compact ();
  let t0 = Unix.gettimeofday () in
  let threads = List.init clients (fun ci -> Thread.create worker ci) in
  List.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  Array.sort compare latencies;
  let total = clients * requests in
  let rps = float_of_int total /. wall in
  let ms q = quantile latencies q *. 1000.0 in
  Printf.printf "%-28s | %8.0f req/s | p50 %7.3f ms | p90 %7.3f | p99 %7.3f | err %d\n"
    label rps (ms 0.5) (ms 0.9) (ms 0.99) (Atomic.get errors);
  sink :=
    Jsonlight.Obj
      [
        ("case", Jsonlight.String label);
        ("clients", Jsonlight.Int clients);
        ("requests", Jsonlight.Int total);
        ("requests_per_second", Jsonlight.Float rps);
        ("p50_ms", Jsonlight.Float (ms 0.5));
        ("p90_ms", Jsonlight.Float (ms 0.9));
        ("p99_ms", Jsonlight.Float (ms 0.99));
        ("errors", Jsonlight.Int (Atomic.get errors));
      ]
    :: !sink;
  rps

let serve () =
  header "SERVE" "HTTP evaluation server (in-process daemon, loopback TCP)";
  print_endline "Requests from concurrent keep-alive clients against one PIMS session;";
  print_endline "\"evaluate\" runs the full 22-scenario suite through the warm verdict";
  print_endline "cache on every request.";
  print_endline "";
  let daemon =
    Server.Daemon.start
      ~config:
        {
          Server.Daemon.default_config with
          Server.Daemon.port = 0;
          workers = (if smoke then 2 else 8);
          queue_capacity = 256;
        }
      ()
  in
  Fun.protect
    ~finally:(fun () -> Server.Daemon.stop daemon)
    (fun () ->
      let registry = (Server.Daemon.ctx daemon).Server.Api.registry in
      (match
         Server.Registry.add registry ~id:"pims"
           {
             Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
             architecture = Casestudies.Pims.architecture;
             mapping = Casestudies.Pims.mapping;
           }
       with
      | Ok () -> ()
      | Error `Conflict -> assert false);
      (* warm the verdict cache so "evaluate" measures serving, not the
         one-time first walk *)
      (match Server.Registry.with_session registry "pims" (fun s ->
           ignore (Core.Sosae.Session.evaluate s))
       with
      | Ok () -> ()
      | Error `Not_found -> assert false);
      let clients = if smoke then 2 else 8 in
      let health_rps =
        serve_case daemon ~label:"GET /health" ~clients
          ~requests:(if smoke then 25 else 500)
          ~meth:Server.Http.GET ~target:"/health" ~body:None
      in
      let evaluate_rps =
        serve_case daemon ~label:"POST evaluate (warm cache)" ~clients
          ~requests:(if smoke then 5 else 100)
          ~meth:Server.Http.POST ~target:"/sessions/pims/evaluate"
          ~body:(Some "{}")
      in
      (* the session's current etag, for the conditional case *)
      let etag =
        let c = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
        Fun.protect
          ~finally:(fun () -> Server.Client.close c)
          (fun () ->
            match Server.Client.post c "/sessions/pims/evaluate" ~body:"{}" with
            | Ok r -> List.assoc "etag" r.Server.Client.headers
            | Error m -> failwith ("etag fetch: " ^ m))
      in
      let conditional_rps =
        serve_case daemon ~label:"POST evaluate (If-None-Match)" ~clients
          ~requests:(if smoke then 25 else 500)
          ~headers:[ ("If-None-Match", etag) ]
          ~expect:304 ~meth:Server.Http.POST
          ~target:"/sessions/pims/evaluate" ~body:(Some "{}")
      in
      let batch_n = 8 in
      let batch_body =
        Printf.sprintf {|{"suites":[%s]}|}
          (String.concat "," (List.init batch_n (fun _ -> "{}")))
      in
      let batch_rps =
        serve_case daemon
          ~label:(Printf.sprintf "POST evaluate/batch (%d suites)" batch_n)
          ~clients
          ~requests:(if smoke then 5 else 50)
          ~meth:Server.Http.POST ~target:"/sessions/pims/evaluate/batch"
          ~body:(Some batch_body)
      in
      print_endline "";
      Printf.printf
        "protocol ceiling %.0f req/s; full-body warm evaluate %.0f req/s \
         (1/%.1f of /health)\n"
        health_rps evaluate_rps
        (health_rps /. Float.max 1.0 evaluate_rps);
      Printf.printf
        "ETag revalidation %.0f req/s (%s); batch %.0f req/s (~%.0f \
         evaluates/s)\n"
        conditional_rps
        (if conditional_rps *. 3.0 >= health_rps then
           "within 3x of /health: ok"
         else "below the within-3x-of-/health target!")
        batch_rps
        (batch_rps *. float_of_int batch_n))

(* ------------------------------------------------------------------ *)
(* WAL: write-ahead journal throughput                                *)
(* ------------------------------------------------------------------ *)

let wal_json : Jsonlight.t list ref = ref []

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

(* The project every create journals, plus its XML serialization —
   passed as [~source] the way the API layer hands over the request
   strings it parsed, so the bench measures the server's actual
   journaled-create path (no per-create re-serialization). *)
let wal_project =
  lazy
    (let project =
       {
         Core.Sosae.scenarios = Casestudies.Pims.scenario_set;
         architecture = Casestudies.Pims.architecture;
         mapping = Casestudies.Pims.mapping;
       }
     in
     let source =
       ( Scenarioml.Xml_io.set_to_string project.Core.Sosae.scenarios,
         Adl.Xml_io.to_string project.Core.Sosae.architecture,
         Mapping.Xml_io.to_string project.Core.Sosae.mapping )
     in
     (project, source))

(* [creates] session creations against one registry; each create is a
   full PIMS project journaled (and fsynced per policy) before the add
   returns, exactly the acknowledged-durability path of POST
   /sessions. *)
let wal_case ~label ~creates policy =
  let project, source = Lazy.force wal_project in
  let dir = Option.map (fun _ -> temp_dir "sosae-wal") policy in
  (* compaction pinned out of reach: the case measures the journaling
     path itself, not snapshot cost (the serve bench covers that) *)
  let persist =
    match (policy, dir) with
    | Some fsync, Some dir ->
        Some (fst (Server.Persist.open_ ~fsync ~compact_bytes:max_int dir))
    | _ -> None
  in
  Fun.protect
    ~finally:(fun () ->
      Option.iter Server.Persist.close persist;
      Option.iter rm_rf dir)
    (fun () ->
      let registry = Server.Registry.create ?persist () in
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      for i = 0 to creates - 1 do
        match
          Server.Registry.add registry ~id:(Printf.sprintf "s%04d" i) ~source
            project
        with
        | Ok () -> ()
        | Error `Conflict -> assert false
      done;
      let wall = Unix.gettimeofday () -. t0 in
      let cps = float_of_int creates /. wall in
      let bytes, fsyncs, compactions =
        match persist with
        | None -> (0, 0, 0)
        | Some p ->
            let s = Server.Persist.stats p in
            (s.Store.Wal.bytes, s.Store.Wal.fsyncs, s.Store.Wal.compactions)
      in
      Printf.printf "%-18s | %8.0f creates/s | %9d B journaled | %4d fsyncs | %d compactions\n"
        label cps bytes fsyncs compactions;
      wal_json :=
        Jsonlight.Obj
          [
            ("case", Jsonlight.String label);
            ("creates", Jsonlight.Int creates);
            ("creates_per_second", Jsonlight.Float cps);
            ("journal_bytes", Jsonlight.Int bytes);
            ("fsyncs", Jsonlight.Int fsyncs);
            ("compactions", Jsonlight.Int compactions);
          ]
        :: !wal_json;
      cps)

(* [writers] threads share one registry, each journaling its own slice
   of [creates] session creations — the contended path POST /sessions
   takes under concurrent load. With [group] the writers stage under
   the mutation lock but share fsyncs through the group-commit
   barrier; without it every create pays its own. *)
let wal_concurrent_case ~label ~creates ~writers ~group policy =
  let project, source = Lazy.force wal_project in
  let dir = temp_dir "sosae-wal" in
  (* default group config (window 0): batches form naturally from the
     writers that queue while the previous fsync is in flight — on
     this host a sleep-based accumulation window costs more than the
     fsyncs it saves (Unix.sleepf granularity exceeds the fsync) *)
  let persist =
    fst
      (Server.Persist.open_ ~fsync:policy
         ?group:(if group then Some Store.Journal.Group.default else None)
         ~compact_bytes:max_int dir)
  in
  Fun.protect
    ~finally:(fun () ->
      Server.Persist.close persist;
      rm_rf dir)
    (fun () ->
      let registry = Server.Registry.create ~persist () in
      Gc.compact ();
      let t0 = Unix.gettimeofday () in
      let per_writer = creates / writers in
      let threads =
        List.init writers (fun w ->
            Thread.create
              (fun () ->
                for i = 0 to per_writer - 1 do
                  match
                    Server.Registry.add registry
                      ~id:(Printf.sprintf "w%d-s%04d" w i)
                      ~source project
                  with
                  | Ok () -> ()
                  | Error `Conflict -> assert false
                done)
              ())
      in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let done_ = per_writer * writers in
      let cps = float_of_int done_ /. wall in
      let s = Server.Persist.stats persist in
      let saved, largest =
        match Server.Persist.group_stats persist with
        | Some g ->
            (g.Store.Journal.Group.fsyncs_saved, g.Store.Journal.Group.largest_batch)
        | None -> (0, 0)
      in
      Printf.printf
        "%-26s | %8.0f creates/s | %4d fsyncs | %4d saved | largest batch %d\n"
        label cps s.Store.Wal.fsyncs saved largest;
      wal_json :=
        Jsonlight.Obj
          [
            ("case", Jsonlight.String label);
            ("creates", Jsonlight.Int done_);
            ("writers", Jsonlight.Int writers);
            ("creates_per_second", Jsonlight.Float cps);
            ("journal_bytes", Jsonlight.Int s.Store.Wal.bytes);
            ("fsyncs", Jsonlight.Int s.Store.Wal.fsyncs);
            ("fsyncs_saved", Jsonlight.Int saved);
            ("largest_batch", Jsonlight.Int largest);
            ("compactions", Jsonlight.Int s.Store.Wal.compactions);
          ]
        :: !wal_json;
      cps)

let wal () =
  header "WAL" "Durable session creation: journaled-create throughput per fsync policy";
  print_endline "Each create journals the full PIMS project (~38 KB) before returning —";
  print_endline "the same acknowledged-durability path POST /sessions takes with";
  print_endline "--data-dir. \"no-journal\" is the in-memory baseline.";
  print_endline "";
  let creates = if smoke then 5 else 200 in
  let base = wal_case ~label:"no-journal" ~creates None in
  let never = wal_case ~label:"fsync=never" ~creates (Some Store.Journal.Never) in
  let _interval =
    wal_case ~label:"fsync=interval:0.05" ~creates
      (Some (Store.Journal.Interval 0.05))
  in
  let always = wal_case ~label:"fsync=always" ~creates (Some Store.Journal.Always) in
  print_endline "";
  print_endline "8 concurrent writers (the contended path group commit batches):";
  print_endline "";
  let writers = 8 in
  let w8 = if smoke then 8 else 400 in
  let always_solo =
    wal_concurrent_case ~label:"w8 fsync=always" ~creates:w8 ~writers
      ~group:false Store.Journal.Always
  in
  let always_group =
    wal_concurrent_case ~label:"w8 fsync=always group" ~creates:w8 ~writers
      ~group:true Store.Journal.Always
  in
  ignore
    (wal_concurrent_case ~label:"w8 fsync=never" ~creates:w8 ~writers
       ~group:false Store.Journal.Never);
  ignore
    (wal_concurrent_case ~label:"w8 fsync=never group" ~creates:w8 ~writers
       ~group:true Store.Journal.Never);
  ignore
    (wal_concurrent_case ~label:"w8 fsync=interval:0.05" ~creates:w8 ~writers
       ~group:false (Store.Journal.Interval 0.05));
  ignore
    (wal_concurrent_case ~label:"w8 fsync=interval:0.05 group" ~creates:w8
       ~writers ~group:true (Store.Journal.Interval 0.05));
  print_endline "";
  Printf.printf
    "journal overhead: fsync=never costs %.1f%% of baseline throughput; each\n\
     fsync=always create pays one synchronous flush (%.2f ms at this rate).\n\
     group commit under 8 writers: %.1fx the serialized fsync=always rate\n\
     (%.0f vs %.0f creates/s; the durability tax left is the batched fsync).\n"
    ((1.0 -. (never /. base)) *. 100.0)
    (1000.0 /. always)
    (always_group /. (if always_solo > 0.0 then always_solo else 1.0))
    always_group always_solo

(* ------------------------------------------------------------------ *)
(* REPL: log-shipping replication                                     *)
(* ------------------------------------------------------------------ *)

let repl_json : Jsonlight.t list ref = ref []

(* Poll [GET /replication] on [daemon] until the replica has applied
   at least [seq] with zero lag against its primary. *)
let repl_wait ?(timeout = 30.0) daemon ~seq =
  let c = Server.Client.connect ~port:(Server.Daemon.port daemon) () in
  Fun.protect
    ~finally:(fun () -> Server.Client.close c)
    (fun () ->
      let deadline = Unix.gettimeofday () +. timeout in
      let rec loop () =
        match Server.Client.replication c with
        | Ok r
          when r.Server.Client.applied_seq >= seq && r.Server.Client.lag = 0L
          ->
            ()
        | _ when Unix.gettimeofday () > deadline ->
            failwith "repl bench: replica did not catch up"
        | _ ->
            Thread.delay 0.005;
            loop ()
      in
      loop ())

(* Snapshot catch-up vs full replay: the same store, tailed once
   record by record from seq 0 and once bootstrapped from the
   compacted snapshot's reset batch. The journal holds one create
   plus alternating component renames — small records, so the
   full-replay cost is exactly the per-record apply work the snapshot
   path collapses into one state install. *)
let repl_catchup () =
  let records = if smoke then 200 else 10_000 in
  print_endline "";
  Printf.printf
    "Catch-up paths over a %d-record journal (one create + renames):\n" records;
  print_endline "";
  let dir = temp_dir "sosae-repl-catchup" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let project, source = Lazy.force wal_project in
      let persist, _ =
        Server.Persist.open_ ~fsync:Store.Journal.Never ~compact_bytes:max_int
          dir
      in
      Fun.protect
        ~finally:(fun () -> Server.Persist.close persist)
        (fun () ->
          let registry = Server.Registry.create ~persist () in
          (match Server.Registry.add registry ~id:"pims" ~source project with
          | Ok () -> ()
          | Error `Conflict -> assert false);
          for i = 1 to records - 1 do
            let rename =
              if i land 1 = 1 then
                Adl.Diff.Rename_element { old_id = "loader"; new_id = "loader-b" }
              else
                Adl.Diff.Rename_element { old_id = "loader-b"; new_id = "loader" }
            in
            match Server.Registry.apply_diff registry "pims" ~ops:(fun _ -> [ rename ]) with
            | Ok _ -> ()
            | Error _ -> assert false
          done;
          let replay label =
            let replica = Server.Registry.create () in
            Gc.compact ();
            let t0 = Unix.gettimeofday () in
            let applied = ref 0L in
            let batches = ref 0 in
            let rec pump () =
              let batch = Server.Persist.ship persist ~after:!applied in
              if batch.Store.Ship.reset || batch.Store.Ship.data <> "" then begin
                batches := !batches + 1;
                (match
                   Server.Registry.apply_shipped replica
                     ~reset:batch.Store.Ship.reset batch.Store.Ship.data
                 with
                | Ok (_, last) -> if last > !applied then applied := last
                | Error e -> failwith ("repl bench: bad batch: " ^ e));
                pump ()
              end
            in
            pump ();
            let ms = (Unix.gettimeofday () -. t0) *. 1000.0 in
            (* records regained per second of catch-up: a throughput,
               so trend.exe --section repl gates it like the evaluate
               cases (slower catch-up = regression) *)
            let rps = float_of_int records /. Float.max 1e-9 (ms /. 1000.0) in
            Printf.printf "%-28s | %9.1f ms | %4d batches | frontier %Ld\n"
              label ms !batches !applied;
            repl_json :=
              Jsonlight.Obj
                [
                  ("case", Jsonlight.String label);
                  ("records", Jsonlight.Int records);
                  ("catchup_ms", Jsonlight.Float ms);
                  ("requests_per_second", Jsonlight.Float rps);
                  ("batches", Jsonlight.Int !batches);
                ]
              :: !repl_json;
            ms
          in
          let full = replay "catch-up: full replay" in
          (* compact: the journal collapses into the snapshot, so a
             fresh cursor now bootstraps from the reset batch *)
          Server.Registry.checkpoint registry;
          let snap = replay "catch-up: snapshot bootstrap" in
          Printf.printf
            "\nsnapshot bootstrap replaced a %d-record replay: %.1fx faster\n"
            records
            (full /. Float.max 0.1 snap)))

(* A primary (journaling to a temp dir) with a live replica tailing it:
   replica-side warm-evaluate throughput against the primary's, then
   ship lag while 8 writers journal creates on the primary. *)
let repl () =
  header "REPL" "Log-shipping replication (primary + replica, loopback TCP)";
  print_endline "A replica tails the primary's journal over GET /replication/log and";
  print_endline "serves evaluates from the applied copy; \"ship lag\" samples";
  print_endline "GET /replication on the replica while 8 writers create sessions";
  print_endline "on the primary.";
  print_endline "";
  let dir = temp_dir "sosae-repl" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let primary =
        Server.Daemon.start
          ~config:
            {
              Server.Daemon.default_config with
              Server.Daemon.port = 0;
              workers = (if smoke then 2 else 4);
              queue_capacity = 256;
              data_dir = Some dir;
              fsync = Store.Journal.Never;
              compact_threshold = max_int;
            }
          ()
      in
      Fun.protect
        ~finally:(fun () -> Server.Daemon.stop primary)
        (fun () ->
          let replica =
            Server.Daemon.start
              ~config:
                {
                  Server.Daemon.default_config with
                  Server.Daemon.port = 0;
                  workers = (if smoke then 2 else 8);
                  queue_capacity = 256;
                  replica_of = Some ("127.0.0.1", Server.Daemon.port primary);
                  replica_poll = 0.002;
                }
              ()
          in
          Fun.protect
            ~finally:(fun () -> Server.Daemon.stop replica)
            (fun () ->
              let project, source = Lazy.force wal_project in
              let registry = (Server.Daemon.ctx primary).Server.Api.registry in
              (match Server.Registry.add registry ~id:"pims" ~source project with
              | Ok () -> ()
              | Error `Conflict -> assert false);
              repl_wait replica ~seq:1L;
              (* warm both verdict caches so the cases measure serving *)
              List.iter
                (fun d ->
                  match
                    Server.Registry.with_session
                      (Server.Daemon.ctx d).Server.Api.registry "pims"
                      (fun s -> ignore (Core.Sosae.Session.evaluate s))
                  with
                  | Ok () -> ()
                  | Error `Not_found -> assert false)
                [ primary; replica ];
              let clients = if smoke then 2 else 8 in
              let requests = if smoke then 5 else 100 in
              let replica_rps =
                serve_case ~sink:repl_json replica
                  ~label:"replica POST evaluate (warm)" ~clients ~requests
                  ~meth:Server.Http.POST ~target:"/sessions/pims/evaluate"
                  ~body:(Some "{}")
              in
              let primary_rps =
                serve_case ~sink:repl_json primary
                  ~label:"primary POST evaluate (warm)" ~clients ~requests
                  ~meth:Server.Http.POST ~target:"/sessions/pims/evaluate"
                  ~body:(Some "{}")
              in
              (* ship lag under write load: 8 writers journal creates on
                 the primary while a sampler polls the replica's lag *)
              let writers = 8 in
              let per_writer = if smoke then 2 else 25 in
              let stop_sampling = Atomic.make false in
              let max_lag = ref 0L in
              let samples = ref [] in
              let sampler =
                Thread.create
                  (fun () ->
                    let rport = Server.Daemon.port replica in
                    let c = ref (Server.Client.connect ~port:rport ()) in
                    while not (Atomic.get stop_sampling) do
                      (match Server.Client.replication !c with
                      | Ok r ->
                          let lag = r.Server.Client.lag in
                          if lag > !max_lag then max_lag := lag;
                          samples := lag :: !samples
                      | Error _ ->
                          Server.Client.close !c;
                          c := Server.Client.connect ~port:rport ());
                      Thread.delay 0.002
                    done;
                    Server.Client.close !c)
                  ()
              in
              Gc.compact ();
              let t0 = Unix.gettimeofday () in
              let threads =
                List.init writers (fun w ->
                    Thread.create
                      (fun () ->
                        for i = 0 to per_writer - 1 do
                          match
                            Server.Registry.add registry
                              ~id:(Printf.sprintf "r%d-s%04d" w i)
                              ~source project
                          with
                          | Ok () -> ()
                          | Error `Conflict -> assert false
                        done)
                      ())
              in
              List.iter Thread.join threads;
              let write_wall = Unix.gettimeofday () -. t0 in
              let total = writers * per_writer in
              let cps = float_of_int total /. write_wall in
              repl_wait replica ~seq:(Int64.of_int (total + 1));
              let catchup_ms =
                (Unix.gettimeofday () -. t0 -. write_wall) *. 1000.0
              in
              Atomic.set stop_sampling true;
              Thread.join sampler;
              let mean_lag =
                match !samples with
                | [] -> 0.0
                | l ->
                    List.fold_left
                      (fun acc x -> acc +. Int64.to_float x)
                      0.0 l
                    /. float_of_int (List.length l)
              in
              Printf.printf
                "%-28s | %8.0f creates/s | max lag %Ld records | mean %.1f | \
                 caught up %.0f ms after last write\n"
                (Printf.sprintf "ship lag (%d writers)" writers)
                cps !max_lag mean_lag catchup_ms;
              repl_json :=
                Jsonlight.Obj
                  [
                    ("case", Jsonlight.String
                       (Printf.sprintf "ship lag (%d writers)" writers));
                    ("creates", Jsonlight.Int total);
                    ("creates_per_second", Jsonlight.Float cps);
                    ("max_lag_records", Jsonlight.Int (Int64.to_int !max_lag));
                    ("mean_lag_records", Jsonlight.Float mean_lag);
                    ("catchup_ms", Jsonlight.Float catchup_ms);
                    ("lag_samples", Jsonlight.Int (List.length !samples));
                  ]
                :: !repl_json;
              print_endline "";
              Printf.printf
                "replica warm evaluate %.0f req/s (%.0f%% of the primary's \
                 %.0f); shipping kept the\nreplica within %Ld record(s) of \
                 the primary under %d-writer load.\n"
                replica_rps
                (100.0 *. replica_rps /. Float.max 1.0 primary_rps)
                primary_rps !max_lag writers)));
  repl_catchup ()

(* ------------------------------------------------------------------ *)
(* SIM: Monte-Carlo dependability campaigns                           *)
(* ------------------------------------------------------------------ *)

let sim_json : Jsonlight.t list ref = ref []

let sim_case ~label ~trials campaign =
  let time_s jobs =
    (* One reusable pool per jobs count; the warm-up batch also pays
       the domain-spawn cost so the timed batches measure trial
       throughput, not pool setup. *)
    Dsim.Pool.with_pool ~jobs (fun pool ->
        ignore (Dsim.Campaign.run ~pool ~trials:(min trials 50) campaign);
        Gc.compact ();
        let t0 = Unix.gettimeofday () in
        ignore (Dsim.Campaign.run ~pool ~trials campaign);
        Unix.gettimeofday () -. t0)
  in
  let jobs_list = [ 1; 2; 4; 8 ] in
  let timings = List.map (fun jobs -> (jobs, time_s jobs)) jobs_list in
  let base = List.assoc 1 timings in
  let report = Dsim.Campaign.report ~trials campaign in
  let rows =
    List.map
      (fun (jobs, s) ->
        let tps = if s > 0.0 then float_of_int trials /. s else 0.0 in
        let speedup = base /. s in
        Printf.printf "%-26s | %4d | %9.0f | %7.2fx\n" label jobs tps speedup;
        Jsonlight.Obj
          [
            ("jobs", Jsonlight.Int jobs);
            ("seconds", Jsonlight.Float s);
            ("trials_per_sec", Jsonlight.Float tps);
            ("speedup", Jsonlight.Float speedup);
          ])
      timings
  in
  sim_json :=
    Jsonlight.Obj
      [
        ("campaign", Jsonlight.String label);
        ("trials", Jsonlight.Int trials);
        ("cores", Jsonlight.Int (Core.Sosae.default_jobs ()));
        ("completion_rate", Jsonlight.Float report.Dsim.Stats.completion_rate);
        ( "completion_ci",
          Jsonlight.Obj
            [
              ("lo", Jsonlight.Float report.Dsim.Stats.completion_ci.Dsim.Stats.lo);
              ("hi", Jsonlight.Float report.Dsim.Stats.completion_ci.Dsim.Stats.hi);
            ] );
        ("mean_uptime", Jsonlight.Float report.Dsim.Stats.mean_uptime);
        ("runs", Jsonlight.List rows);
      ]
    :: !sim_json;
  base /. List.assoc 4 timings

let sim () =
  header "SIM" "Monte-Carlo campaign trials/sec vs domain-pool size (--jobs)";
  Printf.printf
    "Each trial runs one sampled fault plan (crash window + downtime, seeded\n\
     loss/jitter) through the architecture simulator; trials are independent and\n\
     fan out on a reusable Dsim.Pool (host reports %d recommended domain(s) —\n\
     speedup > 1 needs more than one core).\n\n"
    (Core.Sosae.default_jobs ());
  Printf.printf "%-26s | %4s | %9s | %8s\n" "campaign" "jobs" "trials/s" "speedup";
  Printf.printf "%s\n" (String.make 56 '-');
  let trials = if smoke then 60 else 4000 in
  let crash =
    sim_case ~label:"crash-availability" ~trials
      (Casestudies.Campaigns.crash_availability ~loss:0.05 ())
  in
  let _pims =
    sim_case ~label:"pims-price-feed" ~trials
      (Casestudies.Campaigns.pims_price_feed ~loss:0.05 ())
  in
  print_endline "";
  Printf.printf "crash campaign speedup at jobs=4: %.2fx%s\n" crash
    (if crash >= 1.5 then " (acceptance: >= 1.5x ok)"
     else " (below 1.5x target — needs >= 4 cores)")

let pims_xml = lazy (Scenarioml.Xml_io.set_to_string Casestudies.Pims.scenario_set)

let bench_tests =
  let open Bechamel in
  [
    Test.make ~name:"xml-parse-pims-scenarios"
      (Staged.stage (fun () -> Xmlight.Parse.parse_exn (Lazy.force pims_xml)));
    Test.make ~name:"scenarioml-load-pims"
      (Staged.stage (fun () -> Scenarioml.Xml_io.set_of_string (Lazy.force pims_xml)));
    Test.make ~name:"validate-pims-scenarios"
      (Staged.stage (fun () -> Scenarioml.Validate.check Casestudies.Pims.scenario_set));
    Test.make ~name:"graph-build-pims"
      (Staged.stage (fun () -> Adl.Graph.of_structure Casestudies.Pims.architecture));
    Test.make ~name:"walkthrough-pims-22-scenarios"
      (Staged.stage (fun () ->
           Walkthrough.Engine.evaluate_set ~set:Casestudies.Pims.scenario_set
             ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping
             ()));
    Test.make ~name:"walkthrough-one-scenario"
      (Staged.stage (fun () ->
           Walkthrough.Engine.evaluate_scenario ~set:Casestudies.Pims.scenario_set
             ~architecture:Casestudies.Pims.architecture ~mapping:Casestudies.Pims.mapping
             Casestudies.Pims.get_share_prices));
    Test.make ~name:"style-check-c2-entity"
      (Staged.stage (fun () ->
           Styles.Check.check_declared Casestudies.Crash.entity_architecture));
    Test.make ~name:"complexity-sweep"
      (Staged.stage (fun () ->
           Mapping.Complexity.sweep ~event_types:50 ~fanout:3 ~components:10
             ~reuse:[ 1; 10; 100 ]));
    Test.make ~name:"owl-export-and-closure"
      (Staged.stage (fun () ->
           Semweb.Reason.closure
             (Semweb.Export.full_export Casestudies.Crash.ontology
                Casestudies.Crash.entity_mapping)));
    Test.make ~name:"sim-availability"
      (Staged.stage (fun () -> Casestudies.Crash_sim.run_availability ~detector:true));
    Test.make ~name:"sim-ordering-8-msgs"
      (Staged.stage (fun () -> Casestudies.Crash_sim.run_ordering ~fifo:false ()));
    Test.make ~name:"sim-broadcast-7-peers"
      (Staged.stage (fun () -> Casestudies.Crash_sim.run_all_peers_broadcast ()));
    Test.make ~name:"arch-sim-entity-message"
      (Staged.stage (fun () -> Casestudies.Crash_behavior.run_message_paths ()));
    Test.make ~name:"bgp-query-crash-export"
      (Staged.stage
         (let store =
            Semweb.Export.full_export Casestudies.Crash.ontology
              Casestudies.Crash.entity_mapping
          in
          fun () ->
            Semweb.Query.select store
              [
                Semweb.Query.pattern (Semweb.Query.v "event")
                  (Semweb.Query.iri (Semweb.Term.Vocab.sosae "mapsTo"))
                  (Semweb.Query.v "component");
              ]));
  ]
  @ scale_tests

let micro_json : Jsonlight.t list ref = ref []

let bench () =
  header "PERF" "Bechamel micro-benchmarks (one per pipeline stage)";
  let open Bechamel in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  Printf.printf "%-34s | %14s | %8s\n" "benchmark" "time/run" "r^2";
  Printf.printf "%s\n" (String.make 64 '-');
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let estimate =
            match Analyze.OLS.estimates ols_result with
            | Some [ e ] -> e
            | Some _ | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
          in
          let human t =
            if t >= 1e9 then Printf.sprintf "%8.2f s " (t /. 1e9)
            else if t >= 1e6 then Printf.sprintf "%8.2f ms" (t /. 1e6)
            else if t >= 1e3 then Printf.sprintf "%8.2f us" (t /. 1e3)
            else Printf.sprintf "%8.2f ns" t
          in
          Printf.printf "%-34s | %14s | %8.4f\n" name (human estimate) r2;
          micro_json :=
            Jsonlight.Obj
              [
                ("name", Jsonlight.String name);
                ("ns_per_run", Jsonlight.Float estimate);
                ("r_square", Jsonlight.Float r2);
              ]
            :: !micro_json)
        analyzed)
    bench_tests

let bench_json_file = "BENCH_walkthrough.json"

(* Machine-readable companion of the PERF/INCR/SCALE tables, for
   tooling and for EXPERIMENTS.md to cite stable numbers. Sections
   whose target did not run in this invocation are carried over from
   the existing file instead of being clobbered with empty lists. *)
let write_bench_json () =
  let sections =
    [
      ("micro", !micro_json);
      ("incremental", !incr_json);
      ("scale", !scale_json);
      ("serve", !serve_json);
      ("wal", !wal_json);
      ("repl", !repl_json);
      ("sim", !sim_json);
    ]
  in
  if List.exists (fun (_, fresh) -> fresh <> []) sections then begin
    let existing =
      if not (Sys.file_exists bench_json_file) then []
      else begin
        let ic = open_in_bin bench_json_file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        match Jsonlight.of_string s with
        | Ok (Jsonlight.Obj fields) -> fields
        | Ok _ | Error _ -> []
      end
    in
    let section (name, fresh) =
      if fresh <> [] then Some (name, Jsonlight.List (List.rev fresh))
      else Option.map (fun kept -> (name, kept)) (List.assoc_opt name existing)
    in
    let json =
      Jsonlight.Obj
        ([
           ("schema", Jsonlight.String "sosae-bench/1");
           ("sosae_version", Jsonlight.String Core.Sosae.version);
         ]
        @ List.filter_map section sections)
    in
    let write path =
      let oc = open_out path in
      output_string oc (Jsonlight.to_string json);
      output_char oc '\n';
      close_out oc
    in
    write bench_json_file;
    Printf.printf "\nwrote %s\n" bench_json_file;
    (* Trend history: every run also lands in bench/results/ as a
       timestamped file plus latest.json, which bench/trend.exe diffs
       against a previous run's latest.json (CI fails on a >20% serve
       regression). Skipped when not run from the repo root. *)
    if Sys.file_exists "bench" && Sys.is_directory "bench" then begin
      let results_dir = Filename.concat "bench" "results" in
      if not (Sys.file_exists results_dir) then Unix.mkdir results_dir 0o755;
      let tm = Unix.localtime (Unix.gettimeofday ()) in
      let stamped =
        Filename.concat results_dir
          (Printf.sprintf "%04d%02d%02d-%02d%02d%02d.json"
             (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
             tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec)
      in
      let latest = Filename.concat results_dir "latest.json" in
      write stamped;
      write latest;
      Printf.printf "wrote %s and %s\n" stamped latest
    end
  end

(* ------------------------------------------------------------------ *)
(* driver                                                             *)
(* ------------------------------------------------------------------ *)

let artifacts =
  [
    ("fig1", fig1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("tab1", tab1);
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("fig8", fig8);
    ("crash-avail", crash_avail);
    ("crash-order", crash_order);
    ("complexity", complexity);
    ("cover", cover);
    ("entity-sim", entity_sim);
    ("faults", faults);
    ("abl-policy", ablation_policy);
    ("abl-general", ablation_generalization);
    ("abl-dynamic", ablation_dynamic);
    ("abl-infer", ablation_infer);
    ("rank", rank);
  ]

let () =
  let targets =
    match Array.to_list Sys.argv with _ :: [] | [] -> [ "all" ] | _ :: rest -> rest
  in
  List.iter
    (fun target ->
      match target with
      | "all" ->
          List.iter (fun (_, f) -> f ()) artifacts;
          bench ();
          incr ();
          scale ();
          serve ();
          wal ();
          repl ();
          sim ()
      | "bench" -> bench ()
      | "incr" -> incr ()
      | "scale" -> scale ()
      | "serve" -> serve ()
      | "wal" -> wal ()
      | "repl" -> repl ()
      | "sim" -> sim ()
      | name -> (
          match List.assoc_opt name artifacts with
          | Some f -> f ()
          | None ->
              Printf.eprintf
                "unknown target %S; known: %s, bench, incr, scale, serve, wal, repl, sim, all\n"
                name
                (String.concat ", " (List.map fst artifacts));
              exit 2))
    targets;
  write_bench_json ()
