(* Bench-trend gate: compare one section of two bench result files
   (bench/main.exe writes them under bench/results/) and fail when
   throughput regressed beyond a threshold.

     trend [--section NAME] [--threshold FRAC] PREV.json NEXT.json

   --section picks which JSON section to compare: "serve" (the
   default; per-case requests_per_second), "wal" (per-case
   creates_per_second), or "repl" (per-case requests_per_second of
   the replica/primary evaluate cases and the catch-up cases, whose
   throughput is records regained per second; the ship-lag case
   carries no requests_per_second and is skipped). Exit 0 when every
   case that exists in both
   files is within the threshold (new and dropped cases are reported
   but never fatal), exit 1 on a regression, exit 2 on unusable
   inputs. CI runs this against the previous run's latest.json. *)

let read_json path =
  match
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Jsonlight.of_string s
  with
  | Ok j -> j
  | Error m ->
      Printf.eprintf "trend: %s: %s\n" path m;
      exit 2
  | exception Sys_error m ->
      Printf.eprintf "trend: %s\n" m;
      exit 2

(* (case label, throughput) pairs of the chosen section *)
let section_cases ~section ~value_key path json =
  match Jsonlight.member section json with
  | Some (Jsonlight.List cases) ->
      List.filter_map
        (fun case ->
          match
            ( Option.bind (Jsonlight.member "case" case) Jsonlight.string_opt,
              Jsonlight.member value_key case )
          with
          | Some name, Some (Jsonlight.Float rps) -> Some (name, rps)
          | Some name, Some (Jsonlight.Int rps) -> Some (name, float_of_int rps)
          | _ -> None)
        cases
  | Some _ | None ->
      Printf.eprintf "trend: %s has no %S section\n" path section;
      exit 2

let () =
  let threshold = ref 0.20 in
  let section = ref "serve" in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
        (match float_of_string_opt v with
        | Some f when f > 0.0 -> threshold := f
        | Some _ | None ->
            prerr_endline "trend: --threshold expects a positive fraction";
            exit 2);
        parse rest
    | "--section" :: v :: rest ->
        (match v with
        | "serve" | "wal" | "repl" -> section := v
        | _ ->
            prerr_endline "trend: --section expects serve, wal, or repl";
            exit 2);
        parse rest
    | f :: rest ->
        files := f :: !files;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let value_key, unit_ =
    match !section with
    | "wal" -> ("creates_per_second", "creates/s")
    | _ -> ("requests_per_second", "req/s")
  in
  match List.rev !files with
  | [ prev_path; next_path ] ->
      let cases path json = section_cases ~section:!section ~value_key path json in
      let prev = cases prev_path (read_json prev_path) in
      let next = cases next_path (read_json next_path) in
      let regressions = ref 0 in
      List.iter
        (fun (name, old_rps) ->
          match List.assoc_opt name next with
          | None ->
              Printf.printf "~ %-36s dropped (was %.0f %s)\n" name old_rps unit_
          | Some new_rps when old_rps <= 0.0 ->
              (* the relative change against a 0 throughput baseline is
                 nan/inf, which no threshold comparison can flag — a
                 dead case stays dead only if we say so explicitly *)
              let regressed = new_rps <= 0.0 in
              if regressed then incr regressions;
              Printf.printf "%c %-36s %8.0f -> %8.0f %s (baseline unusable)%s\n"
                (if regressed then '!' else '?')
                name old_rps new_rps unit_
                (if regressed then
                   Printf.sprintf "  REGRESSION (still 0 %s)" unit_
                 else "  not compared")
          | Some new_rps ->
              let change = (new_rps -. old_rps) /. old_rps in
              let regressed = change < -. !threshold in
              if regressed then incr regressions;
              Printf.printf "%c %-36s %8.0f -> %8.0f %s (%+.1f%%)%s\n"
                (if regressed then '!' else '.')
                name old_rps new_rps unit_ (100.0 *. change)
                (if regressed then "  REGRESSION" else ""))
        prev;
      List.iter
        (fun (name, rps) ->
          if not (List.mem_assoc name prev) then
            Printf.printf "+ %-36s new case at %.0f %s\n" name rps unit_)
        next;
      if !regressions > 0 then begin
        Printf.eprintf "trend: %d %s case(s) regressed more than %.0f%%\n"
          !regressions !section
          (100.0 *. !threshold);
        exit 1
      end
  | _ ->
      prerr_endline
        "usage: trend [--section serve|wal|repl] [--threshold FRAC] PREV.json NEXT.json";
      exit 2
