(** Simulated message network between named nodes.

    Supports per-channel latency, optional FIFO delivery (the
    reliability knob of the CRASH "Message Sequence" experiment),
    probabilistic message loss, node shutdown/restart (the availability
    experiment's software failure), and an optional failure detector:
    when enabled, a send toward a down node produces a failure notice
    back to the sender — "The Network sends a failure message to the
    Fire Department" (paper §4.2). *)

type message = {
  msg_id : int;
  src : string;
  dst : string;
  payload : string;
  sent_at : float;
}

type drop_reason = Node_down | Random_loss | Partitioned

type event =
  | Sent of message
  | Delivered of { message : message; at : float }
  | Dropped of { message : message; at : float; reason : drop_reason }
  | Failure_notice of { message : message; at : float }
      (** delivered to the sender of [message] *)
  | Shutdown of { node : string; at : float }
  | Restart of { node : string; at : float }

type config = {
  default_latency : float;
  jitter : float;
      (** uniform extra latency in [0, jitter); with [fifo = false] this
          can reorder messages *)
  drop_probability : float;
  fifo : bool;
  failure_detector : bool;
  detect_delay : float;  (** time for a failure notice to come back *)
  seed : int;
}

val default_config : config
(** latency 1.0, no jitter, no drops, FIFO, failure detector on,
    detect delay 2.0, seed 42. *)

type t

val create : ?config:config -> Engine.t -> t

val add_node :
  t ->
  ?on_receive:(t -> message -> unit) ->
  ?on_failure:(t -> message -> unit) ->
  string ->
  unit
(** Register a node. [on_failure] receives failure notices for messages
    this node sent. Re-registering replaces the handlers. *)

val set_latency : t -> src:string -> dst:string -> float -> unit
(** Override the channel latency for one direction. *)

val block : t -> src:string -> dst:string -> unit
(** Partition one direction of a channel: messages arriving while it is
    blocked are dropped with reason [Partitioned] (no failure notice —
    partitions are silent). Blocks nest: when overlapping partitions
    both block a channel, it stays blocked until each has called
    {!unblock}. *)

val unblock : t -> src:string -> dst:string -> unit
(** Lift one {!block}; a no-op on an unblocked channel. *)

val is_blocked : t -> src:string -> dst:string -> bool

val is_up : t -> string -> bool

val shutdown : t -> string -> unit
(** Take a node down now (messages already in flight toward it are
    dropped at delivery time). *)

val restart : t -> string -> unit

val send : t -> src:string -> dst:string -> string -> message
(** Enqueue a message; delivery (or drop/failure notice) is scheduled on
    the engine. Unknown nodes are allowed: sends toward them behave as
    sends toward a down node. *)

val engine : t -> Engine.t

val trace : t -> event list
(** All events so far, in chronological order of occurrence. *)

val deliveries_between : t -> src:string -> dst:string -> message list
(** Delivered messages on one channel, in delivery order. *)
