(** Dependability checkers over network traces — the dynamic analogues
    of the CRASH walkthroughs (paper §4.2).

    Availability: "If the architecture provides a mechanism for
    detecting the availability of the entities, then the [sender] will
    receive an error message alerting the unavailability ... Otherwise
    [it] will not receive any alert."

    Reliability (message sequence): "If the first message sent ...
    arrives first ... then the order is preserved; otherwise the order
    [is] not preserved." *)

type availability_verdict = {
  requests_to_down_nodes : int;
  failure_notices : int;
  alerted : bool;  (** every request toward a down node was alerted *)
}

val availability : Network.event list -> availability_verdict
(** A request "toward a down node" is one that was dropped with
    [Node_down] or whose destination was down at send time (fast
    failure path: a notice with no matching drop). *)

type ordering_verdict = {
  channels_checked : int;
  out_of_order_pairs : (Network.message * Network.message) list;
  preserved : bool;
}

val ordering : Network.event list -> ordering_verdict
(** Per channel (src, dst): delivery order must equal send order. *)

type delivery_stats = {
  sent : int;
  delivered : int;
  dropped : int;
  delivery_ratio : float;
  mean_latency : float;  (** over delivered messages; 0 when none *)
  max_latency : float;
}

val stats : Network.event list -> delivery_stats

val pp_availability : Format.formatter -> availability_verdict -> unit

val pp_ordering : Format.formatter -> ordering_verdict -> unit

val pp_stats : Format.formatter -> delivery_stats -> unit
