type node_kind =
  | Chart_component of { chart : Statechart.Types.t; mutable config : Statechart.Exec.config }
  | Plain_component
  | Connector

type t = {
  engine : Engine.t;
  network : Network.t;
  hop_budget : int;
  nodes : (string, node_kind) Hashtbl.t;
  neighbors : (string, string list) Hashtbl.t;
  mutable log : (string * string * string list) list;  (* newest first *)
}

(* Payloads travel tagged with a remaining hop budget: "ttl:payload". *)
let encode ttl payload = Printf.sprintf "%d:%s" ttl payload

let decode raw =
  match String.index_opt raw ':' with
  | Some i -> (
      match int_of_string_opt (String.sub raw 0 i) with
      | Some ttl -> (ttl, String.sub raw (i + 1) (String.length raw - i - 1))
      | None -> (0, raw))
  | None -> (0, raw)

let neighbors_of t id =
  match Hashtbl.find_opt t.neighbors id with Some l -> l | None -> []

let send_to_neighbors t ~from_ ~except ttl payload =
  List.iter
    (fun neighbor ->
      if not (List.exists (String.equal neighbor) except) then
        ignore (Network.send t.network ~src:from_ ~dst:neighbor (encode ttl payload)))
    (neighbors_of t from_)

let react t id kind ~came_from trigger =
  match kind with
  | Chart_component state ->
      let reaction = Statechart.Exec.step state.chart state.config trigger in
      state.config <- reaction.Statechart.Exec.new_config;
      (match reaction.Statechart.Exec.fired with
      | Some _ ->
          t.log <- (id, trigger, reaction.Statechart.Exec.outputs) :: t.log;
          List.iter
            (fun output ->
              send_to_neighbors t ~from_:id ~except:came_from t.hop_budget output)
            reaction.Statechart.Exec.outputs
      | None -> ())
  | Plain_component -> ()
  | Connector -> ()

let on_receive t id kind _net message =
  let ttl, payload = decode message.Network.payload in
  match kind with
  | Connector ->
      if ttl > 0 then
        send_to_neighbors t ~from_:id ~except:[ message.Network.src ] (ttl - 1) payload
  | Chart_component _ | Plain_component ->
      react t id kind ~came_from:[ message.Network.src ] payload

let create ?config ?(hop_budget = 16) ~architecture ~charts () =
  let engine = Engine.create () in
  let network = Network.create ?config engine in
  let t =
    {
      engine;
      network;
      hop_budget;
      nodes = Hashtbl.create 16;
      neighbors = Hashtbl.create 16;
      log = [];
    }
  in
  let add_neighbor a b =
    let cur = neighbors_of t a in
    if not (List.exists (String.equal b) cur) then Hashtbl.replace t.neighbors a (cur @ [ b ])
  in
  List.iter
    (fun l ->
      let a = l.Adl.Structure.link_from.Adl.Structure.anchor in
      let b = l.Adl.Structure.link_to.Adl.Structure.anchor in
      add_neighbor a b;
      add_neighbor b a)
    architecture.Adl.Structure.links;
  let register id kind =
    Hashtbl.replace t.nodes id kind;
    Network.add_node network ~on_receive:(on_receive t id kind) id
  in
  List.iter
    (fun c ->
      let id = c.Adl.Structure.comp_id in
      match List.find_opt (fun ch -> String.equal ch.Statechart.Types.component id) charts with
      | Some chart ->
          register id
            (Chart_component { chart; config = Statechart.Exec.initial_config chart })
      | None -> register id Plain_component)
    architecture.Adl.Structure.components;
  List.iter
    (fun c -> register c.Adl.Structure.conn_id Connector)
    architecture.Adl.Structure.connectors;
  t

let engine t = t.engine

let network t = t.network

let inject t ~component trigger =
  match Hashtbl.find_opt t.nodes component with
  | Some kind -> react t component kind ~came_from:[] trigger
  | None -> ()

let run t = Engine.run t.engine

let trace t = Network.trace t.network

let deliveries t ~component =
  List.filter_map
    (function
      | Network.Delivered { message; at } when String.equal message.Network.dst component
        ->
          Some (snd (decode message.Network.payload), at)
      | Network.Delivered _ | Network.Sent _ | Network.Dropped _ | Network.Failure_notice _
      | Network.Shutdown _ | Network.Restart _ ->
          None)
    (trace t)

let received_by t id = List.map fst (deliveries t ~component:id)

let config_of t id =
  match Hashtbl.find_opt t.nodes id with
  | Some (Chart_component state) -> Some state.config
  | Some (Plain_component | Connector) | None -> None

let reactions t = List.rev t.log
