type peer = {
  peer_id : string;
  chart : Statechart.Types.t;
  routes : (string * string) list;
}

type action = {
  at : float;
  peer : string;
  trigger : string;
  fired : string option;
  emitted : string list;
}

type peer_state = { peer : peer; mutable config : Statechart.Exec.config }

type t = {
  network : Network.t;
  failure_trigger : string;
  guards : string -> bool;
  peers : (string, peer_state) Hashtbl.t;
  mutable log : action list;  (* newest first *)
}

let react t state trigger =
  let reaction =
    Statechart.Exec.step ~guards:t.guards state.peer.chart state.config trigger
  in
  state.config <- reaction.Statechart.Exec.new_config;
  let emitted = reaction.Statechart.Exec.outputs in
  t.log <-
    {
      at = Engine.now (Network.engine t.network);
      peer = state.peer.peer_id;
      trigger;
      fired =
        Option.map (fun tr -> tr.Statechart.Types.tr_id) reaction.Statechart.Exec.fired;
      emitted;
    }
    :: t.log;
  List.iter
    (fun output ->
      List.iter
        (fun (event, dst) ->
          if String.equal event output then
            ignore (Network.send t.network ~src:state.peer.peer_id ~dst output))
        state.peer.routes)
    emitted

let create ?(failure_trigger = "networkFailure") ?(guards = fun _ -> true) ~network peers =
  let t =
    { network; failure_trigger; guards; peers = Hashtbl.create 16; log = [] }
  in
  List.iter
    (fun p ->
      let state = { peer = p; config = Statechart.Exec.initial_config p.chart } in
      Hashtbl.replace t.peers p.peer_id state;
      Network.add_node network
        ~on_receive:(fun _net msg -> react t state msg.Network.payload)
        ~on_failure:(fun _net _msg -> react t state t.failure_trigger)
        p.peer_id)
    peers;
  t

let inject t ~peer trigger =
  match Hashtbl.find_opt t.peers peer with
  | Some state -> react t state trigger
  | None -> ()

let config_of t peer =
  Option.map (fun s -> s.config) (Hashtbl.find_opt t.peers peer)

let actions t = List.rev t.log

let network t = t.network
