type availability_verdict = {
  requests_to_down_nodes : int;
  failure_notices : int;
  alerted : bool;
}

let availability events =
  let down_msgs =
    List.filter_map
      (function
        | Network.Dropped { message; reason = Network.Node_down; _ } ->
            Some message.Network.msg_id
        | Network.Dropped _ | Network.Sent _ | Network.Delivered _
        | Network.Failure_notice _ | Network.Shutdown _ | Network.Restart _ ->
            None)
      events
  in
  let noticed =
    List.filter_map
      (function
        | Network.Failure_notice { message; _ } -> Some message.Network.msg_id
        | Network.Sent _ | Network.Delivered _ | Network.Dropped _ | Network.Shutdown _
        | Network.Restart _ ->
            None)
      events
  in
  {
    requests_to_down_nodes = List.length down_msgs;
    failure_notices = List.length noticed;
    alerted =
      down_msgs <> []
      && List.for_all (fun id -> List.exists (Int.equal id) noticed) down_msgs;
  }

type ordering_verdict = {
  channels_checked : int;
  out_of_order_pairs : (Network.message * Network.message) list;
  preserved : bool;
}

let ordering events =
  let deliveries =
    List.filter_map
      (function
        | Network.Delivered { message; _ } -> Some message
        | Network.Sent _ | Network.Dropped _ | Network.Failure_notice _
        | Network.Shutdown _ | Network.Restart _ ->
            None)
      events
  in
  let channels =
    List.sort_uniq compare
      (List.map (fun m -> (m.Network.src, m.Network.dst)) deliveries)
  in
  let out_of_order =
    List.concat_map
      (fun (src, dst) ->
        let channel_deliveries =
          List.filter
            (fun m -> String.equal m.Network.src src && String.equal m.Network.dst dst)
            deliveries
        in
        (* Delivery order is the list order; compare send order. *)
        let rec inversions = function
          | a :: (b :: _ as rest) ->
              let tail = inversions rest in
              if a.Network.msg_id > b.Network.msg_id then (a, b) :: tail else tail
          | [ _ ] | [] -> []
        in
        inversions channel_deliveries)
      channels
  in
  {
    channels_checked = List.length channels;
    out_of_order_pairs = out_of_order;
    preserved = out_of_order = [];
  }

type delivery_stats = {
  sent : int;
  delivered : int;
  dropped : int;
  delivery_ratio : float;
  mean_latency : float;
  max_latency : float;
}

let stats events =
  let sent = ref 0 and delivered = ref 0 and dropped = ref 0 in
  let total_latency = ref 0.0 and max_latency = ref 0.0 in
  List.iter
    (function
      | Network.Sent _ -> incr sent
      | Network.Delivered { message; at } ->
          incr delivered;
          let l = at -. message.Network.sent_at in
          total_latency := !total_latency +. l;
          if l > !max_latency then max_latency := l
      | Network.Dropped _ -> incr dropped
      | Network.Failure_notice _ | Network.Shutdown _ | Network.Restart _ -> ())
    events;
  {
    sent = !sent;
    delivered = !delivered;
    dropped = !dropped;
    delivery_ratio =
      (if !sent = 0 then 1.0 else float_of_int !delivered /. float_of_int !sent);
    mean_latency =
      (if !delivered = 0 then 0.0 else !total_latency /. float_of_int !delivered);
    max_latency = !max_latency;
  }

let pp_availability ppf v =
  Format.fprintf ppf "requests to down nodes: %d, failure notices: %d -> %s"
    v.requests_to_down_nodes v.failure_notices
    (if v.alerted then "ALERTED (availability failure detected)"
     else "NOT ALERTED (failure goes unnoticed)")

let pp_ordering ppf v =
  Format.fprintf ppf "channels: %d, out-of-order deliveries: %d -> %s" v.channels_checked
    (List.length v.out_of_order_pairs)
    (if v.preserved then "ORDER PRESERVED" else "ORDER VIOLATED")

let pp_stats ppf s =
  Format.fprintf ppf
    "sent %d, delivered %d, dropped %d (ratio %.3f), latency mean %.3f max %.3f" s.sent
    s.delivered s.dropped s.delivery_ratio s.mean_latency s.max_latency
