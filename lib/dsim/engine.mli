(** Discrete-event simulation core: a virtual clock and an event queue
    of scheduled actions. Actions may schedule further actions. Runs
    are deterministic: equal-time actions execute in scheduling order. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time (starts at 0.0). *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** Schedule an action [delay] time units from now. Negative delays are
    clamped to 0. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Schedule at an absolute time; times before [now] are clamped to
    [now]. *)

val run : ?until:float -> t -> unit
(** Process actions in time order until the queue empties or the clock
    passes [until] (actions scheduled strictly after [until] remain
    queued). An unbounded run leaves the clock at the last executed
    action's time; a bounded run leaves it at [until] (even when no
    action ran that late), so [now] always covers the simulated
    window. *)

val step : t -> bool
(** Process a single action; [false] when the queue is empty. *)

val pending : t -> int
