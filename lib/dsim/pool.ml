type batch = {
  make_body : unit -> int -> unit;
  next : int Atomic.t;
  total : int;
  mutable running : int;  (* helper domains still inside this batch *)
  mutable failed : exn option;
}

type t = {
  lock : Mutex.t;
  work : Condition.t;  (* a new batch arrived, or shutdown *)
  idle : Condition.t;  (* a helper finished its share of the batch *)
  mutable batch : batch option;
  mutable generation : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  size : int;
}

let size t = t.size

let drain batch =
  let body = batch.make_body () in
  let rec loop () =
    let i = Atomic.fetch_and_add batch.next 1 in
    if i < batch.total then begin
      body i;
      loop ()
    end
  in
  loop ()

(* Helpers sleep between batches; [generation] tells a waking helper
   whether the current batch is one it has already drained. *)
let helper t =
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = !seen do
      Condition.wait t.work t.lock
    done;
    if t.stop then Mutex.unlock t.lock
    else begin
      seen := t.generation;
      let batch = match t.batch with Some b -> b | None -> assert false in
      Mutex.unlock t.lock;
      let outcome = try drain batch; None with exn -> Some exn in
      Mutex.lock t.lock;
      (match outcome with
      | Some exn when batch.failed = None -> batch.failed <- Some exn
      | Some _ | None -> ());
      batch.running <- batch.running - 1;
      if batch.running = 0 then Condition.broadcast t.idle;
      Mutex.unlock t.lock;
      loop ()
    end
  in
  loop ()

let create ~jobs =
  let size = max 1 jobs in
  let t =
    {
      lock = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      domains = [];
      size;
    }
  in
  t.domains <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> helper t));
  t

let run t ~tasks make_body =
  if tasks > 0 then
    if t.size = 1 || tasks = 1 || t.domains = [] then begin
      let body = make_body () in
      for i = 0 to tasks - 1 do
        body i
      done
    end
    else begin
      let batch =
        {
          make_body;
          next = Atomic.make 0;
          total = tasks;
          running = List.length t.domains;
          failed = None;
        }
      in
      Mutex.lock t.lock;
      t.batch <- Some batch;
      t.generation <- t.generation + 1;
      Condition.broadcast t.work;
      Mutex.unlock t.lock;
      let mine = try drain batch; None with exn -> Some exn in
      Mutex.lock t.lock;
      while batch.running > 0 do
        Condition.wait t.idle t.lock
      done;
      t.batch <- None;
      Mutex.unlock t.lock;
      match mine, batch.failed with
      | Some exn, _ | None, Some exn -> raise exn
      | None, None -> ()
    end

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  List.iter Domain.join t.domains;
  t.domains <- []

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
