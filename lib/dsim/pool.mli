(** A reusable pool of OCaml 5 domains for embarrassingly parallel
    index-sweeps.

    The pool is created once ([jobs - 1] helper domains plus the
    caller), then handed any number of batches; helpers sleep between
    batches, so amortizing domain spawn cost over repeated sweeps (a
    simulation campaign, a benchmark's batches, a server's requests).

    A batch is a half-open index range [0, tasks): an atomic counter
    hands out indices, so work distribution is dynamic but — as long as
    task bodies write only to their own slot of a caller-owned array —
    results are independent of how indices land on domains.

    The pool itself is single-owner: [run] calls must not overlap. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] domains (the caller counts as one; a
    1-job pool spawns nothing and [run]s inline). *)

val size : t -> int

val run : t -> tasks:int -> (unit -> int -> unit) -> unit
(** [run pool ~tasks make_body] processes indices [0 .. tasks - 1].
    Every participating domain calls [make_body ()] once to build its
    task body (the place for per-worker state, e.g. a private memo
    table), then pulls indices until the batch is exhausted. Returns
    when all indices are done. If any body raises, one such exception
    is re-raised here after the batch drains. *)

val shutdown : t -> unit
(** Terminate and join the helper domains. Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [create], run [f], always [shutdown]. *)
