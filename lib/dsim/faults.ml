type fault =
  | Crash of { node : string; at : float }
  | Restart of { node : string; at : float }
  | Crash_restart of { node : string; at : float; downtime : float }
  | Partition of { groups : string list list; from_ : float; until : float }

type plan = fault list

let cross_group_pairs groups =
  List.concat_map
    (fun group ->
      List.concat_map
        (fun other ->
          if group == other then []
          else List.concat_map (fun a -> List.map (fun b -> (a, b)) other) group)
        groups)
    groups

let apply network plan =
  let engine = Network.engine network in
  List.iter
    (fun fault ->
      match fault with
      | Crash { node; at } ->
          Engine.schedule_at engine ~time:at (fun _ -> Network.shutdown network node)
      | Restart { node; at } ->
          Engine.schedule_at engine ~time:at (fun _ -> Network.restart network node)
      | Crash_restart { node; at; downtime } ->
          Engine.schedule_at engine ~time:at (fun _ -> Network.shutdown network node);
          Engine.schedule_at engine ~time:(at +. downtime) (fun _ ->
              Network.restart network node)
      | Partition { groups; from_; until } ->
          let pairs = cross_group_pairs groups in
          Engine.schedule_at engine ~time:from_ (fun _ ->
              List.iter (fun (src, dst) -> Network.block network ~src ~dst) pairs);
          Engine.schedule_at engine ~time:until (fun _ ->
              List.iter (fun (src, dst) -> Network.unblock network ~src ~dst) pairs))
    plan

let periodic_crashes ~node ~period ~downtime ~count =
  List.init count (fun i ->
      Crash_restart { node; at = period *. float_of_int (i + 1); downtime })

let pp_fault ppf = function
  | Crash { node; at } -> Format.fprintf ppf "crash %s @ %.2f" node at
  | Restart { node; at } -> Format.fprintf ppf "restart %s @ %.2f" node at
  | Crash_restart { node; at; downtime } ->
      Format.fprintf ppf "crash %s @ %.2f for %.2f" node at downtime
  | Partition { groups; from_; until } ->
      Format.fprintf ppf "partition {%s} from %.2f until %.2f"
        (String.concat " | " (List.map (String.concat ",") groups))
        from_ until
