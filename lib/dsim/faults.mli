(** Fault injection plans for dependability experiments.

    The CRASH availability scenario (paper §4.2) is a single software
    failure; real dependability evaluation sweeps over failure patterns.
    A fault plan schedules crashes, restarts, and network partitions on
    the simulated network; {!apply} arms the plan on the engine before a
    run. *)

type fault =
  | Crash of { node : string; at : float }
  | Restart of { node : string; at : float }
  | Crash_restart of { node : string; at : float; downtime : float }
  | Partition of { groups : string list list; from_ : float; until : float }
      (** between [from_] and [until], messages between different groups
          are dropped at delivery time (intra-group traffic flows) *)

type plan = fault list

val apply : Network.t -> plan -> unit
(** Schedule every fault on the network's engine. Partitions wrap the
    affected nodes' receive paths; nodes not named in any group are
    unaffected. Call before {!Engine.run}. *)

val periodic_crashes :
  node:string -> period:float -> downtime:float -> count:int -> plan
(** [count] crash/restart cycles: crash at [period], [2*period], ...,
    each lasting [downtime]. *)

val pp_fault : Format.formatter -> fault -> unit
