type range = { lo : float; hi : float }

let fixed v = { lo = v; hi = v }

type fault_spec =
  | Always of Faults.fault
  | Crash_window of { node : string; at : range; downtime : range }
  | Partition_window of { groups : string list list; from_ : range; width : range }

type stimulus = { at : float; component : string; trigger : string }

type goal =
  | Delivered of { component : string; payload : string }
  | Chart_state of { component : string; state : string }

type t = {
  architecture : Adl.Structure.t;
  charts : Statechart.Types.t list;
  config : Network.config;
  hop_budget : int;
  stimuli : stimulus list;
  goal : goal;
  horizon : float option;
  faults : fault_spec list;
  watched : string list;
}

let crash_targets faults =
  List.filter_map
    (function
      | Always (Faults.Crash { node; _ })
      | Always (Faults.Restart { node; _ })
      | Always (Faults.Crash_restart { node; _ })
      | Crash_window { node; _ } ->
          Some node
      | Always (Faults.Partition _) | Partition_window _ -> None)
    faults

let make ?(config = Network.default_config) ?(hop_budget = 16) ?horizon ?(faults = [])
    ?watched ~architecture ~charts ~stimuli ~goal () =
  let watched =
    match watched with
    | Some w -> w
    | None -> (
        match List.sort_uniq compare (crash_targets faults) with
        | [] ->
            List.map (fun c -> c.Adl.Structure.comp_id) architecture.Adl.Structure.components
        | targets -> targets)
  in
  { architecture; charts; config; hop_budget; stimuli; goal; horizon; faults; watched }

(* ------------------------------------------------------------------ *)
(* Per-trial seeds                                                    *)
(* ------------------------------------------------------------------ *)

(* Splitmix64-style finalizer: trial [i] of a campaign seeded [s] gets
   an independent, well-mixed seed, so any sub-range of trials can be
   reproduced without replaying a shared RNG stream — the property that
   makes parallel trial order irrelevant. *)
let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let trial_seed ~seed index =
  let z =
    Int64.add (Int64.of_int seed)
      (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (index + 1)))
  in
  Int64.to_int (mix64 z) land max_int

(* ------------------------------------------------------------------ *)
(* Fault-plan sampling                                                *)
(* ------------------------------------------------------------------ *)

let sample_range rng { lo; hi } =
  if hi <= lo then lo else lo +. Random.State.float rng (hi -. lo)

(* The plan RNG is derived from the trial seed but salted, so fault
   sampling and network jitter/loss draw from independent streams. *)
let sample_plan t ~seed =
  let rng = Random.State.make [| seed; 0x7a11 |] in
  List.map
    (function
      | Always fault -> fault
      | Crash_window { node; at; downtime } ->
          let at = sample_range rng at in
          let downtime = sample_range rng downtime in
          Faults.Crash_restart { node; at; downtime }
      | Partition_window { groups; from_; width } ->
          let from_ = sample_range rng from_ in
          let width = sample_range rng width in
          Faults.Partition { groups; from_; until = from_ +. width })
    t.faults

(* ------------------------------------------------------------------ *)
(* One trial                                                          *)
(* ------------------------------------------------------------------ *)

let uptime_of_trace ~watched ~end_time events =
  match watched with
  | [] -> 1.0
  | _ when end_time <= 0.0 -> 1.0
  | _ ->
      let down_since = Hashtbl.create 4 in
      let down_total = Hashtbl.create 4 in
      let interesting node = List.exists (String.equal node) watched in
      let close node until =
        match Hashtbl.find_opt down_since node with
        | Some since ->
            Hashtbl.remove down_since node;
            let prior =
              match Hashtbl.find_opt down_total node with Some d -> d | None -> 0.0
            in
            let until = Float.min until end_time in
            Hashtbl.replace down_total node (prior +. Float.max 0.0 (until -. since))
        | None -> ()
      in
      List.iter
        (function
          | Network.Shutdown { node; at } when interesting node ->
              if not (Hashtbl.mem down_since node) then Hashtbl.replace down_since node at
          | Network.Restart { node; at } when interesting node -> close node at
          | Network.Shutdown _ | Network.Restart _ | Network.Sent _ | Network.Delivered _
          | Network.Dropped _ | Network.Failure_notice _ ->
              ())
        events;
      List.iter (fun node -> close node end_time) watched;
      let uptime node =
        let down =
          match Hashtbl.find_opt down_total node with Some d -> d | None -> 0.0
        in
        Float.max 0.0 (1.0 -. (down /. end_time))
      in
      List.fold_left (fun acc node -> acc +. uptime node) 0.0 watched
      /. float_of_int (List.length watched)

let first_stimulus_at t =
  List.fold_left (fun acc s -> Float.min acc s.at) infinity t.stimuli

let trial t ~seed index =
  let trial_seed = trial_seed ~seed index in
  let config = { t.config with Network.seed = trial_seed } in
  let sim =
    Arch_sim.create ~config ~hop_budget:t.hop_budget ~architecture:t.architecture
      ~charts:t.charts ()
  in
  let engine = Arch_sim.engine sim in
  (* Faults are armed before stimuli, so a fault and a stimulus
     scheduled at the same instant execute fault-first. *)
  Faults.apply (Arch_sim.network sim) (sample_plan t ~seed:trial_seed);
  List.iter
    (fun s ->
      Engine.schedule_at engine ~time:s.at (fun _ ->
          Arch_sim.inject sim ~component:s.component s.trigger))
    t.stimuli;
  Engine.run ?until:t.horizon engine;
  let events = Arch_sim.trace sim in
  let end_time = Engine.now engine in
  let completed, latency =
    match t.goal with
    | Delivered { component; payload } -> (
        match
          List.find_opt (fun (p, _) -> String.equal p payload)
            (Arch_sim.deliveries sim ~component)
        with
        | Some (_, at) ->
            let start = first_stimulus_at t in
            (true, Some (if Float.is_finite start then Float.max 0.0 (at -. start) else at))
        | None -> (false, None))
    | Chart_state { component; state } -> (
        match Arch_sim.config_of sim component with
        | Some config -> (Statechart.Exec.active config state, None)
        | None -> (false, None))
  in
  ( {
      Stats.trial = index;
      seed = trial_seed;
      completed;
      latency;
      uptime = uptime_of_trace ~watched:t.watched ~end_time events;
      delivery = Checks.stats events;
      end_time;
    },
    events )

(* ------------------------------------------------------------------ *)
(* Campaigns                                                          *)
(* ------------------------------------------------------------------ *)

(* Trial [i] lands in slot [i] whatever domain computes it, and each
   trial's RNG is a pure function of (campaign seed, i) — so the
   outcome array is identical for any [jobs], and for a reused [pool]. *)
let run ?pool ?(jobs = 1) ?(seed = 0) ~trials t =
  let trials = max 0 trials in
  let slots = Array.make trials None in
  let body () index =
    let outcome, _trace = trial t ~seed index in
    slots.(index) <- Some outcome
  in
  (match pool with
  | Some pool -> Pool.run pool ~tasks:trials body
  | None ->
      if jobs <= 1 then begin
        let body = body () in
        for index = 0 to trials - 1 do
          body index
        done
      end
      else Pool.with_pool ~jobs (fun pool -> Pool.run pool ~tasks:trials body));
  Array.map (function Some o -> o | None -> assert false) slots

let run_fold ?pool ?jobs ?seed ~trials t ~init ~f =
  Array.fold_left f init (run ?pool ?jobs ?seed ~trials t)

let report ?pool ?jobs ?seed ~trials t = Stats.of_outcomes (run ?pool ?jobs ?seed ~trials t)
