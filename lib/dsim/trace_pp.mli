(** Rendering of network traces. *)

val pp_event : Format.formatter -> Network.event -> unit

val pp_trace : Format.formatter -> Network.event list -> unit

val trace_to_string : Network.event list -> string
