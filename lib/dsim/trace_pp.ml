let pp_message ppf m =
  Format.fprintf ppf "#%d %s->%s %S" m.Network.msg_id m.Network.src m.Network.dst
    m.Network.payload

let pp_event ppf = function
  | Network.Sent m -> Format.fprintf ppf "%8.3f  SENT      %a" m.Network.sent_at pp_message m
  | Network.Delivered { message; at } ->
      Format.fprintf ppf "%8.3f  DELIVERED %a" at pp_message message
  | Network.Dropped { message; at; reason } ->
      Format.fprintf ppf "%8.3f  DROPPED   %a (%s)" at pp_message message
        (match reason with
        | Network.Node_down -> "node down"
        | Network.Random_loss -> "random loss"
        | Network.Partitioned -> "partitioned")
  | Network.Failure_notice { message; at } ->
      Format.fprintf ppf "%8.3f  FAILURE   notice to %s about %a" at message.Network.src
        pp_message message
  | Network.Shutdown { node; at } -> Format.fprintf ppf "%8.3f  SHUTDOWN  %s" at node
  | Network.Restart { node; at } -> Format.fprintf ppf "%8.3f  RESTART   %s" at node

let pp_trace ppf events =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_event e) events;
  Format.fprintf ppf "@]"

let trace_to_string events = Format.asprintf "%a" pp_trace events
