type outcome = {
  trial : int;
  seed : int;
  completed : bool;
  latency : float option;
  uptime : float;
  delivery : Checks.delivery_stats;
  end_time : float;
}

type interval = { lo : float; hi : float }

type report = {
  trials : int;
  completions : int;
  completion_rate : float;
  completion_ci : interval;
  failures : int;
  mean_uptime : float;
  latency_mean : float;
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  sent : int;
  delivered : int;
  dropped : int;
  delivery_ratio : float;
}

let wilson ?(z = 1.96) ~successes ~trials () =
  if trials <= 0 then { lo = 0.0; hi = 1.0 }
  else begin
    let n = float_of_int trials in
    let p = float_of_int successes /. n in
    let z2 = z *. z in
    let denom = 1.0 +. (z2 /. n) in
    let center = (p +. (z2 /. (2.0 *. n))) /. denom in
    let half =
      z /. denom *. sqrt ((p *. (1.0 -. p) /. n) +. (z2 /. (4.0 *. n *. n)))
    in
    { lo = Float.max 0.0 (center -. half); hi = Float.min 1.0 (center +. half) }
  end

(* Nearest-rank percentile over an ascending-sorted array. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let of_outcomes outcomes =
  let trials = Array.length outcomes in
  let completions = Array.fold_left (fun n o -> if o.completed then n + 1 else n) 0 outcomes in
  let failures = trials - completions in
  let mean_uptime =
    if trials = 0 then 1.0
    else Array.fold_left (fun acc o -> acc +. o.uptime) 0.0 outcomes /. float_of_int trials
  in
  let latencies =
    Array.of_seq
      (Seq.filter_map (fun o -> o.latency) (Array.to_seq outcomes))
  in
  Array.sort compare latencies;
  let latency_mean =
    let n = Array.length latencies in
    if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 latencies /. float_of_int n
  in
  let latency_max =
    let n = Array.length latencies in
    if n = 0 then 0.0 else latencies.(n - 1)
  in
  let sent = Array.fold_left (fun n o -> n + o.delivery.Checks.sent) 0 outcomes in
  let delivered = Array.fold_left (fun n o -> n + o.delivery.Checks.delivered) 0 outcomes in
  let dropped = Array.fold_left (fun n o -> n + o.delivery.Checks.dropped) 0 outcomes in
  {
    trials;
    completions;
    completion_rate =
      (if trials = 0 then 0.0 else float_of_int completions /. float_of_int trials);
    completion_ci = wilson ~successes:completions ~trials ();
    failures;
    mean_uptime;
    latency_mean;
    latency_p50 = percentile latencies 0.50;
    latency_p90 = percentile latencies 0.90;
    latency_p99 = percentile latencies 0.99;
    latency_max;
    sent;
    delivered;
    dropped;
    delivery_ratio =
      (if sent = 0 then 0.0 else float_of_int delivered /. float_of_int sent);
  }

let to_json r =
  Jsonlight.Obj
    [
      ("trials", Jsonlight.Int r.trials);
      ("completions", Jsonlight.Int r.completions);
      ("completion_rate", Jsonlight.Float r.completion_rate);
      ( "completion_ci",
        Jsonlight.Obj
          [
            ("lo", Jsonlight.Float r.completion_ci.lo);
            ("hi", Jsonlight.Float r.completion_ci.hi);
          ] );
      ("failures", Jsonlight.Int r.failures);
      ("mean_uptime", Jsonlight.Float r.mean_uptime);
      ( "latency",
        Jsonlight.Obj
          [
            ("mean", Jsonlight.Float r.latency_mean);
            ("p50", Jsonlight.Float r.latency_p50);
            ("p90", Jsonlight.Float r.latency_p90);
            ("p99", Jsonlight.Float r.latency_p99);
            ("max", Jsonlight.Float r.latency_max);
          ] );
      ("sent", Jsonlight.Int r.sent);
      ("delivered", Jsonlight.Int r.delivered);
      ("dropped", Jsonlight.Int r.dropped);
      ("delivery_ratio", Jsonlight.Float r.delivery_ratio);
    ]

let pp ppf r =
  Format.fprintf ppf
    "@[<v>trials              %d@,\
     completed           %d (%.1f%%)  [95%% CI %.1f%% – %.1f%%]@,\
     failures            %d@,\
     mean uptime         %.3f@,\
     latency mean/p50    %.3f / %.3f@,\
     latency p90/p99/max %.3f / %.3f / %.3f@,\
     messages            %d sent, %d delivered, %d dropped (ratio %.3f)@]"
    r.trials r.completions
    (100.0 *. r.completion_rate)
    (100.0 *. r.completion_ci.lo)
    (100.0 *. r.completion_ci.hi)
    r.failures r.mean_uptime r.latency_mean r.latency_p50 r.latency_p90 r.latency_p99
    r.latency_max r.sent r.delivered r.dropped r.delivery_ratio
