(** Binary min-heap keyed by [(time, sequence)] — the simulator's event
    queue. Ties in time break by insertion sequence, which makes
    simulation runs deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Insertion order among equal times is preserved. *)

val pop : 'a t -> (float * 'a) option
(** Smallest (time, earliest-inserted) element, removed. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
