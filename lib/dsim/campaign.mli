(** Monte-Carlo dependability campaigns over the architecture
    simulator.

    The paper's quality-attribute step (§4.2, §8) assesses availability
    and reliability by simulating scenario execution on the
    architecture; one run of one fault plan is an anecdote. A campaign
    sweeps seed-indexed fault plans — crash timing jitter, downtime
    ranges, partition windows, message-loss rates — over N independent
    trials and aggregates them into a {!Stats.report} with confidence
    intervals, in the style of architecture-level reliability
    estimation (Cheung).

    Determinism: trial [i] of a campaign with seed [s] uses the
    splittable seed [trial_seed ~seed:s i] for {e both} its fault-plan
    sampling and its network RNG ([Network.config.seed]), and results
    land in a slot array indexed by trial. The outcome array is
    therefore bit-identical across runs and across any [jobs] count or
    reused {!Pool.t}. *)

type range = { lo : float; hi : float }
(** A closed sampling interval; [hi <= lo] always yields [lo]. *)

val fixed : float -> range

type fault_spec =
  | Always of Faults.fault  (** the same fault in every trial *)
  | Crash_window of { node : string; at : range; downtime : range }
      (** crash-restart with jittered start and sampled downtime *)
  | Partition_window of { groups : string list list; from_ : range; width : range }
      (** partition with jittered start and sampled duration *)

type stimulus = { at : float; component : string; trigger : string }
(** Inject [trigger] into [component]'s chart at virtual time [at]. *)

type goal =
  | Delivered of { component : string; payload : string }
      (** completed when [payload] is delivered to [component];
          latency is measured from the earliest stimulus *)
  | Chart_state of { component : string; state : string }
      (** completed when the component's chart ends the trial with
          [state] active (no latency) *)

type t = {
  architecture : Adl.Structure.t;
  charts : Statechart.Types.t list;
  config : Network.config;  (** [config.seed] is overridden per trial *)
  hop_budget : int;
  stimuli : stimulus list;
  goal : goal;
  horizon : float option;  (** bound each trial's virtual time *)
  faults : fault_spec list;
  watched : string list;  (** nodes whose uptime the outcomes measure *)
}

val make :
  ?config:Network.config ->
  ?hop_budget:int ->
  ?horizon:float ->
  ?faults:fault_spec list ->
  ?watched:string list ->
  architecture:Adl.Structure.t ->
  charts:Statechart.Types.t list ->
  stimuli:stimulus list ->
  goal:goal ->
  unit ->
  t
(** [watched] defaults to the crash targets named by [faults], or to
    every component when the plan names none. *)

val trial_seed : seed:int -> int -> int
(** The splittable per-trial seed: a splitmix64-style mix of the
    campaign seed and the trial index. *)

val sample_plan : t -> seed:int -> Faults.plan
(** The concrete fault plan a trial with this (already split) seed
    draws. *)

val trial : t -> seed:int -> int -> Stats.outcome * Network.event list
(** [trial t ~seed i] runs trial [i] of the campaign (faults armed
    before stimuli; same-instant ties execute fault-first) and returns
    its outcome together with the full network trace. Deterministic:
    same arguments, bit-identical trace. *)

val run :
  ?pool:Pool.t -> ?jobs:int -> ?seed:int -> trials:int -> t -> Stats.outcome array
(** Run [trials] trials; outcome [i] is trial [i]'s. With [pool] the
    trials run on the given (reusable) domain pool; otherwise [jobs]
    (default 1) sets the pool size for this run. The result does not
    depend on either. *)

val run_fold :
  ?pool:Pool.t ->
  ?jobs:int ->
  ?seed:int ->
  trials:int ->
  t ->
  init:'a ->
  f:('a -> Stats.outcome -> 'a) ->
  'a
(** Fold the outcomes in trial order (aggregation happens after the
    parallel sweep, so [f] needs no synchronization). *)

val report : ?pool:Pool.t -> ?jobs:int -> ?seed:int -> trials:int -> t -> Stats.report
(** [Stats.of_outcomes] of {!run}. *)
