type message = {
  msg_id : int;
  src : string;
  dst : string;
  payload : string;
  sent_at : float;
}

type drop_reason = Node_down | Random_loss | Partitioned

type event =
  | Sent of message
  | Delivered of { message : message; at : float }
  | Dropped of { message : message; at : float; reason : drop_reason }
  | Failure_notice of { message : message; at : float }
  | Shutdown of { node : string; at : float }
  | Restart of { node : string; at : float }

type config = {
  default_latency : float;
  jitter : float;
  drop_probability : float;
  fifo : bool;
  failure_detector : bool;
  detect_delay : float;
  seed : int;
}

let default_config =
  {
    default_latency = 1.0;
    jitter = 0.0;
    drop_probability = 0.0;
    fifo = true;
    failure_detector = true;
    detect_delay = 2.0;
    seed = 42;
  }

type node = {
  mutable up : bool;
  mutable on_receive : (t -> message -> unit) option;
  mutable on_failure : (t -> message -> unit) option;
}

and t = {
  engine : Engine.t;
  config : config;
  nodes : (string, node) Hashtbl.t;
  latencies : (string * string, float) Hashtbl.t;
  blocked : (string * string, unit) Hashtbl.t;
  (* earliest admissible next delivery time per channel (FIFO mode) *)
  channel_front : (string * string, float) Hashtbl.t;
  mutable events : event list;  (* newest first *)
  mutable next_id : int;
  rng : Random.State.t;
}

let create ?(config = default_config) engine =
  {
    engine;
    config;
    nodes = Hashtbl.create 16;
    latencies = Hashtbl.create 16;
    blocked = Hashtbl.create 16;
    channel_front = Hashtbl.create 16;
    events = [];
    next_id = 0;
    rng = Random.State.make [| config.seed |];
  }

let record t e = t.events <- e :: t.events

let add_node t ?on_receive ?on_failure id =
  Hashtbl.replace t.nodes id { up = true; on_receive; on_failure }

let set_latency t ~src ~dst latency = Hashtbl.replace t.latencies (src, dst) latency

(* Blocks nest: overlapping partitions each add a binding, and each
   unblock removes one, so a channel stays blocked until every
   partition covering it has lifted ([Hashtbl.add]/[remove] give the
   multiset; [mem] answers "any binding left?"). *)
let block t ~src ~dst = Hashtbl.add t.blocked (src, dst) ()

let unblock t ~src ~dst = Hashtbl.remove t.blocked (src, dst)

let is_blocked t ~src ~dst = Hashtbl.mem t.blocked (src, dst)

let find_node t id = Hashtbl.find_opt t.nodes id

let is_up t id = match find_node t id with Some n -> n.up | None -> false

let shutdown t id =
  (match find_node t id with Some n -> n.up <- false | None -> ());
  record t (Shutdown { node = id; at = Engine.now t.engine })

let restart t id =
  (match find_node t id with Some n -> n.up <- true | None -> ());
  record t (Restart { node = id; at = Engine.now t.engine })

let latency_of t ~src ~dst =
  match Hashtbl.find_opt t.latencies (src, dst) with
  | Some l -> l
  | None -> t.config.default_latency

let notify_failure t message =
  if t.config.failure_detector then
    Engine.schedule t.engine ~delay:t.config.detect_delay (fun _ ->
        record t (Failure_notice { message; at = Engine.now t.engine });
        match find_node t message.src with
        | Some { up = true; on_failure = Some handler; _ } -> handler t message
        | Some _ | None -> ())

let deliver t message =
  let at = Engine.now t.engine in
  if is_blocked t ~src:message.src ~dst:message.dst then
    record t (Dropped { message; at; reason = Partitioned })
  else
  match find_node t message.dst with
  | Some ({ up = true; _ } as node) -> (
      record t (Delivered { message; at });
      match node.on_receive with Some handler -> handler t message | None -> ())
  | Some { up = false; _ } | None ->
      record t (Dropped { message; at; reason = Node_down });
      notify_failure t message

let send t ~src ~dst payload =
  let message =
    { msg_id = t.next_id; src; dst; payload; sent_at = Engine.now t.engine }
  in
  t.next_id <- t.next_id + 1;
  record t (Sent message);
  if not (is_up t dst) then begin
    (* Fast failure path: the destination is already down. *)
    record t (Dropped { message; at = Engine.now t.engine; reason = Node_down });
    notify_failure t message
  end
  else if
    t.config.drop_probability > 0.0
    && Random.State.float t.rng 1.0 < t.config.drop_probability
  then
    Engine.schedule t.engine ~delay:(latency_of t ~src ~dst) (fun _ ->
        record t (Dropped { message; at = Engine.now t.engine; reason = Random_loss }))
  else begin
    let base = latency_of t ~src ~dst in
    let jitter =
      if t.config.jitter > 0.0 then Random.State.float t.rng t.config.jitter else 0.0
    in
    let raw_arrival = Engine.now t.engine +. base +. jitter in
    let arrival =
      if t.config.fifo then begin
        let front =
          match Hashtbl.find_opt t.channel_front (src, dst) with
          | Some f -> f
          | None -> 0.0
        in
        let arrival = if raw_arrival <= front then front +. 1e-9 else raw_arrival in
        Hashtbl.replace t.channel_front (src, dst) arrival;
        arrival
      end
      else raw_arrival
    in
    Engine.schedule_at t.engine ~time:arrival (fun _ -> deliver t message)
  end;
  message

let engine t = t.engine

let trace t =
  let time_of = function
    | Sent m -> m.sent_at
    | Delivered { at; _ } | Dropped { at; _ } | Failure_notice { at; _ }
    | Shutdown { at; _ } | Restart { at; _ } ->
        at
  in
  (* events are recorded newest-first in occurrence order; reversing is
     already chronological, but sort stably by time to be explicit. *)
  List.stable_sort
    (fun a b -> compare (time_of a) (time_of b))
    (List.rev t.events)

let deliveries_between t ~src ~dst =
  List.filter_map
    (function
      | Delivered { message; _ }
        when String.equal message.src src && String.equal message.dst dst ->
          Some message
      | Delivered _ | Sent _ | Dropped _ | Failure_notice _ | Shutdown _ | Restart _ -> None)
    (trace t)
