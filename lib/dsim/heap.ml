type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable count : int;
  mutable next_seq : int;
}

let create () = { data = [||]; count = 0; next_seq = 0 }

let is_empty h = h.count = 0

let size h = h.count

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before h.data.(i) h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < h.count && before h.data.(left) h.data.(!smallest) then smallest := left;
  if right < h.count && before h.data.(right) h.data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let grow h entry =
  let capacity = Array.length h.data in
  if h.count = capacity then begin
    let fresh = Array.make (max 16 (2 * capacity)) entry in
    Array.blit h.data 0 fresh 0 h.count;
    h.data <- fresh
  end

let push h ~time payload =
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  grow h entry;
  h.data.(h.count) <- entry;
  h.count <- h.count + 1;
  sift_up h (h.count - 1)

let pop h =
  if h.count = 0 then None
  else begin
    let top = h.data.(0) in
    h.count <- h.count - 1;
    if h.count > 0 then begin
      h.data.(0) <- h.data.(h.count);
      sift_down h 0
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.count = 0 then None else Some h.data.(0).time

let clear h =
  h.data <- [||];
  h.count <- 0
