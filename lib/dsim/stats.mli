(** Campaign statistics: per-trial outcomes aggregated into a
    dependability report — availability (uptime fraction,
    scenario-completion rate with a Wilson 95% confidence interval),
    reliability (failures to complete), and latency-to-completion
    percentiles. This turns the paper's single anecdotal CRASH run
    (§4.2) into a measured statistic with an interval. *)

type outcome = {
  trial : int;  (** trial index within the campaign, [0 .. trials-1] *)
  seed : int;  (** the per-trial split seed the run used *)
  completed : bool;  (** the scenario goal was reached *)
  latency : float option;
      (** stimulus-to-goal completion time; [None] when not completed
          or when the goal has no associated delivery time *)
  uptime : float;  (** mean up-time fraction of the watched nodes *)
  delivery : Checks.delivery_stats;
  end_time : float;  (** simulated horizon the trial covered *)
}

type interval = { lo : float; hi : float }

type report = {
  trials : int;
  completions : int;
  completion_rate : float;
  completion_ci : interval;  (** Wilson score interval, 95% by default *)
  failures : int;  (** trials that did not complete the scenario *)
  mean_uptime : float;
  latency_mean : float;  (** over completed trials; 0 when none *)
  latency_p50 : float;
  latency_p90 : float;
  latency_p99 : float;
  latency_max : float;
  sent : int;  (** messages, summed over all trials *)
  delivered : int;
  dropped : int;
  delivery_ratio : float;
}

val wilson : ?z:float -> successes:int -> trials:int -> unit -> interval
(** Wilson score interval for a binomial proportion; [z] defaults to
    1.96 (95%). Zero trials give the vacuous [0, 1]. *)

val percentile : float array -> float -> float
(** Nearest-rank percentile over an ascending-sorted array; 0 when
    empty. [percentile a 0.5] is the median. *)

val of_outcomes : outcome array -> report

val to_json : report -> Jsonlight.t

val pp : Format.formatter -> report -> unit
