(** Executing an architecture: every brick of a structure becomes a
    simulated node; components react through their statecharts and emit
    over their links, connectors relay messages onward — "a mechanism
    for automatically 'executing' the scenarios on the architecture"
    (paper §8).

    Semantics:
    - every component and connector is a network node; every structural
      link is a (bidirectional) channel;
    - a component with a statechart reacts to a delivered payload as a
      trigger; transition outputs are sent to every neighbor except the
      element the triggering message came from;
    - components without a chart absorb messages;
    - connectors relay every payload to every neighbor except the
      sender, decrementing a hop budget (default 16) that protects
      cyclic topologies from infinite flooding. *)

type t

val create :
  ?config:Network.config ->
  ?hop_budget:int ->
  architecture:Adl.Structure.t ->
  charts:Statechart.Types.t list ->
  unit ->
  t

val engine : t -> Engine.t

val network : t -> Network.t
(** The underlying network — for arming {!Faults.apply} plans or
    reading the raw event trace. *)

val inject : t -> component:string -> string -> unit
(** Trigger a component's chart directly (a local stimulus); its outputs
    are sent to all its neighbors. *)

val run : t -> unit
(** Drain the simulation. *)

val trace : t -> Network.event list

val received_by : t -> string -> string list
(** Payloads delivered to a brick, in order (hop budgets stripped). *)

val deliveries : t -> component:string -> (string * float) list
(** [(payload, time)] of every delivery to a brick, in order (hop
    budgets stripped). *)

val config_of : t -> string -> Statechart.Exec.config option

val reactions : t -> (string * string * string list) list
(** Chronological (component, trigger, outputs) chart reactions. *)
