type t = { queue : (t -> unit) Heap.t; mutable clock : float }

let create () = { queue = Heap.create (); clock = 0.0 }

let now t = t.clock

let schedule t ~delay action =
  let delay = if delay < 0.0 then 0.0 else delay in
  Heap.push t.queue ~time:(t.clock +. delay) action

let schedule_at t ~time action =
  let time = if time < t.clock then t.clock else time in
  Heap.push t.queue ~time action

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some (time, action) ->
      t.clock <- time;
      action t;
      true

let run ?until t =
  let continue () =
    match until with
    | None -> not (Heap.is_empty t.queue)
    | Some limit -> (
        match Heap.peek_time t.queue with Some next -> next <= limit | None -> false)
  in
  while continue () do
    ignore (step t)
  done;
  (* A bounded run observes the whole window [now, until]: the clock
     lands on [until] even when the last action (or none at all) ran
     earlier, so callers can read [now] as "time simulated so far". *)
  match until with
  | Some limit when t.clock < limit -> t.clock <- limit
  | Some _ | None -> ()

let pending t = Heap.size t.queue
