(** Hosting statechart-driven peers on the simulated network.

    Each peer is a network node whose behavior is a statechart: a
    delivered message's payload is the trigger; the transition's output
    events become outgoing messages, routed by the peer's route table
    (output event name → destination node). A failure notice triggers
    the chart with the configured [failure_trigger]. This is the
    "simulating the behavior of the matched components" the paper
    sketches for dynamic, quality-attribute walkthroughs (§4.2). *)

type peer = {
  peer_id : string;
  chart : Statechart.Types.t;
  routes : (string * string) list;
      (** output event -> destination node; repeated keys broadcast the
          output to several destinations *)
}

type t

val create :
  ?failure_trigger:string ->
  ?guards:(string -> bool) ->
  network:Network.t ->
  peer list ->
  t
(** Registers every peer on the network. [failure_trigger] defaults to
    ["networkFailure"]. Outputs with no route are recorded as internal
    actions but not sent. *)

val inject : t -> peer:string -> string -> unit
(** Deliver an event name directly to a peer's chart at the current
    simulation time (models local stimuli, e.g. a user action). *)

val config_of : t -> string -> Statechart.Exec.config option
(** Current statechart configuration of a peer. *)

type action = {
  at : float;
  peer : string;
  trigger : string;
  fired : string option;  (** transition id, [None] when dropped *)
  emitted : string list;
}

val actions : t -> action list
(** Chronological log of chart reactions across all peers. *)

val network : t -> Network.t
