type value = Str of string | Int of int | Float of float | Bool of bool

type property = { prop_name : string; prop_type : string option; prop_value : value }

type port = { port_name : string; port_props : property list }

type role = { role_name : string; role_props : property list }

type component = { comp_name : string; ports : port list; comp_props : property list }

type connector = { conn_name : string; roles : role list; conn_props : property list }

type attachment = {
  att_component : string;
  att_port : string;
  att_connector : string;
  att_role : string;
}

type system = {
  sys_name : string;
  family : string option;
  components : component list;
  connectors : connector list;
  attachments : attachment list;
  sys_props : property list;
}

let property ?typ prop_name prop_value = { prop_name; prop_type = typ; prop_value }

let find_prop props name =
  Option.map
    (fun p -> p.prop_value)
    (List.find_opt (fun p -> String.equal p.prop_name name) props)

let string_prop props name =
  match find_prop props name with Some (Str s) -> Some s | Some _ | None -> None

let int_prop props name =
  match find_prop props name with Some (Int i) -> Some i | Some _ | None -> None

let value_to_string = function
  | Str s -> Printf.sprintf "%S" s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Bool b -> string_of_bool b
