(** Acme textual serialization. [system_to_string] output parses back
    with {!Parse.system} to an equal AST. *)

val system_to_string : Ast.system -> string
