(** Abstract syntax of a pragmatic Acme subset (paper §8: "We plan to
    generalize SOSAE to work with a range of ADLs. Our choice for
    supporting this is the generic ADL Acme, a simple ADL that can be
    used as a common interchange format").

    Supported: systems with an optional family, components with ports,
    connectors with roles, attachments, and string/int/float/bool
    properties on every construct. Not supported: representations,
    families/styles definitions, design rules. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type property = { prop_name : string; prop_type : string option; prop_value : value }

type port = { port_name : string; port_props : property list }

type role = { role_name : string; role_props : property list }

type component = { comp_name : string; ports : port list; comp_props : property list }

type connector = { conn_name : string; roles : role list; conn_props : property list }

type attachment = {
  att_component : string;
  att_port : string;
  att_connector : string;
  att_role : string;
}

type system = {
  sys_name : string;
  family : string option;
  components : component list;
  connectors : connector list;
  attachments : attachment list;
  sys_props : property list;
}

val property : ?typ:string -> string -> value -> property

val find_prop : property list -> string -> value option

val string_prop : property list -> string -> string option

val int_prop : property list -> string -> int option

val value_to_string : value -> string
(** Acme literal syntax: quoted strings, bare numbers, true/false. *)
