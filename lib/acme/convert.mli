(** Conversion between Acme systems and xADL-style structures, making
    Acme usable as "a common interchange format" (paper §8) for the
    whole evaluation pipeline.

    Encoding conventions ([of_structure]):
    - the structure's name and style become the system's [name] property
      and family;
    - component/connector names, descriptions, responsibilities
      ([responsibility_N]) and tags ([tag_K]) become properties;
    - interfaces become ports/roles with [direction] and [tag_K]
      properties;
    - a link joining a component to a connector becomes an attachment;
    - a link joining two components (or two connectors) has no direct
      Acme form and is bridged by a synthesized connector (or
      component) carrying [synthesized = true], collapsed back into a
      direct link by [to_structure];
    - substructures are not representable in this Acme subset and are
      dropped (with a [had_substructure] marker property).

    Round-trip guarantee: [to_structure (of_structure a)] preserves
    element ids, interfaces with directions and tags, responsibilities,
    and the communication graph ({!Adl.Graph}); link ids and the
    from/to orientation of [In_out]-[In_out] links are normalized. *)

val of_structure : Adl.Structure.t -> Ast.system

val to_structure : Ast.system -> Adl.Structure.t

exception Conversion_error of string
(** Raised by [to_structure] on dangling attachments or malformed
    synthesized bridges. *)
