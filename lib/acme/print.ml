let add_property buf indent p =
  Buffer.add_string buf indent;
  Buffer.add_string buf "Property ";
  Buffer.add_string buf p.Ast.prop_name;
  (match p.Ast.prop_type with
  | Some t ->
      Buffer.add_string buf " : ";
      Buffer.add_string buf t
  | None -> ());
  Buffer.add_string buf " = ";
  Buffer.add_string buf (Ast.value_to_string p.Ast.prop_value);
  Buffer.add_string buf ";\n"

let add_interface_like buf indent kw name props =
  Buffer.add_string buf indent;
  Buffer.add_string buf kw;
  Buffer.add_char buf ' ';
  Buffer.add_string buf name;
  if props = [] then Buffer.add_string buf ";\n"
  else begin
    Buffer.add_string buf " = {\n";
    List.iter (add_property buf (indent ^ "  ")) props;
    Buffer.add_string buf indent;
    Buffer.add_string buf "};\n"
  end

let system_to_string (s : Ast.system) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "System ";
  Buffer.add_string buf s.Ast.sys_name;
  (match s.Ast.family with
  | Some f ->
      Buffer.add_string buf " : ";
      Buffer.add_string buf f
  | None -> ());
  Buffer.add_string buf " = {\n";
  List.iter (add_property buf "  ") s.Ast.sys_props;
  List.iter
    (fun c ->
      Buffer.add_string buf "  Component ";
      Buffer.add_string buf c.Ast.comp_name;
      Buffer.add_string buf " = {\n";
      List.iter (add_property buf "    ") c.Ast.comp_props;
      List.iter
        (fun port -> add_interface_like buf "    " "Port" port.Ast.port_name port.Ast.port_props)
        c.Ast.ports;
      Buffer.add_string buf "  };\n")
    s.Ast.components;
  List.iter
    (fun c ->
      Buffer.add_string buf "  Connector ";
      Buffer.add_string buf c.Ast.conn_name;
      Buffer.add_string buf " = {\n";
      List.iter (add_property buf "    ") c.Ast.conn_props;
      List.iter
        (fun role -> add_interface_like buf "    " "Role" role.Ast.role_name role.Ast.role_props)
        c.Ast.roles;
      Buffer.add_string buf "  };\n")
    s.Ast.connectors;
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "  Attachment %s.%s to %s.%s;\n" a.Ast.att_component a.Ast.att_port
           a.Ast.att_connector a.Ast.att_role))
    s.Ast.attachments;
  Buffer.add_string buf "};\n";
  Buffer.contents buf
