(** Parser for the Acme subset.

    Grammar (informally):
    {v
    system      ::= "System" NAME [":" NAME] "=" "{" element* "}" [";"]
    element     ::= component | connector | attachment | property
    component   ::= "Component" NAME "=" "{" (port | property)* "}" [";"]
    connector   ::= "Connector" NAME "=" "{" (role | property)* "}" [";"]
    port        ::= "Port" NAME ["=" "{" property* "}"] ";"
    role        ::= "Role" NAME ["=" "{" property* "}"] ";"
    property    ::= "Property" NAME [":" NAME] "=" literal ";"
    attachment  ::= "Attachment" NAME "." NAME "to" NAME "." NAME ";"
    literal     ::= STRING | INT | FLOAT | "true" | "false"
    v}
    Comments: [//] to end of line and [/* ... */]. *)

exception Parse_error of { line : int; message : string }

val system : string -> Ast.system
(** @raise Parse_error on malformed input. *)
