exception Parse_error of { line : int; message : string }

type token =
  | Ident of string
  | String_lit of string
  | Int_lit of int
  | Float_lit of float
  | Lbrace
  | Rbrace
  | Equals
  | Colon
  | Semi
  | Dot
  | Eof

type lexer = { input : string; mutable pos : int; mutable line : int }

let fail lexer fmt =
  Format.kasprintf
    (fun message -> raise (Parse_error { line = lexer.line; message }))
    fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '-'

let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lexer =
  let n = String.length lexer.input in
  if lexer.pos < n then begin
    let c = lexer.input.[lexer.pos] in
    if c = '\n' then begin
      lexer.line <- lexer.line + 1;
      lexer.pos <- lexer.pos + 1;
      skip_ws lexer
    end
    else if c = ' ' || c = '\t' || c = '\r' then begin
      lexer.pos <- lexer.pos + 1;
      skip_ws lexer
    end
    else if c = '/' && lexer.pos + 1 < n && lexer.input.[lexer.pos + 1] = '/' then begin
      while lexer.pos < n && lexer.input.[lexer.pos] <> '\n' do
        lexer.pos <- lexer.pos + 1
      done;
      skip_ws lexer
    end
    else if c = '/' && lexer.pos + 1 < n && lexer.input.[lexer.pos + 1] = '*' then begin
      lexer.pos <- lexer.pos + 2;
      let rec close () =
        if lexer.pos + 1 >= n then fail lexer "unterminated comment"
        else if lexer.input.[lexer.pos] = '*' && lexer.input.[lexer.pos + 1] = '/' then
          lexer.pos <- lexer.pos + 2
        else begin
          if lexer.input.[lexer.pos] = '\n' then lexer.line <- lexer.line + 1;
          lexer.pos <- lexer.pos + 1;
          close ()
        end
      in
      close ();
      skip_ws lexer
    end
  end

let next_token lexer =
  skip_ws lexer;
  let n = String.length lexer.input in
  if lexer.pos >= n then Eof
  else
    let c = lexer.input.[lexer.pos] in
    if c = '{' then begin
      lexer.pos <- lexer.pos + 1;
      Lbrace
    end
    else if c = '}' then begin
      lexer.pos <- lexer.pos + 1;
      Rbrace
    end
    else if c = '=' then begin
      lexer.pos <- lexer.pos + 1;
      Equals
    end
    else if c = ':' then begin
      lexer.pos <- lexer.pos + 1;
      Colon
    end
    else if c = ';' then begin
      lexer.pos <- lexer.pos + 1;
      Semi
    end
    else if c = '.' then begin
      lexer.pos <- lexer.pos + 1;
      Dot
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      lexer.pos <- lexer.pos + 1;
      let rec scan () =
        if lexer.pos >= n then fail lexer "unterminated string literal"
        else
          match lexer.input.[lexer.pos] with
          | '"' -> lexer.pos <- lexer.pos + 1
          | '\\' when lexer.pos + 1 < n ->
              (match lexer.input.[lexer.pos + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | other -> Buffer.add_char buf other);
              lexer.pos <- lexer.pos + 2;
              scan ()
          | ch ->
              Buffer.add_char buf ch;
              lexer.pos <- lexer.pos + 1;
              scan ()
      in
      scan ();
      String_lit (Buffer.contents buf)
    end
    else if is_digit c || (c = '-' && lexer.pos + 1 < n && is_digit lexer.input.[lexer.pos + 1])
    then begin
      let start = lexer.pos in
      if c = '-' then lexer.pos <- lexer.pos + 1;
      let is_float = ref false in
      while
        lexer.pos < n
        && (is_digit lexer.input.[lexer.pos]
           ||
           if lexer.input.[lexer.pos] = '.' && not !is_float then begin
             is_float := true;
             true
           end
           else false)
      do
        lexer.pos <- lexer.pos + 1
      done;
      let text = String.sub lexer.input start (lexer.pos - start) in
      if !is_float then Float_lit (float_of_string text) else Int_lit (int_of_string text)
    end
    else if is_ident_start c then begin
      let start = lexer.pos in
      while lexer.pos < n && is_ident_char lexer.input.[lexer.pos] do
        lexer.pos <- lexer.pos + 1
      done;
      Ident (String.sub lexer.input start (lexer.pos - start))
    end
    else fail lexer "unexpected character %C" c

(* One-token lookahead parser state. *)
type parser_state = { lexer : lexer; mutable tok : token }

let advance p = p.tok <- next_token p.lexer

let expect p expected describe =
  if p.tok = expected then advance p
  else fail p.lexer "expected %s" describe

let ident p =
  match p.tok with
  | Ident name ->
      advance p;
      name
  | String_lit _ | Int_lit _ | Float_lit _ | Lbrace | Rbrace | Equals | Colon | Semi | Dot
  | Eof ->
      fail p.lexer "expected an identifier"

let keyword p kw =
  match p.tok with
  | Ident name when String.equal name kw -> advance p
  | _ -> fail p.lexer "expected keyword %S" kw

let literal p =
  match p.tok with
  | String_lit s ->
      advance p;
      Ast.Str s
  | Int_lit i ->
      advance p;
      Ast.Int i
  | Float_lit f ->
      advance p;
      Ast.Float f
  | Ident "true" ->
      advance p;
      Ast.Bool true
  | Ident "false" ->
      advance p;
      Ast.Bool false
  | Ident _ | Lbrace | Rbrace | Equals | Colon | Semi | Dot | Eof ->
      fail p.lexer "expected a literal value"

let optional_semi p = if p.tok = Semi then advance p

let parse_property p =
  keyword p "Property";
  let prop_name = ident p in
  let prop_type =
    if p.tok = Colon then begin
      advance p;
      Some (ident p)
    end
    else None
  in
  expect p Equals "'='";
  let prop_value = literal p in
  expect p Semi "';'";
  { Ast.prop_name; prop_type; prop_value }

(* Port and Role share shape. *)
let parse_interface_like p kw =
  keyword p kw;
  let name = ident p in
  let props =
    if p.tok = Equals then begin
      advance p;
      expect p Lbrace "'{'";
      let rec loop acc =
        match p.tok with
        | Rbrace ->
            advance p;
            List.rev acc
        | Ident "Property" -> loop (parse_property p :: acc)
        | _ -> fail p.lexer "expected Property or '}' in %s body" kw
      in
      loop []
    end
    else []
  in
  expect p Semi "';'";
  (name, props)

let parse_component p =
  keyword p "Component";
  let comp_name = ident p in
  expect p Equals "'='";
  expect p Lbrace "'{'";
  let rec loop ports props =
    match p.tok with
    | Rbrace ->
        advance p;
        optional_semi p;
        { Ast.comp_name; ports = List.rev ports; comp_props = List.rev props }
    | Ident "Port" ->
        let port_name, port_props = parse_interface_like p "Port" in
        loop ({ Ast.port_name; port_props } :: ports) props
    | Ident "Property" -> loop ports (parse_property p :: props)
    | _ -> fail p.lexer "expected Port, Property or '}' in Component body"
  in
  loop [] []

let parse_connector p =
  keyword p "Connector";
  let conn_name = ident p in
  expect p Equals "'='";
  expect p Lbrace "'{'";
  let rec loop roles props =
    match p.tok with
    | Rbrace ->
        advance p;
        optional_semi p;
        { Ast.conn_name; roles = List.rev roles; conn_props = List.rev props }
    | Ident "Role" ->
        let role_name, role_props = parse_interface_like p "Role" in
        loop ({ Ast.role_name; role_props } :: roles) props
    | Ident "Property" -> loop roles (parse_property p :: props)
    | _ -> fail p.lexer "expected Role, Property or '}' in Connector body"
  in
  loop [] []

let parse_attachment p =
  keyword p "Attachment";
  let att_component = ident p in
  expect p Dot "'.'";
  let att_port = ident p in
  keyword p "to";
  let att_connector = ident p in
  expect p Dot "'.'";
  let att_role = ident p in
  expect p Semi "';'";
  { Ast.att_component; att_port; att_connector; att_role }

let system input =
  let lexer = { input; pos = 0; line = 1 } in
  let p = { lexer; tok = Eof } in
  advance p;
  keyword p "System";
  let sys_name = ident p in
  let family =
    if p.tok = Colon then begin
      advance p;
      Some (ident p)
    end
    else None
  in
  expect p Equals "'='";
  expect p Lbrace "'{'";
  let rec loop components connectors attachments props =
    match p.tok with
    | Rbrace ->
        advance p;
        optional_semi p;
        if p.tok <> Eof then fail lexer "trailing content after system";
        {
          Ast.sys_name;
          family;
          components = List.rev components;
          connectors = List.rev connectors;
          attachments = List.rev attachments;
          sys_props = List.rev props;
        }
    | Ident "Component" ->
        loop (parse_component p :: components) connectors attachments props
    | Ident "Connector" ->
        loop components (parse_connector p :: connectors) attachments props
    | Ident "Attachment" ->
        loop components connectors (parse_attachment p :: attachments) props
    | Ident "Property" -> loop components connectors attachments (parse_property p :: props)
    | _ -> fail lexer "expected Component, Connector, Attachment, Property or '}'"
  in
  loop [] [] [] []
