exception Conversion_error of string

let conversion_error fmt = Format.kasprintf (fun s -> raise (Conversion_error s)) fmt

(* ---------------------- Structure -> Acme -------------------------- *)

let direction_to_string = function
  | Adl.Structure.Provided -> "provided"
  | Adl.Structure.Required -> "required"
  | Adl.Structure.In_out -> "inout"

let direction_of_string = function
  | "provided" -> Adl.Structure.Provided
  | "required" -> Adl.Structure.Required
  | "inout" -> Adl.Structure.In_out
  | other -> conversion_error "unknown direction property %S" other

let tag_props tags =
  List.map (fun (k, v) -> Ast.property ("tag_" ^ k) (Ast.Str v)) tags

let interface_props (i : Adl.Structure.interface) =
  Ast.property "direction" (Ast.Str (direction_to_string i.Adl.Structure.direction))
  :: (if String.equal i.Adl.Structure.iface_name i.Adl.Structure.iface_id then []
      else [ Ast.property "name" (Ast.Str i.Adl.Structure.iface_name) ])
  @ tag_props i.Adl.Structure.iface_tags

let element_props ~name ~description ~responsibilities ~tags ~had_substructure =
  [ Ast.property "name" (Ast.Str name) ]
  @ (if description = "" then []
     else [ Ast.property "description" (Ast.Str description) ])
  @ List.mapi
      (fun i r -> Ast.property (Printf.sprintf "responsibility_%d" (i + 1)) (Ast.Str r))
      responsibilities
  @ tag_props tags
  @ if had_substructure then [ Ast.property "had_substructure" (Ast.Bool true) ] else []

let component_to_acme (c : Adl.Structure.component) =
  {
    Ast.comp_name = c.Adl.Structure.comp_id;
    ports =
      List.map
        (fun i ->
          { Ast.port_name = i.Adl.Structure.iface_id; port_props = interface_props i })
        c.Adl.Structure.comp_interfaces;
    comp_props =
      element_props ~name:c.Adl.Structure.comp_name
        ~description:c.Adl.Structure.comp_description
        ~responsibilities:c.Adl.Structure.responsibilities ~tags:c.Adl.Structure.comp_tags
        ~had_substructure:(c.Adl.Structure.substructure <> None);
  }

let connector_to_acme (c : Adl.Structure.connector) =
  {
    Ast.conn_name = c.Adl.Structure.conn_id;
    roles =
      List.map
        (fun i ->
          { Ast.role_name = i.Adl.Structure.iface_id; role_props = interface_props i })
        c.Adl.Structure.conn_interfaces;
    conn_props =
      element_props ~name:c.Adl.Structure.conn_name
        ~description:c.Adl.Structure.conn_description ~responsibilities:[]
        ~tags:c.Adl.Structure.conn_tags ~had_substructure:false;
  }

let of_structure (s : Adl.Structure.t) =
  let is_component id = Adl.Structure.find_component s id <> None in
  let bridge_counter = ref 0 in
  let extra_connectors = ref [] in
  let extra_components = ref [] in
  let attachments = ref [] in
  let bridge_role i = { Ast.role_name = Printf.sprintf "r%d" i; role_props = [] } in
  let bridge_port i = { Ast.port_name = Printf.sprintf "p%d" i; port_props = [] } in
  List.iter
    (fun l ->
      let fa = l.Adl.Structure.link_from.Adl.Structure.anchor in
      let fi = l.Adl.Structure.link_from.Adl.Structure.interface in
      let ta = l.Adl.Structure.link_to.Adl.Structure.anchor in
      let ti = l.Adl.Structure.link_to.Adl.Structure.interface in
      match (is_component fa, is_component ta) with
      | true, false ->
          attachments :=
            { Ast.att_component = fa; att_port = fi; att_connector = ta; att_role = ti }
            :: !attachments
      | false, true ->
          attachments :=
            { Ast.att_component = ta; att_port = ti; att_connector = fa; att_role = fi }
            :: !attachments
      | true, true ->
          (* component-to-component: synthesize a connector bridge *)
          incr bridge_counter;
          let bridge = Printf.sprintf "bridge_%d" !bridge_counter in
          extra_connectors :=
            {
              Ast.conn_name = bridge;
              roles = [ bridge_role 1; bridge_role 2 ];
              conn_props = [ Ast.property "synthesized" (Ast.Bool true) ];
            }
            :: !extra_connectors;
          attachments :=
            { Ast.att_component = ta; att_port = ti; att_connector = bridge; att_role = "r2" }
            :: { Ast.att_component = fa; att_port = fi; att_connector = bridge; att_role = "r1" }
            :: !attachments
      | false, false ->
          (* connector-to-connector: synthesize a component bridge *)
          incr bridge_counter;
          let bridge = Printf.sprintf "bridge_%d" !bridge_counter in
          extra_components :=
            {
              Ast.comp_name = bridge;
              ports = [ bridge_port 1; bridge_port 2 ];
              comp_props = [ Ast.property "synthesized" (Ast.Bool true) ];
            }
            :: !extra_components;
          attachments :=
            { Ast.att_component = bridge; att_port = "p2"; att_connector = ta; att_role = ti }
            :: {
                 Ast.att_component = bridge;
                 att_port = "p1";
                 att_connector = fa;
                 att_role = fi;
               }
            :: !attachments)
    s.Adl.Structure.links;
  {
    Ast.sys_name = s.Adl.Structure.arch_id;
    family = s.Adl.Structure.style;
    components =
      List.map component_to_acme s.Adl.Structure.components @ List.rev !extra_components;
    connectors =
      List.map connector_to_acme s.Adl.Structure.connectors @ List.rev !extra_connectors;
    attachments = List.rev !attachments;
    sys_props = [ Ast.property "name" (Ast.Str s.Adl.Structure.arch_name) ];
  }

(* ---------------------- Acme -> Structure -------------------------- *)

let is_synthesized props =
  match Ast.find_prop props "synthesized" with Some (Ast.Bool true) -> true | _ -> false

let props_to_tags props =
  List.filter_map
    (fun p ->
      let n = p.Ast.prop_name in
      if String.length n > 4 && String.sub n 0 4 = "tag_" then
        match p.Ast.prop_value with
        | Ast.Str v -> Some (String.sub n 4 (String.length n - 4), v)
        | Ast.Int i -> Some (String.sub n 4 (String.length n - 4), string_of_int i)
        | Ast.Float _ | Ast.Bool _ -> None
      else None)
    props

let props_to_responsibilities props =
  let prefixed =
    List.filter_map
      (fun p ->
        let n = p.Ast.prop_name in
        let prefix = "responsibility_" in
        let plen = String.length prefix in
        if String.length n > plen && String.sub n 0 plen = prefix then
          match
            (int_of_string_opt (String.sub n plen (String.length n - plen)), p.Ast.prop_value)
          with
          | Some idx, Ast.Str v -> Some (idx, v)
          | _, (Ast.Str _ | Ast.Int _ | Ast.Float _ | Ast.Bool _) -> None
        else None)
      props
  in
  List.map snd (List.sort compare prefixed)

let interface_of ~id props =
  {
    Adl.Structure.iface_id = id;
    iface_name = (match Ast.string_prop props "name" with Some n -> n | None -> id);
    direction =
      (match Ast.string_prop props "direction" with
      | Some d -> direction_of_string d
      | None -> Adl.Structure.In_out);
    iface_tags = props_to_tags props;
  }

let to_structure (sys : Ast.system) =
  let real_components = List.filter (fun c -> not (is_synthesized c.Ast.comp_props)) sys.Ast.components in
  let real_connectors = List.filter (fun c -> not (is_synthesized c.Ast.conn_props)) sys.Ast.connectors in
  let synth_component c = is_synthesized c.Ast.comp_props in
  let synth_connector c = is_synthesized c.Ast.conn_props in
  let components =
    List.map
      (fun c ->
        {
          Adl.Structure.comp_id = c.Ast.comp_name;
          comp_name =
            (match Ast.string_prop c.Ast.comp_props "name" with
            | Some n -> n
            | None -> c.Ast.comp_name);
          comp_description =
            (match Ast.string_prop c.Ast.comp_props "description" with
            | Some d -> d
            | None -> "");
          responsibilities = props_to_responsibilities c.Ast.comp_props;
          comp_interfaces =
            List.map (fun p -> interface_of ~id:p.Ast.port_name p.Ast.port_props) c.Ast.ports;
          substructure = None;
          comp_tags = props_to_tags c.Ast.comp_props;
        })
      real_components
  in
  let connectors =
    List.map
      (fun c ->
        {
          Adl.Structure.conn_id = c.Ast.conn_name;
          conn_name =
            (match Ast.string_prop c.Ast.conn_props "name" with
            | Some n -> n
            | None -> c.Ast.conn_name);
          conn_description =
            (match Ast.string_prop c.Ast.conn_props "description" with
            | Some d -> d
            | None -> "");
          conn_interfaces =
            List.map (fun r -> interface_of ~id:r.Ast.role_name r.Ast.role_props) c.Ast.roles;
          conn_tags = props_to_tags c.Ast.conn_props;
        })
      real_connectors
  in
  (* Attachments touching a synthesized bridge collapse pairwise into a
     direct link; others become component<->connector links. *)
  let find_component name =
    List.find_opt (fun c -> String.equal c.Ast.comp_name name) sys.Ast.components
  in
  let find_connector name =
    List.find_opt (fun c -> String.equal c.Ast.conn_name name) sys.Ast.connectors
  in
  let direct, bridged =
    List.partition
      (fun a ->
        let conn_is_synth =
          match find_connector a.Ast.att_connector with
          | Some c -> synth_connector c
          | None -> false
        in
        let comp_is_synth =
          match find_component a.Ast.att_component with
          | Some c -> synth_component c
          | None -> false
        in
        not (conn_is_synth || comp_is_synth))
      sys.Ast.attachments
  in
  let direct_links =
    List.map
      (fun a ->
        {
          Adl.Structure.link_id =
            Printf.sprintf "%s.%s->%s.%s" a.Ast.att_component a.Ast.att_port
              a.Ast.att_connector a.Ast.att_role;
          link_from =
            { Adl.Structure.anchor = a.Ast.att_component; interface = a.Ast.att_port };
          link_to =
            { Adl.Structure.anchor = a.Ast.att_connector; interface = a.Ast.att_role };
        })
      direct
  in
  (* Group bridged attachments by their bridge element and collapse. *)
  let bridge_key a =
    let conn_is_synth =
      match find_connector a.Ast.att_connector with Some c -> synth_connector c | None -> false
    in
    if conn_is_synth then a.Ast.att_connector else a.Ast.att_component
  in
  let table = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let key = bridge_key a in
      let cur = match Hashtbl.find_opt table key with Some l -> l | None -> [] in
      Hashtbl.replace table key (cur @ [ a ]))
    bridged;
  let bridged_links =
    Hashtbl.fold
      (fun key pair acc ->
        match pair with
        | [ a1; a2 ] ->
            let endpoint a =
              let conn_is_synth =
                match find_connector a.Ast.att_connector with
                | Some c -> synth_connector c
                | None -> false
              in
              if conn_is_synth then
                { Adl.Structure.anchor = a.Ast.att_component; interface = a.Ast.att_port }
              else { Adl.Structure.anchor = a.Ast.att_connector; interface = a.Ast.att_role }
            in
            let p1 = endpoint a1 and p2 = endpoint a2 in
            {
              Adl.Structure.link_id =
                Printf.sprintf "%s.%s->%s.%s" p1.Adl.Structure.anchor
                  p1.Adl.Structure.interface p2.Adl.Structure.anchor
                  p2.Adl.Structure.interface;
              link_from = p1;
              link_to = p2;
            }
            :: acc
        | other ->
            conversion_error "bridge %s has %d attachments, expected 2" key
              (List.length other))
      table []
  in
  {
    Adl.Structure.arch_id = sys.Ast.sys_name;
    arch_name =
      (match Ast.string_prop sys.Ast.sys_props "name" with
      | Some n -> n
      | None -> sys.Ast.sys_name);
    style = sys.Ast.family;
    components;
    connectors;
    links = direct_links @ List.sort compare bridged_links;
  }
