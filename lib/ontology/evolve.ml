type op =
  | Add_class of Types.domain_class
  | Remove_class of string
  | Add_event_type of Types.event_type
  | Remove_event_type of string
  | Rename_event_type of { old_id : string; new_id : string }
  | Rename_class of { old_id : string; new_id : string }
  | Retemplate of { event_id : string; template : string }

exception Apply_error of string

let apply_error fmt = Format.kasprintf (fun s -> raise (Apply_error s)) fmt

let defined t id =
  Types.find_class t id <> None
  || Types.find_individual t id <> None
  || Types.find_event_type t id <> None
  || Types.find_term t id <> None

let class_referents t id =
  let subclasses =
    List.filter_map
      (fun c ->
        if c.Types.class_super = Some id then Some ("class " ^ c.Types.class_id) else None)
      t.Types.classes
  in
  let individuals =
    List.filter_map
      (fun i ->
        if String.equal i.Types.ind_class id then Some ("individual " ^ i.Types.ind_id)
        else None)
      t.Types.individuals
  in
  let events =
    List.filter_map
      (fun e ->
        let uses_param =
          List.exists (fun p -> String.equal p.Types.param_class id) e.Types.params
        in
        let uses_actor = e.Types.actor = Some id in
        if uses_param || uses_actor then Some ("event type " ^ e.Types.event_id) else None)
      t.Types.event_types
  in
  subclasses @ individuals @ events

let apply t op =
  match op with
  | Add_class c ->
      if defined t c.Types.class_id then
        apply_error "add class: id %S already exists" c.Types.class_id;
      { t with Types.classes = t.Types.classes @ [ c ] }
  | Remove_class id -> (
      if Types.find_class t id = None then apply_error "remove class: unknown id %S" id;
      match class_referents t id with
      | [] ->
          {
            t with
            Types.classes =
              List.filter (fun c -> not (String.equal c.Types.class_id id)) t.Types.classes;
          }
      | referents ->
          apply_error "remove class %S: still referenced by %s" id
            (String.concat ", " referents))
  | Add_event_type e ->
      if defined t e.Types.event_id then
        apply_error "add event type: id %S already exists" e.Types.event_id;
      { t with Types.event_types = t.Types.event_types @ [ e ] }
  | Remove_event_type id ->
      if Types.find_event_type t id = None then
        apply_error "remove event type: unknown id %S" id;
      let subtypes =
        List.filter (fun e -> e.Types.event_super = Some id) t.Types.event_types
      in
      if subtypes <> [] then
        apply_error "remove event type %S: still the supertype of %s" id
          (String.concat ", " (List.map (fun e -> e.Types.event_id) subtypes));
      {
        t with
        Types.event_types =
          List.filter (fun e -> not (String.equal e.Types.event_id id)) t.Types.event_types;
      }
  | Rename_event_type { old_id; new_id } ->
      if Types.find_event_type t old_id = None then
        apply_error "rename event type: unknown id %S" old_id;
      if defined t new_id then apply_error "rename event type: id %S already exists" new_id;
      {
        t with
        Types.event_types =
          List.map
            (fun e ->
              let e =
                if String.equal e.Types.event_id old_id then
                  { e with Types.event_id = new_id }
                else e
              in
              if e.Types.event_super = Some old_id then
                { e with Types.event_super = Some new_id }
              else e)
            t.Types.event_types;
      }
  | Rename_class { old_id; new_id } ->
      if Types.find_class t old_id = None then
        apply_error "rename class: unknown id %S" old_id;
      if defined t new_id then apply_error "rename class: id %S already exists" new_id;
      let rename id = if String.equal id old_id then new_id else id in
      {
        t with
        Types.classes =
          List.map
            (fun c ->
              {
                c with
                Types.class_id = rename c.Types.class_id;
                class_super = Option.map rename c.Types.class_super;
              })
            t.Types.classes;
        individuals =
          List.map
            (fun i -> { i with Types.ind_class = rename i.Types.ind_class })
            t.Types.individuals;
        event_types =
          List.map
            (fun e ->
              {
                e with
                Types.actor = Option.map rename e.Types.actor;
                params =
                  List.map
                    (fun p -> { p with Types.param_class = rename p.Types.param_class })
                    e.Types.params;
              })
            t.Types.event_types;
      }
  | Retemplate { event_id; template } ->
      if Types.find_event_type t event_id = None then
        apply_error "retemplate: unknown event type %S" event_id;
      {
        t with
        Types.event_types =
          List.map
            (fun e ->
              if String.equal e.Types.event_id event_id then { e with Types.template }
              else e)
            t.Types.event_types;
      }

let apply_all t ops = List.fold_left apply t ops

let pp_op ppf = function
  | Add_class c -> Format.fprintf ppf "add class %s" c.Types.class_id
  | Remove_class id -> Format.fprintf ppf "remove class %s" id
  | Add_event_type e -> Format.fprintf ppf "add event type %s" e.Types.event_id
  | Remove_event_type id -> Format.fprintf ppf "remove event type %s" id
  | Rename_event_type { old_id; new_id } ->
      Format.fprintf ppf "rename event type %s -> %s" old_id new_id
  | Rename_class { old_id; new_id } ->
      Format.fprintf ppf "rename class %s -> %s" old_id new_id
  | Retemplate { event_id; _ } -> Format.fprintf ppf "retemplate %s" event_id
