type param = { param_name : string; param_class : string }

type domain_class = {
  class_id : string;
  class_name : string;
  class_description : string;
  class_super : string option;
}

type individual = {
  ind_id : string;
  ind_name : string;
  ind_class : string;
  ind_description : string;
}

type event_type = {
  event_id : string;
  event_name : string;
  template : string;
  event_super : string option;
  params : param list;
  actor : string option;
}

type term = { term_id : string; term_name : string; term_definition : string }

type t = {
  ontology_id : string;
  ontology_name : string;
  classes : domain_class list;
  individuals : individual list;
  event_types : event_type list;
  terms : term list;
}

let empty ~id ~name =
  { ontology_id = id; ontology_name = name; classes = []; individuals = []; event_types = []; terms = [] }

let find_class t id = List.find_opt (fun c -> String.equal c.class_id id) t.classes

let find_individual t id = List.find_opt (fun i -> String.equal i.ind_id id) t.individuals

let find_event_type t id = List.find_opt (fun e -> String.equal e.event_id id) t.event_types

let find_term t id = List.find_opt (fun tm -> String.equal tm.term_id id) t.terms

let event_type_exn t id =
  match find_event_type t id with Some e -> e | None -> raise Not_found

let class_exn t id = match find_class t id with Some c -> c | None -> raise Not_found

let size t =
  List.length t.classes + List.length t.individuals + List.length t.event_types
  + List.length t.terms

(* Substitute "{name}" placeholders; single pass, left to right. *)
let expand_template et args =
  let s = et.template in
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec loop i =
    if i >= n then ()
    else if s.[i] = '{' then begin
      match String.index_from_opt s i '}' with
      | Some j ->
          let key = String.sub s (i + 1) (j - i - 1) in
          (match List.assoc_opt key args with
          | Some v -> Buffer.add_string buf v
          | None ->
              Buffer.add_char buf '{';
              Buffer.add_string buf key;
              Buffer.add_char buf '}');
          loop (j + 1)
      | None ->
          Buffer.add_char buf '{';
          loop (i + 1)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0;
  Buffer.contents buf
