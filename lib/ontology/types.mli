(** ScenarioML ontology: domain classes ([instanceType]), domain
    individuals ([instance]), event types ([eventType]), and glossary
    terms ([term]).

    An ontology is "a collection of domain class, individual, and event
    type definitions that are typically interrelated" (paper, §1). Event
    types act as templates reused by scenarios; domain classes and
    individuals give unambiguous referents for the entities events
    mention. Both domain classes and event types support subsumption
    (subclass/supertype) and parameterization. *)

type param = {
  param_name : string;  (** placeholder name used in the template text *)
  param_class : string;  (** id of the domain class constraining arguments *)
}

(** A domain class: a class of domain entities "that are in some sense
    equivalent". *)
type domain_class = {
  class_id : string;
  class_name : string;
  class_description : string;
  class_super : string option;  (** subsuming class, if any *)
}

(** A domain individual: a specific entity of a class whose existence is
    assumed or guaranteed. *)
type individual = {
  ind_id : string;
  ind_name : string;
  ind_class : string;  (** id of the class this individual belongs to *)
  ind_description : string;
}

(** An event type: a template for reusing the same event in several
    scenarios or several times in the same scenario. The [template] text
    may contain [{param}] placeholders filled by arguments at
    instantiation. *)
type event_type = {
  event_id : string;
  event_name : string;
  template : string;
  event_super : string option;  (** subsuming event type, if any *)
  params : param list;
  actor : string option;  (** id of the class of the performing actor *)
}

(** A glossary term capturing a general concept of the system. *)
type term = { term_id : string; term_name : string; term_definition : string }

type t = {
  ontology_id : string;
  ontology_name : string;
  classes : domain_class list;  (** in definition order *)
  individuals : individual list;
  event_types : event_type list;
  terms : term list;
}

val empty : id:string -> name:string -> t

val find_class : t -> string -> domain_class option

val find_individual : t -> string -> individual option

val find_event_type : t -> string -> event_type option

val find_term : t -> string -> term option

val event_type_exn : t -> string -> event_type
(** @raise Not_found when the id is not defined. *)

val class_exn : t -> string -> domain_class
(** @raise Not_found when the id is not defined. *)

val size : t -> int
(** Total number of definitions of all four kinds. *)

val expand_template : event_type -> (string * string) list -> string
(** [expand_template et args] substitutes each [{p}] placeholder in the
    template with the argument bound to parameter [p]. Placeholders with
    no binding are kept verbatim (useful for printing the uninstantiated
    template). *)
