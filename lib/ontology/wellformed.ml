type problem =
  | Duplicate_id of string
  | Unknown_class_super of { class_id : string; super : string }
  | Unknown_event_super of { event_id : string; super : string }
  | Class_cycle of string list
  | Event_cycle of string list
  | Unknown_individual_class of { ind_id : string; cls : string }
  | Unknown_param_class of { event_id : string; param : string; cls : string }
  | Unknown_actor_class of { event_id : string; actor : string }
  | Empty_name of string
  | Empty_template of string
  | Unbound_placeholder of { event_id : string; placeholder : string }

let pp_problem ppf = function
  | Duplicate_id id -> Format.fprintf ppf "duplicate id %S" id
  | Unknown_class_super { class_id; super } ->
      Format.fprintf ppf "class %S refers to unknown superclass %S" class_id super
  | Unknown_event_super { event_id; super } ->
      Format.fprintf ppf "event type %S refers to unknown super event type %S" event_id super
  | Class_cycle ids ->
      Format.fprintf ppf "class subsumption cycle: %s" (String.concat " -> " ids)
  | Event_cycle ids ->
      Format.fprintf ppf "event subsumption cycle: %s" (String.concat " -> " ids)
  | Unknown_individual_class { ind_id; cls } ->
      Format.fprintf ppf "individual %S has unknown class %S" ind_id cls
  | Unknown_param_class { event_id; param; cls } ->
      Format.fprintf ppf "event type %S parameter %S has unknown class %S" event_id param cls
  | Unknown_actor_class { event_id; actor } ->
      Format.fprintf ppf "event type %S has unknown actor class %S" event_id actor
  | Empty_name id -> Format.fprintf ppf "definition %S has an empty name" id
  | Empty_template id -> Format.fprintf ppf "event type %S has an empty template" id
  | Unbound_placeholder { event_id; placeholder } ->
      Format.fprintf ppf "event type %S uses placeholder {%s} with no matching parameter"
        event_id placeholder

let problem_to_string p = Format.asprintf "%a" pp_problem p

let placeholders s =
  let n = String.length s in
  let rec loop acc i =
    if i >= n then List.rev acc
    else if s.[i] = '{' then
      match String.index_from_opt s i '}' with
      | Some j ->
          let key = String.sub s (i + 1) (j - i - 1) in
          let acc = if List.exists (String.equal key) acc then acc else key :: acc in
          loop acc (j + 1)
      | None -> List.rev acc
    else loop acc (i + 1)
  in
  loop [] 0

let duplicates t =
  let all_ids =
    List.map (fun c -> c.Types.class_id) t.Types.classes
    @ List.map (fun i -> i.Types.ind_id) t.Types.individuals
    @ List.map (fun e -> e.Types.event_id) t.Types.event_types
    @ List.map (fun tm -> tm.Types.term_id) t.Types.terms
  in
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun id ->
      if Hashtbl.mem seen id then Some (Duplicate_id id)
      else begin
        Hashtbl.add seen id ();
        None
      end)
    all_ids

(* Detect cycles in a supertype relation restricted to known ids. *)
let cycles ids super_of mk =
  let rec walk visited id =
    if List.exists (String.equal id) visited then
      Some (List.rev (id :: visited))
    else
      match super_of id with
      | Some parent when List.exists (String.equal parent) ids -> walk (id :: visited) parent
      | Some _ | None -> None
  in
  List.filter_map
    (fun id -> match walk [] id with Some cyc -> Some (mk cyc) | None -> None)
    ids

let check t =
  let class_ids = List.map (fun c -> c.Types.class_id) t.Types.classes in
  let known_class id = List.exists (String.equal id) class_ids in
  let event_ids = List.map (fun e -> e.Types.event_id) t.Types.event_types in
  let known_event id = List.exists (String.equal id) event_ids in
  let dup = duplicates t in
  let class_super_problems =
    List.filter_map
      (fun c ->
        match c.Types.class_super with
        | Some super when not (known_class super) ->
            Some (Unknown_class_super { class_id = c.Types.class_id; super })
        | Some _ | None -> None)
      t.Types.classes
  in
  let event_super_problems =
    List.filter_map
      (fun e ->
        match e.Types.event_super with
        | Some super when not (known_event super) ->
            Some (Unknown_event_super { event_id = e.Types.event_id; super })
        | Some _ | None -> None)
      t.Types.event_types
  in
  let class_cycles =
    cycles class_ids
      (fun id -> match Types.find_class t id with Some c -> c.Types.class_super | None -> None)
      (fun c -> Class_cycle c)
  in
  let event_cycles =
    cycles event_ids
      (fun id ->
        match Types.find_event_type t id with Some e -> e.Types.event_super | None -> None)
      (fun c -> Event_cycle c)
  in
  (* Report each distinct cycle once: keep only cycles whose first id is
     the smallest on the cycle. *)
  let canonical = function
    | Class_cycle (first :: rest) | Event_cycle (first :: rest) ->
        List.for_all (fun id -> String.compare first id <= 0) rest
    | Class_cycle [] | Event_cycle [] -> false
    | _ -> true
  in
  let class_cycles = List.filter canonical class_cycles in
  let event_cycles = List.filter canonical event_cycles in
  let individual_problems =
    List.filter_map
      (fun i ->
        if known_class i.Types.ind_class then None
        else Some (Unknown_individual_class { ind_id = i.Types.ind_id; cls = i.Types.ind_class }))
      t.Types.individuals
  in
  let param_problems =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun p ->
            if known_class p.Types.param_class then None
            else
              Some
                (Unknown_param_class
                   {
                     event_id = e.Types.event_id;
                     param = p.Types.param_name;
                     cls = p.Types.param_class;
                   }))
          e.Types.params)
      t.Types.event_types
  in
  let actor_problems =
    List.filter_map
      (fun e ->
        match e.Types.actor with
        | Some actor when not (known_class actor) ->
            Some (Unknown_actor_class { event_id = e.Types.event_id; actor })
        | Some _ | None -> None)
      t.Types.event_types
  in
  let empty_names =
    List.filter_map
      (fun (id, name) -> if String.trim name = "" then Some (Empty_name id) else None)
      (List.map (fun c -> (c.Types.class_id, c.Types.class_name)) t.Types.classes
      @ List.map (fun i -> (i.Types.ind_id, i.Types.ind_name)) t.Types.individuals
      @ List.map (fun e -> (e.Types.event_id, e.Types.event_name)) t.Types.event_types
      @ List.map (fun tm -> (tm.Types.term_id, tm.Types.term_name)) t.Types.terms)
  in
  let empty_templates =
    List.filter_map
      (fun e ->
        if String.trim e.Types.template = "" then Some (Empty_template e.Types.event_id)
        else None)
      t.Types.event_types
  in
  let has_event_cycle =
    List.exists (function Event_cycle _ -> true | _ -> false) event_cycles
  in
  let placeholder_problems =
    (* Inherited parameters are only meaningful on acyclic hierarchies. *)
    if has_event_cycle then []
    else
      List.concat_map
        (fun e ->
          let bound =
            List.map (fun p -> p.Types.param_name) (Subsume.inherited_params t e)
          in
          List.filter_map
            (fun ph ->
              if List.exists (String.equal ph) bound then None
              else Some (Unbound_placeholder { event_id = e.Types.event_id; placeholder = ph }))
            (placeholders e.Types.template))
        t.Types.event_types
  in
  dup @ class_super_problems @ event_super_problems @ class_cycles @ event_cycles
  @ individual_problems @ param_problems @ actor_problems @ empty_names @ empty_templates
  @ placeholder_problems

let is_wellformed t = check t = []
