(* Walk a supertype chain with a fuel bound so malformed (cyclic)
   ontologies terminate. *)
let chain size super_of start =
  let rec loop acc fuel id =
    if fuel <= 0 then List.rev acc
    else
      match super_of id with
      | Some parent -> loop (parent :: acc) (fuel - 1) parent
      | None -> List.rev acc
  in
  loop [] size start

let class_super t id =
  match Types.find_class t id with
  | Some c -> c.Types.class_super
  | None -> None

let event_super t id =
  match Types.find_event_type t id with
  | Some e -> e.Types.event_super
  | None -> None

let class_ancestors t id = chain (Types.size t + 1) (class_super t) id

let event_ancestors t id = chain (Types.size t + 1) (event_super t) id

let class_subsumes t ~super ~sub =
  String.equal super sub || List.exists (String.equal super) (class_ancestors t sub)

let event_subsumes t ~super ~sub =
  String.equal super sub || List.exists (String.equal super) (event_ancestors t sub)

let class_descendants t id =
  List.filter_map
    (fun c ->
      let cid = c.Types.class_id in
      if (not (String.equal cid id)) && class_subsumes t ~super:id ~sub:cid then Some cid
      else None)
    t.Types.classes

let event_descendants t id =
  List.filter_map
    (fun e ->
      let eid = e.Types.event_id in
      if (not (String.equal eid id)) && event_subsumes t ~super:id ~sub:eid then Some eid
      else None)
    t.Types.event_types

let event_roots t =
  List.filter (fun e -> e.Types.event_super = None) t.Types.event_types

let inherited_params t et =
  let ancestors = List.rev (event_ancestors t et.Types.event_id) in
  let of_id id =
    match Types.find_event_type t id with Some e -> e.Types.params | None -> []
  in
  let all = List.concat_map of_id ancestors @ et.Types.params in
  (* Later (more specific) declarations shadow earlier ones by name. *)
  let keep p rest =
    not (List.exists (fun q -> String.equal q.Types.param_name p.Types.param_name) rest)
  in
  let rec dedup = function
    | [] -> []
    | p :: rest -> if keep p rest then p :: dedup rest else dedup rest
  in
  dedup all

let individuals_of_class t id =
  List.filter (fun i -> class_subsumes t ~super:id ~sub:i.Types.ind_class) t.Types.individuals

let common_event_ancestor t a b =
  let self_and_ancestors id = id :: event_ancestors t id in
  let bs = self_and_ancestors b in
  List.find_opt (fun x -> List.exists (String.equal x) bs) (self_and_ancestors a)
