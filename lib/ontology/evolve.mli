(** Ontology evolution operations.

    "Requirements can evolve while the pre-established mapping assists
    developers in locating impacted components" (paper §7). These
    operations are the requirements-side counterpart of {!Adl.Diff}:
    explicit edits to the ontology that the mapping (via
    [Mapping.Trace]/[Mapping.Build]) and the scenarios (via
    [Scenarioml.Refactor]) are synchronized against. *)

type op =
  | Add_class of Types.domain_class
  | Remove_class of string
      (** fails when individuals, parameters, actors, or subclasses
          still refer to the class *)
  | Add_event_type of Types.event_type
  | Remove_event_type of string  (** fails when subtypes still refer to it *)
  | Rename_event_type of { old_id : string; new_id : string }
      (** supertype references follow the rename *)
  | Rename_class of { old_id : string; new_id : string }
      (** superclass, individual, parameter, and actor references follow *)
  | Retemplate of { event_id : string; template : string }

exception Apply_error of string

val apply : Types.t -> op -> Types.t
(** @raise Apply_error when the op does not apply (unknown or duplicate
    ids, lingering references). *)

val apply_all : Types.t -> op list -> Types.t

val pp_op : Format.formatter -> op -> unit
