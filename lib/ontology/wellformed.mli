(** Well-formedness checking of an ontology.

    A well-formed ontology has: unique ids across all definition kinds;
    resolvable supertype references with acyclic chains; individuals
    whose class exists; event-type parameters constrained by existing
    classes; actor references to existing classes; non-empty names and
    templates; and template placeholders that match declared (or
    inherited) parameter names. *)

type problem =
  | Duplicate_id of string
  | Unknown_class_super of { class_id : string; super : string }
  | Unknown_event_super of { event_id : string; super : string }
  | Class_cycle of string list  (** ids on the cycle *)
  | Event_cycle of string list
  | Unknown_individual_class of { ind_id : string; cls : string }
  | Unknown_param_class of { event_id : string; param : string; cls : string }
  | Unknown_actor_class of { event_id : string; actor : string }
  | Empty_name of string  (** id of the offending definition *)
  | Empty_template of string
  | Unbound_placeholder of { event_id : string; placeholder : string }

val pp_problem : Format.formatter -> problem -> unit

val problem_to_string : problem -> string

val check : Types.t -> problem list
(** All problems, in a deterministic order. Empty means well-formed. *)

val is_wellformed : Types.t -> bool

val placeholders : string -> string list
(** The [{name}] placeholders occurring in a template, in order,
    without duplicates. *)
