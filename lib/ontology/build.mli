(** Construction of ontologies with immediate duplicate-id detection.

    All [add_*] functions return the ontology extended with the new
    definition appended (definition order is preserved for printing).
    @raise Duplicate if the id is already defined by any definition kind. *)

exception Duplicate of string

val create : id:string -> name:string -> Types.t

val add_class :
  ?description:string -> ?super:string -> id:string -> name:string -> Types.t -> Types.t

val add_individual :
  ?description:string -> id:string -> name:string -> cls:string -> Types.t -> Types.t

val add_event_type :
  ?super:string ->
  ?params:(string * string) list ->
  ?actor:string ->
  id:string ->
  name:string ->
  template:string ->
  Types.t ->
  Types.t
(** [params] are (parameter name, constraining class id) pairs. *)

val add_term : id:string -> name:string -> definition:string -> Types.t -> Types.t

val merge : Types.t -> Types.t -> Types.t
(** [merge a b] appends [b]'s definitions to [a].
    @raise Duplicate on any id collision. Keeps [a]'s id and name. *)
