let pp_event_type t ppf e =
  Format.fprintf ppf "eventType %s (%s)" e.Types.event_id e.Types.event_name;
  (match e.Types.event_super with
  | Some s -> Format.fprintf ppf " super=%s" s
  | None -> ());
  (match e.Types.actor with
  | Some a -> Format.fprintf ppf " actor=%s" a
  | None -> ());
  let params = Subsume.inherited_params t e in
  if params <> [] then begin
    let pp_param ppf p =
      Format.fprintf ppf "%s:%s" p.Types.param_name p.Types.param_class
    in
    Format.fprintf ppf " (%a)" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_param) params
  end;
  Format.fprintf ppf "@,  \"%s\"" e.Types.template

let pp ppf t =
  Format.fprintf ppf "@[<v>Ontology %s: %s@," t.Types.ontology_id t.Types.ontology_name;
  if t.Types.classes <> [] then begin
    Format.fprintf ppf "Domain classes:@,";
    List.iter
      (fun c ->
        Format.fprintf ppf "  instanceType %s (%s)%s@," c.Types.class_id c.Types.class_name
          (match c.Types.class_super with Some s -> " super=" ^ s | None -> ""))
      t.Types.classes
  end;
  if t.Types.individuals <> [] then begin
    Format.fprintf ppf "Individuals:@,";
    List.iter
      (fun i ->
        Format.fprintf ppf "  instance %s (%s) : %s@," i.Types.ind_id i.Types.ind_name
          i.Types.ind_class)
      t.Types.individuals
  end;
  if t.Types.event_types <> [] then begin
    Format.fprintf ppf "Event types:@,";
    List.iter (fun e -> Format.fprintf ppf "  @[<v>%a@]@," (pp_event_type t) e) t.Types.event_types
  end;
  if t.Types.terms <> [] then begin
    Format.fprintf ppf "Terms:@,";
    List.iter
      (fun tm ->
        Format.fprintf ppf "  term %s (%s): %s@," tm.Types.term_id tm.Types.term_name
          tm.Types.term_definition)
      t.Types.terms
  end;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let summary t =
  Printf.sprintf "ontology %s: %d classes, %d individuals, %d event types, %d terms"
    t.Types.ontology_id (List.length t.Types.classes) (List.length t.Types.individuals)
    (List.length t.Types.event_types) (List.length t.Types.terms)
