(** ScenarioML-style XML reading and writing for ontologies.

    The concrete syntax follows the paper's vocabulary:
    [<ontology id name>] containing [<instanceType>], [<instance>],
    [<eventType>] (with nested [<parameter>] elements and optional
    [super] and [actor] attributes), and [<term>] elements. *)

exception Malformed of string

val to_element : Types.t -> Xmlight.Doc.element

val to_string : Types.t -> string

val of_element : Xmlight.Doc.element -> Types.t
(** @raise Malformed when required attributes or elements are missing. *)

val of_string : string -> Types.t
(** Parse a complete XML document whose root is [<ontology>].
    @raise Malformed on XML or schema errors. *)
