exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let opt_attr name value attrs =
  match value with Some v -> attrs @ [ (name, v) ] | None -> attrs

let class_to_element (c : Types.domain_class) =
  let attrs =
    opt_attr "super" c.Types.class_super
      [ ("id", c.Types.class_id); ("name", c.Types.class_name) ]
  in
  let children =
    if c.Types.class_description = "" then []
    else [ Xmlight.Doc.elt "description" [ Xmlight.Doc.text c.Types.class_description ] ]
  in
  Xmlight.Doc.elt ~attrs "instanceType" children

let individual_to_element (i : Types.individual) =
  let attrs =
    [ ("id", i.Types.ind_id); ("name", i.Types.ind_name); ("type", i.Types.ind_class) ]
  in
  let children =
    if i.Types.ind_description = "" then []
    else [ Xmlight.Doc.elt "description" [ Xmlight.Doc.text i.Types.ind_description ] ]
  in
  Xmlight.Doc.elt ~attrs "instance" children

let event_to_element (e : Types.event_type) =
  let attrs =
    opt_attr "actor" e.Types.actor
      (opt_attr "super" e.Types.event_super
         [ ("id", e.Types.event_id); ("name", e.Types.event_name) ])
  in
  let params =
    List.map
      (fun p ->
        Xmlight.Doc.elt
          ~attrs:[ ("name", p.Types.param_name); ("type", p.Types.param_class) ]
          "parameter" [])
      e.Types.params
  in
  let template = Xmlight.Doc.elt "template" [ Xmlight.Doc.text e.Types.template ] in
  Xmlight.Doc.elt ~attrs "eventType" (params @ [ template ])

let term_to_element (tm : Types.term) =
  Xmlight.Doc.elt
    ~attrs:[ ("id", tm.Types.term_id); ("name", tm.Types.term_name) ]
    "term"
    [ Xmlight.Doc.text tm.Types.term_definition ]

let to_element t =
  Xmlight.Doc.element
    ~attrs:[ ("id", t.Types.ontology_id); ("name", t.Types.ontology_name) ]
    "ontology"
    (List.map class_to_element t.Types.classes
    @ List.map individual_to_element t.Types.individuals
    @ List.map event_to_element t.Types.event_types
    @ List.map term_to_element t.Types.terms)

let to_string t = Xmlight.Print.to_string (Xmlight.Doc.doc (to_element t))

let required e name =
  match Xmlight.Doc.attr e name with
  | Some v -> v
  | None -> malformed "<%s> is missing required attribute %S" e.Xmlight.Doc.tag name

let description_of e =
  match Xmlight.Doc.find_child e "description" with
  | Some d -> Xmlight.Doc.child_text d
  | None -> ""

let class_of_element e =
  {
    Types.class_id = required e "id";
    class_name = required e "name";
    class_description = description_of e;
    class_super = Xmlight.Doc.attr e "super";
  }

let individual_of_element e =
  {
    Types.ind_id = required e "id";
    ind_name = required e "name";
    ind_class = required e "type";
    ind_description = description_of e;
  }

let event_of_element e =
  let params =
    List.map
      (fun p -> { Types.param_name = required p "name"; param_class = required p "type" })
      (Xmlight.Doc.find_children e "parameter")
  in
  let template =
    match Xmlight.Doc.find_child e "template" with
    | Some t -> Xmlight.Doc.child_text t
    | None -> malformed "<eventType id=%S> is missing <template>" (required e "id")
  in
  {
    Types.event_id = required e "id";
    event_name = required e "name";
    template;
    event_super = Xmlight.Doc.attr e "super";
    params;
    actor = Xmlight.Doc.attr e "actor";
  }

let term_of_element e =
  {
    Types.term_id = required e "id";
    term_name = required e "name";
    term_definition = Xmlight.Doc.child_text e;
  }

let of_element e =
  if not (String.equal e.Xmlight.Doc.tag "ontology") then
    malformed "expected <ontology>, found <%s>" e.Xmlight.Doc.tag;
  {
    Types.ontology_id = required e "id";
    ontology_name = required e "name";
    classes = List.map class_of_element (Xmlight.Doc.find_children e "instanceType");
    individuals = List.map individual_of_element (Xmlight.Doc.find_children e "instance");
    event_types = List.map event_of_element (Xmlight.Doc.find_children e "eventType");
    terms = List.map term_of_element (Xmlight.Doc.find_children e "term");
  }

let of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> of_element doc.Xmlight.Doc.root
  | Error e -> malformed "XML error: %s" (Xmlight.Parse.error_to_string e)
