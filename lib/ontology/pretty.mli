(** Human-readable rendering of ontologies (used by the figure
    reproductions and the CLI). *)

val pp_event_type : Types.t -> Format.formatter -> Types.event_type -> unit
(** One event type with its supertype, actor, parameters and template. *)

val pp : Format.formatter -> Types.t -> unit
(** Whole ontology, grouped by definition kind. *)

val to_string : Types.t -> string

val summary : Types.t -> string
(** One-line count summary, e.g. ["ontology pims: 8 classes, 3 individuals,
    12 event types, 4 terms"]. *)
