exception Duplicate of string

let defined t id =
  Types.find_class t id <> None
  || Types.find_individual t id <> None
  || Types.find_event_type t id <> None
  || Types.find_term t id <> None

let check_fresh t id = if defined t id then raise (Duplicate id)

let create ~id ~name = Types.empty ~id ~name

let add_class ?(description = "") ?super ~id ~name t =
  check_fresh t id;
  let c =
    { Types.class_id = id; class_name = name; class_description = description; class_super = super }
  in
  { t with Types.classes = t.Types.classes @ [ c ] }

let add_individual ?(description = "") ~id ~name ~cls t =
  check_fresh t id;
  let i = { Types.ind_id = id; ind_name = name; ind_class = cls; ind_description = description } in
  { t with Types.individuals = t.Types.individuals @ [ i ] }

let add_event_type ?super ?(params = []) ?actor ~id ~name ~template t =
  check_fresh t id;
  let params =
    List.map (fun (param_name, param_class) -> { Types.param_name; param_class }) params
  in
  let e =
    {
      Types.event_id = id;
      event_name = name;
      template;
      event_super = super;
      params;
      actor;
    }
  in
  { t with Types.event_types = t.Types.event_types @ [ e ] }

let add_term ~id ~name ~definition t =
  check_fresh t id;
  let tm = { Types.term_id = id; term_name = name; term_definition = definition } in
  { t with Types.terms = t.Types.terms @ [ tm ] }

let merge a b =
  let check_all ids = List.iter (check_fresh a) ids in
  check_all (List.map (fun c -> c.Types.class_id) b.Types.classes);
  check_all (List.map (fun i -> i.Types.ind_id) b.Types.individuals);
  check_all (List.map (fun e -> e.Types.event_id) b.Types.event_types);
  check_all (List.map (fun tm -> tm.Types.term_id) b.Types.terms);
  {
    a with
    Types.classes = a.Types.classes @ b.Types.classes;
    individuals = a.Types.individuals @ b.Types.individuals;
    event_types = a.Types.event_types @ b.Types.event_types;
    terms = a.Types.terms @ b.Types.terms;
  }
