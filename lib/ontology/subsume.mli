(** Subsumption (subclass/supertype) queries over domain classes and
    event types.

    All functions assume a well-formed ontology (see {!Wellformed}): in
    particular, acyclic supertype chains. On a malformed ontology the
    chain-walking functions stop after [size] steps rather than loop. *)

val class_ancestors : Types.t -> string -> string list
(** Proper ancestors of a class, nearest first. Unknown ids yield []. *)

val event_ancestors : Types.t -> string -> string list
(** Proper ancestors of an event type, nearest first. *)

val class_subsumes : Types.t -> super:string -> sub:string -> bool
(** Reflexive-transitive: a class subsumes itself. *)

val event_subsumes : Types.t -> super:string -> sub:string -> bool

val class_descendants : Types.t -> string -> string list
(** All classes subsumed by the given class, excluding itself, in
    definition order. *)

val event_descendants : Types.t -> string -> string list

val event_roots : Types.t -> Types.event_type list
(** Event types with no supertype, in definition order. *)

val inherited_params : Types.t -> Types.event_type -> Types.param list
(** Parameters of an event type including those inherited from its
    ancestors (ancestor parameters first, shadowed by name). *)

val individuals_of_class : Types.t -> string -> Types.individual list
(** Individuals whose class is subsumed by the given class. *)

val common_event_ancestor : Types.t -> string -> string -> string option
(** Nearest event type subsuming both arguments, if any. *)
