type problem =
  | Unmapped_event_type of string
  | Entry_without_components of string
  | Unmapped_component of string
  | Unknown_event_type of string
  | Unknown_component of { event_type : string; component : string }
  | Duplicate_entry of string

let pp_problem ppf = function
  | Unmapped_event_type id -> Format.fprintf ppf "event type %S is not mapped" id
  | Entry_without_components id ->
      Format.fprintf ppf "event type %S is mapped to no components" id
  | Unmapped_component id -> Format.fprintf ppf "component %S is mapped to by no event type" id
  | Unknown_event_type id ->
      Format.fprintf ppf "mapping refers to unknown event type %S" id
  | Unknown_component { event_type; component } ->
      Format.fprintf ppf "event type %S maps to unknown component %S" event_type component
  | Duplicate_entry id -> Format.fprintf ppf "event type %S has several mapping entries" id

let problem_to_string p = Format.asprintf "%a" pp_problem p

(* One hashtable index per id space, so the whole check is linear in
   ontology + architecture + mapping size (it sits on every
   Engine.evaluate_set call, including large synthetic suites). *)
let check ontology architecture t =
  let defined_event_types =
    List.map (fun e -> e.Ontology.Types.event_id) ontology.Ontology.Types.event_types
  in
  let components =
    List.map (fun c -> c.Adl.Structure.comp_id) architecture.Adl.Structure.components
  in
  let set_of ids =
    let tbl = Hashtbl.create (List.length ids * 2) in
    List.iter (fun id -> Hashtbl.replace tbl id ()) ids;
    tbl
  in
  let defined_set = set_of defined_event_types in
  let component_set = set_of components in
  let entry_set = set_of (List.map (fun e -> e.Types.event_type) t.Types.entries) in
  let mapped_to_set = set_of (List.concat_map (fun e -> e.Types.components) t.Types.entries) in
  let duplicates =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun e ->
        let id = e.Types.event_type in
        if Hashtbl.mem seen id then Some (Duplicate_entry id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      t.Types.entries
  in
  let mapped_directly_or_inherited id =
    Hashtbl.mem entry_set id
    || List.exists
         (fun ancestor -> Hashtbl.mem entry_set ancestor)
         (Ontology.Subsume.event_ancestors ontology id)
  in
  let unmapped_event_types =
    List.filter_map
      (fun id ->
        if mapped_directly_or_inherited id then None else Some (Unmapped_event_type id))
      defined_event_types
  in
  let empty_entries =
    List.filter_map
      (fun e ->
        if e.Types.components = [] then Some (Entry_without_components e.Types.event_type)
        else None)
      t.Types.entries
  in
  let unmapped_components =
    List.filter_map
      (fun id ->
        if Hashtbl.mem mapped_to_set id then None else Some (Unmapped_component id))
      components
  in
  let unknown_event_types =
    List.filter_map
      (fun e ->
        if Hashtbl.mem defined_set e.Types.event_type then None
        else Some (Unknown_event_type e.Types.event_type))
      t.Types.entries
  in
  let unknown_components =
    List.concat_map
      (fun e ->
        List.filter_map
          (fun c ->
            if Hashtbl.mem component_set c then None
            else Some (Unknown_component { event_type = e.Types.event_type; component = c }))
          e.Types.components)
      t.Types.entries
  in
  duplicates @ unmapped_event_types @ empty_entries @ unmapped_components
  @ unknown_event_types @ unknown_components

let is_total ontology architecture t = check ontology architecture t = []

type summary = {
  event_types_total : int;
  event_types_mapped : int;
  components_total : int;
  components_mapped : int;
  links : int;
  avg_components_per_event_type : float;
  avg_event_types_per_component : float;
}

let summarize ontology architecture t =
  let event_types_total = List.length ontology.Ontology.Types.event_types in
  let entries_with_components =
    List.filter (fun e -> e.Types.components <> []) t.Types.entries
  in
  let event_types_mapped = List.length entries_with_components in
  let components_total = List.length architecture.Adl.Structure.components in
  let components_mapped = List.length (Types.mapped_components t) in
  let links = Types.link_count t in
  let avg a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  {
    event_types_total;
    event_types_mapped;
    components_total;
    components_mapped;
    links;
    avg_components_per_event_type = avg links event_types_mapped;
    avg_event_types_per_component = avg links components_mapped;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>event types mapped: %d/%d@,components mapped to: %d/%d@,links: %d@,\
     avg components per event type: %.2f@,avg event types per component: %.2f@]"
    s.event_types_mapped s.event_types_total s.components_mapped s.components_total s.links
    s.avg_components_per_event_type s.avg_event_types_per_component
