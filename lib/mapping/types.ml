type entry = { event_type : string; components : string list; rationale : string }

type t = {
  mapping_id : string;
  ontology_id : string;
  architecture_id : string;
  entries : entry list;
}

let empty ~id ~ontology_id ~architecture_id =
  { mapping_id = id; ontology_id; architecture_id; entries = [] }

let find t event_type =
  List.find_opt (fun e -> String.equal e.event_type event_type) t.entries

let components_of t event_type =
  match find t event_type with Some e -> e.components | None -> []

let event_types_of t component =
  List.filter_map
    (fun e ->
      if List.exists (String.equal component) e.components then Some e.event_type else None)
    t.entries

let mapped_event_types t = List.map (fun e -> e.event_type) t.entries

let mapped_components t =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc c -> if List.exists (String.equal c) acc then acc else acc @ [ c ])
        acc e.components)
    [] t.entries

let link_count t = List.fold_left (fun acc e -> acc + List.length e.components) 0 t.entries
