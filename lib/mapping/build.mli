(** Construction of mappings. *)

exception Duplicate of string

val create : id:string -> ontology:Ontology.Types.t -> architecture:Adl.Structure.t -> Types.t
(** Empty mapping carrying the ids of the given ontology and
    architecture. *)

val map :
  ?rationale:string -> event_type:string -> to_:string list -> Types.t -> Types.t
(** Add an entry.
    @raise Duplicate if the event type is already mapped (use
    {!extend} to add components to an existing entry). *)

val extend : event_type:string -> to_:string list -> Types.t -> Types.t
(** Add components to an existing entry (creating it when absent);
    duplicates are ignored. *)

val unmap_component : string -> Types.t -> Types.t
(** Remove a component from every entry (entries left with no
    components are kept, recording the gap). *)

val rename_event_type : old_id:string -> new_id:string -> Types.t -> Types.t

val rename_component : old_id:string -> new_id:string -> Types.t -> Types.t
