(** Traceability and change-impact analysis over the mapping.

    "By explicitly mapping event types in the ontology to components in
    the architectural description, requirements changes in the scenarios
    can be traced to the architecture and vice versa" (paper §7). *)

type impact = {
  changed : string;  (** the changed element's id *)
  impacted_event_types : string list;
  impacted_components : string list;
}

val of_event_type_change : Types.t -> string -> impact
(** Components affected when an event type's meaning changes. *)

val of_component_change : Types.t -> string -> impact
(** Event types (hence scenarios) affected when a component changes. *)

val of_arch_op : Types.t -> Adl.Diff.op -> impact
(** Impact of an architecture edit: which event types lose (or gain)
    realization. Link edits impact nothing in the mapping itself. *)

val apply_arch_op : Types.t -> Adl.Diff.op -> Types.t
(** Keep the mapping synchronized with an architecture edit:
    removals drop the component from entries, renames propagate;
    additions and link edits leave the mapping unchanged. *)

val pp_impact : Format.formatter -> impact -> unit
