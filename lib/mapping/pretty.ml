let pp ppf t =
  Format.fprintf ppf "@[<v>Mapping %s: %s -> %s@," t.Types.mapping_id t.Types.ontology_id
    t.Types.architecture_id;
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s -> %s%s@," e.Types.event_type
        (match e.Types.components with [] -> "(nothing)" | l -> String.concat ", " l)
        (if e.Types.rationale = "" then "" else "  // " ^ e.Types.rationale))
    t.Types.entries;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_table ?(event_type_label = fun id -> id) ?(component_label = fun id -> id) ppf t =
  let components = Types.mapped_components t in
  let row_labels = List.map (fun e -> event_type_label e.Types.event_type) t.Types.entries in
  let col_labels = List.map component_label components in
  let row_width =
    List.fold_left (fun acc l -> max acc (String.length l)) 10 row_labels
  in
  let col_widths = List.map (fun l -> max 3 (String.length l)) col_labels in
  let pad s w =
    let n = String.length s in
    if n >= w then s else s ^ String.make (w - n) ' '
  in
  let center s w =
    let n = String.length s in
    if n >= w then s
    else
      let left = (w - n) / 2 in
      String.make left ' ' ^ s ^ String.make (w - n - left) ' '
  in
  (* header *)
  Format.fprintf ppf "%s |" (pad "" row_width);
  List.iter2 (fun l w -> Format.fprintf ppf " %s |" (center l w)) col_labels col_widths;
  Format.pp_print_newline ppf ();
  let rule_len =
    row_width + 2 + List.fold_left (fun acc w -> acc + w + 3) 0 col_widths
  in
  Format.fprintf ppf "%s@," (String.make rule_len '-');
  List.iter
    (fun e ->
      Format.fprintf ppf "%s |" (pad (event_type_label e.Types.event_type) row_width);
      List.iter2
        (fun c w ->
          let mark =
            if List.exists (String.equal c) e.Types.components then "X" else ""
          in
          Format.fprintf ppf " %s |" (center mark w))
        components col_widths;
      Format.pp_print_newline ppf ())
    t.Types.entries

let table_to_string ?event_type_label ?component_label t =
  Format.asprintf "@[<v>%a@]" (pp_table ?event_type_label ?component_label) t
