type impact = {
  changed : string;
  impacted_event_types : string list;
  impacted_components : string list;
}

let of_event_type_change t event_type =
  {
    changed = event_type;
    impacted_event_types = [ event_type ];
    impacted_components = Types.components_of t event_type;
  }

let of_component_change t component =
  {
    changed = component;
    impacted_event_types = Types.event_types_of t component;
    impacted_components = [ component ];
  }

let no_impact changed = { changed; impacted_event_types = []; impacted_components = [] }

let of_arch_op t op =
  match op with
  | Adl.Diff.Remove_component id -> of_component_change t id
  | Adl.Diff.Rename_element { old_id; new_id = _ } -> of_component_change t old_id
  | Adl.Diff.Add_component c -> no_impact c.Adl.Structure.comp_id
  | Adl.Diff.Add_connector c -> no_impact c.Adl.Structure.conn_id
  | Adl.Diff.Remove_connector id -> no_impact id
  | Adl.Diff.Add_link l -> no_impact l.Adl.Structure.link_id
  | Adl.Diff.Remove_link id -> no_impact id

let apply_arch_op t op =
  match op with
  | Adl.Diff.Remove_component id -> Build.unmap_component id t
  | Adl.Diff.Rename_element { old_id; new_id } -> Build.rename_component ~old_id ~new_id t
  | Adl.Diff.Add_component _ | Adl.Diff.Add_connector _ | Adl.Diff.Remove_connector _
  | Adl.Diff.Add_link _ | Adl.Diff.Remove_link _ ->
      t

let pp_impact ppf i =
  Format.fprintf ppf "@[<v>change to %s impacts:@,  event types: %s@,  components: %s@]"
    i.changed
    (match i.impacted_event_types with [] -> "(none)" | l -> String.concat ", " l)
    (match i.impacted_components with [] -> "(none)" | l -> String.concat ", " l)
