(** The event-type-to-component mapping.

    "The mapping is performed between event types in the ontology and
    components in the architecture's structural description. It is based
    on the meaning of the events of the scenarios and the
    responsibilities of the components. ... The mapping is many-to-many"
    (paper §3.4). *)

type entry = {
  event_type : string;  (** ontology event-type id *)
  components : string list;  (** architecture component ids, in order *)
  rationale : string;  (** why these components realize the event type *)
}

type t = {
  mapping_id : string;
  ontology_id : string;  (** id of the ontology mapped from *)
  architecture_id : string;  (** id of the architecture mapped to *)
  entries : entry list;
}

val empty : id:string -> ontology_id:string -> architecture_id:string -> t

val find : t -> string -> entry option
(** Entry for an event type. *)

val components_of : t -> string -> string list
(** Components an event type maps to; [] when unmapped. *)

val event_types_of : t -> string -> string list
(** Inverse direction: event types mapping to a component. *)

val mapped_event_types : t -> string list

val mapped_components : t -> string list
(** Every component referenced by some entry, without duplicates, in
    first-reference order. *)

val link_count : t -> int
(** Total number of event-type-to-component links (the with-ontology
    mapping size). *)
