(** Entity-based mapping inference — the paper's §8 hypothesis:
    "the events that map to a specific component can be determined by
    the domain entities that appear in those events, rather than the
    actions the events describe ... defining the mapping links in terms
    of finer-grained elements such as domain classes shows promise to
    provide mappings that can adapt under evolution more naturally and
    efficiently."

    Instead of mapping each event type by hand, the architect associates
    *domain classes* with the components responsible for them; the
    event-type mapping is then derived: an event type maps to the
    components associated with its actor class and with each of its
    (inherited) parameter classes. Associations are subsumption-aware:
    associating a superclass covers all its subclasses. *)

type association = {
  entity : string;  (** a domain-class id *)
  responsible : string list;  (** component ids, in order *)
}

val infer :
  id:string ->
  ontology:Ontology.Types.t ->
  architecture:Adl.Structure.t ->
  association list ->
  Types.t
(** Derived mapping: for each event type of the ontology, the union (in
    association order, deduplicated) of the components of every
    association whose entity subsumes the event's actor class (own or
    inherited from a super event type) or one of its inherited parameter
    classes. Event types gathering no components get no entry. *)

type divergence = {
  event_type : string;
  only_manual : string list;  (** components only the manual mapping has *)
  only_inferred : string list;
}

val compare_mappings : Types.t -> Types.t -> divergence list
(** Per event type appearing in either mapping, the symmetric
    difference of component sets; agreement yields no entry. *)

val pp_divergence : Format.formatter -> divergence -> unit
