exception Duplicate of string

let create ~id ~ontology ~architecture =
  Types.empty ~id ~ontology_id:ontology.Ontology.Types.ontology_id
    ~architecture_id:architecture.Adl.Structure.arch_id

let map ?(rationale = "") ~event_type ~to_ t =
  if Types.find t event_type <> None then raise (Duplicate event_type);
  { t with Types.entries = t.Types.entries @ [ { Types.event_type; components = to_; rationale } ] }

let extend ~event_type ~to_ t =
  match Types.find t event_type with
  | None -> map ~event_type ~to_ t
  | Some e ->
      let components =
        List.fold_left
          (fun acc c -> if List.exists (String.equal c) acc then acc else acc @ [ c ])
          e.Types.components to_
      in
      {
        t with
        Types.entries =
          List.map
            (fun x ->
              if String.equal x.Types.event_type event_type then { x with Types.components }
              else x)
            t.Types.entries;
      }

let unmap_component component t =
  {
    t with
    Types.entries =
      List.map
        (fun e ->
          {
            e with
            Types.components =
              List.filter (fun c -> not (String.equal c component)) e.Types.components;
          })
        t.Types.entries;
  }

let rename_event_type ~old_id ~new_id t =
  {
    t with
    Types.entries =
      List.map
        (fun e ->
          if String.equal e.Types.event_type old_id then { e with Types.event_type = new_id }
          else e)
        t.Types.entries;
  }

let rename_component ~old_id ~new_id t =
  {
    t with
    Types.entries =
      List.map
        (fun e ->
          {
            e with
            Types.components =
              List.map (fun c -> if String.equal c old_id then new_id else c) e.Types.components;
          })
        t.Types.entries;
  }
