exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let required e name =
  match Xmlight.Doc.attr e name with
  | Some v -> v
  | None -> malformed "<%s> is missing required attribute %S" e.Xmlight.Doc.tag name

let entry_to_element e =
  let targets =
    List.map
      (fun c -> Xmlight.Doc.elt ~attrs:[ ("component", c) ] "to" [])
      e.Types.components
  in
  let rationale =
    if e.Types.rationale = "" then []
    else [ Xmlight.Doc.elt "rationale" [ Xmlight.Doc.text e.Types.rationale ] ]
  in
  Xmlight.Doc.element ~attrs:[ ("eventType", e.Types.event_type) ] "map" (targets @ rationale)

let to_element t =
  Xmlight.Doc.element
    ~attrs:
      [
        ("id", t.Types.mapping_id);
        ("ontology", t.Types.ontology_id);
        ("architecture", t.Types.architecture_id);
      ]
    "mapping"
    (List.map (fun e -> Xmlight.Doc.Element (entry_to_element e)) t.Types.entries)

let to_string t = Xmlight.Print.to_string (Xmlight.Doc.doc (to_element t))

let entry_of_element e =
  {
    Types.event_type = required e "eventType";
    components = List.map (fun c -> required c "component") (Xmlight.Doc.find_children e "to");
    rationale =
      (match Xmlight.Doc.find_child e "rationale" with
      | Some r -> Xmlight.Doc.child_text r
      | None -> "");
  }

let of_element e =
  if not (String.equal e.Xmlight.Doc.tag "mapping") then
    malformed "expected <mapping>, found <%s>" e.Xmlight.Doc.tag;
  {
    Types.mapping_id = required e "id";
    ontology_id = required e "ontology";
    architecture_id = required e "architecture";
    entries = List.map entry_of_element (Xmlight.Doc.find_children e "map");
  }

let of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> of_element doc.Xmlight.Doc.root
  | Error e -> malformed "XML error: %s" (Xmlight.Parse.error_to_string e)
