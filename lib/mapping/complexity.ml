type counts = {
  with_ontology : int;
  without_ontology : int;
  definition_links : int;
  occurrences : int;
  reduction : float;
}

let measure t ~usage =
  let definition_links = Types.link_count t in
  let occurrences = List.fold_left (fun acc (_, n) -> acc + n) 0 usage in
  let without_ontology =
    List.fold_left
      (fun acc (et, n) -> acc + (n * List.length (Types.components_of t et)))
      0 usage
  in
  let with_ontology = occurrences + definition_links in
  {
    with_ontology;
    without_ontology;
    definition_links;
    occurrences;
    reduction =
      (if with_ontology = 0 then 1.0
       else float_of_int without_ontology /. float_of_int with_ontology);
  }

let synthetic_usage ~event_types ~occurrences_per_type =
  List.init event_types (fun i -> (Printf.sprintf "et%d" (i + 1), occurrences_per_type))

let synthetic_mapping ~event_types ~fanout ~components =
  let entries =
    List.init event_types (fun i ->
        let targets =
          List.init fanout (fun j ->
              Printf.sprintf "c%d" (1 + ((i + j) mod components)))
        in
        {
          Types.event_type = Printf.sprintf "et%d" (i + 1);
          components = targets;
          rationale = "synthetic";
        })
  in
  {
    Types.mapping_id = "synthetic";
    ontology_id = "synthetic-ontology";
    architecture_id = "synthetic-architecture";
    entries;
  }

let sweep ~event_types ~fanout ~components ~reuse =
  let mapping = synthetic_mapping ~event_types ~fanout ~components in
  List.map
    (fun r ->
      let usage = synthetic_usage ~event_types ~occurrences_per_type:r in
      (r, measure mapping ~usage))
    reuse
