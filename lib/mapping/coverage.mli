(** Mapping coverage and referential integrity.

    The paper's Table 1 exhibits the property that "each ontology event
    type is mapped at least to one component and each component is
    mapped to by at least one ontology event type" (§4.1); these checks
    make that property (and dangling references) explicit. *)

type problem =
  | Unmapped_event_type of string
      (** defined in the ontology with no entry of its own and no mapped
          ancestor event type (sub-typed events inherit their super's
          realization, paper §5) *)
  | Entry_without_components of string  (** entry with an empty component list *)
  | Unmapped_component of string  (** component no event type maps to *)
  | Unknown_event_type of string  (** entry refers outside the ontology *)
  | Unknown_component of { event_type : string; component : string }
      (** entry refers outside the architecture *)
  | Duplicate_entry of string

val pp_problem : Format.formatter -> problem -> unit

val problem_to_string : problem -> string

val check : Ontology.Types.t -> Adl.Structure.t -> Types.t -> problem list

val is_total : Ontology.Types.t -> Adl.Structure.t -> Types.t -> bool
(** No problems at all: every event type mapped, every component mapped
    to, and every reference resolves. *)

type summary = {
  event_types_total : int;
  event_types_mapped : int;
  components_total : int;
  components_mapped : int;
  links : int;
  avg_components_per_event_type : float;
  avg_event_types_per_component : float;
}

val summarize : Ontology.Types.t -> Adl.Structure.t -> Types.t -> summary

val pp_summary : Format.formatter -> summary -> unit
