(** Rendering of mappings, including the cross table of the paper's
    Table 1 (rows: event types; columns: components; X at mapped
    intersections). *)

val pp : Format.formatter -> Types.t -> unit
(** Entry list with rationales. *)

val to_string : Types.t -> string

val pp_table :
  ?event_type_label:(string -> string) ->
  ?component_label:(string -> string) ->
  Format.formatter ->
  Types.t ->
  unit
(** ASCII cross table. Labels default to the raw ids; pass label
    functions to print human names (as Table 1 does). *)

val table_to_string :
  ?event_type_label:(string -> string) ->
  ?component_label:(string -> string) ->
  Types.t ->
  string
