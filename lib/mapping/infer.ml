type association = { entity : string; responsible : string list }

let infer ~id ~ontology ~architecture associations =
  let covers assoc cls =
    Ontology.Subsume.class_subsumes ontology ~super:assoc.entity ~sub:cls
  in
  (* The actor class is inherited along the event-type hierarchy, like
     parameters. *)
  let rec inherited_actor (et : Ontology.Types.event_type) =
    match et.Ontology.Types.actor with
    | Some a -> Some a
    | None -> (
        match et.Ontology.Types.event_super with
        | Some super ->
            Option.bind (Ontology.Types.find_event_type ontology super) inherited_actor
        | None -> None)
  in
  let entry (et : Ontology.Types.event_type) =
    let classes =
      (match inherited_actor et with Some a -> [ a ] | None -> [])
      @ List.map
          (fun p -> p.Ontology.Types.param_class)
          (Ontology.Subsume.inherited_params ontology et)
    in
    let components =
      List.fold_left
        (fun acc assoc ->
          if List.exists (covers assoc) classes then
            List.fold_left
              (fun acc c -> if List.exists (String.equal c) acc then acc else acc @ [ c ])
              acc assoc.responsible
          else acc)
        [] associations
    in
    if components = [] then None
    else
      Some
        {
          Types.event_type = et.Ontology.Types.event_id;
          components;
          rationale = "inferred from domain-entity associations";
        }
  in
  {
    Types.mapping_id = id;
    ontology_id = ontology.Ontology.Types.ontology_id;
    architecture_id = architecture.Adl.Structure.arch_id;
    entries = List.filter_map entry ontology.Ontology.Types.event_types;
  }

type divergence = {
  event_type : string;
  only_manual : string list;
  only_inferred : string list;
}

let compare_mappings manual inferred =
  let event_types =
    List.fold_left
      (fun acc et -> if List.exists (String.equal et) acc then acc else acc @ [ et ])
      (Types.mapped_event_types manual)
      (Types.mapped_event_types inferred)
  in
  List.filter_map
    (fun event_type ->
      let m = Types.components_of manual event_type in
      let i = Types.components_of inferred event_type in
      let only_manual = List.filter (fun c -> not (List.exists (String.equal c) i)) m in
      let only_inferred = List.filter (fun c -> not (List.exists (String.equal c) m)) i in
      if only_manual = [] && only_inferred = [] then None
      else Some { event_type; only_manual; only_inferred })
    event_types

let pp_divergence ppf d =
  Format.fprintf ppf "%s: manual-only {%s}, inferred-only {%s}" d.event_type
    (String.concat ", " d.only_manual)
    (String.concat ", " d.only_inferred)
