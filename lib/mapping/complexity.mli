(** The paper's link-complexity model (§1):

    "Without the ontology, each appearance of a scenario element is
    linked individually to all relevant architecture elements; with the
    ontology, the appearances are linked to its definition in the
    ontology, and only that definition is linked to the architecture
    elements. The more extensive the reuse of the ontology definitions
    in the scenarios, the greater is the reduction in complexity."

    [usage] is the per-event-type occurrence count across all scenarios
    (from [Scenarioml.Stats.usage] or synthesized for sweeps). *)

type counts = {
  with_ontology : int;
      (** occurrence→definition links + definition→component links *)
  without_ontology : int;  (** occurrence→component links *)
  definition_links : int;  (** definition→component links only *)
  occurrences : int;
  reduction : float;  (** without / with; > 1 means the ontology wins *)
}

val measure : Types.t -> usage:(string * int) list -> counts
(** Event types in [usage] that are absent from the mapping contribute
    occurrence links but no component links. *)

val synthetic_usage :
  event_types:int -> occurrences_per_type:int -> (string * int) list
(** Uniform usage profile ["et1" .. "etN"], each occurring the given
    number of times — the reuse-sweep workload. *)

val synthetic_mapping :
  event_types:int -> fanout:int -> components:int -> Types.t
(** Mapping where event type [i] maps to [fanout] components chosen
    round-robin among [components] component ids ["c1" .. "cM"]. *)

val sweep :
  event_types:int ->
  fanout:int ->
  components:int ->
  reuse:int list ->
  (int * counts) list
(** For each reuse level r (occurrences per event type), the counts for
    the synthetic system — the COMPLX experiment series. *)
