(** XML reading and writing for mappings:
    {v
    <mapping id ontology architecture>
      <map eventType="...">
        <to component="..."/>*
        <rationale>...</rationale>?
      </map>*
    </mapping>
    v} *)

exception Malformed of string

val to_element : Types.t -> Xmlight.Doc.element

val to_string : Types.t -> string

val of_element : Xmlight.Doc.element -> Types.t
(** @raise Malformed on schema errors. *)

val of_string : string -> Types.t
(** @raise Malformed on XML or schema errors. *)
