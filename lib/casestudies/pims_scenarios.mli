(** The 22 PIMS use-case scenarios (authored after the use-case list of
    Jalote's book, which the paper uses as its requirements source:
    "In total the system's requirements comprise 22 use cases. Each use
    case contains a main scenario and some alternative scenarios.").

    The two scenarios the paper walks through are reproduced with the
    paper's exact event sequences: {!create_portfolio} ("Create
    portfolio") and {!get_share_prices} ("Get the current prices of
    shares"), each with its alternate branch encoded as an alternation
    schema. *)

val create_portfolio : Scenarioml.Scen.t

val get_share_prices : Scenarioml.Scen.t

val refresh_alerts : Scenarioml.Scen.t
(** An extra scenario (not one of the book's 22) exercising the
    iteration schema; used by tests and examples. *)

val all : Scenarioml.Scen.t list
(** All 22 scenarios, {!create_portfolio} and {!get_share_prices}
    included ({!refresh_alerts} is not). *)
