(** Behavioral descriptions (statecharts) for selected PIMS components,
    used by the behavioral walkthrough ({!Walkthrough.Dynamic}).

    The interesting protocol is the Loader's: prices can only be saved
    after they have been downloaded. A scenario that statically walks
    (all links exist) but saves before downloading is rejected
    behaviorally — the distinction the paper draws between structural
    walkthroughs and "simulating the behavior of the matched
    components" (§3.5). *)

val loader_chart : Statechart.Types.t
(** [idle --system-downloads--> loaded --system-saves--> idle]. *)

val master_controller_chart : Statechart.Types.t
(** Accepts every user-interface event at any time (self-loops). *)

val data_access_chart : Statechart.Types.t
(** Accepts every persistence event at any time (self-loops). *)

val charts : Statechart.Types.t list
(** All PIMS behavior charts. *)

val reordered_get_share_prices : Scenarioml.Scen.t
(** The "Get the current prices of shares" main scenario with the save
    moved before the download — statically consistent, behaviorally
    rejected. *)
