open Scenarioml

let typed sid n event_type args =
  Event.typed
    ~id:(Printf.sprintf "%s-e%s" sid n)
    ~event_type
    (List.map
       (fun (param, v) ->
         (* Parameters of organization/network classes reference
            individuals; everything else is literal text. *)
         match v with
         | `I ind -> Event.individual ~param ind
         | `L s -> Event.literal ~param s)
       args)

(* -------------------- paper scenarios (entity view) --------------- *)

let entity_availability =
  let s = "entity-availability" in
  Scen.scenario ~id:s ~name:"Entity Availability"
    ~description:
      "Operationalizes the availability requirement by showing how the system handles the \
       failure of a component (paper Fig. 6)."
    ~actors:[ "fire"; "police"; "the-network" ]
    [
      typed s "1" "shuts-down" [ ("entity", `I "police") ];
      typed s "2" "send-request"
        [ ("sender", `I "fire"); ("receiver", `I "police"); ("message", `L "a request") ];
      typed s "3" "send-failure-message" [ ("to", `I "fire") ];
      typed s "4" "receive-failure-message" [ ("entity", `I "fire") ];
    ]

let message_sequence =
  let s = "message-sequence" in
  Scen.scenario ~id:s ~name:"Message Sequence"
    ~description:
      "Verifies the reliability requirement: messages sent by a peer are received by other \
       peers in the same sequence they are sent (paper Fig. 8)."
    ~actors:[ "fire"; "police" ]
    [
      typed s "1" "send-request"
        [ ("sender", `I "fire"); ("receiver", `I "police"); ("message", `L "the first request") ];
      typed s "2" "send-request"
        [
          ("sender", `I "fire");
          ("receiver", `I "police");
          ("message", `L "a second request, 5 seconds later");
        ];
      typed s "3" "receive-message"
        [ ("receiver", `I "police"); ("message", `L "the first") ];
      typed s "4" "receive-message"
        [ ("receiver", `I "police"); ("message", `L "the second") ];
    ]

let situation_report =
  let s = "situation-report" in
  Scen.scenario ~id:s ~name:"Situation report reaches the operator"
    ~actors:[ "fire"; "the-network" ]
    [
      typed s "1" "report-situation"
        [ ("entity", `I "fire"); ("situation", `L "a building collapse") ];
      typed s "2" "aggregate-data" [ ("entity", `I "fire") ];
      typed s "3" "display-info"
        [ ("entity", `I "fire"); ("info", `L "the updated situation picture") ];
    ]

let coordinated_decision =
  let s = "coordinated-decision" in
  Scen.scenario ~id:s ~name:"Coordinated decision and deployment"
    ~actors:[ "fire"; "red-cross" ]
    [
      typed s "1" "receive-message"
        [ ("receiver", `I "fire"); ("message", `L "a shelter request from the Red Cross") ];
      typed s "2" "aggregate-data" [ ("entity", `I "fire") ];
      typed s "3" "make-decision"
        [ ("entity", `I "fire"); ("decision", `L "open the north shelter") ];
      typed s "4" "deploy-resources"
        [ ("entity", `I "fire"); ("resource", `L "two engine companies") ];
      typed s "5" "send-message"
        [
          ("sender", `I "fire");
          ("receiver", `I "red-cross");
          ("message", `L "the decision notification");
        ];
    ]

let operator_broadcast =
  let s = "operator-broadcast" in
  Scen.scenario ~id:s ~name:"Operator broadcast with retries"
    ~description:"Exercises iteration: the operator re-sends until acknowledged."
    ~actors:[ "fire"; "police" ]
    [
      Event.Iteration
        {
          id = s ^ "-i1";
          bound = Event.One_or_more;
          body =
            [
              typed s "1" "send-message"
                [
                  ("sender", `I "fire");
                  ("receiver", `I "police");
                  ("message", `L "the broadcast");
                ];
            ];
        };
      typed s "2" "receive-message"
        [ ("receiver", `I "police"); ("message", `L "the broadcast") ];
    ]

let resource_deployment =
  let s = "resource-deployment" in
  Scen.scenario ~id:s ~name:"Resource deployment after a decision"
    ~actors:[ "red-cross" ]
    [
      typed s "1" "make-decision"
        [ ("entity", `I "red-cross"); ("decision", `L "open two shelters") ];
      typed s "2" "deploy-resources"
        [ ("entity", `I "red-cross"); ("resource", `L "shelter teams") ];
      typed s "3" "display-info"
        [ ("entity", `I "red-cross"); ("info", `L "the deployment status") ];
    ]

let recover_from_failure =
  let s = "recover-from-failure" in
  Scen.scenario ~id:s ~name:"Recover after a failure notice"
    ~description:
      "After being alerted of a peer's unavailability, the operator re-sends once the        peer returns."
    ~actors:[ "fire"; "police"; "the-network" ]
    [
      typed s "1" "send-request"
        [ ("sender", `I "fire"); ("receiver", `I "police"); ("message", `L "a request") ];
      typed s "2" "receive-failure-message" [ ("entity", `I "fire") ];
      typed s "3" "display-info"
        [ ("entity", `I "fire"); ("info", `L "the unavailability alert") ];
      Event.Optional
        {
          id = s ^ "-o4";
          body =
            [
              typed s "4" "send-request"
                [
                  ("sender", `I "fire");
                  ("receiver", `I "police");
                  ("message", `L "the request, again");
                ];
            ];
        };
    ]

let entity_level =
  [
    entity_availability;
    message_sequence;
    situation_report;
    coordinated_decision;
    operator_broadcast;
    resource_deployment;
    recover_from_failure;
  ]

(* -------------------- network-level scenarios --------------------- *)

let interorg_cooperation =
  let s = "interorg-cooperation" in
  Scen.scenario ~id:s ~name:"Inter-organization cooperation"
    ~actors:[ "fire"; "police" ]
    [
      typed s "1" "report-situation"
        [ ("entity", `I "fire"); ("situation", `L "a chemical spill") ];
      typed s "2" "aggregate-data" [ ("entity", `I "fire") ];
      typed s "3" "send-request"
        [ ("sender", `I "fire"); ("receiver", `I "police"); ("message", `L "road closure") ];
      typed s "4" "receive-message"
        [ ("receiver", `I "police"); ("message", `L "road closure") ];
      typed s "5" "send-notification"
        [ ("sender", `I "police"); ("receiver", `I "fire"); ("message", `L "roads closed") ];
    ]

let availability_network =
  let s = "availability-network" in
  Scen.scenario ~id:s ~name:"Entity Availability (network view)"
    ~actors:[ "fire"; "police"; "the-network" ]
    [
      typed s "1" "shuts-down" [ ("entity", `I "police") ];
      typed s "2" "send-request"
        [ ("sender", `I "fire"); ("receiver", `I "police"); ("message", `L "a request") ];
      typed s "3" "send-failure-message" [ ("to", `I "fire") ];
      typed s "4" "receive-failure-message" [ ("entity", `I "fire") ];
    ]

let unauthenticated_access =
  let s = "unauthenticated-access" in
  Scen.scenario ~id:s ~name:"Unauthenticated entity reaches a peer" ~kind:Scen.Negative
    ~description:
      "Negative scenario (paper §3.5): a user with inadequate authentication information \
       accessing the system. Successful execution implies the system is not secure."
    ~actors:[ "intruder"; "police" ]
    [ typed s "1" "rogue-send" [ ("receiver", `I "police") ] ]

let network_level = [ interorg_cooperation; availability_network; unauthenticated_access ]
