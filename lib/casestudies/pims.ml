(* ------------------------------------------------------------------ *)
(* Ontology                                                           *)
(* ------------------------------------------------------------------ *)

let ontology =
  let open Ontology.Build in
  create ~id:"pims-ontology" ~name:"PIMS domain ontology"
  (* actors *)
  |> add_class ~id:"actor" ~name:"Actor" ~description:"A participant in PIMS scenarios"
  |> add_class ~id:"user" ~name:"User" ~super:"actor"
       ~description:"The investor using PIMS"
  |> add_class ~id:"system" ~name:"System" ~super:"actor"
       ~description:"The PIMS application itself"
  (* domain classes *)
  |> add_class ~id:"named-item" ~name:"Named item"
       ~description:"Anything a scenario event can refer to by name"
  |> add_class ~id:"portfolio" ~name:"Portfolio" ~super:"named-item"
       ~description:"A named collection of investments"
  |> add_class ~id:"investment" ~name:"Investment" ~super:"named-item"
       ~description:"Money placed in an institution or security"
  |> add_class ~id:"transaction" ~name:"Transaction" ~super:"named-item"
       ~description:"A buy/sell/deposit/withdraw record"
  |> add_class ~id:"share" ~name:"Share" ~super:"named-item"
       ~description:"A stock-market security"
  |> add_class ~id:"share-price" ~name:"Share price" ~super:"named-item"
       ~description:"The current market price of a share"
  |> add_class ~id:"alert" ~name:"Alert" ~super:"named-item"
       ~description:"A price-threshold notification set by the user"
  |> add_class ~id:"net-worth" ~name:"Net worth" ~super:"named-item"
  |> add_class ~id:"rate-of-return" ~name:"Rate of return" ~super:"named-item"
  |> add_class ~id:"password" ~name:"Password" ~super:"named-item"
  |> add_class ~id:"repository-data" ~name:"Repository data" ~super:"named-item"
       ~description:"The persistent state of PIMS"
  |> add_class ~id:"website" ~name:"Web site" ~super:"named-item"
       ~description:"A remote source of share prices"
  (* individuals *)
  |> add_individual ~id:"the-user" ~name:"the user" ~cls:"user"
  |> add_individual ~id:"the-system" ~name:"the system" ~cls:"system"
  |> add_individual ~id:"price-website" ~name:"the share price web site" ~cls:"website"
  (* event types: user actions *)
  |> add_event_type ~id:"user-action" ~name:"user action" ~actor:"user"
       ~template:"The user performs an action"
  |> add_event_type ~id:"user-initiates" ~name:"user initiates" ~super:"user-action"
       ~params:[ ("function", "named-item") ]
       ~template:"The user initiates the \"{function}\" functionality"
  |> add_event_type ~id:"user-enters" ~name:"user enters" ~super:"user-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The user enters {item}"
  |> add_event_type ~id:"user-selects" ~name:"user selects" ~super:"user-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The user selects {item}"
  |> add_event_type ~id:"user-confirms" ~name:"user confirms" ~super:"user-action"
       ~params:[ ("action", "named-item") ]
       ~template:"The user confirms {action}"
  (* event types: system actions *)
  |> add_event_type ~id:"system-action" ~name:"system action" ~actor:"system"
       ~template:"The system performs an action"
  |> add_event_type ~id:"system-prompts" ~name:"system prompts" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system asks the user for {item}"
  |> add_event_type ~id:"system-creates" ~name:"system creates" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system creates {item}"
  |> add_event_type ~id:"system-updates" ~name:"system updates" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system updates {item}"
  |> add_event_type ~id:"system-deletes" ~name:"system deletes" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system deletes {item}"
  |> add_event_type ~id:"system-displays" ~name:"system displays" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system displays {item}"
  |> add_event_type ~id:"system-saves" ~name:"system saves" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system saves {item}"
  |> add_event_type ~id:"system-retrieves" ~name:"system retrieves saved"
       ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system gets {item} saved from before"
  |> add_event_type ~id:"system-downloads" ~name:"system downloads" ~super:"system-action"
       ~params:[ ("item", "named-item"); ("source", "website") ]
       ~template:"The system downloads {item} from {source}"
  |> add_event_type ~id:"system-records" ~name:"system records" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system records {item}"
  |> add_event_type ~id:"system-computes" ~name:"system computes" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system computes {item}"
  |> add_event_type ~id:"system-validates" ~name:"system validates" ~super:"system-action"
       ~params:[ ("item", "named-item") ]
       ~template:"The system validates {item}"
  |> add_event_type ~id:"system-alerts" ~name:"system alerts" ~super:"system-action"
       ~params:[ ("message", "named-item") ]
       ~template:"The system alerts the user: {message}"
  |> add_event_type ~id:"system-authenticates" ~name:"system authenticates"
       ~super:"system-action"
       ~template:"The system authenticates the user"
  (* glossary *)
  |> add_term ~id:"pims" ~name:"PIMS"
       ~definition:"Personal Investment Management System (Jalote's textbook case study)"
  |> add_term ~id:"current-value" ~name:"current value"
       ~definition:"Value of an investment at today's downloaded prices"

(* ------------------------------------------------------------------ *)
(* Architecture (Fig. 3): Layered style                               *)
(* ------------------------------------------------------------------ *)

let architecture =
  let open Adl.Build in
  let biconnect = Adl.Build.biconnect in
  let business id name responsibilities =
    add_component ~id ~name ~responsibilities ~tags:[ ("layer", "3") ]
  in
  create ~style:"layered" ~id:"pims-arch" ~name:"PIMS layered architecture" ()
  |> add_component ~id:"master-controller" ~name:"Master Controller"
       ~description:"Presentation layer"
       ~responsibilities:
         [
           "interact with the user";
           "collect user input and display results";
           "invoke modules of the business logic layer";
         ]
       ~tags:[ ("layer", "4") ]
  |> business "authentication" "Authentication"
       [ "authenticate the user"; "manage passwords" ]
  |> business "portfolio-manager" "Portfolio Manager"
       [ "create, rename and delete portfolios"; "manage investments in a portfolio" ]
  |> business "transaction-manager" "Transaction Manager"
       [ "record, edit and delete transactions" ]
  |> business "networth-calculator" "Net Worth Calculator"
       [ "compute net worth and rates of return" ]
  |> business "alert-manager" "Alert Manager"
       [ "manage price alerts"; "raise alerts when thresholds are crossed" ]
  |> business "loader" "Loader"
       [ "download current share prices from the Internet"; "hand downloaded data over for saving" ]
  |> add_component ~id:"data-access" ~name:"Data Access"
       ~description:"Data access layer separating business logic and repository"
       ~responsibilities:[ "perform all data retrieval and modification" ]
       ~tags:[ ("layer", "2") ]
  |> add_component ~id:"data-repository" ~name:"Data Repository"
       ~description:"Persistent storage"
       ~responsibilities:[ "store portfolios, transactions, prices and alerts" ]
       ~tags:[ ("layer", "1") ]
  |> add_component ~id:"remote-price-db" ~name:"Remote Share Price Database"
       ~description:"External web site serving current share prices"
       ~responsibilities:[ "serve current share prices over the Internet" ]
       ~tags:[ ("external", "true") ]
  |> add_connector ~id:"ui-bus" ~name:"UI procedure-call connector"
       ~description:"Master Controller to business logic invocations"
  |> add_connector ~id:"internet" ~name:"Internet connector"
       ~description:"HTTP access to the remote share price web site"
  (* presentation <-> business, via the UI bus *)
  |> fun t ->
  List.fold_left
    (fun t comp -> biconnect t comp "ui-bus")
    (biconnect t "master-controller" "ui-bus")
    [
      "authentication";
      "portfolio-manager";
      "transaction-manager";
      "networth-calculator";
      "alert-manager";
      "loader";
    ]
  (* business -> data access (direct links, as in the book's module uses) *)
  |> fun t ->
  List.fold_left
    (fun t comp -> biconnect t comp "data-access")
    t
    [
      "authentication";
      "portfolio-manager";
      "transaction-manager";
      "networth-calculator";
      "alert-manager";
      "loader";
    ]
  |> fun t ->
  biconnect t "data-access" "data-repository"
  |> fun t ->
  biconnect t "loader" "internet" |> fun t -> biconnect t "internet" "remote-price-db"

let broken_architecture =
  (* Fig. 4: "we artificially introduced an error in the PIMS
     architecture by excising the link between the Data Access and
     Loader components". *)
  Adl.Diff.excise_link_between architecture "loader" "data-access"

(* ------------------------------------------------------------------ *)
(* Mapping (Table 1)                                                  *)
(* ------------------------------------------------------------------ *)

let mapping =
  let open Mapping.Build in
  create ~id:"pims-mapping" ~ontology ~architecture
  |> map ~event_type:"user-initiates" ~to_:[ "master-controller" ]
       ~rationale:"all user interaction happens at the presentation layer"
  |> map ~event_type:"user-enters" ~to_:[ "master-controller" ]
       ~rationale:"the Master Controller manages the user interface"
  |> map ~event_type:"user-selects" ~to_:[ "master-controller" ]
  |> map ~event_type:"user-confirms" ~to_:[ "master-controller" ]
  |> map ~event_type:"system-prompts" ~to_:[ "master-controller" ]
  |> map ~event_type:"system-displays" ~to_:[ "master-controller" ]
  |> map ~event_type:"system-authenticates" ~to_:[ "authentication" ]
       ~rationale:"the Authentication component is responsible for the authentication task"
  |> map ~event_type:"system-validates" ~to_:[ "authentication" ]
  |> map ~event_type:"system-creates"
       ~to_:[ "portfolio-manager"; "data-access"; "data-repository" ]
       ~rationale:"creation is business logic persisted through the data access layer"
  |> map ~event_type:"system-updates"
       ~to_:[ "portfolio-manager"; "data-access"; "data-repository" ]
  |> map ~event_type:"system-deletes"
       ~to_:[ "portfolio-manager"; "data-access"; "data-repository" ]
  |> map ~event_type:"system-saves" ~to_:[ "loader"; "data-access"; "data-repository" ]
       ~rationale:
         "downloaded data flows from the Loader through Data Access to the Data Repository"
  |> map ~event_type:"system-records"
       ~to_:[ "transaction-manager"; "data-access"; "data-repository" ]
       ~rationale:"transactions are business records persisted through the data access layer"
  |> map ~event_type:"system-retrieves" ~to_:[ "data-access"; "data-repository" ]
  |> map ~event_type:"system-downloads" ~to_:[ "loader"; "remote-price-db" ]
       ~rationale:"the Loader fetches prices from the remote share price database"
  |> map ~event_type:"system-computes" ~to_:[ "networth-calculator" ]
  |> map ~event_type:"system-alerts" ~to_:[ "alert-manager"; "master-controller" ]
  (* abstract supertypes are realized by their subtypes' components;
     mapping them keeps the event-type hierarchy fully covered *)
  |> map ~event_type:"user-action" ~to_:[ "master-controller" ]
  |> map ~event_type:"system-action" ~to_:[ "master-controller" ]
       ~rationale:"a generic system response surfaces at the user interface"

let scenario_set =
  Scenarioml.Scen.make_set ~id:"pims-scenarios" ~name:"PIMS use-case scenarios" ontology
    Pims_scenarios.all

let create_portfolio = Scenarioml.Scen.find_exn scenario_set "create-portfolio"

let get_share_prices = Scenarioml.Scen.find_exn scenario_set "get-share-prices"

let event_type_label id =
  match Ontology.Types.find_event_type ontology id with
  | Some e -> e.Ontology.Types.event_name
  | None -> id

let component_label id =
  match Adl.Structure.find_component architecture id with
  | Some c -> c.Adl.Structure.comp_name
  | None -> id
