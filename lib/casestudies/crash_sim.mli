(** Dynamic evaluation of the CRASH dependability scenarios (paper
    §4.2): "these two quality attributes can be determined effectively
    only at run-time ... we demonstrate the concept by describing what
    could have happened when the execution of the scenarios on the
    architecture is simulated" — here the simulation is real.

    Both experiments run the Fire and Police C&C peers (with their
    statechart behaviors) on the simulated network. *)

type availability_run = {
  detector : bool;
  verdict : Dsim.Checks.availability_verdict;
  fire_alerted : bool;  (** the Fire peer's chart reached its alerted state *)
  events : Dsim.Network.event list;
}

val run_availability : detector:bool -> availability_run
(** The paper's "Entity Availability" scenario: Police shuts down its
    C&C, Fire sends it a request. With a failure detector the network
    reports the failure back and the Fire operator is alerted; without
    one the failure goes unnoticed. *)

type ordering_run = {
  fifo : bool;
  verdict : Dsim.Checks.ordering_verdict;
  events : Dsim.Network.event list;
}

val run_ordering :
  ?messages:int -> ?gap:float -> ?jitter:float -> fifo:bool -> unit -> ordering_run
(** The paper's "Message Sequence" scenario, generalized to [messages]
    requests (default 8) sent [gap] seconds apart (default 0.5) over a
    channel with latency jitter (default 5.0). With FIFO channels the
    sequence is preserved; without, jitter reorders deliveries. *)

val run_all_peers_broadcast : ?orgs:int -> unit -> Dsim.Checks.delivery_stats
(** Every organization's C&C broadcasts a request to every other; used
    by benchmarks and robustness tests. *)

type fault_point = {
  downtime_fraction : float;  (** fraction of each period Police is down *)
  stats : Dsim.Checks.delivery_stats;
  failure_notices : int;
}

val run_fault_sweep :
  ?duration:float ->
  ?message_interval:float ->
  ?period:float ->
  downtime_fractions:float list ->
  unit ->
  fault_point list
(** Availability under intermittent failures: Fire sends a request every
    [message_interval] over [duration] while Police crash-restarts every
    [period], staying down for [fraction * period]. Delivery ratio falls
    and failure notices rise with the downtime fraction. *)

type coordination_run = {
  acknowledged : int;  (** peers whose ack reached the Fire Department *)
  peers : int;  (** peers other than Fire *)
  stats : Dsim.Checks.delivery_stats;
}

val run_coordination : ?down:string list -> unit -> coordination_run
(** Crisis coordination across all seven organizations: the Fire
    Department broadcasts a situation notification to every other C&C;
    each acknowledges. With [down] peers shut down beforehand, their
    acknowledgements are missing and failure notices come back
    instead. *)

val run_partition :
  ?heal_at:float -> ?duration:float -> unit -> Dsim.Checks.delivery_stats
(** Fire and Police are partitioned from time 0 until [heal_at] (default
    10) while Fire keeps sending every second until [duration] (default
    20): messages in the window are lost silently, later ones flow. *)
