(** CRASH dependability scenarios.

    The two scenarios the paper walks through are reproduced with the
    paper's exact event sequences: "Entity Availability" (Fig. 6) and
    "Message Sequence" (part of Fig. 8); further scenarios exercise
    reporting, decision making, deployment, and the negative
    unauthenticated-access case. *)

val entity_level : Scenarioml.Scen.t list
(** Evaluated against the entity-internal architecture. *)

val network_level : Scenarioml.Scen.t list
(** Evaluated against the high-level multi-peer architecture. *)
