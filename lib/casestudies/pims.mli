(** The PIMS case study (paper §4.1).

    PIMS — the Personal Investment Management System from Jalote's
    textbook — "is used by customers to keep track of their invested
    money in institutions such as banks and in the stock market". Its
    requirements comprise 22 use cases (authored here after the book's
    published use-case list, see {!Pims_scenarios}); its architecture is
    layered: presentation ("Master Controller"), business logic, data
    access, and data repository, plus the remote share-price web site. *)

val ontology : Ontology.Types.t
(** Actors, domain classes, individuals, and the generalized event
    types ("user enters {item}", "system downloads {item}", ...) used by
    all 22 use cases. *)

val architecture : Adl.Structure.t
(** The intact layered architecture of the paper's Fig. 3. *)

val broken_architecture : Adl.Structure.t
(** Fig. 4's faulty variant: the link between the "Loader" and "Data
    Access" components excised. *)

val mapping : Mapping.Types.t
(** The event-type-to-component mapping (Table 1). *)

val scenario_set : Scenarioml.Scen.set
(** All 22 use-case scenarios over {!ontology}. *)

val create_portfolio : Scenarioml.Scen.t
(** The paper's first focal scenario. *)

val get_share_prices : Scenarioml.Scen.t
(** The paper's second focal scenario ("Get the current prices of
    shares"). *)

val event_type_label : string -> string
(** Human name of an event type (for the Table 1 rendering). *)

val component_label : string -> string
(** Human name of a component (for the Table 1 rendering). *)
