(** Behavioral descriptions of the CRASH entity-internal components
    (Fig. 7), used to execute messages *on the architecture itself*
    ({!Dsim.Arch_sim}): an outgoing message composed at the User
    Interface traverses Sharing Info Manager and Communication Manager
    to the network — the three components Fig. 8 maps [sendMessage] to —
    and an incoming one climbs the same path in reverse. *)

val ui_chart : Statechart.Types.t
(** [compose] → emits [sendMessage]; [notifyUp] → reaches [informed]. *)

val sharing_chart : Statechart.Types.t
(** Relays [sendMessage] downward and [notifyUp] upward. *)

val communication_chart : Statechart.Types.t
(** [sendMessage] → emits [netSend]; [netReceive] → emits [notifyUp]. *)

val charts : Statechart.Types.t list

type message_path_run = {
  outgoing_reached_network : bool;
  outgoing_path : string list;  (** components that fired, in order *)
  incoming_informed_ui : bool;
  incoming_path : string list;
}

val run_message_paths : unit -> message_path_run
(** Execute both directions on {!Crash.entity_architecture}. *)

val run_message_paths_on : Adl.Structure.t -> message_path_run
(** Same, on a (possibly broken) variant of the entity architecture. *)
