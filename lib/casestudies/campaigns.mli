(** Ready-made dependability campaigns over the two case studies — the
    presets behind [sosae simulate] and the [sim] benchmark.

    Both campaigns are forward-delivery scenarios: completion means the
    focal message reached its destination through the simulated
    architecture, which is exactly the availability question of paper
    §4.2 ("what could have happened when the execution of the scenarios
    on the architecture is simulated"), asked [trials] times under a
    sampled fault plan instead of once. *)

val crash_availability : ?orgs:int -> ?loss:float -> unit -> Dsim.Campaign.t
(** The CRASH §4.2 "Entity Availability" scenario as a campaign: the
    Fire Department C&C initiates a request at t=1 over the [orgs]-peer
    high-level architecture (default 2) while the Police C&C
    crash-restarts at a jittered time in [0, 2] for a sampled downtime
    in [0, 4]; completion = the request is delivered to ["police-cc"].
    [loss] adds uniform message loss; latency jitter is 0.25. The
    completion rate estimates the availability of the Police entity as
    seen by a requester. *)

val pims_price_feed : ?loss:float -> unit -> Dsim.Campaign.t
(** A PIMS-derived campaign over the "Get share prices" flow (paper
    §4.1): the Master Controller triggers a price download, which the
    Loader forwards through the internet connector while the remote
    share-price site crash-restarts (start in [0, 3], downtime in
    [1, 5]); completion = ["fetch-prices"] reaches ["remote-price-db"].
    [loss] models a lossy internet link. *)

val price_feed_charts : Statechart.Types.t list
(** The relay behaviors the PIMS campaign adds (the shipped
    {!Pims_behavior} charts describe internal reactions only and emit
    no outputs). *)
