let organizations =
  [
    ("police", "Police Department");
    ("fire", "Fire Department");
    ("search-rescue", "Search and Rescue");
    ("red-cross", "Red Cross");
    ("hospital", "St. Elsewhere Hospital");
    ("charity", "Charitable Organization");
    ("public-works", "Department of Public Works");
  ]

(* ------------------------------------------------------------------ *)
(* Ontology                                                           *)
(* ------------------------------------------------------------------ *)

let ontology =
  let open Ontology.Build in
  let base =
    create ~id:"crash-ontology" ~name:"CRASH domain ontology"
    |> add_class ~id:"actor" ~name:"Actor"
    |> add_class ~id:"user" ~name:"User" ~super:"actor"
    |> add_class ~id:"system" ~name:"System" ~super:"actor"
    |> add_class ~id:"entity" ~name:"Entity" ~super:"actor"
         ~description:"A decision-making organization's system"
    |> add_class ~id:"network" ~name:"Network" ~super:"actor"
         ~description:"The (ad hoc) network interconnecting the entities"
    |> add_class ~id:"organization" ~name:"Organization" ~super:"entity"
    |> add_class ~id:"message" ~name:"Message"
    |> add_class ~id:"request" ~name:"Request" ~super:"message"
    |> add_class ~id:"notification" ~name:"Notification" ~super:"message"
    |> add_class ~id:"situation" ~name:"Situation"
         ~description:"An emerging crisis situation"
    |> add_class ~id:"resource" ~name:"Resource"
         ~description:"Deployable personnel or equipment"
    |> add_class ~id:"information" ~name:"Information"
  in
  let with_orgs =
    List.fold_left
      (fun o (id, name) -> add_individual ~id ~name ~cls:"organization" o)
      base organizations
  in
  with_orgs
  |> add_individual ~id:"the-network" ~name:"the Network" ~cls:"network"
  |> add_individual ~id:"intruder" ~name:"a malicious entity" ~cls:"entity"
  (* event types *)
  |> add_event_type ~id:"communicates" ~name:"communicates" ~actor:"entity"
       ~params:[ ("sender", "organization"); ("receiver", "organization") ]
       ~template:"{sender} communicates with {receiver}"
  |> add_event_type ~id:"send-message" ~name:"sendMessage" ~super:"communicates"
       ~params:[ ("message", "message") ]
       ~template:"{sender}'s Command and Control sends a {message} message to {receiver}'s Command and Control"
  |> add_event_type ~id:"send-request" ~name:"sendRequest" ~super:"send-message"
       ~template:"{sender}'s Command and Control sends a request message ({message}) to {receiver}'s Command and Control"
  |> add_event_type ~id:"send-notification" ~name:"sendNotification" ~super:"send-message"
       ~template:"{sender}'s Command and Control sends a notification ({message}) to {receiver}'s Command and Control"
  |> add_event_type ~id:"receive-message" ~name:"receiveMessage" ~actor:"entity"
       ~params:[ ("receiver", "organization"); ("message", "message") ]
       ~template:"{receiver}'s Command and Control receives the {message} message"
  |> add_event_type ~id:"shuts-down" ~name:"shutsDown" ~actor:"entity"
       ~params:[ ("entity", "organization") ]
       ~template:"{entity} shuts down its Command and Control entity"
  |> add_event_type ~id:"send-failure-message" ~name:"sendFailureMessage" ~actor:"network"
       ~params:[ ("to", "organization") ]
       ~template:"The Network sends a failure message to {to}"
  |> add_event_type ~id:"receive-failure-message" ~name:"receiveFailureMessage"
       ~actor:"entity"
       ~params:[ ("entity", "organization") ]
       ~template:"{entity} receives the failure message"
  |> add_event_type ~id:"report-situation" ~name:"reportSituation" ~actor:"user"
       ~params:[ ("entity", "organization"); ("situation", "situation") ]
       ~template:"An information source of {entity} relays a public report of {situation}"
  |> add_event_type ~id:"aggregate-data" ~name:"aggregateData" ~actor:"entity"
       ~params:[ ("entity", "organization") ]
       ~template:"{entity}'s Command and Control aggregates the received data"
  |> add_event_type ~id:"display-info" ~name:"displayInfo" ~actor:"entity"
       ~params:[ ("entity", "organization"); ("info", "information") ]
       ~template:"{entity}'s Display visualizes {info}"
  |> add_event_type ~id:"make-decision" ~name:"makeDecision" ~actor:"entity"
       ~params:[ ("entity", "organization"); ("decision", "information") ]
       ~template:"{entity}'s Command and Control decides: {decision}"
  |> add_event_type ~id:"deploy-resources" ~name:"deployResources" ~actor:"entity"
       ~params:[ ("entity", "organization"); ("resource", "resource") ]
       ~template:"{entity} conveys instructions to deploy {resource}"
  |> add_event_type ~id:"rogue-send" ~name:"rogueSend" ~actor:"entity"
       ~params:[ ("receiver", "organization") ]
       ~template:"A malicious entity without authentication sends a message to {receiver}"
  |> add_term ~id:"c2-style" ~name:"C2 style"
       ~definition:
         "Layered event-based style: requests travel up the architecture, notifications move down"
  |> add_term ~id:"dependability" ~name:"dependability"
       ~definition:"Availability, reliability and security of the CRASH system"

(* ------------------------------------------------------------------ *)
(* Entity architecture (Fig. 7): C2 style                             *)
(* ------------------------------------------------------------------ *)

(* C2 wiring: the upper element's "bottom" interface joins the lower
   element's "top" interface; both are In_out (requests up,
   notifications down). *)
let c2_join t upper lower =
  let open Adl.Build in
  let iface side other =
    interface
      ~tags:[ ("side", side) ]
      ~direction:Adl.Structure.In_out
      (Printf.sprintf "%s_%s" (if side = "bottom" then "bot" else "top") other)
  in
  let ensure t elt i =
    let has =
      List.exists
        (fun x -> String.equal x.Adl.Structure.iface_id i.Adl.Structure.iface_id)
        (Adl.Structure.element_interfaces t elt)
    in
    if has then t
    else
      match Adl.Structure.find_component t elt with
      | Some c ->
          let c =
            { c with Adl.Structure.comp_interfaces = c.Adl.Structure.comp_interfaces @ [ i ] }
          in
          {
            t with
            Adl.Structure.components =
              List.map
                (fun x -> if String.equal x.Adl.Structure.comp_id elt then c else x)
                t.Adl.Structure.components;
          }
      | None -> (
          match Adl.Structure.find_connector t elt with
          | Some c ->
              let c =
                { c with Adl.Structure.conn_interfaces = c.Adl.Structure.conn_interfaces @ [ i ] }
              in
              {
                t with
                Adl.Structure.connectors =
                  List.map
                    (fun x -> if String.equal x.Adl.Structure.conn_id elt then c else x)
                    t.Adl.Structure.connectors;
              }
          | None -> raise (Adl.Build.Unknown elt))
  in
  let t = ensure t upper (iface "bottom" lower) in
  let t = ensure t lower (iface "top" upper) in
  add_link ~from_:(upper, "bot_" ^ lower) ~to_:(lower, "top_" ^ upper) t

let entity_architecture =
  let open Adl.Build in
  create ~style:"c2" ~id:"crash-entity-arch" ~name:"CRASH entity Command and Control (C2)" ()
  |> add_component ~id:"user-interface" ~name:"User Interface"
       ~responsibilities:
         [ "present situation and deployment information to the operator"; "accept commands" ]
       ~tags:[ ("layer", "3") ]
  |> add_component ~id:"situation-assessment" ~name:"Situation Assessment"
       ~responsibilities:[ "assess reported situations" ]
       ~tags:[ ("layer", "2") ]
  |> add_component ~id:"resource-manager" ~name:"Resource Manager"
       ~responsibilities:[ "track and deploy the organization's resources" ]
       ~tags:[ ("layer", "2") ]
  |> add_component ~id:"sharing-info-manager" ~name:"Sharing Info Manager"
       ~responsibilities:[ "manage information shared with other organizations" ]
       ~tags:[ ("layer", "2") ]
  |> add_component ~id:"decision-support" ~name:"Decision Support"
       ~responsibilities:[ "aggregate data from information sources and other organizations"; "support decision making" ]
       ~tags:[ ("layer", "1") ]
  |> add_component ~id:"communication-manager" ~name:"Communication Manager"
       ~responsibilities:
         [ "exchange messages with other entities over the network"; "relay failure notices" ]
       ~tags:[ ("layer", "1") ]
  |> add_component ~id:"network" ~name:"Network"
       ~description:"The ad hoc network, as seen from this entity"
       ~responsibilities:[ "transport messages between entities"; "detect unreachable entities" ]
       ~tags:[ ("external", "true") ]
  |> add_connector ~id:"bus-top" ~name:"C2 bus (top)"
  |> add_connector ~id:"bus-bottom" ~name:"C2 bus (bottom)"
  |> add_connector ~id:"network-link" ~name:"Network link"
  |> fun t ->
  c2_join t "user-interface" "bus-top" |> fun t ->
  c2_join t "bus-top" "situation-assessment" |> fun t ->
  c2_join t "bus-top" "resource-manager" |> fun t ->
  c2_join t "bus-top" "sharing-info-manager" |> fun t ->
  c2_join t "situation-assessment" "bus-bottom" |> fun t ->
  c2_join t "resource-manager" "bus-bottom" |> fun t ->
  c2_join t "sharing-info-manager" "bus-bottom" |> fun t ->
  c2_join t "bus-bottom" "decision-support" |> fun t ->
  c2_join t "bus-bottom" "communication-manager" |> fun t ->
  c2_join t "communication-manager" "network-link" |> fun t ->
  c2_join t "network-link" "network"

(* ------------------------------------------------------------------ *)
(* High-level architecture (Fig. 5)                                   *)
(* ------------------------------------------------------------------ *)

let high_level_architecture ?(orgs = List.length organizations) () =
  let open Adl.Build in
  let orgs = max 2 (min orgs (List.length organizations)) in
  let chosen = List.filteri (fun i _ -> i < orgs) organizations in
  let base =
    create ~id:"crash-arch" ~name:"CRASH high-level architecture" ()
    |> add_connector ~id:"emergency-network" ~name:"Emergency ad hoc network"
         ~description:"Interconnects the Command and Control centers of all organizations"
  in
  List.fold_left
    (fun t (org, name) ->
      let cc = org ^ "-cc" in
      let display = org ^ "-display" in
      let infosrc = org ^ "-infosrc" in
      let adhoc = org ^ "-adhoc" in
      t
      |> add_component ~id:cc ~name:(name ^ " Command and Control")
           ~responsibilities:
             [
               "aggregate data from information sources and other organizations";
               "make decisions on behalf of the entity";
               "convey information and instructions to affiliated resources";
             ]
           ~substructure:entity_architecture
      |> add_component ~id:display ~name:(name ^ " Display")
           ~responsibilities:[ "visualize the information currently known to the organization" ]
      |> add_component ~id:infosrc ~name:(name ^ " Information Gathering Sources")
           ~responsibilities:[ "provide feedback and information to Command and Control" ]
      |> add_connector ~id:adhoc ~name:(name ^ " internal ad hoc network")
      |> fun t ->
      biconnect t display adhoc |> fun t ->
      biconnect t infosrc adhoc |> fun t ->
      biconnect t cc adhoc |> fun t -> biconnect t cc "emergency-network")
    base chosen

let vulnerable_architecture =
  let open Adl.Build in
  high_level_architecture ~orgs:2 ()
  |> add_component ~id:"intruder-entity" ~name:"Intruder"
       ~description:"An unauthenticated entity that managed to join the network"
       ~responsibilities:[ "inject malicious messages" ]
  |> fun t -> biconnect t "intruder-entity" "emergency-network"

(* ------------------------------------------------------------------ *)
(* Mappings                                                           *)
(* ------------------------------------------------------------------ *)

let entity_mapping =
  let open Mapping.Build in
  create ~id:"crash-entity-mapping" ~ontology ~architecture:entity_architecture
  |> map ~event_type:"send-message"
       ~to_:[ "user-interface"; "sharing-info-manager"; "communication-manager" ]
       ~rationale:
         "an outgoing message is composed at the UI, recorded by the Sharing Info Manager, \
          and emitted by the Communication Manager (paper Fig. 8)"
  |> map ~event_type:"receive-message"
       ~to_:[ "communication-manager"; "sharing-info-manager"; "user-interface" ]
       ~rationale:"incoming messages flow up the C2 architecture as notifications"
  |> map ~event_type:"shuts-down" ~to_:[ "user-interface" ]
       ~rationale:"the operator shuts the entity down at the user interface"
  |> map ~event_type:"send-failure-message" ~to_:[ "network" ]
  |> map ~event_type:"receive-failure-message"
       ~to_:[ "communication-manager"; "sharing-info-manager"; "user-interface" ]
       ~rationale:"a failure notice is relayed up to alert the operator"
  |> map ~event_type:"report-situation" ~to_:[ "communication-manager"; "situation-assessment" ]
       ~rationale:"public reports arrive over the network and are assessed"
  |> map ~event_type:"aggregate-data" ~to_:[ "decision-support" ]
  |> map ~event_type:"display-info" ~to_:[ "user-interface" ]
  |> map ~event_type:"make-decision" ~to_:[ "decision-support"; "sharing-info-manager" ]
       ~rationale:"decisions are taken and shared with other organizations"
  |> map ~event_type:"deploy-resources" ~to_:[ "resource-manager"; "communication-manager" ]
       ~rationale:"deployment instructions go to affiliated resources via the network"
  |> map ~event_type:"communicates" ~to_:[ "communication-manager" ]

let network_placement_hook event =
  let org_component role =
    match event with
    | Scenarioml.Event.Typed { args; _ } ->
        List.find_map
          (fun a ->
            if String.equal a.Scenarioml.Event.arg_param role then
              match a.Scenarioml.Event.arg_value with
              | Scenarioml.Event.Individual org -> Some [ org ^ "-cc" ]
              | Scenarioml.Event.Literal _ | Scenarioml.Event.Fresh _ -> None
            else None)
          args
    | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
    | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
    | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
        None
  in
  match event with
  | Scenarioml.Event.Typed
      { event_type = "send-request" | "send-notification" | "send-message"; _ } ->
      org_component "sender"
  | Scenarioml.Event.Typed { event_type = "receive-message"; _ } ->
      org_component "receiver"
  | Scenarioml.Event.Typed { event_type = "shuts-down" | "receive-failure-message"; _ } ->
      org_component "entity"
  | Scenarioml.Event.Typed _ | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
  | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
  | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
      None

let network_mapping =
  let open Mapping.Build in
  create ~id:"crash-network-mapping" ~ontology ~architecture:(high_level_architecture ~orgs:2 ())
  |> map ~event_type:"send-request" ~to_:[ "fire-cc" ]
       ~rationale:"the paper's scenarios have the Fire Department initiate"
  |> map ~event_type:"send-notification" ~to_:[ "police-cc" ]
  |> map ~event_type:"receive-message" ~to_:[ "police-cc" ]
  |> map ~event_type:"shuts-down" ~to_:[ "police-cc" ]
  |> map ~event_type:"send-failure-message" ~to_:[ "fire-cc" ]
       ~rationale:"the failure notice surfaces at the requesting entity"
  |> map ~event_type:"receive-failure-message" ~to_:[ "fire-cc" ]
  |> map ~event_type:"report-situation" ~to_:[ "fire-infosrc"; "fire-cc" ]
  |> map ~event_type:"aggregate-data" ~to_:[ "fire-cc" ]
  |> map ~event_type:"display-info" ~to_:[ "fire-display" ]
  |> map ~event_type:"make-decision" ~to_:[ "fire-cc" ]
  |> map ~event_type:"deploy-resources" ~to_:[ "fire-cc" ]
  |> map ~event_type:"rogue-send" ~to_:[ "intruder-entity"; "police-cc" ]
       ~rationale:
         "only realizable when an unauthenticated entity is attached to the network"

(* ------------------------------------------------------------------ *)
(* Scenario sets                                                      *)
(* ------------------------------------------------------------------ *)

let entity_scenario_set =
  Scenarioml.Scen.make_set ~id:"crash-entity-scenarios"
    ~name:"CRASH dependability scenarios (entity view)" ontology Crash_scenarios.entity_level

let network_scenario_set =
  Scenarioml.Scen.make_set ~id:"crash-network-scenarios"
    ~name:"CRASH cooperation scenarios (network view)" ontology Crash_scenarios.network_level

let entity_availability =
  Scenarioml.Scen.find_exn entity_scenario_set "entity-availability"

let message_sequence = Scenarioml.Scen.find_exn entity_scenario_set "message-sequence"

let unauthenticated_access =
  Scenarioml.Scen.find_exn network_scenario_set "unauthenticated-access"

(* ------------------------------------------------------------------ *)
(* Behavior (statecharts for the dynamic experiments)                 *)
(* ------------------------------------------------------------------ *)

let fire_chart =
  let open Statechart.Types in
  chart ~id:"fire-cc-behavior" ~component:"fire-cc" ~initial:"idle"
    [ state "idle"; state "awaiting"; state "alerted"; state "satisfied" ]
    [
      transition ~source:"idle" ~target:"awaiting" ~trigger:"initiate"
        ~outputs:[ "request" ] ();
      transition ~source:"awaiting" ~target:"awaiting" ~trigger:"initiate"
        ~outputs:[ "request" ] ();
      transition ~source:"awaiting" ~target:"alerted" ~trigger:"networkFailure" ();
      transition ~source:"awaiting" ~target:"satisfied" ~trigger:"notification" ();
    ]

let police_chart =
  let open Statechart.Types in
  chart ~id:"police-cc-behavior" ~component:"police-cc" ~initial:"ready"
    [ state "ready"; state "handling" ]
    [
      transition ~source:"ready" ~target:"handling" ~trigger:"request"
        ~outputs:[ "notification" ] ();
      transition ~source:"handling" ~target:"handling" ~trigger:"request"
        ~outputs:[ "notification" ] ();
    ]

let event_type_label id =
  match Ontology.Types.find_event_type ontology id with
  | Some e -> e.Ontology.Types.event_name
  | None -> id

let component_label id =
  match Adl.Structure.find_component entity_architecture id with
  | Some c -> c.Adl.Structure.comp_name
  | None -> (
      match Adl.Structure.find_component (high_level_architecture ~orgs:2 ()) id with
      | Some c -> c.Adl.Structure.comp_name
      | None -> id)
