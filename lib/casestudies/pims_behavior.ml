let loader_chart =
  let open Statechart.Types in
  chart ~id:"loader-behavior" ~component:"loader" ~initial:"idle"
    [ state "idle"; state "loaded" ]
    [
      transition ~source:"idle" ~target:"loaded" ~trigger:"system-downloads" ();
      transition ~source:"loaded" ~target:"loaded" ~trigger:"system-downloads" ();
      transition ~source:"loaded" ~target:"idle" ~trigger:"system-saves" ();
    ]

let master_controller_chart =
  let open Statechart.Types in
  let accepts =
    [
      "user-action";
      "user-initiates";
      "user-enters";
      "user-selects";
      "user-confirms";
      "system-action";
      "system-prompts";
      "system-displays";
      "system-alerts";
    ]
  in
  chart ~id:"master-controller-behavior" ~component:"master-controller" ~initial:"ready"
    [ state "ready" ]
    (List.map
       (fun trigger -> transition ~source:"ready" ~target:"ready" ~trigger ())
       accepts)

let data_access_chart =
  let open Statechart.Types in
  let accepts =
    [
      "system-creates";
      "system-updates";
      "system-deletes";
      "system-saves";
      "system-retrieves";
      "system-records";
    ]
  in
  chart ~id:"data-access-behavior" ~component:"data-access" ~initial:"ready"
    [ state "ready" ]
    (List.map
       (fun trigger -> transition ~source:"ready" ~target:"ready" ~trigger ())
       accepts)

let charts = [ loader_chart; master_controller_chart; data_access_chart ]

let reordered_get_share_prices =
  let open Scenarioml in
  let typed id event_type args =
    Event.typed ~id ~event_type (List.map (fun (p, value) -> Event.literal ~param:p value) args)
  in
  Scen.scenario ~id:"get-share-prices-reordered"
    ~name:"Get share prices (save before download)"
    ~description:
      "A defective ordering: statically every hop exists, but the Loader cannot save \
       prices it has not downloaded."
    ~actors:[ "the-user"; "the-system" ]
    [
      typed "r1" "user-initiates" [ ("function", "download current share prices") ];
      typed "r2" "system-saves" [ ("item", "the current share prices") ];
      Event.typed ~id:"r3" ~event_type:"system-downloads"
        [
          Event.literal ~param:"item" "the current share prices";
          Event.individual ~param:"source" "price-website";
        ];
      typed "r4" "system-displays" [ ("item", "the current share prices") ];
    ]
