let ui_chart =
  let open Statechart.Types in
  chart ~id:"ui-behavior" ~component:"user-interface" ~initial:"ready"
    [ state "ready"; state "informed" ]
    [
      transition ~source:"ready" ~target:"ready" ~trigger:"compose"
        ~outputs:[ "sendMessage" ] ();
      transition ~source:"ready" ~target:"informed" ~trigger:"notifyUp" ();
      transition ~source:"informed" ~target:"informed" ~trigger:"notifyUp" ();
    ]

let sharing_chart =
  let open Statechart.Types in
  chart ~id:"sharing-behavior" ~component:"sharing-info-manager" ~initial:"ready"
    [ state "ready" ]
    [
      transition ~source:"ready" ~target:"ready" ~trigger:"sendMessage"
        ~outputs:[ "sendMessage" ] ();
      transition ~source:"ready" ~target:"ready" ~trigger:"notifyUp"
        ~outputs:[ "notifyUp" ] ();
    ]

let communication_chart =
  let open Statechart.Types in
  chart ~id:"communication-behavior" ~component:"communication-manager" ~initial:"ready"
    [ state "ready" ]
    [
      transition ~source:"ready" ~target:"ready" ~trigger:"sendMessage"
        ~outputs:[ "netSend" ] ();
      transition ~source:"ready" ~target:"ready" ~trigger:"netReceive"
        ~outputs:[ "notifyUp" ] ();
    ]

let charts = [ ui_chart; sharing_chart; communication_chart ]

type message_path_run = {
  outgoing_reached_network : bool;
  outgoing_path : string list;
  incoming_informed_ui : bool;
  incoming_path : string list;
}

let fired_components sim = List.map (fun (c, _, _) -> c) (Dsim.Arch_sim.reactions sim)

let run_message_paths_on architecture =
  (* outgoing: the operator composes a message at the UI *)
  let out = Dsim.Arch_sim.create ~architecture ~charts () in
  Dsim.Arch_sim.inject out ~component:"user-interface" "compose";
  Dsim.Arch_sim.run out;
  let outgoing_reached_network =
    List.exists (String.equal "netSend") (Dsim.Arch_sim.received_by out "network")
  in
  (* incoming: the network hands a message to the communication manager *)
  let inc = Dsim.Arch_sim.create ~architecture ~charts () in
  Dsim.Arch_sim.inject inc ~component:"communication-manager" "netReceive";
  Dsim.Arch_sim.run inc;
  let incoming_informed_ui =
    match Dsim.Arch_sim.config_of inc "user-interface" with
    | Some config -> Statechart.Exec.active config "informed"
    | None -> false
  in
  {
    outgoing_reached_network;
    outgoing_path = fired_components out;
    incoming_informed_ui;
    incoming_path = fired_components inc;
  }

let run_message_paths () = run_message_paths_on Crash.entity_architecture
