(** The CRASH case study (paper §4.2).

    CRASH — Crisis Response and Situation Handling — "models a
    collection of governmental and non-governmental organizations
    cooperating in response to emerging situations". Each peer divides
    into three subsystem classes: Display, Information Gathering
    Sources, and Command and Control; C&C centers of different
    organizations interconnect through (ad hoc) networks. The
    architectural style is C2: requests travel up, notifications travel
    down, components know only the layers above. *)

val organizations : (string * string) list
(** The seven decision-making organizations: (id, display name). *)

val ontology : Ontology.Types.t

val entity_architecture : Adl.Structure.t
(** Fig. 7: the internal C2 architecture of one entity's Command and
    Control center (user interface on top, sharing/resource/situation
    managers in the middle, communication manager and decision support
    at the bottom, C2 bus connectors between layers, and the external
    network reachable below the communication manager). *)

val high_level_architecture : ?orgs:int -> unit -> Adl.Structure.t
(** Fig. 5: [orgs] peers (default all 7, min 2), each with Display and
    Information Gathering Source subsystems linked to its C&C through an
    internal ad hoc connector; all C&C centers joined by the emergency
    network connector. Each C&C carries {!entity_architecture} as its
    substructure. *)

val vulnerable_architecture : Adl.Structure.t
(** A 2-peer variant with an unauthenticated "Intruder" entity attached
    to the emergency network — the negative security scenario executes
    on this one. *)

val entity_mapping : Mapping.Types.t
(** Fig. 8: event types to entity-internal components, e.g.
    ["send-message"] to User Interface, Sharing Info Manager, and
    Communication Manager. *)

val network_placement_hook : Scenarioml.Event.t -> string list option
(** Argument-sensitive placement for the network view: send events land
    on the C&C of the organization named by their [sender] argument,
    receive events on the [receiver]'s — the §8 idea of deriving the
    mapping from "the domain entities that appear in those events".
    Pass as [Walkthrough.Engine.config.placement_hook]. *)

val network_mapping : Mapping.Types.t
(** Org-level event types to peers of the 2-peer high-level
    architecture (Fire and Police, as in the paper's scenarios). *)

val entity_scenario_set : Scenarioml.Scen.set
(** Scenarios evaluated against {!entity_architecture}: "Entity
    Availability", "Message Sequence", and further dependability
    scenarios. *)

val network_scenario_set : Scenarioml.Scen.set
(** Org-level scenarios (inter-organization cooperation and the
    negative unauthenticated-access scenario) evaluated against
    {!high_level_architecture} / {!vulnerable_architecture}. *)

val entity_availability : Scenarioml.Scen.t

val message_sequence : Scenarioml.Scen.t

val unauthenticated_access : Scenarioml.Scen.t
(** The negative scenario: "a user with inadequate authentication
    information accessing the system" (paper §3.5). *)

val fire_chart : Statechart.Types.t
(** Behavior of the Fire Department C&C peer used by the dynamic
    experiments: initiates requests, reacts to notifications and to
    network failure notices. *)

val police_chart : Statechart.Types.t
(** Behavior of the Police Department C&C peer: acknowledges requests
    with notifications. *)

val event_type_label : string -> string

val component_label : string -> string
