type availability_run = {
  detector : bool;
  verdict : Dsim.Checks.availability_verdict;
  fire_alerted : bool;
  events : Dsim.Network.event list;
}

let fire_peer =
  {
    Dsim.Runtime.peer_id = "fire-cc";
    chart = Crash.fire_chart;
    routes = [ ("request", "police-cc") ];
  }

let police_peer =
  {
    Dsim.Runtime.peer_id = "police-cc";
    chart = Crash.police_chart;
    routes = [ ("notification", "fire-cc") ];
  }

let run_availability ~detector =
  let engine = Dsim.Engine.create () in
  let config = { Dsim.Network.default_config with failure_detector = detector } in
  let network = Dsim.Network.create ~config engine in
  let runtime = Dsim.Runtime.create ~network [ fire_peer; police_peer ] in
  (* (1) The Police Department shuts down its Command and Control. *)
  Dsim.Network.shutdown network "police-cc";
  (* (2) Fire's C&C sends a request message to Police's C&C. *)
  Dsim.Runtime.inject runtime ~peer:"fire-cc" "initiate";
  Dsim.Engine.run engine;
  let events = Dsim.Network.trace network in
  let fire_alerted =
    match Dsim.Runtime.config_of runtime "fire-cc" with
    | Some config -> Statechart.Exec.active config "alerted"
    | None -> false
  in
  { detector; verdict = Dsim.Checks.availability events; fire_alerted; events }

type ordering_run = {
  fifo : bool;
  verdict : Dsim.Checks.ordering_verdict;
  events : Dsim.Network.event list;
}

let run_ordering ?(messages = 8) ?(gap = 0.5) ?(jitter = 5.0) ~fifo () =
  let engine = Dsim.Engine.create () in
  let config = { Dsim.Network.default_config with fifo; jitter; default_latency = 1.0 } in
  let network = Dsim.Network.create ~config engine in
  let runtime = Dsim.Runtime.create ~network [ fire_peer; police_peer ] in
  for i = 0 to messages - 1 do
    Dsim.Engine.schedule engine ~delay:(float_of_int i *. gap) (fun _ ->
        Dsim.Runtime.inject runtime ~peer:"fire-cc" "initiate")
  done;
  Dsim.Engine.run engine;
  let events = Dsim.Network.trace network in
  { fifo; verdict = Dsim.Checks.ordering events; events }

type fault_point = {
  downtime_fraction : float;
  stats : Dsim.Checks.delivery_stats;
  failure_notices : int;
}

let run_fault_sweep ?(duration = 100.0) ?(message_interval = 1.0) ?(period = 10.0)
    ~downtime_fractions () =
  List.map
    (fun downtime_fraction ->
      let engine = Dsim.Engine.create () in
      let network = Dsim.Network.create engine in
      Dsim.Network.add_node network "fire-cc";
      Dsim.Network.add_node network "police-cc";
      let cycles = int_of_float (duration /. period) in
      Dsim.Faults.apply network
        (Dsim.Faults.periodic_crashes ~node:"police-cc" ~period
           ~downtime:(downtime_fraction *. period) ~count:cycles);
      let messages = int_of_float (duration /. message_interval) in
      for i = 0 to messages - 1 do
        Dsim.Engine.schedule engine ~delay:(float_of_int i *. message_interval) (fun _ ->
            ignore (Dsim.Network.send network ~src:"fire-cc" ~dst:"police-cc" "request"))
      done;
      Dsim.Engine.run engine;
      let events = Dsim.Network.trace network in
      let failure_notices =
        List.length
          (List.filter
             (function Dsim.Network.Failure_notice _ -> true | _ -> false)
             events)
      in
      { downtime_fraction; stats = Dsim.Checks.stats events; failure_notices })
    downtime_fractions

type coordination_run = {
  acknowledged : int;
  peers : int;
  stats : Dsim.Checks.delivery_stats;
}

let run_coordination ?(down = []) () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  let others =
    List.filter_map
      (fun (org, _) -> if String.equal org "fire" then None else Some (org ^ "-cc"))
      Crash.organizations
  in
  let broadcaster =
    let open Statechart.Types in
    chart ~id:"fire-coordination" ~component:"fire-cc" ~initial:"idle"
      [ state "idle"; state "coordinating" ]
      [
        transition ~source:"idle" ~target:"coordinating" ~trigger:"situation"
          ~outputs:[ "notification" ] ();
        transition ~source:"coordinating" ~target:"coordinating" ~trigger:"ack" ();
      ]
  in
  let responder org =
    let open Statechart.Types in
    chart
      ~id:(org ^ "-coordination")
      ~component:org ~initial:"ready"
      [ state "ready"; state "engaged" ]
      [
        transition ~source:"ready" ~target:"engaged" ~trigger:"notification"
          ~outputs:[ "ack" ] ();
      ]
  in
  let peers =
    {
      Dsim.Runtime.peer_id = "fire-cc";
      chart = broadcaster;
      routes = List.map (fun dst -> ("notification", dst)) others;
    }
    :: List.map
         (fun org ->
           { Dsim.Runtime.peer_id = org; chart = responder org; routes = [ ("ack", "fire-cc") ] })
         others
  in
  let runtime = Dsim.Runtime.create ~network peers in
  List.iter (fun org -> Dsim.Network.shutdown network org) down;
  Dsim.Runtime.inject runtime ~peer:"fire-cc" "situation";
  Dsim.Engine.run engine;
  let acknowledged =
    List.length
      (List.filter
         (fun a ->
           String.equal a.Dsim.Runtime.peer "fire-cc"
           && String.equal a.Dsim.Runtime.trigger "ack"
           && a.Dsim.Runtime.fired <> None)
         (Dsim.Runtime.actions runtime))
  in
  {
    acknowledged;
    peers = List.length others;
    stats = Dsim.Checks.stats (Dsim.Network.trace network);
  }

let run_partition ?(heal_at = 10.0) ?(duration = 20.0) () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  Dsim.Network.add_node network "fire-cc";
  Dsim.Network.add_node network "police-cc";
  Dsim.Faults.apply network
    [
      Dsim.Faults.Partition
        { groups = [ [ "fire-cc" ]; [ "police-cc" ] ]; from_ = 0.0; until = heal_at };
    ];
  let messages = int_of_float duration in
  for i = 0 to messages - 1 do
    Dsim.Engine.schedule engine ~delay:(float_of_int i) (fun _ ->
        ignore (Dsim.Network.send network ~src:"fire-cc" ~dst:"police-cc" "request"))
  done;
  Dsim.Engine.run engine;
  Dsim.Checks.stats (Dsim.Network.trace network)

let run_all_peers_broadcast ?(orgs = List.length Crash.organizations) () =
  let engine = Dsim.Engine.create () in
  let network = Dsim.Network.create engine in
  let chosen = List.filteri (fun i _ -> i < max 2 orgs) Crash.organizations in
  let ids = List.map (fun (org, _) -> org ^ "-cc") chosen in
  (* Peers that simply absorb requests; the broadcast itself is injected
     directly through the network. *)
  List.iter (fun id -> Dsim.Network.add_node network id) ids;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (String.equal src dst) then
            ignore (Dsim.Network.send network ~src ~dst "request"))
        ids)
    ids;
  Dsim.Engine.run engine;
  Dsim.Checks.stats (Dsim.Network.trace network)
