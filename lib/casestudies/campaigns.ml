let crash_availability ?(orgs = 2) ?(loss = 0.0) () =
  let open Dsim.Campaign in
  let config =
    {
      Dsim.Network.default_config with
      jitter = 0.25;
      drop_probability = loss;
    }
  in
  make ~config ~horizon:12.0
    ~faults:
      [
        Crash_window
          { node = "police-cc"; at = { lo = 0.0; hi = 2.0 }; downtime = { lo = 0.0; hi = 4.0 } };
      ]
    ~architecture:(Crash.high_level_architecture ~orgs ())
    ~charts:[ Crash.fire_chart; Crash.police_chart ]
    ~stimuli:[ { at = 1.0; component = "fire-cc"; trigger = "initiate" } ]
    ~goal:(Delivered { component = "police-cc"; payload = "request" })
    ()

let master_chart =
  let open Statechart.Types in
  chart ~id:"campaign-master" ~component:"master-controller" ~initial:"idle"
    [ state "idle"; state "waiting" ]
    [
      transition ~source:"idle" ~target:"waiting" ~trigger:"user-initiates"
        ~outputs:[ "download-prices" ] ();
    ]

let loader_chart =
  let open Statechart.Types in
  chart ~id:"campaign-loader" ~component:"loader" ~initial:"idle"
    [ state "idle"; state "fetching" ]
    [
      transition ~source:"idle" ~target:"fetching" ~trigger:"download-prices"
        ~outputs:[ "fetch-prices" ] ();
      transition ~source:"fetching" ~target:"fetching" ~trigger:"download-prices"
        ~outputs:[ "fetch-prices" ] ();
    ]

let price_feed_charts = [ master_chart; loader_chart ]

let pims_price_feed ?(loss = 0.0) () =
  let open Dsim.Campaign in
  let config =
    {
      Dsim.Network.default_config with
      jitter = 0.25;
      drop_probability = loss;
    }
  in
  make ~config ~horizon:10.0
    ~faults:
      [
        Crash_window
          {
            node = "remote-price-db";
            at = { lo = 0.0; hi = 3.0 };
            downtime = { lo = 1.0; hi = 5.0 };
          };
      ]
    ~architecture:Pims.architecture ~charts:price_feed_charts
    ~stimuli:[ { at = 0.0; component = "master-controller"; trigger = "user-initiates" } ]
    ~goal:(Delivered { component = "remote-price-db"; payload = "fetch-prices" })
    ()
