open Scenarioml

(* Event construction helpers: [sid] is the scenario id, [n] a unique
   suffix within it. Arguments are literals unless built with [ind]. *)
let t sid n event_type args =
  Event.typed
    ~id:(Printf.sprintf "%s-e%s" sid n)
    ~event_type
    (List.map (fun (param, v) -> Event.literal ~param v) args)

let ti sid n event_type args ind_args =
  Event.typed
    ~id:(Printf.sprintf "%s-e%s" sid n)
    ~event_type
    (List.map (fun (param, v) -> Event.literal ~param v) args
    @ List.map (fun (param, v) -> Event.individual ~param v) ind_args)

let tf sid n event_type args fresh_args =
  Event.typed
    ~id:(Printf.sprintf "%s-e%s" sid n)
    ~event_type
    (List.map (fun (param, v) -> Event.literal ~param v) args
    @ List.map (fun (param, label, cls) -> Event.fresh ~param ~label ~cls) fresh_args)

let simple sid n text = Event.simple ~id:(Printf.sprintf "%s-e%s" sid n) text

let alt sid n branches = Event.Alternation { id = Printf.sprintf "%s-a%s" sid n; branches }

let scenario = Scen.scenario ~actors:[ "the-user"; "the-system" ]

(* -------------------- the paper's two focal use cases ------------- *)

let create_portfolio =
  let s = "create-portfolio" in
  scenario ~id:s ~name:"Create portfolio"
    ~description:"The user creates a new, empty portfolio (paper Fig. 2)."
    [
      t s "1" "user-initiates" [ ("function", "create portfolio") ];
      t s "2" "system-prompts" [ ("item", "the portfolio name") ];
      t s "3" "user-enters" [ ("item", "the portfolio name") ];
      alt s "4"
        [
          [
            (* the portfolio is an individual newly created during the
               scenario (ScenarioML's new-individual reference, paper 2) *)
            tf s "4" "system-creates" [] [ ("item", "an empty portfolio", "portfolio") ];
          ];
          (* 4.a: a portfolio with the same name exists *)
          [
            t s "4a1" "system-prompts" [ ("item", "a different name") ];
            t s "4a2" "user-enters" [ ("item", "a different name") ];
            tf s "4a3" "system-creates" [] [ ("item", "an empty portfolio", "portfolio") ];
          ];
        ];
    ]

let get_share_prices =
  let s = "get-share-prices" in
  scenario ~id:s ~name:"Get the current prices of shares"
    ~description:
      "The system downloads, displays and saves current share prices (paper Fig. 2/4)."
    [
      t s "1" "user-initiates" [ ("function", "download current share prices") ];
      alt s "2"
        [
          [
            ti s "2" "system-downloads"
              [ ("item", "the current share prices") ]
              [ ("source", "price-website") ];
            t s "3" "system-displays" [ ("item", "the current share prices") ];
            t s "4" "system-saves" [ ("item", "the current share prices") ];
          ];
          (* 2.a: the system is not able to download *)
          [
            simple s "2a1"
              "The system is not able to download (due to network failure, site down, ...)";
            t s "2a2" "system-retrieves" [ ("item", "the current value") ];
            t s "2a3" "system-displays" [ ("item", "the current value saved from before") ];
            t s "2a4" "system-prompts" [ ("item", "a change to the saved value") ];
          ];
        ];
    ]

(* -------------------- the remaining 20 use cases ------------------ *)

let rename_portfolio =
  let s = "rename-portfolio" in
  scenario ~id:s ~name:"Rename portfolio"
    [
      t s "1" "user-initiates" [ ("function", "rename portfolio") ];
      t s "2" "user-selects" [ ("item", "the portfolio to rename") ];
      t s "3" "system-prompts" [ ("item", "the new name") ];
      t s "4" "user-enters" [ ("item", "the new name") ];
      t s "5" "system-updates" [ ("item", "the portfolio name") ];
    ]

let delete_portfolio =
  let s = "delete-portfolio" in
  scenario ~id:s ~name:"Delete portfolio"
    [
      t s "1" "user-initiates" [ ("function", "delete portfolio") ];
      t s "2" "user-selects" [ ("item", "the portfolio to delete") ];
      t s "3" "user-confirms" [ ("action", "the deletion") ];
      t s "4" "system-deletes" [ ("item", "the portfolio and its investments") ];
    ]

let add_investment =
  let s = "add-investment" in
  scenario ~id:s ~name:"Add investment"
    [
      t s "1" "user-initiates" [ ("function", "add investment") ];
      t s "2" "user-selects" [ ("item", "the target portfolio") ];
      t s "3" "system-prompts" [ ("item", "the investment details") ];
      t s "4" "user-enters" [ ("item", "the investment details") ];
      t s "5" "system-creates" [ ("item", "the investment record") ];
    ]

let edit_investment =
  let s = "edit-investment" in
  scenario ~id:s ~name:"Edit investment"
    [
      t s "1" "user-initiates" [ ("function", "edit investment") ];
      t s "2" "user-selects" [ ("item", "the investment to edit") ];
      t s "3" "user-enters" [ ("item", "the changed investment details") ];
      t s "4" "system-updates" [ ("item", "the investment record") ];
    ]

let delete_investment =
  let s = "delete-investment" in
  scenario ~id:s ~name:"Delete investment"
    [
      t s "1" "user-initiates" [ ("function", "delete investment") ];
      t s "2" "user-selects" [ ("item", "the investment to delete") ];
      t s "3" "user-confirms" [ ("action", "the deletion") ];
      t s "4" "system-deletes" [ ("item", "the investment record") ];
    ]

let add_transaction =
  let s = "add-transaction" in
  scenario ~id:s ~name:"Add transaction"
    [
      t s "1" "user-initiates" [ ("function", "add transaction") ];
      t s "2" "user-selects" [ ("item", "the investment concerned") ];
      t s "3" "user-enters" [ ("item", "the transaction details") ];
      t s "4" "system-records" [ ("item", "the transaction record") ];
    ]

let edit_transaction =
  let s = "edit-transaction" in
  scenario ~id:s ~name:"Edit transaction"
    [
      t s "1" "user-initiates" [ ("function", "edit transaction") ];
      t s "2" "user-selects" [ ("item", "the transaction to edit") ];
      t s "3" "user-enters" [ ("item", "the changed transaction details") ];
      t s "4" "system-records" [ ("item", "the corrected transaction record") ];
    ]

let delete_transaction =
  let s = "delete-transaction" in
  scenario ~id:s ~name:"Delete transaction"
    [
      t s "1" "user-initiates" [ ("function", "delete transaction") ];
      t s "2" "user-selects" [ ("item", "the transaction to delete") ];
      t s "3" "user-confirms" [ ("action", "the deletion") ];
      t s "4" "system-deletes" [ ("item", "the transaction record") ];
    ]

let compute_networth =
  let s = "compute-networth" in
  scenario ~id:s ~name:"Compute net worth"
    [
      t s "1" "user-initiates" [ ("function", "compute net worth") ];
      t s "2" "system-retrieves" [ ("item", "the saved prices and investments") ];
      t s "3" "system-computes" [ ("item", "the net worth") ];
      t s "4" "system-displays" [ ("item", "the net worth") ];
    ]

let compute_roi =
  let s = "compute-roi" in
  scenario ~id:s ~name:"Compute rate of return"
    [
      t s "1" "user-initiates" [ ("function", "compute rate of return") ];
      t s "2" "user-selects" [ ("item", "the investment or portfolio") ];
      t s "3" "system-retrieves" [ ("item", "the relevant transactions and prices") ];
      t s "4" "system-computes" [ ("item", "the rate of return") ];
      t s "5" "system-displays" [ ("item", "the rate of return") ];
    ]

let display_portfolio =
  let s = "display-portfolio" in
  scenario ~id:s ~name:"Display portfolio"
    [
      t s "1" "user-initiates" [ ("function", "display portfolio") ];
      t s "2" "user-selects" [ ("item", "the portfolio to display") ];
      t s "3" "system-retrieves" [ ("item", "the portfolio contents") ];
      t s "4" "system-displays" [ ("item", "the portfolio contents") ];
    ]

let set_alert =
  let s = "set-alert" in
  scenario ~id:s ~name:"Set share price alert"
    [
      t s "1" "user-initiates" [ ("function", "set alert") ];
      t s "2" "user-selects" [ ("item", "the share to watch") ];
      t s "3" "user-enters" [ ("item", "the threshold price") ];
      t s "4" "system-creates" [ ("item", "the alert") ];
    ]

let show_alerts =
  let s = "show-alerts" in
  scenario ~id:s ~name:"Show triggered alerts"
    [
      t s "1" "user-initiates" [ ("function", "show alerts") ];
      t s "2" "system-retrieves" [ ("item", "the saved alerts and current prices") ];
      t s "3" "system-alerts" [ ("message", "shares whose price crossed the threshold") ];
    ]

let delete_alert =
  let s = "delete-alert" in
  scenario ~id:s ~name:"Delete alert"
    [
      t s "1" "user-initiates" [ ("function", "delete alert") ];
      t s "2" "user-selects" [ ("item", "the alert to delete") ];
      t s "3" "system-deletes" [ ("item", "the alert") ];
    ]

let login =
  let s = "login" in
  scenario ~id:s ~name:"Log in"
    [
      t s "1" "user-initiates" [ ("function", "log in") ];
      t s "2" "system-prompts" [ ("item", "the password") ];
      t s "3" "user-enters" [ ("item", "the password") ];
      alt s "4"
        [
          [ t s "4" "system-authenticates" [] ];
          [
            simple s "4a1" "The password does not match.";
            t s "4a2" "system-prompts" [ ("item", "the password again") ];
            t s "4a3" "user-enters" [ ("item", "the password again") ];
            t s "4a4" "system-authenticates" [];
          ];
        ];
    ]

let change_password =
  let s = "change-password" in
  scenario ~id:s ~name:"Change password"
    [
      t s "1" "user-initiates" [ ("function", "change password") ];
      t s "2" "system-prompts" [ ("item", "the old and new passwords") ];
      t s "3" "user-enters" [ ("item", "the old and new passwords") ];
      t s "4" "system-validates" [ ("item", "the old password") ];
      t s "5" "system-updates" [ ("item", "the stored password") ];
    ]

let save_session =
  let s = "save-session" in
  scenario ~id:s ~name:"Save session"
    [
      t s "1" "user-initiates" [ ("function", "save session") ];
      t s "2" "system-saves" [ ("item", "the current session data") ];
      t s "3" "system-displays" [ ("item", "a confirmation") ];
    ]

let load_session =
  let s = "load-session" in
  scenario ~id:s ~name:"Load session"
    [
      t s "1" "user-initiates" [ ("function", "load session") ];
      t s "2" "system-retrieves" [ ("item", "the saved session data") ];
      t s "3" "system-displays" [ ("item", "the restored portfolios") ];
    ]

let backup_repository =
  let s = "backup-repository" in
  scenario ~id:s ~name:"Back up repository"
    [
      t s "1" "user-initiates" [ ("function", "back up data") ];
      t s "2" "user-enters" [ ("item", "the backup destination") ];
      t s "3" "system-saves" [ ("item", "a copy of the repository data") ];
      t s "4" "system-displays" [ ("item", "a confirmation") ];
    ]

let restore_repository =
  let s = "restore-repository" in
  scenario ~id:s ~name:"Restore repository"
    [
      t s "1" "user-initiates" [ ("function", "restore data") ];
      t s "2" "user-selects" [ ("item", "the backup to restore") ];
      t s "3" "user-confirms" [ ("action", "overwriting current data") ];
      t s "4" "system-updates" [ ("item", "the repository data") ];
      t s "5" "system-displays" [ ("item", "the restored state") ];
    ]

let refresh_alerts =
  let s = "refresh-alerts" in
  scenario ~id:s ~name:"Refresh prices and check alerts"
    ~description:"Periodic refresh: download prices, then raise any alerts."
    [
      t s "1" "user-initiates" [ ("function", "refresh prices") ];
      ti s "2" "system-downloads"
        [ ("item", "the current share prices") ]
        [ ("source", "price-website") ];
      t s "3" "system-saves" [ ("item", "the current share prices") ];
      Event.Iteration
        {
          id = s ^ "-i4";
          bound = Event.Zero_or_more;
          body = [ t s "4" "system-alerts" [ ("message", "a crossed threshold") ] ];
        };
    ]

let all =
  [
    create_portfolio;
    rename_portfolio;
    delete_portfolio;
    add_investment;
    edit_investment;
    delete_investment;
    add_transaction;
    edit_transaction;
    delete_transaction;
    compute_networth;
    compute_roi;
    get_share_prices;
    display_portfolio;
    set_alert;
    show_alerts;
    delete_alert;
    login;
    change_password;
    save_session;
    load_session;
    backup_repository;
    restore_repository;
  ]
