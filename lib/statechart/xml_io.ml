exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let required e name =
  match Xmlight.Doc.attr e name with
  | Some v -> v
  | None -> malformed "<%s> is missing required attribute %S" e.Xmlight.Doc.tag name

let rec state_to_element s =
  let attrs =
    [ ("id", s.Types.state_id); ("name", s.Types.state_name) ]
    @ (match s.Types.initial with Some i -> [ ("initial", i) ] | None -> [])
    @ if s.Types.history then [ ("history", "true") ] else []
  in
  Xmlight.Doc.element ~attrs "state"
    (List.map
       (fun o -> Xmlight.Doc.elt "onEntry" [ Xmlight.Doc.text o ])
       s.Types.entry_outputs
    @ List.map (fun c -> Xmlight.Doc.Element (state_to_element c)) s.Types.substates)

let transition_to_element tr =
  let attrs =
    [
      ("id", tr.Types.tr_id);
      ("from", tr.Types.source);
      ("to", tr.Types.target);
      ("trigger", tr.Types.trigger);
    ]
    @ match tr.Types.guard with Some g -> [ ("guard", g) ] | None -> []
  in
  Xmlight.Doc.element ~attrs "transition"
    (List.map (fun o -> Xmlight.Doc.elt "output" [ Xmlight.Doc.text o ]) tr.Types.outputs)

let to_element t =
  Xmlight.Doc.element
    ~attrs:
      [
        ("id", t.Types.chart_id);
        ("component", t.Types.component);
        ("initial", t.Types.chart_initial);
      ]
    "statechart"
    (List.map (fun s -> Xmlight.Doc.Element (state_to_element s)) t.Types.states
    @ List.map (fun tr -> Xmlight.Doc.Element (transition_to_element tr)) t.Types.transitions)

let to_string t = Xmlight.Print.to_string (Xmlight.Doc.doc (to_element t))

let rec state_of_element e =
  {
    Types.state_id = required e "id";
    state_name = Xmlight.Doc.attr_default e "name" (required e "id");
    substates = List.map state_of_element (Xmlight.Doc.find_children e "state");
    initial = Xmlight.Doc.attr e "initial";
    entry_outputs = List.map Xmlight.Doc.child_text (Xmlight.Doc.find_children e "onEntry");
    history = Xmlight.Doc.attr_default e "history" "false" = "true";
  }

let transition_of_element e =
  {
    Types.tr_id = required e "id";
    source = required e "from";
    target = required e "to";
    trigger = required e "trigger";
    guard = Xmlight.Doc.attr e "guard";
    outputs = List.map Xmlight.Doc.child_text (Xmlight.Doc.find_children e "output");
  }

let of_element e =
  if not (String.equal e.Xmlight.Doc.tag "statechart") then
    malformed "expected <statechart>, found <%s>" e.Xmlight.Doc.tag;
  {
    Types.chart_id = required e "id";
    component = required e "component";
    states = List.map state_of_element (Xmlight.Doc.find_children e "state");
    chart_initial = required e "initial";
    transitions = List.map transition_of_element (Xmlight.Doc.find_children e "transition");
  }

let of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> of_element doc.Xmlight.Doc.root
  | Error e -> malformed "XML error: %s" (Xmlight.Parse.error_to_string e)
