type config = string list

type reaction = {
  new_config : config;
  outputs : string list;
  fired : Types.transition option;
}

exception Bad_chart of string

let bad fmt = Format.kasprintf (fun s -> raise (Bad_chart s)) fmt

(* Descend from a state to a leaf, accumulating the entered path.
   [prefer] lets a caller steer the descent (history states): when it
   returns a valid substate id, that substate is entered instead of the
   declared initial. *)
let rec enter ?(prefer = fun _ -> None) chart s =
  if s.Types.substates = [] then [ s.Types.state_id ]
  else
    let chosen =
      match prefer s.Types.state_id with
      | Some sub when List.exists (fun c -> String.equal c.Types.state_id sub) s.Types.substates
        ->
          Some sub
      | Some _ | None -> s.Types.initial
    in
    match chosen with
    | None -> bad "composite state %S has no initial substate" s.Types.state_id
    | Some init -> (
        match
          List.find_opt (fun c -> String.equal c.Types.state_id init) s.Types.substates
        with
        | Some sub -> s.Types.state_id :: enter ~prefer chart sub
        | None -> bad "state %S: initial %S is not a substate" s.Types.state_id init)

let initial_config ?prefer chart =
  match Types.find_state chart chart.Types.chart_initial with
  | None -> bad "chart %S: unknown initial state %S" chart.Types.chart_id chart.Types.chart_initial
  | Some s ->
      (* The initial state may itself be nested; include its ancestors. *)
      Types.ancestors chart s.Types.state_id @ enter ?prefer chart s

let active config id = List.exists (String.equal id) config

let leaf = function
  | [] -> bad "empty configuration"
  | config -> List.nth config (List.length config - 1)

(* States on [new_config] that were not active in [old_config]: the
   suffix after the longest common prefix. *)
let entered_states ~old_config ~new_config =
  let rec strip a b =
    match (a, b) with
    | x :: xs, y :: ys when String.equal x y -> strip xs ys
    | _, rest -> rest
  in
  strip old_config new_config

let entry_outputs chart entered =
  List.concat_map
    (fun id ->
      match Types.find_state chart id with
      | Some s -> s.Types.entry_outputs
      | None -> [])
    entered

let step ?(guards = fun _ -> true) ?prefer chart config event =
  let enabled tr =
    String.equal tr.Types.trigger event
    && active config tr.Types.source
    && match tr.Types.guard with Some g -> guards g | None -> true
  in
  (* Innermost source first: a source deeper in the active path wins. *)
  let depth_of id =
    let rec find i = function
      | [] -> -1
      | x :: rest -> if String.equal x id then i else find (i + 1) rest
    in
    find 0 config
  in
  let candidates = List.filter enabled chart.Types.transitions in
  let best =
    List.fold_left
      (fun acc tr ->
        match acc with
        | None -> Some tr
        | Some cur ->
            if depth_of tr.Types.source > depth_of cur.Types.source then Some tr else acc)
      None candidates
  in
  match best with
  | None -> { new_config = config; outputs = []; fired = None }
  | Some tr -> (
      match Types.find_state chart tr.Types.target with
      | None -> bad "transition %S: unknown target %S" tr.Types.tr_id tr.Types.target
      | Some target ->
          let new_config =
            Types.ancestors chart target.Types.state_id @ enter ?prefer chart target
          in
          let entered = entered_states ~old_config:config ~new_config in
          {
            new_config;
            outputs = tr.Types.outputs @ entry_outputs chart entered;
            fired = Some tr;
          })

type run_step = { event : string; reaction : reaction }

let run ?guards chart events =
  let config = initial_config chart in
  let final, steps =
    List.fold_left
      (fun (config, steps) event ->
        let reaction = step ?guards chart config event in
        (reaction.new_config, { event; reaction } :: steps))
      (config, []) events
  in
  (final, List.rev steps)

module Machine = struct
  type m = {
    chart : Types.t;
    guards : string -> bool;
    mutable current : config;
    (* last active substate of each history composite *)
    memory : (string, string) Hashtbl.t;
  }

  let remember m config =
    (* for each consecutive (parent, child) on the active path, record
       the child when the parent declares history *)
    let rec walk = function
      | parent :: (child :: _ as rest) ->
          (match Types.find_state m.chart parent with
          | Some { Types.history = true; _ } -> Hashtbl.replace m.memory parent child
          | Some _ | None -> ());
          walk rest
      | [ _ ] | [] -> ()
    in
    walk config

  let create ?(guards = fun _ -> true) chart =
    let m = { chart; guards; current = []; memory = Hashtbl.create 4 } in
    m.current <- initial_config chart;
    remember m m.current;
    m

  let config m = m.current

  let send m event =
    let prefer id = Hashtbl.find_opt m.memory id in
    let reaction = step ~guards:m.guards ~prefer m.chart m.current event in
    m.current <- reaction.new_config;
    remember m m.current;
    reaction

  let send_all m events = List.map (send m) events
end

let reachable_states chart =
  (* Fixpoint over configurations: from each known configuration, try
     every transition trigger. Configurations are finite (paths in the
     state tree), so this terminates. *)
  let seen_configs = Hashtbl.create 16 in
  let seen_states = Hashtbl.create 16 in
  let key config = String.concat "/" config in
  let record config = List.iter (fun s -> Hashtbl.replace seen_states s ()) config in
  let triggers =
    List.sort_uniq String.compare (List.map (fun tr -> tr.Types.trigger) chart.Types.transitions)
  in
  let queue = Queue.create () in
  let start = initial_config chart in
  Hashtbl.replace seen_configs (key start) ();
  record start;
  Queue.push start queue;
  while not (Queue.is_empty queue) do
    let config = Queue.pop queue in
    List.iter
      (fun event ->
        let { new_config; _ } = step chart config event in
        if not (Hashtbl.mem seen_configs (key new_config)) then begin
          Hashtbl.replace seen_configs (key new_config) ();
          record new_config;
          Queue.push new_config queue
        end)
      triggers
  done;
  List.filter (Hashtbl.mem seen_states) (Types.state_ids chart)
