(** Step semantics for statecharts.

    A configuration is the path of active states from a top-level state
    down to a leaf. Delivering an event fires the innermost enabled
    transition whose source lies on the active path, whose trigger
    matches, and whose guard (if any) evaluates true under the supplied
    guard environment. Entering a composite state descends through
    [initial] substates to a leaf. Unmatched events are dropped (the
    chart simply does not react). Transition priority: innermost source
    first; among transitions with the same source, document order. *)

type config = string list
(** Active state ids, outermost first; the last element is the leaf. *)

type reaction = {
  new_config : config;
  outputs : string list;  (** emitted event names, in order *)
  fired : Types.transition option;  (** [None] when the event was dropped *)
}

exception Bad_chart of string
(** Raised when execution encounters a structural error (unknown initial
    or target state); {!Validate.check} reports these statically. *)

val initial_config : ?prefer:(string -> string option) -> Types.t -> config
(** [prefer] steers the descent into composite states (used by
    {!Machine} for history); invalid suggestions fall back to the
    declared initial. *)

val active : config -> string -> bool
(** Is the state id on the active path? *)

val leaf : config -> string
(** @raise Bad_chart on the empty configuration. *)

val step :
  ?guards:(string -> bool) ->
  ?prefer:(string -> string option) ->
  Types.t ->
  config ->
  string ->
  reaction
(** [step chart config event] delivers one event. [guards] defaults to
    every guard evaluating [true]. Outputs are the fired transition's
    outputs followed by the [entry_outputs] of every newly entered
    state, outermost first. *)

type run_step = { event : string; reaction : reaction }

val run : ?guards:(string -> bool) -> Types.t -> string list -> config * run_step list
(** Deliver a sequence of events from the initial configuration,
    returning the final configuration and the per-event reactions. *)

(** Stateful executor adding UML-style history: on re-entry, a
    composite state marked [history] resumes its last active substate
    instead of its initial one. *)
module Machine : sig
  type m

  val create : ?guards:(string -> bool) -> Types.t -> m

  val config : m -> config

  val send : m -> string -> reaction
  (** Deliver one event, advancing the machine and its history. *)

  val send_all : m -> string list -> reaction list
end

val reachable_states : Types.t -> string list
(** States on some configuration reachable from the initial one by any
    event sequence, assuming all guards can be true; used by
    {!Validate} for dead-state detection. *)
