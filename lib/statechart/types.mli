(** Statechart behavioral descriptions, after the xADL statechart
    extension the paper adopts for behavioral architecture description
    (Naslavsky et al., WADS 2004).

    A statechart belongs to a component and describes how it reacts to
    incoming events: hierarchical states (composite states carry their
    own initial substate), and transitions with a triggering event name,
    an optional named guard, and a list of emitted output events. *)

type state = {
  state_id : string;
  state_name : string;
  substates : state list;  (** empty for simple states *)
  initial : string option;  (** required when [substates] is non-empty *)
  entry_outputs : string list;  (** events emitted whenever the state is entered *)
  history : bool;
      (** composite states only: re-entry resumes the last active
          substate instead of [initial] (see {!Machine}) *)
}

type transition = {
  tr_id : string;
  source : string;  (** state id *)
  target : string;  (** state id *)
  trigger : string;  (** incoming event name *)
  guard : string option;  (** named predicate, evaluated by the caller *)
  outputs : string list;  (** event names emitted when the transition fires *)
}

type t = {
  chart_id : string;
  component : string;  (** id of the component this chart describes *)
  states : state list;
  chart_initial : string;  (** id of the initially active top-level state *)
  transitions : transition list;
}

val state :
  ?name:string ->
  ?substates:state list ->
  ?initial:string ->
  ?entry:string list ->
  ?history:bool ->
  string ->
  state
(** [state id] builds a state; [name] defaults to the id, [entry] to []
    and [history] to false. *)

val transition :
  ?id:string ->
  ?guard:string ->
  ?outputs:string list ->
  source:string ->
  target:string ->
  trigger:string ->
  unit ->
  transition
(** The id defaults to ["source--trigger->target"]. *)

val chart :
  id:string -> component:string -> initial:string -> state list -> transition list -> t

val all_states : t -> state list
(** Every state in the chart, preorder. *)

val find_state : t -> string -> state option

val state_ids : t -> string list

val parent_of : t -> string -> string option
(** Id of the parent state, or [None] for top-level states and unknown
    ids. *)

val ancestors : t -> string -> string list
(** Proper ancestors, nearest first. *)
