(** XML reading and writing for statecharts (the xADL behavioral
    extension's vocabulary):
    {v
    <statechart id component initial>
      <state id name [initial]> <state.../>* </state>*
      <transition id from to trigger [guard]>
        <output>eventName</output>*
      </transition>*
    </statechart>
    v} *)

exception Malformed of string

val to_element : Types.t -> Xmlight.Doc.element

val to_string : Types.t -> string

val of_element : Xmlight.Doc.element -> Types.t
(** @raise Malformed on schema errors. *)

val of_string : string -> Types.t
(** @raise Malformed on XML or schema errors. *)
