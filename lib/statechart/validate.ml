type problem =
  | Duplicate_state of string
  | Duplicate_transition of string
  | Unknown_initial of { chart : string; initial : string }
  | Composite_without_initial of string
  | Initial_not_substate of { state : string; initial : string }
  | Unknown_source of { transition : string; source : string }
  | Unknown_target of { transition : string; target : string }
  | Nondeterministic of { state : string; trigger : string; transitions : string list }
  | Unreachable_state of string

let pp_problem ppf = function
  | Duplicate_state id -> Format.fprintf ppf "duplicate state id %S" id
  | Duplicate_transition id -> Format.fprintf ppf "duplicate transition id %S" id
  | Unknown_initial { chart; initial } ->
      Format.fprintf ppf "chart %S: unknown initial state %S" chart initial
  | Composite_without_initial id ->
      Format.fprintf ppf "composite state %S has no initial substate" id
  | Initial_not_substate { state; initial } ->
      Format.fprintf ppf "state %S: initial %S is not one of its substates" state initial
  | Unknown_source { transition; source } ->
      Format.fprintf ppf "transition %S: unknown source state %S" transition source
  | Unknown_target { transition; target } ->
      Format.fprintf ppf "transition %S: unknown target state %S" transition target
  | Nondeterministic { state; trigger; transitions } ->
      Format.fprintf ppf
        "state %S reacts to trigger %S with several unguarded transitions: %s" state trigger
        (String.concat ", " transitions)
  | Unreachable_state id -> Format.fprintf ppf "state %S is unreachable" id

let problem_to_string p = Format.asprintf "%a" pp_problem p

let check t =
  let states = Types.all_states t in
  let ids = List.map (fun s -> s.Types.state_id) states in
  let seen = Hashtbl.create 16 in
  let duplicate_states =
    List.filter_map
      (fun id ->
        if Hashtbl.mem seen id then Some (Duplicate_state id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      ids
  in
  let duplicate_transitions =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun tr ->
        let id = tr.Types.tr_id in
        if Hashtbl.mem seen id then Some (Duplicate_transition id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      t.Types.transitions
  in
  let known id = List.exists (String.equal id) ids in
  let initial_problems =
    if known t.Types.chart_initial then []
    else [ Unknown_initial { chart = t.Types.chart_id; initial = t.Types.chart_initial } ]
  in
  let composite_problems =
    List.concat_map
      (fun s ->
        if s.Types.substates = [] then []
        else
          match s.Types.initial with
          | None -> [ Composite_without_initial s.Types.state_id ]
          | Some init ->
              if List.exists (fun c -> String.equal c.Types.state_id init) s.Types.substates
              then []
              else [ Initial_not_substate { state = s.Types.state_id; initial = init } ])
      states
  in
  let endpoint_problems =
    List.concat_map
      (fun tr ->
        let src =
          if known tr.Types.source then []
          else [ Unknown_source { transition = tr.Types.tr_id; source = tr.Types.source } ]
        in
        let tgt =
          if known tr.Types.target then []
          else [ Unknown_target { transition = tr.Types.tr_id; target = tr.Types.target } ]
        in
        src @ tgt)
      t.Types.transitions
  in
  let nondeterminism =
    let unguarded = List.filter (fun tr -> tr.Types.guard = None) t.Types.transitions in
    let keys =
      List.sort_uniq compare
        (List.map (fun tr -> (tr.Types.source, tr.Types.trigger)) unguarded)
    in
    List.filter_map
      (fun (source, trigger) ->
        let group =
          List.filter
            (fun tr ->
              String.equal tr.Types.source source && String.equal tr.Types.trigger trigger)
            unguarded
        in
        if List.length group > 1 then
          Some
            (Nondeterministic
               {
                 state = source;
                 trigger;
                 transitions = List.map (fun tr -> tr.Types.tr_id) group;
               })
        else None)
      keys
  in
  let structural = initial_problems @ composite_problems @ endpoint_problems in
  let unreachable =
    (* Reachability analysis executes the chart; only run it when the
       structure is sound. *)
    if structural <> [] || duplicate_states <> [] then []
    else
      let reachable = Exec.reachable_states t in
      List.filter_map
        (fun id ->
          if List.exists (String.equal id) reachable then None else Some (Unreachable_state id))
        ids
  in
  duplicate_states @ duplicate_transitions @ structural @ nondeterminism @ unreachable

let is_wellformed t = check t = []
