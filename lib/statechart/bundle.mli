(** Behavior bundles: the statecharts of an architecture's components as
    one document — the xADL behavioral description (paper §3.3: "the
    behavioral description allows dynamic checking of the architecture
    against scenarios").

    XML form: [<archBehavior id> <statechart .../>* </archBehavior>]. *)

type t = { bundle_id : string; charts : Types.t list }

type problem =
  | Duplicate_component of string
      (** two charts claim the same component *)
  | Chart_problem of { chart : string; problem : Validate.problem }

val make : id:string -> Types.t list -> t

val chart_for : t -> string -> Types.t option
(** The chart describing the given component. *)

val components : t -> string list

val check : t -> problem list

val pp_problem : Format.formatter -> problem -> unit

exception Malformed of string

val to_element : t -> Xmlight.Doc.element

val to_string : t -> string

val of_element : Xmlight.Doc.element -> t
(** @raise Malformed on schema errors. *)

val of_string : string -> t
(** @raise Malformed on XML or schema errors. *)
