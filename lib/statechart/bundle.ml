type t = { bundle_id : string; charts : Types.t list }

type problem =
  | Duplicate_component of string
  | Chart_problem of { chart : string; problem : Validate.problem }

let make ~id charts = { bundle_id = id; charts }

let chart_for t component =
  List.find_opt (fun c -> String.equal c.Types.component component) t.charts

let components t = List.map (fun c -> c.Types.component) t.charts

let check t =
  let seen = Hashtbl.create 8 in
  let duplicates =
    List.filter_map
      (fun c ->
        let comp = c.Types.component in
        if Hashtbl.mem seen comp then Some (Duplicate_component comp)
        else begin
          Hashtbl.add seen comp ();
          None
        end)
      t.charts
  in
  let chart_problems =
    List.concat_map
      (fun c ->
        List.map
          (fun problem -> Chart_problem { chart = c.Types.chart_id; problem })
          (Validate.check c))
      t.charts
  in
  duplicates @ chart_problems

let pp_problem ppf = function
  | Duplicate_component c ->
      Format.fprintf ppf "component %S has several statecharts" c
  | Chart_problem { chart; problem } ->
      Format.fprintf ppf "chart %S: %a" chart Validate.pp_problem problem

exception Malformed of string

let to_element t =
  Xmlight.Doc.element
    ~attrs:[ ("id", t.bundle_id) ]
    "archBehavior"
    (List.map (fun c -> Xmlight.Doc.Element (Xml_io.to_element c)) t.charts)

let to_string t = Xmlight.Print.to_string (Xmlight.Doc.doc (to_element t))

let of_element e =
  if not (String.equal e.Xmlight.Doc.tag "archBehavior") then
    raise (Malformed (Printf.sprintf "expected <archBehavior>, found <%s>" e.Xmlight.Doc.tag));
  let bundle_id =
    match Xmlight.Doc.attr e "id" with
    | Some id -> id
    | None -> raise (Malformed "<archBehavior> is missing id")
  in
  let charts =
    List.map
      (fun c ->
        match Xml_io.of_element c with
        | chart -> chart
        | exception Xml_io.Malformed m -> raise (Malformed m))
      (Xmlight.Doc.find_children e "statechart")
  in
  { bundle_id; charts }

let of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> of_element doc.Xmlight.Doc.root
  | Error e -> raise (Malformed (Xmlight.Parse.error_to_string e))
