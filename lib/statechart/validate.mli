(** Static checking of statecharts. *)

type problem =
  | Duplicate_state of string
  | Duplicate_transition of string
  | Unknown_initial of { chart : string; initial : string }
  | Composite_without_initial of string  (** composite state id *)
  | Initial_not_substate of { state : string; initial : string }
  | Unknown_source of { transition : string; source : string }
  | Unknown_target of { transition : string; target : string }
  | Nondeterministic of { state : string; trigger : string; transitions : string list }
      (** several unguarded transitions from the same source on the same
          trigger *)
  | Unreachable_state of string

val pp_problem : Format.formatter -> problem -> unit

val problem_to_string : problem -> string

val check : Types.t -> problem list

val is_wellformed : Types.t -> bool
