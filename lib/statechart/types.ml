type state = {
  state_id : string;
  state_name : string;
  substates : state list;
  initial : string option;
  entry_outputs : string list;
  history : bool;
}

type transition = {
  tr_id : string;
  source : string;
  target : string;
  trigger : string;
  guard : string option;
  outputs : string list;
}

type t = {
  chart_id : string;
  component : string;
  states : state list;
  chart_initial : string;
  transitions : transition list;
}

let state ?name ?(substates = []) ?initial ?(entry = []) ?(history = false) id =
  {
    state_id = id;
    state_name = (match name with Some n -> n | None -> id);
    substates;
    initial;
    entry_outputs = entry;
    history;
  }

let transition ?id ?guard ?(outputs = []) ~source ~target ~trigger () =
  let tr_id =
    match id with
    | Some i -> i
    | None -> Printf.sprintf "%s--%s->%s" source trigger target
  in
  { tr_id; source; target; trigger; guard; outputs }

let chart ~id ~component ~initial states transitions =
  { chart_id = id; component; states; chart_initial = initial; transitions }

let all_states t =
  let rec walk acc s = List.fold_left walk (acc @ [ s ]) s.substates in
  List.fold_left walk [] t.states

let find_state t id = List.find_opt (fun s -> String.equal s.state_id id) (all_states t)

let state_ids t = List.map (fun s -> s.state_id) (all_states t)

let parent_of t id =
  let rec search parent s =
    if String.equal s.state_id id then parent
    else
      let rec among = function
        | [] -> None
        | c :: rest -> (
            match search (Some s.state_id) c with Some p -> Some p | None -> among rest)
      in
      among s.substates
  in
  let rec top = function
    | [] -> None
    | s :: rest -> ( match search None s with Some p -> Some p | None -> if String.equal s.state_id id then None else top rest)
  in
  (* [search None s] returns None both when not found and when found at
     top level; disambiguate by membership. *)
  let found =
    List.exists (fun s -> String.equal s.state_id id) (all_states t)
  in
  if not found then None else top t.states

let ancestors t id =
  let rec loop acc id =
    match parent_of t id with Some p -> loop (p :: acc) p | None -> List.rev acc
  in
  loop [] id
