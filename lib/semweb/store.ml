type t = {
  mutable triples : Term.triple list;  (* newest first *)
  all : (Term.triple, unit) Hashtbl.t;
  by_subject : (Term.t, Term.triple list) Hashtbl.t;
  by_predicate : (string, Term.triple list) Hashtbl.t;
}

let create () =
  {
    triples = [];
    all = Hashtbl.create 64;
    by_subject = Hashtbl.create 64;
    by_predicate = Hashtbl.create 64;
  }

let mem t triple = Hashtbl.mem t.all triple

let push tbl key triple =
  let cur = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (triple :: cur)

let add t triple =
  if mem t triple then false
  else begin
    Hashtbl.replace t.all triple ();
    t.triples <- triple :: t.triples;
    push t.by_subject triple.Term.subj triple;
    push t.by_predicate triple.Term.pred triple;
    true
  end

let add_all t triples =
  List.fold_left (fun acc triple -> if add t triple then acc + 1 else acc) 0 triples

let remove t triple =
  if not (mem t triple) then false
  else begin
    Hashtbl.remove t.all triple;
    t.triples <- List.filter (fun x -> Term.compare_triple x triple <> 0) t.triples;
    let drop tbl key =
      match Hashtbl.find_opt tbl key with
      | Some l ->
          Hashtbl.replace tbl key (List.filter (fun x -> Term.compare_triple x triple <> 0) l)
      | None -> ()
    in
    drop t.by_subject triple.Term.subj;
    drop t.by_predicate triple.Term.pred;
    true
  end

let size t = Hashtbl.length t.all

let matches ?subj ?pred ?obj triple =
  (match subj with Some s -> Term.equal s triple.Term.subj | None -> true)
  && (match pred with Some p -> String.equal p triple.Term.pred | None -> true)
  && match obj with Some o -> Term.equal o triple.Term.obj | None -> true

let query t ?subj ?pred ?obj () =
  let candidates =
    match (subj, pred) with
    | Some s, _ -> (
        match Hashtbl.find_opt t.by_subject s with Some l -> List.rev l | None -> [])
    | None, Some p -> (
        match Hashtbl.find_opt t.by_predicate p with Some l -> List.rev l | None -> [])
    | None, None -> List.rev t.triples
  in
  List.filter (matches ?subj ?pred ?obj) candidates

let objects t ~subj ~pred =
  List.map (fun triple -> triple.Term.obj) (query t ~subj ~pred ())

let subjects t ~pred ~obj =
  List.map (fun triple -> triple.Term.subj) (query t ~pred ~obj ())

let fold f t acc = List.fold_left (fun acc triple -> f triple acc) acc (List.rev t.triples)

let to_list t = List.rev t.triples

let copy t =
  let fresh = create () in
  ignore (add_all fresh (to_list t));
  fresh
