(** Turtle serialization and parsing (a pragmatic subset).

    Supported on input: [@prefix] directives, prefixed names, full IRIs
    in angle brackets, blank nodes ([_:label]), the [a] keyword, string
    literals with [@lang] or [^^datatype], predicate lists with [;] and
    object lists with [,], and [#] comments. Not supported: collections,
    anonymous blank nodes ([\[...\]]), multi-line strings, numeric/bool
    shorthand. *)

exception Parse_error of string

val to_string : ?prefixes:(string * string) list -> Store.t -> string
(** Serialize grouping by subject, with [;]/[,] abbreviation. Default
    prefixes: rdf, rdfs, owl, sosae. *)

val of_string : string -> Store.t
(** @raise Parse_error on unsupported or malformed input. *)
