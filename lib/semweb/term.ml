type literal = { value : string; datatype : string option; lang : string option }

type t = Iri of string | Blank of string | Lit of literal

type triple = { subj : t; pred : string; obj : t }

let iri s = Iri s

let blank s = Blank s

let lit ?datatype ?lang value = Lit { value; datatype; lang }

let triple subj pred obj = { subj; pred; obj }

let compare = Stdlib.compare

let equal a b = compare a b = 0

let compare_triple = Stdlib.compare

let to_string = function
  | Iri i -> "<" ^ i ^ ">"
  | Blank b -> "_:" ^ b
  | Lit { value; datatype = Some dt; _ } -> Printf.sprintf "%S^^<%s>" value dt
  | Lit { value; lang = Some l; _ } -> Printf.sprintf "%S@%s" value l
  | Lit { value; _ } -> Printf.sprintf "%S" value

let triple_to_string t =
  Printf.sprintf "%s <%s> %s ." (to_string t.subj) t.pred (to_string t.obj)

module Vocab = struct
  let rdf = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"

  let rdfs = "http://www.w3.org/2000/01/rdf-schema#"

  let owl = "http://www.w3.org/2002/07/owl#"

  let rdf_type = rdf ^ "type"

  let rdfs_sub_class_of = rdfs ^ "subClassOf"

  let rdfs_sub_property_of = rdfs ^ "subPropertyOf"

  let rdfs_domain = rdfs ^ "domain"

  let rdfs_range = rdfs ^ "range"

  let rdfs_label = rdfs ^ "label"

  let rdfs_comment = rdfs ^ "comment"

  let owl_class = owl ^ "Class"

  let owl_object_property = owl ^ "ObjectProperty"

  let owl_named_individual = owl ^ "NamedIndividual"

  let owl_disjoint_with = owl ^ "disjointWith"

  let owl_inverse_of = owl ^ "inverseOf"

  let sosae local = "http://sosae.example.org/ns#" ^ local
end
