(** RDF terms and triples — the minimal semantic-web substrate for the
    paper's §8 move "toward the use of the OWL web ontology language". *)

type literal = {
  value : string;
  datatype : string option;  (** datatype IRI *)
  lang : string option;
}

type t =
  | Iri of string
  | Blank of string  (** blank-node label, without the [_:] prefix *)
  | Lit of literal

type triple = { subj : t; pred : string; obj : t }
(** Predicates are always IRIs. *)

val iri : string -> t

val blank : string -> t

val lit : ?datatype:string -> ?lang:string -> string -> t

val triple : t -> string -> t -> triple

val equal : t -> t -> bool

val compare : t -> t -> int

val compare_triple : triple -> triple -> int

val to_string : t -> string
(** NTriples-like rendering: [<iri>], [_:label], ["value"@lang] /
    ["value"^^<dt>]. *)

val triple_to_string : triple -> string

(** Well-known vocabulary IRIs. *)
module Vocab : sig
  val rdf_type : string

  val rdfs_sub_class_of : string

  val rdfs_sub_property_of : string

  val rdfs_domain : string

  val rdfs_range : string

  val rdfs_label : string

  val rdfs_comment : string

  val owl_class : string

  val owl_object_property : string

  val owl_named_individual : string

  val owl_disjoint_with : string

  val owl_inverse_of : string

  val sosae : string -> string
  (** Terms in this reproduction's own namespace
      [http://sosae.example.org/ns#]. *)
end
