(** Export of ScenarioML ontologies and mappings to OWL triples — the
    paper's §8 direction: "We are moving toward the use of the OWL web
    ontology language in order to make use of existing OWL tools and
    reasoners."

    Encoding: domain classes become [owl:Class]es (subsumption via
    [rdfs:subClassOf]); individuals become typed [owl:NamedIndividual]s;
    event types become instances of [sosae:EventType] *and* classes
    related by [rdfs:subClassOf] (so the OWL reasoner can answer
    subsumption questions about events); parameters become blank nodes
    with [sosae:paramName]/[sosae:paramClass]; the event-to-component
    mapping becomes [sosae:mapsTo] assertions onto [sosae:Component]
    individuals. *)

val iri_of : string -> string
(** IRI for a ScenarioML definition id (in the sosae namespace). *)

val ontology_to_store : Ontology.Types.t -> Store.t

val mapping_to_store : Mapping.Types.t -> Store.t

val full_export : Ontology.Types.t -> Mapping.Types.t -> Store.t
(** Ontology triples plus mapping triples in one store. *)

val components_realizing : Store.t -> event_type:string -> string list
(** After reasoning: component ids reachable from the event type (or any
    of its event supertypes) via [sosae:mapsTo] — demonstrates answering
    mapping questions with the OWL reasoner instead of the native
    mapping structure. *)
