open Term.Vocab

let iri_of id = sosae id

let label name = Term.lit name

let ontology_to_store (o : Ontology.Types.t) =
  let store = Store.create () in
  let add s p ob = ignore (Store.add store (Term.triple s p ob)) in
  (* vocabulary scaffolding *)
  add (Term.Iri (sosae "EventType")) rdf_type (Term.Iri owl_class);
  add (Term.Iri (sosae "mapsTo")) rdf_type (Term.Iri owl_object_property);
  add (Term.Iri (sosae "actor")) rdf_type (Term.Iri owl_object_property);
  List.iter
    (fun c ->
      let s = Term.Iri (iri_of c.Ontology.Types.class_id) in
      add s rdf_type (Term.Iri owl_class);
      add s rdfs_label (label c.Ontology.Types.class_name);
      if c.Ontology.Types.class_description <> "" then
        add s rdfs_comment (label c.Ontology.Types.class_description);
      match c.Ontology.Types.class_super with
      | Some super -> add s rdfs_sub_class_of (Term.Iri (iri_of super))
      | None -> ())
    o.Ontology.Types.classes;
  List.iter
    (fun i ->
      let s = Term.Iri (iri_of i.Ontology.Types.ind_id) in
      add s rdf_type (Term.Iri owl_named_individual);
      add s rdf_type (Term.Iri (iri_of i.Ontology.Types.ind_class));
      add s rdfs_label (label i.Ontology.Types.ind_name))
    o.Ontology.Types.individuals;
  List.iter
    (fun e ->
      let s = Term.Iri (iri_of e.Ontology.Types.event_id) in
      add s rdf_type (Term.Iri (sosae "EventType"));
      add s rdf_type (Term.Iri owl_class);
      add s rdfs_label (label e.Ontology.Types.event_name);
      add s (sosae "template") (label e.Ontology.Types.template);
      (match e.Ontology.Types.event_super with
      | Some super -> add s rdfs_sub_class_of (Term.Iri (iri_of super))
      | None -> ());
      (match e.Ontology.Types.actor with
      | Some actor -> add s (sosae "actor") (Term.Iri (iri_of actor))
      | None -> ());
      List.iteri
        (fun idx p ->
          let b = Term.blank (Printf.sprintf "%s_param%d" e.Ontology.Types.event_id idx) in
          add s (sosae "parameter") b;
          add b (sosae "paramName") (label p.Ontology.Types.param_name);
          add b (sosae "paramClass") (Term.Iri (iri_of p.Ontology.Types.param_class)))
        e.Ontology.Types.params)
    o.Ontology.Types.event_types;
  List.iter
    (fun tm ->
      let s = Term.Iri (iri_of tm.Ontology.Types.term_id) in
      add s rdfs_label (label tm.Ontology.Types.term_name);
      add s rdfs_comment (label tm.Ontology.Types.term_definition))
    o.Ontology.Types.terms;
  store

let mapping_to_store (m : Mapping.Types.t) =
  let store = Store.create () in
  let add s p ob = ignore (Store.add store (Term.triple s p ob)) in
  add (Term.Iri (sosae "Component")) rdf_type (Term.Iri owl_class);
  List.iter
    (fun entry ->
      let s = Term.Iri (iri_of entry.Mapping.Types.event_type) in
      List.iter
        (fun comp ->
          let c = Term.Iri (iri_of comp) in
          add c rdf_type (Term.Iri (sosae "Component"));
          add s (sosae "mapsTo") c)
        entry.Mapping.Types.components)
    m.Mapping.Types.entries;
  store

let full_export o m =
  let store = ontology_to_store o in
  ignore (Store.add_all store (Store.to_list (mapping_to_store m)));
  store

let components_realizing store ~event_type =
  let closed = Reason.closure store in
  let prefix = sosae "" in
  let strip iri =
    let n = String.length prefix in
    if String.length iri > n && String.sub iri 0 n = prefix then
      String.sub iri n (String.length iri - n)
    else iri
  in
  (* the event type and all its (event) superclasses *)
  let supers =
    Term.Iri (iri_of event_type)
    :: Store.objects closed ~subj:(Term.Iri (iri_of event_type)) ~pred:rdfs_sub_class_of
  in
  let components =
    List.concat_map
      (fun s ->
        match s with
        | Term.Iri _ -> (
            List.filter_map
              (function Term.Iri c -> Some (strip c) | Term.Blank _ | Term.Lit _ -> None)
              (Store.objects closed ~subj:s ~pred:(sosae "mapsTo")))
        | Term.Blank _ | Term.Lit _ -> [])
      supers
  in
  List.sort_uniq String.compare components
