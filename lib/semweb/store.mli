(** In-memory triple store with pattern queries.

    Triples are kept deduplicated; [query] matches a pattern where
    [None] is a wildcard. Indexed by subject and by predicate for the
    access paths the reasoner uses. *)

type t

val create : unit -> t

val add : t -> Term.triple -> bool
(** [true] when the triple was new. *)

val add_all : t -> Term.triple list -> int
(** Number of triples actually added. *)

val mem : t -> Term.triple -> bool

val remove : t -> Term.triple -> bool
(** [true] when the triple was present. *)

val size : t -> int

val query : t -> ?subj:Term.t -> ?pred:string -> ?obj:Term.t -> unit -> Term.triple list
(** All matching triples, in insertion order. *)

val objects : t -> subj:Term.t -> pred:string -> Term.t list

val subjects : t -> pred:string -> obj:Term.t -> Term.t list

val fold : (Term.triple -> 'a -> 'a) -> t -> 'a -> 'a
(** Insertion order. *)

val to_list : t -> Term.triple list

val copy : t -> t
