(** Basic-graph-pattern queries over a store — the query slice of the
    paper's §8 ambition to "make use of existing OWL tools and
    reasoners": conjunctive triple patterns with shared variables,
    evaluated against the raw store or its reasoned closure.

    {[
      (* every organization and what it maps to *)
      Query.select store
        [
          pattern (v "org") Term.Vocab.rdf_type (iri organization_class);
          pattern (v "org") (Term.Vocab.sosae "mapsTo") (v "component");
        ]
    ]} *)

type pattern_term =
  | Var of string  (** binds/matches a variable by name *)
  | Const of Term.t

type pattern = { subj : pattern_term; pred : pattern_term; obj : pattern_term }

val pattern : pattern_term -> pattern_term -> pattern_term -> pattern

val v : string -> pattern_term

val iri : string -> pattern_term

val lit : string -> pattern_term

type binding = (string * Term.t) list
(** Variable name to bound term; variables in alphabetical order. *)

val select : ?reason:bool -> Store.t -> pattern list -> binding list
(** All solutions to the conjunction. With [reason] (default false) the
    patterns are evaluated against {!Reason.closure} of the store.
    Solutions are deduplicated; order follows store insertion order of
    the first pattern. An empty pattern list yields one empty binding. *)

val ask : ?reason:bool -> Store.t -> pattern list -> bool
(** Is there at least one solution? *)

val bindings_to_string : binding -> string
