(** Forward-chaining RDFS/OWL-Lite-style reasoner.

    Computes the closure of a store under:
    - subclass transitivity (rdfs11) and type inheritance (rdfs9);
    - subproperty transitivity (rdfs5) and inheritance (rdfs7);
    - domain (rdfs2) and range (rdfs3) typing;
    - [owl:inverseOf] symmetry of assertions.

    Consistency: reports individuals typed by two classes declared
    [owl:disjointWith] (directly or via subclassing). *)

val closure : Store.t -> Store.t
(** A new store containing the input plus all derived triples. The
    input store is not modified. *)

val entails : Store.t -> Term.triple -> bool
(** Naive entailment: is the triple in the closure? *)

val instances_of : Store.t -> string -> Term.t list
(** Individuals typed (after closure) by the class IRI. *)

val subclasses_of : Store.t -> string -> string list
(** Proper and improper subclasses (after closure), as IRIs. *)

type clash = { individual : Term.t; class_a : string; class_b : string }

val inconsistencies : Store.t -> clash list

val pp_clash : Format.formatter -> clash -> unit
