type pattern_term = Var of string | Const of Term.t

type pattern = { subj : pattern_term; pred : pattern_term; obj : pattern_term }

let pattern subj pred obj = { subj; pred; obj }

let v name = Var name

let iri i = Const (Term.iri i)

let lit s = Const (Term.lit s)

type binding = (string * Term.t) list

(* Match one pattern position against a term under a binding; returns
   the (possibly extended) binding, or None on mismatch. *)
let match_term binding pattern_term term =
  match pattern_term with
  | Const t -> if Term.equal t term then Some binding else None
  | Var name -> (
      match List.assoc_opt name binding with
      | Some bound -> if Term.equal bound term then Some binding else None
      | None -> Some ((name, term) :: binding))

let match_pattern binding p triple =
  Option.bind (match_term binding p.subj triple.Term.subj) (fun binding ->
      Option.bind (match_term binding p.pred (Term.Iri triple.Term.pred)) (fun binding ->
          match_term binding p.obj triple.Term.obj))

(* Use the store indexes where the pattern's subject or predicate is
   already determined by the binding. *)
let candidates store binding p =
  let subj =
    match p.subj with
    | Const t -> Some t
    | Var name -> List.assoc_opt name binding
  in
  let pred =
    match p.pred with
    | Const (Term.Iri i) -> Some i
    | Const (Term.Blank _ | Term.Lit _) -> None
    | Var name -> (
        match List.assoc_opt name binding with
        | Some (Term.Iri i) -> Some i
        | Some (Term.Blank _ | Term.Lit _) | None -> None)
  in
  Store.query store ?subj ?pred ()

let select ?(reason = false) store patterns =
  let store = if reason then Reason.closure store else store in
  let step solutions p =
    List.concat_map
      (fun binding ->
        List.filter_map
          (fun triple -> match_pattern binding p triple)
          (candidates store binding p))
      solutions
  in
  let raw = List.fold_left step [ [] ] patterns in
  let normalize binding =
    List.sort (fun (a, _) (b, _) -> String.compare a b) binding
  in
  let normalized = List.map normalize raw in
  List.fold_left
    (fun acc b -> if List.exists (( = ) b) acc then acc else acc @ [ b ])
    [] normalized

let ask ?reason store patterns = select ?reason store patterns <> []

let bindings_to_string binding =
  String.concat ", "
    (List.map (fun (name, term) -> Printf.sprintf "?%s = %s" name (Term.to_string term)) binding)
