open Term.Vocab

(* One round of rule application; returns the number of new triples. *)
let apply_rules store =
  let added = ref 0 in
  let add triple = if Store.add store triple then incr added in
  let iri_of = function Term.Iri i -> Some i | Term.Blank _ | Term.Lit _ -> None in
  (* rdfs11: subClassOf transitivity *)
  List.iter
    (fun t1 ->
      match iri_of t1.Term.obj with
      | Some mid ->
          List.iter
            (fun t2 -> add (Term.triple t1.Term.subj rdfs_sub_class_of t2.Term.obj))
            (Store.query store ~subj:(Term.Iri mid) ~pred:rdfs_sub_class_of ())
      | None -> ())
    (Store.query store ~pred:rdfs_sub_class_of ());
  (* rdfs9: type inheritance along subClassOf *)
  List.iter
    (fun t ->
      match iri_of t.Term.obj with
      | Some cls ->
          List.iter
            (fun sc -> add (Term.triple t.Term.subj rdf_type sc.Term.obj))
            (Store.query store ~subj:(Term.Iri cls) ~pred:rdfs_sub_class_of ())
      | None -> ())
    (Store.query store ~pred:rdf_type ());
  (* rdfs5: subPropertyOf transitivity *)
  List.iter
    (fun t1 ->
      match iri_of t1.Term.obj with
      | Some mid ->
          List.iter
            (fun t2 -> add (Term.triple t1.Term.subj rdfs_sub_property_of t2.Term.obj))
            (Store.query store ~subj:(Term.Iri mid) ~pred:rdfs_sub_property_of ())
      | None -> ())
    (Store.query store ~pred:rdfs_sub_property_of ());
  (* rdfs7: property inheritance; rdfs2/rdfs3: domain and range *)
  List.iter
    (fun decl ->
      match (iri_of decl.Term.subj, decl.Term.pred) with
      | Some prop, pred_iri ->
          if String.equal pred_iri rdfs_sub_property_of then begin
            match iri_of decl.Term.obj with
            | Some super ->
                List.iter
                  (fun use -> add (Term.triple use.Term.subj super use.Term.obj))
                  (Store.query store ~pred:prop ())
            | None -> ()
          end
          else if String.equal pred_iri rdfs_domain then begin
            List.iter
              (fun use -> add (Term.triple use.Term.subj rdf_type decl.Term.obj))
              (Store.query store ~pred:prop ())
          end
          else if String.equal pred_iri rdfs_range then begin
            List.iter
              (fun use ->
                match use.Term.obj with
                | Term.Iri _ | Term.Blank _ ->
                    add (Term.triple use.Term.obj rdf_type decl.Term.obj)
                | Term.Lit _ -> ())
              (Store.query store ~pred:prop ())
          end
          else if String.equal pred_iri owl_inverse_of then begin
            match iri_of decl.Term.obj with
            | Some inverse ->
                List.iter
                  (fun use ->
                    match use.Term.obj with
                    | Term.Iri _ | Term.Blank _ ->
                        add (Term.triple use.Term.obj inverse use.Term.subj)
                    | Term.Lit _ -> ())
                  (Store.query store ~pred:prop ());
                List.iter
                  (fun use ->
                    match use.Term.obj with
                    | Term.Iri _ | Term.Blank _ ->
                        add (Term.triple use.Term.obj prop use.Term.subj)
                    | Term.Lit _ -> ())
                  (Store.query store ~pred:inverse ())
            | None -> ()
          end
      | None, _ -> ())
    (Store.to_list store);
  !added

let closure input =
  let store = Store.copy input in
  let rec fixpoint () = if apply_rules store > 0 then fixpoint () in
  fixpoint ();
  store

let entails store triple =
  let closed = closure store in
  Store.mem closed triple

let instances_of store cls =
  let closed = closure store in
  Store.subjects closed ~pred:rdf_type ~obj:(Term.Iri cls)

let subclasses_of store cls =
  let closed = closure store in
  let proper =
    List.filter_map
      (function Term.Iri i -> Some i | Term.Blank _ | Term.Lit _ -> None)
      (Store.subjects closed ~pred:rdfs_sub_class_of ~obj:(Term.Iri cls))
  in
  if List.exists (String.equal cls) proper then proper else cls :: proper

type clash = { individual : Term.t; class_a : string; class_b : string }

let inconsistencies store =
  let closed = closure store in
  let disjoint_pairs =
    List.filter_map
      (fun t ->
        match (t.Term.subj, t.Term.obj) with
        | Term.Iri a, Term.Iri b -> Some (a, b)
        | _, _ -> None)
      (Store.query closed ~pred:owl_disjoint_with ())
  in
  List.concat_map
    (fun (a, b) ->
      let in_a = Store.subjects closed ~pred:rdf_type ~obj:(Term.Iri a) in
      let in_b = Store.subjects closed ~pred:rdf_type ~obj:(Term.Iri b) in
      List.filter_map
        (fun x ->
          if List.exists (Term.equal x) in_b then
            Some { individual = x; class_a = a; class_b = b }
          else None)
        in_a)
    disjoint_pairs

let pp_clash ppf c =
  Format.fprintf ppf "%s is typed by disjoint classes <%s> and <%s>"
    (Term.to_string c.individual) c.class_a c.class_b
