exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let default_prefixes =
  [
    ("rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#");
    ("rdfs", "http://www.w3.org/2000/01/rdf-schema#");
    ("owl", "http://www.w3.org/2002/07/owl#");
    ("sosae", "http://sosae.example.org/ns#");
  ]

(* --- serialization --- *)

let shorten prefixes iri =
  let rec find = function
    | [] -> None
    | (p, ns) :: rest ->
        let n = String.length ns in
        if String.length iri > n && String.sub iri 0 n = ns then
          let local = String.sub iri n (String.length iri - n) in
          let ok =
            local <> ""
            && String.for_all
                 (fun c ->
                   (c >= 'a' && c <= 'z')
                   || (c >= 'A' && c <= 'Z')
                   || (c >= '0' && c <= '9')
                   || c = '_' || c = '-')
                 local
          in
          if ok then Some (p ^ ":" ^ local) else find rest
        else find rest
  in
  find prefixes

let term_to_turtle prefixes = function
  | Term.Iri i -> (
      match shorten prefixes i with Some s -> s | None -> "<" ^ i ^ ">")
  | Term.Blank b -> "_:" ^ b
  | Term.Lit { value; datatype = Some dt; _ } ->
      Printf.sprintf "%S^^%s"
        value
        (match shorten prefixes dt with Some s -> s | None -> "<" ^ dt ^ ">")
  | Term.Lit { value; lang = Some l; _ } -> Printf.sprintf "%S@%s" value l
  | Term.Lit { value; _ } -> Printf.sprintf "%S" value

let pred_to_turtle prefixes p =
  if String.equal p Term.Vocab.rdf_type then "a"
  else match shorten prefixes p with Some s -> s | None -> "<" ^ p ^ ">"

let to_string ?(prefixes = default_prefixes) store =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (p, ns) -> Buffer.add_string buf (Printf.sprintf "@prefix %s: <%s> .\n" p ns))
    prefixes;
  Buffer.add_char buf '\n';
  (* Group triples by subject (insertion order of first occurrence). *)
  let triples = Store.to_list store in
  let subjects =
    List.fold_left
      (fun acc t ->
        if List.exists (Term.equal t.Term.subj) acc then acc else acc @ [ t.Term.subj ])
      [] triples
  in
  List.iter
    (fun subj ->
      let mine = List.filter (fun t -> Term.equal t.Term.subj subj) triples in
      let preds =
        List.fold_left
          (fun acc t ->
            if List.exists (String.equal t.Term.pred) acc then acc else acc @ [ t.Term.pred ])
          [] mine
      in
      Buffer.add_string buf (term_to_turtle prefixes subj);
      List.iteri
        (fun i pred ->
          let objs =
            List.filter_map
              (fun t -> if String.equal t.Term.pred pred then Some t.Term.obj else None)
              mine
          in
          if i > 0 then Buffer.add_string buf " ;";
          Buffer.add_string buf
            (Printf.sprintf "\n  %s %s" (pred_to_turtle prefixes pred)
               (String.concat ", " (List.map (term_to_turtle prefixes) objs))))
        preds;
      Buffer.add_string buf " .\n")
    subjects;
  Buffer.contents buf

(* --- parsing --- *)

type token =
  | Tok_iri of string
  | Tok_pname of string * string  (* prefix, local *)
  | Tok_blank of string
  | Tok_literal of Term.literal
  | Tok_a
  | Tok_dot
  | Tok_semi
  | Tok_comma
  | Tok_prefix_directive

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  let emit tok = tokens := tok :: !tokens in
  let is_name_char c =
    (c >= 'a' && c <= 'z')
    || (c >= 'A' && c <= 'Z')
    || (c >= '0' && c <= '9')
    || c = '_' || c = '-' || c = '.'
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '#' then begin
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '<' then begin
      let close =
        match String.index_from_opt input !i '>' with
        | Some j -> j
        | None -> parse_error "unterminated IRI"
      in
      emit (Tok_iri (String.sub input (!i + 1) (close - !i - 1)));
      i := close + 1
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      incr i;
      let rec scan () =
        if !i >= n then parse_error "unterminated string literal"
        else
          match input.[!i] with
          | '"' -> incr i
          | '\\' ->
              if !i + 1 >= n then parse_error "dangling escape";
              (match input.[!i + 1] with
              | 'n' -> Buffer.add_char buf '\n'
              | 't' -> Buffer.add_char buf '\t'
              | 'r' -> Buffer.add_char buf '\r'
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | other -> parse_error "unsupported escape \\%c" other);
              i := !i + 2;
              scan ()
          | ch ->
              Buffer.add_char buf ch;
              incr i;
              scan ()
      in
      scan ();
      let value = Buffer.contents buf in
      (* optional @lang or ^^datatype *)
      if !i < n && input.[!i] = '@' then begin
        incr i;
        let start = !i in
        while !i < n && is_name_char input.[!i] do
          incr i
        done;
        emit (Tok_literal { Term.value; datatype = None; lang = Some (String.sub input start (!i - start)) })
      end
      else if !i + 1 < n && input.[!i] = '^' && input.[!i + 1] = '^' then begin
        i := !i + 2;
        if !i < n && input.[!i] = '<' then begin
          let close =
            match String.index_from_opt input !i '>' with
            | Some j -> j
            | None -> parse_error "unterminated datatype IRI"
          in
          let dt = String.sub input (!i + 1) (close - !i - 1) in
          i := close + 1;
          emit (Tok_literal { Term.value; datatype = Some dt; lang = None })
        end
        else begin
          (* prefixed datatype: prefix:local *)
          let start = !i in
          while !i < n && (is_name_char input.[!i] || input.[!i] = ':') do
            incr i
          done;
          let dt = String.sub input start (!i - start) in
          emit (Tok_literal { Term.value; datatype = Some dt; lang = None })
        end
      end
      else emit (Tok_literal { Term.value; datatype = None; lang = None })
    end
    else if c = '.' && (!i + 1 >= n || not (is_name_char input.[!i + 1])) then begin
      emit Tok_dot;
      incr i
    end
    else if c = ';' then begin
      emit Tok_semi;
      incr i
    end
    else if c = ',' then begin
      emit Tok_comma;
      incr i
    end
    else if c = '@' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && is_name_char input.[!j] do
        incr j
      done;
      let word = String.sub input start (!j - start) in
      if String.equal word "prefix" then begin
        emit Tok_prefix_directive;
        i := !j
      end
      else parse_error "unsupported directive @%s" word
    end
    else if c = '_' && !i + 1 < n && input.[!i + 1] = ':' then begin
      let start = !i + 2 in
      let j = ref start in
      while !j < n && is_name_char input.[!j] do
        incr j
      done;
      emit (Tok_blank (String.sub input start (!j - start)));
      i := !j
    end
    else begin
      (* bare word: either "a" or prefix:local (possibly empty prefix) *)
      let start = !i in
      let j = ref start in
      while !j < n && (is_name_char input.[!j] || input.[!j] = ':') do
        incr j
      done;
      if !j = start then parse_error "unexpected character %C" c;
      (* don't swallow a trailing '.' that ends the statement *)
      let word_end =
        if !j > start && input.[!j - 1] = '.' then !j - 1 else !j
      in
      let word = String.sub input start (word_end - start) in
      i := word_end;
      if String.equal word "a" then emit Tok_a
      else
        match String.index_opt word ':' with
        | Some k ->
            emit
              (Tok_pname
                 (String.sub word 0 k, String.sub word (k + 1) (String.length word - k - 1)))
        | None -> parse_error "unexpected token %S" word
    end
  done;
  List.rev !tokens

let of_string input =
  let store = Store.create () in
  let prefixes = Hashtbl.create 8 in
  List.iter (fun (p, ns) -> Hashtbl.replace prefixes p ns) default_prefixes;
  let expand prefix local =
    match Hashtbl.find_opt prefixes prefix with
    | Some ns -> ns ^ local
    | None -> parse_error "unknown prefix %S" prefix
  in
  let resolve_datatype = function
    | None -> None
    | Some dt ->
        if String.contains dt ':' && not (String.length dt > 4 && String.sub dt 0 4 = "http")
        then begin
          match String.index_opt dt ':' with
          | Some k ->
              Some (expand (String.sub dt 0 k) (String.sub dt (k + 1) (String.length dt - k - 1)))
          | None -> Some dt
        end
        else Some dt
  in
  let term_of = function
    | Tok_iri i -> Term.Iri i
    | Tok_pname (p, l) -> Term.Iri (expand p l)
    | Tok_blank b -> Term.Blank b
    | Tok_literal l -> Term.Lit { l with Term.datatype = resolve_datatype l.Term.datatype }
    | Tok_a -> Term.Iri Term.Vocab.rdf_type
    | Tok_dot | Tok_semi | Tok_comma | Tok_prefix_directive ->
        parse_error "expected a term"
  in
  let pred_of = function
    | Tok_a -> Term.Vocab.rdf_type
    | Tok_iri i -> i
    | Tok_pname (p, l) -> expand p l
    | Tok_blank _ | Tok_literal _ | Tok_dot | Tok_semi | Tok_comma | Tok_prefix_directive ->
        parse_error "expected a predicate"
  in
  let rec statements = function
    | [] -> ()
    | Tok_prefix_directive :: Tok_pname (p, "") :: Tok_iri ns :: Tok_dot :: rest ->
        Hashtbl.replace prefixes p ns;
        statements rest
    | Tok_prefix_directive :: _ -> parse_error "malformed @prefix directive"
    | tok :: rest ->
        let subj = term_of tok in
        predicate_list subj rest
  and predicate_list subj = function
    | tok :: rest ->
        let pred = pred_of tok in
        object_list subj pred rest
    | [] -> parse_error "unexpected end of input after subject"
  and object_list subj pred = function
    | tok :: rest -> (
        let obj = term_of tok in
        ignore (Store.add store (Term.triple subj pred obj));
        match rest with
        | Tok_comma :: rest -> object_list subj pred rest
        | Tok_semi :: rest -> predicate_list subj rest
        | Tok_dot :: rest -> statements rest
        | [] -> parse_error "missing final '.'"
        | _ -> parse_error "expected ',', ';' or '.' after object")
    | [] -> parse_error "unexpected end of input after predicate"
  in
  statements (tokenize input);
  store
