type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* Escaping copies clean spans with [Buffer.add_substring] instead of
   walking char by char: journal payloads embed whole XML documents as
   JSON strings, where only the occasional quote, backslash or newline
   interrupts a run. The table maps each byte to '\000' (clean) or the
   letter of its two-character escape ('u' for the \u00xx forms). *)
let esc_table =
  String.init 256 (fun i ->
      match Char.chr i with
      | '"' -> '"'
      | '\\' -> '\\'
      | '\n' -> 'n'
      | '\r' -> 'r'
      | '\t' -> 't'
      | '\b' -> 'b'
      | '\012' -> 'f'
      | c when Char.code c < 0x20 -> 'u'
      | _ -> '\000')

let escape_to buf s =
  Buffer.add_char buf '"';
  let n = String.length s in
  let start = ref 0 in
  let i = ref 0 in
  while !i < n do
    let esc =
      String.unsafe_get esc_table (Char.code (String.unsafe_get s !i))
    in
    if esc <> '\000' then begin
      if !i > !start then Buffer.add_substring buf s !start (!i - !start);
      if esc = 'u' then
        Buffer.add_string buf
          (Printf.sprintf "\\u%04x" (Char.code (String.unsafe_get s !i)))
      else begin
        Buffer.add_char buf '\\';
        Buffer.add_char buf esc
      end;
      start := !i + 1
    end;
    incr i
  done;
  if n > !start then Buffer.add_substring buf s !start (n - !start);
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.12g" f)
      else Buffer.add_string buf "null"
  | String s -> escape_to buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let strings l = List (List.map (fun s -> String s) l)

(* ------------------------------------------------------------------ *)
(* Reused-buffer writer                                               *)
(* ------------------------------------------------------------------ *)

module Writer = struct
  (* A [Buffer.t] whose storage survives [clear]: serializing a stream
     of similarly-sized documents through one writer allocates the
     backing store once instead of re-growing a fresh buffer per
     document. [raw] is the splice primitive — pre-serialized JSON
     (a cached response body, say) is copied in verbatim, never
     re-parsed or re-rendered. *)
  type json = t

  type t = { buf : Buffer.t }

  let create ?(size = 4096) () = { buf = Buffer.create size }

  let clear w = Buffer.clear w.buf

  let length w = Buffer.length w.buf

  let contents w = Buffer.contents w.buf

  let raw w s = Buffer.add_string w.buf s

  let char w c = Buffer.add_char w.buf c

  let int w i = Buffer.add_string w.buf (string_of_int i)

  let string w s = escape_to w.buf s

  let json w j = to_buffer w.buf j

  let field w ~first name =
    if not first then Buffer.add_char w.buf ',';
    escape_to w.buf name;
    Buffer.add_char w.buf ':'
end

(* ------------------------------------------------------------------ *)
(* Parsing                                                            *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type cursor = { input : string; mutable pos : int }

let peek c = if c.pos < String.length c.input then Some c.input.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance c;
        true
    | Some _ | None -> false
  do
    ()
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %C at offset %d, found %C" ch c.pos x
  | None -> parse_error "expected %C at offset %d, found end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.input && String.sub c.input c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "invalid literal at offset %d" c.pos

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; loop ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; loop ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; loop ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; loop ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; loop ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; loop ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; loop ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; loop ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.input then
              parse_error "truncated \\u escape at offset %d" c.pos;
            let code =
              try int_of_string ("0x" ^ String.sub c.input c.pos 4)
              with Failure _ -> parse_error "invalid \\u escape at offset %d" c.pos
            in
            c.pos <- c.pos + 4;
            (* Escaped control characters are all we emit; anything else
               is preserved as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            loop ()
        | Some x -> parse_error "invalid escape \\%C at offset %d" x c.pos
        | None -> parse_error "unterminated escape at offset %d" c.pos)
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let rec loop () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+') -> advance c; loop ()
    | Some ('.' | 'e' | 'E') ->
        is_float := true;
        advance c;
        loop ()
    | Some _ | None -> ()
  in
  loop ();
  let text = String.sub c.input start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> parse_error "invalid number %S at offset %d" text start
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        (* out-of-range integer literals still parse as floats *)
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> parse_error "invalid number %S at offset %d" text start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | Some x -> parse_error "expected ',' or ']' at offset %d, found %C" c.pos x
          | None -> parse_error "unterminated array at offset %d" c.pos
        in
        List (items [])
      end
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let field () =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          (k, parse_value c)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields (kv :: acc)
          | Some '}' ->
              advance c;
              List.rev (kv :: acc)
          | Some x -> parse_error "expected ',' or '}' at offset %d, found %C" c.pos x
          | None -> parse_error "unterminated object at offset %d" c.pos
        in
        Obj (fields [])
      end
  | Some x -> parse_error "unexpected %C at offset %d" x c.pos
  | None -> parse_error "unexpected end of input at offset %d" c.pos

let of_string s =
  let c = { input = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos < String.length s then
        Error (Printf.sprintf "trailing content at offset %d" c.pos)
      else Ok v
  | exception Parse_error m -> Error m

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let string_opt = function String s -> Some s | _ -> None

let int_opt = function Int i -> Some i | _ -> None

let bool_opt = function Bool b -> Some b | _ -> None

let list_opt = function List l -> Some l | _ -> None
