(** Minimal JSON library: a document builder and a parser, with no
    dependencies — the repo's JSON substrate.

    Grew out of [Walkthrough.Json] (since removed): machine-readable
    reports only needed a printer, but the evaluation server
    ({!Server.Daemon}) must {e read} request bodies too, so the module
    now stands alone under the walkthrough layer.

    Strings are escaped per RFC 8259; non-finite floats serialize as
    [null]. {!of_string} parses any RFC 8259 document (plus surrounding
    whitespace); it never raises. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_buffer : Buffer.t -> t -> unit

val strings : string list -> t
(** [List] of [String]s. *)

(** {1 Reused-buffer writer}

    The zero-copy serialization path of the evaluation server: one
    {!Writer.t} per connection (or per pooled worker) renders every
    response into the same backing store, so the steady state
    allocates no fresh buffers, and {!Writer.raw} splices
    already-serialized JSON — cached response bodies — without
    re-rendering the tree. *)

module Writer : sig
  type json = t
  (** The document type of the enclosing module, under a name the
      writer's own [t] does not shadow. *)

  type t

  val create : ?size:int -> unit -> t
  (** A writer whose backing store starts at [size] bytes (default
      4096) and is retained across {!clear}. *)

  val clear : t -> unit
  (** Empty the writer, keeping the backing store. *)

  val length : t -> int

  val contents : t -> string
  (** The bytes written since the last {!clear}. *)

  val raw : t -> string -> unit
  (** Splice a pre-serialized fragment in verbatim. The caller
      guarantees it is valid JSON in context. *)

  val char : t -> char -> unit

  val int : t -> int -> unit
  (** The decimal digits, unquoted — a JSON number. *)

  val string : t -> string -> unit
  (** An RFC 8259-escaped, quoted JSON string. *)

  val json : t -> json -> unit
  (** Render a document (same bytes as {!to_string}). *)

  val field : t -> first:bool -> string -> unit
  (** Object-field plumbing: [,] unless [first], then the quoted
      [name] and [:]. *)
end

val of_string : string -> (t, string) result
(** Parse one JSON document. Numbers without [.]/[e] parse as [Int]
    (falling back to [Float] when out of [int] range), others as
    [Float]. *)

val member : string -> t -> t option
(** First field of that name when the value is an [Obj]; [None]
    otherwise. *)

(** {1 Shape accessors}

    [None] when the value is not of the requested shape — the
    building blocks of request-body validation. *)

val string_opt : t -> string option

val int_opt : t -> int option
(** [Int] directly; an integral [Float] is not accepted. *)

val bool_opt : t -> bool option

val list_opt : t -> t list option
