let version = "1.0.0"

type project = {
  scenarios : Scenarioml.Scen.set;
  architecture : Adl.Structure.t;
  mapping : Mapping.Types.t;
}

type validation = {
  ontology_problems : Ontology.Wellformed.problem list;
  scenario_problems : Scenarioml.Validate.problem list;
  architecture_problems : Adl.Validate.problem list;
  coverage_problems : Mapping.Coverage.problem list;
  ok : bool;
}

let validate ?require_responsibilities p =
  let ontology = p.scenarios.Scenarioml.Scen.ontology in
  let ontology_problems = Ontology.Wellformed.check ontology in
  let scenario_problems = Scenarioml.Validate.check p.scenarios in
  let architecture_problems = Adl.Validate.check ?require_responsibilities p.architecture in
  let coverage_problems = Mapping.Coverage.check ontology p.architecture p.mapping in
  {
    ontology_problems;
    scenario_problems;
    architecture_problems;
    coverage_problems;
    ok =
      ontology_problems = [] && scenario_problems = [] && architecture_problems = []
      && coverage_problems = [];
  }

let evaluate ?config p =
  Walkthrough.Engine.evaluate_set ?config ~set:p.scenarios ~architecture:p.architecture
    ~mapping:p.mapping ()

let evaluate_scenario ?config p id =
  Option.map
    (Walkthrough.Engine.evaluate_scenario ?config ~set:p.scenarios
       ~architecture:p.architecture ~mapping:p.mapping)
    (Scenarioml.Scen.find p.scenarios id)

let evaluate_behavioral ?config p bundle =
  List.map
    (Walkthrough.Dynamic.evaluate_scenario ?config ~set:p.scenarios ~mapping:p.mapping
       ~charts:bundle.Statechart.Bundle.charts)
    p.scenarios.Scenarioml.Scen.scenarios

let export_owl p =
  Semweb.Export.full_export p.scenarios.Scenarioml.Scen.ontology p.mapping

exception Load_error of string

let load_error fmt = Format.kasprintf (fun s -> raise (Load_error s)) fmt

let read_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> s
  | exception Sys_error msg -> load_error "cannot read %s: %s" path msg

let load_project ~scenarios ~architecture ~mapping =
  let scenarios =
    match Scenarioml.Xml_io.set_of_string (read_file scenarios) with
    | s -> s
    | exception Scenarioml.Xml_io.Malformed m -> load_error "in %s: %s" scenarios m
  in
  let architecture_v =
    match Adl.Xml_io.of_string (read_file architecture) with
    | a -> a
    | exception Adl.Xml_io.Malformed m -> load_error "in %s: %s" architecture m
  in
  let mapping_v =
    match Mapping.Xml_io.of_string (read_file mapping) with
    | m -> m
    | exception Mapping.Xml_io.Malformed m -> load_error "in %s: %s" mapping m
  in
  { scenarios; architecture = architecture_v; mapping = mapping_v }

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let save_project p ~scenarios ~architecture ~mapping =
  write_file scenarios (Scenarioml.Xml_io.set_to_string p.scenarios);
  write_file architecture (Adl.Xml_io.to_string p.architecture);
  write_file mapping (Mapping.Xml_io.to_string p.mapping)

let pp_validation ppf v =
  let section name pp problems =
    if problems <> [] then begin
      Format.fprintf ppf "%s:@," name;
      List.iter (fun p -> Format.fprintf ppf "  %a@," pp p) problems
    end
  in
  Format.fprintf ppf "@[<v>";
  section "Ontology" Ontology.Wellformed.pp_problem v.ontology_problems;
  section "Scenarios" Scenarioml.Validate.pp_problem v.scenario_problems;
  section "Architecture" Adl.Validate.pp_problem v.architecture_problems;
  section "Mapping coverage" Mapping.Coverage.pp_problem v.coverage_problems;
  Format.fprintf ppf "%s@]" (if v.ok then "all artifacts valid" else "validation problems found")
