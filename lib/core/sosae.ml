let version = "1.1.0"

type project = {
  scenarios : Scenarioml.Scen.set;
  architecture : Adl.Structure.t;
  mapping : Mapping.Types.t;
}

type validation = {
  ontology_problems : Ontology.Wellformed.problem list;
  scenario_problems : Scenarioml.Validate.problem list;
  architecture_problems : Adl.Validate.problem list;
  coverage_problems : Mapping.Coverage.problem list;
  ok : bool;
}

let validate ?require_responsibilities p =
  let ontology = p.scenarios.Scenarioml.Scen.ontology in
  let ontology_problems = Ontology.Wellformed.check ontology in
  let scenario_problems = Scenarioml.Validate.check p.scenarios in
  let architecture_problems = Adl.Validate.check ?require_responsibilities p.architecture in
  let coverage_problems = Mapping.Coverage.check ontology p.architecture p.mapping in
  {
    ontology_problems;
    scenario_problems;
    architecture_problems;
    coverage_problems;
    ok =
      ontology_problems = [] && scenario_problems = [] && architecture_problems = []
      && coverage_problems = [];
  }

(* ------------------------------------------------------------------ *)
(* Parallel suite evaluation on a domain pool                         *)
(* ------------------------------------------------------------------ *)

let default_jobs () = Domain.recommended_domain_count ()

(* Scenario walkthroughs are independent of each other: a verdict is a
   pure function of (scenario, set, architecture, mapping, config) —
   the shared Reach oracle only memoizes, it never changes answers. So
   the suite fans out over a {!Dsim.Pool} of domains: the pool hands
   out scenario indices, each worker owns a private oracle (Reach
   memoizes into unsynchronized hashtables, so oracles are never
   shared across domains), and results land in a slot array indexed by
   the scenario's suite position. Whichever domain computes a scenario,
   slot [i] holds the exact verdict the sequential path would have
   produced — output ordering and content are deterministic. *)
let suite_results ~config ~jobs ~set ~architecture ~mapping scenarios =
  let scenarios = Array.of_list scenarios in
  let n = Array.length scenarios in
  let jobs = max 1 (min jobs n) in
  let results = Array.make n None in
  Dsim.Pool.with_pool ~jobs (fun pool ->
      Dsim.Pool.run pool ~tasks:n (fun () ->
          let reach = Adl.Reach.of_structure architecture in
          fun i ->
            results.(i) <-
              Some
                (Walkthrough.Engine.evaluate_scenario ~config ~reach ~set ~architecture
                   ~mapping scenarios.(i))));
  Array.to_list (Array.map (function Some r -> r | None -> assert false) results)

let evaluate_suite ?(config = Walkthrough.Engine.default_config) ?jobs p scenarios =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  suite_results ~config ~jobs ~set:p.scenarios ~architecture:p.architecture
    ~mapping:p.mapping scenarios

let evaluate ?(config = Walkthrough.Engine.default_config) ?jobs p =
  let results = evaluate_suite ~config ?jobs p p.scenarios.Scenarioml.Scen.scenarios in
  let style_violations = Walkthrough.Engine.check_architecture config p.architecture in
  let coverage_problems =
    Mapping.Coverage.check p.scenarios.Scenarioml.Scen.ontology p.architecture p.mapping
  in
  {
    Walkthrough.Engine.results;
    style_violations;
    coverage_problems;
    consistent =
      List.for_all Walkthrough.Verdict.is_consistent results && style_violations = [];
  }

let evaluate_scenario ?config p id =
  Option.map
    (Walkthrough.Engine.evaluate_scenario ?config ~set:p.scenarios
       ~architecture:p.architecture ~mapping:p.mapping)
    (Scenarioml.Scen.find p.scenarios id)

let evaluate_behavioral ?config p bundle =
  List.map
    (Walkthrough.Dynamic.evaluate_scenario ?config ~set:p.scenarios ~mapping:p.mapping
       ~charts:bundle.Statechart.Bundle.charts)
    p.scenarios.Scenarioml.Scen.scenarios

let export_owl p =
  Semweb.Export.full_export p.scenarios.Scenarioml.Scen.ontology p.mapping

(* ------------------------------------------------------------------ *)
(* Evaluation sessions: cached + incremental re-evaluation            *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type entry = {
    e_revision : int;
    e_result : Walkthrough.Verdict.scenario_result;
    e_queries : Adl.Reach.query list;
  }

  type stats = {
    evaluations : int;
    cache_hits : int;
    replays : int;
    replay_hits : int;
  }

  let zero_stats = { evaluations = 0; cache_hits = 0; replays = 0; replay_hits = 0 }

  (* The architecture revision is a session-local counter bumped on
     every [set_architecture]; equal revisions mean the entry was
     computed against the session's current architecture. A content
     digest would also validate entries across a no-op replacement, but
     hashing the whole structure on every edit (and comparing digests
     per scenario) dominated the incremental path on small projects —
     a replaced-then-identical architecture is rare enough to leave to
     the replay check. *)
  type t = {
    config : Walkthrough.Engine.config;
    mutable project : project;
    mutable reach : Adl.Reach.t;
    mutable revision : int;
    cache : (string, entry) Hashtbl.t;
    mutable checks :
      (int * (Styles.Rule.violation list * Mapping.Coverage.problem list)) option;
        (** style violations + coverage problems, keyed by the
            architecture revision they were computed against *)
    mutable stats : stats;
    lock : Mutex.t;
        (** taken only through {!exclusively}: session operations stay
            unsynchronized on the single-owner fast path, and shared
            sessions (the server registry) serialize explicitly *)
  }

  let create ?(config = Walkthrough.Engine.default_config) project =
    {
      config;
      project;
      reach = Adl.Reach.of_structure project.architecture;
      revision = 0;
      cache = Hashtbl.create 16;
      checks = None;
      stats = zero_stats;
      lock = Mutex.create ();
    }

  let exclusively t f = Mutex.protect t.lock f

  let project t = t.project

  let config t = t.config

  let stats t = t.stats

  let reach t = t.reach

  let revision t = t.revision

  let invalidate ?scenario t =
    match scenario with
    | Some id -> Hashtbl.remove t.cache id
    | None ->
        Hashtbl.reset t.cache;
        t.checks <- None

  (* [reach] is the oracle the walk queries — the session's own on the
     sequential path, a worker-private one on the parallel path. The
     query log (and thus the verdict) is the same either way. *)
  let walk_fresh t reach s =
    let record = Adl.Reach.recorder () in
    let result =
      Walkthrough.Engine.evaluate_scenario ~config:t.config ~reach ~record
        ~set:t.project.scenarios ~architecture:t.project.architecture
        ~mapping:t.project.mapping s
    in
    (result, Adl.Reach.recorded record)

  let store_fresh t s (result, queries) =
    Hashtbl.replace t.cache s.Scenarioml.Scen.scenario_id
      { e_revision = t.revision; e_result = result; e_queries = queries };
    t.stats <- { t.stats with evaluations = t.stats.evaluations + 1 };
    result

  let evaluate_fresh t s = store_fresh t s (walk_fresh t t.reach s)

  (* The verdict of a scenario is a deterministic function of the
     scenario, mapping, configuration, and the answers to the
     reachability queries the walk performs — and the query set itself
     does not depend on the architecture. So when replaying a cached
     entry's query log against the current oracle returns the recorded
     answers, the cached verdict is exactly what a fresh evaluation
     would rebuild, and is served as-is. *)
  (* First phase of [evaluate_one]: serve the verdict from cache when
     the entry is current or its query log replays unchanged; report
     [`Stale] (without evaluating) otherwise. *)
  let cached_verdict t s =
    let id = s.Scenarioml.Scen.scenario_id in
    match Hashtbl.find_opt t.cache id with
    | Some e when e.e_revision = t.revision ->
        t.stats <- { t.stats with cache_hits = t.stats.cache_hits + 1 };
        `Hit e.e_result
    | Some e ->
        t.stats <- { t.stats with replays = t.stats.replays + 1 };
        if Adl.Reach.replay t.reach e.e_queries then begin
          t.stats <- { t.stats with replay_hits = t.stats.replay_hits + 1 };
          Hashtbl.replace t.cache id { e with e_revision = t.revision };
          `Hit e.e_result
        end
        else `Stale
    | None -> `Stale

  let evaluate_one t s =
    match cached_verdict t s with `Hit r -> r | `Stale -> evaluate_fresh t s

  let evaluate_scenario t id =
    Option.map (evaluate_one t) (Scenarioml.Scen.find t.project.scenarios id)

  let architecture_checks t =
    match t.checks with
    | Some (rev, checks) when rev = t.revision -> checks
    | Some _ | None ->
        let checks =
          ( Walkthrough.Engine.check_architecture t.config t.project.architecture,
            Mapping.Coverage.check t.project.scenarios.Scenarioml.Scen.ontology
              t.project.architecture t.project.mapping )
        in
        t.checks <- Some (t.revision, checks);
        checks

  (* With [jobs > 1], cache lookups and replays stay on the calling
     domain (they touch the session's mutable state), and only the
     scenarios found stale fan out over the domain pool — each worker
     walks with a private oracle, logs land back in the cache
     afterwards. Identical results and cache contents to the
     sequential path. *)
  let evaluate_many t jobs scenarios =
    if jobs <= 1 then List.map (evaluate_one t) scenarios
    else begin
      let classified =
        List.map (fun s -> (s, cached_verdict t s)) scenarios
      in
      let stale =
        Array.of_list
          (List.filter_map
             (function s, `Stale -> Some s | _, `Hit _ -> None)
             classified)
      in
      let n = Array.length stale in
      let jobs = max 1 (min jobs n) in
      let fresh = Array.make n None in
      if n > 0 then
        Dsim.Pool.with_pool ~jobs (fun pool ->
            Dsim.Pool.run pool ~tasks:n (fun () ->
                let reach = Adl.Reach.of_structure t.project.architecture in
                fun i -> fresh.(i) <- Some (walk_fresh t reach stale.(i))));
      let cursor = ref 0 in
      List.map
        (fun (s, verdict) ->
          match verdict with
          | `Hit r -> r
          | `Stale ->
              let walked =
                match fresh.(!cursor) with Some w -> w | None -> assert false
              in
              incr cursor;
              store_fresh t s walked)
        classified
    end

  let evaluate ?jobs t =
    let jobs = match jobs with Some j -> j | None -> default_jobs () in
    let results = evaluate_many t jobs t.project.scenarios.Scenarioml.Scen.scenarios in
    let style_violations, coverage_problems = architecture_checks t in
    {
      Walkthrough.Engine.results;
      style_violations;
      coverage_problems;
      consistent =
        List.for_all Walkthrough.Verdict.is_consistent results
        && style_violations = [];
    }

  let set_architecture t architecture =
    t.project <- { t.project with architecture };
    t.reach <- Adl.Reach.of_structure architecture;
    t.revision <- t.revision + 1

  (* Pure link removal admits a shortcut stronger than replay. Removing
     links cannot create communication, so a recorded "no path" answer
     stays "no path"; and a recorded path none of whose hops crosses a
     removed anchor pair is reproduced unchanged by BFS on the pruned
     graph (pruning edges outside the path does not disturb the
     discovery of its bricks). An entry whose logged answers avoid
     every removed pair is therefore revalidated in O(log) — without
     consulting, or even building, the new oracle's trees. *)
  let removed_pairs architecture ops =
    let links = architecture.Adl.Structure.links in
    let rec collect acc = function
      | [] -> Some acc
      | Adl.Diff.Remove_link id :: rest -> (
          match
            List.find_opt (fun l -> String.equal l.Adl.Structure.link_id id) links
          with
          | Some l ->
              collect
                (( l.Adl.Structure.link_from.Adl.Structure.anchor,
                   l.Adl.Structure.link_to.Adl.Structure.anchor )
                :: acc)
                rest
          | None -> None)
      | _ :: _ -> None
    in
    collect [] ops

  let crosses_removed pairs via =
    let removed x y =
      List.exists
        (fun (a, b) ->
          (String.equal x a && String.equal y b)
          || (String.equal x b && String.equal y a))
        pairs
    in
    let rec scan = function
      | x :: (y :: _ as rest) -> removed x y || scan rest
      | _ -> false
    in
    scan via

  let entry_untouched pairs e =
    List.for_all
      (fun q ->
        match q.Adl.Reach.q_answer with
        | None -> true
        | Some via -> not (crosses_removed pairs via))
      e.e_queries

  let apply_diff t ops =
    let old_revision = t.revision in
    let pairs = removed_pairs t.project.architecture ops in
    set_architecture t (Adl.Diff.apply_all t.project.architecture ops);
    match pairs with
    | None -> ()
    | Some pairs ->
        let revalidated =
          Hashtbl.fold
            (fun id e acc ->
              if e.e_revision = old_revision && entry_untouched pairs e then
                (id, { e with e_revision = t.revision }) :: acc
              else acc)
            t.cache []
        in
        List.iter (fun (id, e) -> Hashtbl.replace t.cache id e) revalidated

  let pp_stats ppf s =
    Format.fprintf ppf
      "evaluations: %d, cache hits: %d, replays: %d (%d reused, %d re-evaluated)"
      s.evaluations s.cache_hits s.replays s.replay_hits (s.replays - s.replay_hits)
end

(* ------------------------------------------------------------------ *)
(* Loading and saving projects                                        *)
(* ------------------------------------------------------------------ *)

type artifact = Scenarios | Architecture | Mapping

type load_error =
  | Io_error of { artifact : artifact; file : string; message : string }
  | Xml_error of { artifact : artifact; file : string; message : string }
  | Schema_error of { artifact : artifact; file : string; message : string }

let artifact_name = function
  | Scenarios -> "scenario set"
  | Architecture -> "architecture"
  | Mapping -> "mapping"

let pp_load_error ppf = function
  | Io_error { artifact; file; message } ->
      Format.fprintf ppf "cannot read %s file %s: %s" (artifact_name artifact) file
        message
  | Xml_error { artifact; file; message } ->
      Format.fprintf ppf "malformed XML in %s file %s: %s" (artifact_name artifact) file
        message
  | Schema_error { artifact; file; message } ->
      Format.fprintf ppf "invalid %s in %s: %s" (artifact_name artifact) file message

let load_error_to_string e = Format.asprintf "%a" pp_load_error e

let read_file artifact file =
  match
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> Ok s
  | exception Sys_error message -> Error (Io_error { artifact; file; message })

(* Parse the document twice on the failure path only: one cheap
   well-formedness pass distinguishes XML errors from schema errors. *)
let parse_artifact artifact file text of_string malformed =
  match of_string text with
  | v -> Ok v
  | exception exn -> (
      match malformed exn with
      | None -> raise exn
      | Some message -> (
          match Xmlight.Parse.parse text with
          | Error err ->
              Error
                (Xml_error
                   { artifact; file; message = Xmlight.Parse.error_to_string err })
          | Ok _ -> Error (Schema_error { artifact; file; message })))

let load_artifact artifact file of_string malformed =
  match read_file artifact file with
  | Error _ as e -> e
  | Ok text -> parse_artifact artifact file text of_string malformed

let ( let* ) = Result.bind

let scenarios_of_string = (Scenarioml.Xml_io.set_of_string, function
  | Scenarioml.Xml_io.Malformed m -> Some m
  | _ -> None)

let architecture_of_string = (Adl.Xml_io.of_string, function
  | Adl.Xml_io.Malformed m -> Some m
  | _ -> None)

let mapping_of_string = (Mapping.Xml_io.of_string, function
  | Mapping.Xml_io.Malformed m -> Some m
  | _ -> None)

let load_project_result ~scenarios ~architecture ~mapping =
  let load artifact file (of_string, malformed) =
    load_artifact artifact file of_string malformed
  in
  let* scenarios = load Scenarios scenarios scenarios_of_string in
  let* architecture = load Architecture architecture architecture_of_string in
  let* mapping = load Mapping mapping mapping_of_string in
  Ok { scenarios; architecture; mapping }

let project_of_strings ~scenarios ~architecture ~mapping =
  let parse artifact slot text (of_string, malformed) =
    parse_artifact artifact slot text of_string malformed
  in
  let* scenarios = parse Scenarios "<scenarios>" scenarios scenarios_of_string in
  let* architecture =
    parse Architecture "<architecture>" architecture architecture_of_string
  in
  let* mapping = parse Mapping "<mapping>" mapping mapping_of_string in
  Ok { scenarios; architecture; mapping }

let write_file path content =
  let oc = open_out_bin path in
  output_string oc content;
  close_out oc

let save_project p ~scenarios ~architecture ~mapping =
  write_file scenarios (Scenarioml.Xml_io.set_to_string p.scenarios);
  write_file architecture (Adl.Xml_io.to_string p.architecture);
  write_file mapping (Mapping.Xml_io.to_string p.mapping)

let pp_validation ppf v =
  let section name pp problems =
    if problems <> [] then begin
      Format.fprintf ppf "%s:@," name;
      List.iter (fun p -> Format.fprintf ppf "  %a@," pp p) problems
    end
  in
  Format.fprintf ppf "@[<v>";
  section "Ontology" Ontology.Wellformed.pp_problem v.ontology_problems;
  section "Scenarios" Scenarioml.Validate.pp_problem v.scenario_problems;
  section "Architecture" Adl.Validate.pp_problem v.architecture_problems;
  section "Mapping coverage" Mapping.Coverage.pp_problem v.coverage_problems;
  Format.fprintf ppf "%s@]" (if v.ok then "all artifacts valid" else "validation problems found")

let json_of_validation v =
  let problems pp l = Jsonlight.strings (List.map (Format.asprintf "%a" pp) l) in
  Jsonlight.Obj
    [
      ("ok", Jsonlight.Bool v.ok);
      ("ontology_problems", problems Ontology.Wellformed.pp_problem v.ontology_problems);
      ("scenario_problems", problems Scenarioml.Validate.pp_problem v.scenario_problems);
      ( "architecture_problems",
        problems Adl.Validate.pp_problem v.architecture_problems );
      ("coverage_problems", problems Mapping.Coverage.pp_problem v.coverage_problems);
    ]

let validation_to_json v = Jsonlight.to_string (json_of_validation v)
