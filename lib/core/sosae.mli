(** SOSAE — Scenario and Ontology-based Software Architecture
    Evaluation: the umbrella API tying the four steps of the paper's
    approach together (Fig. 1):

    1. requirements-level scenarios in ScenarioML ({!Scenarioml});
    2. architecture description in an xADL-style ADL ({!Adl},
       {!Statechart});
    3. the ontology-to-component mapping ({!Mapping});
    4. walkthrough evaluation ({!Walkthrough}) plus dynamic simulation
       ({!Dsim}).

    A {!project} bundles the three artifacts; {!validate} checks each
    artifact individually and the references between them; {!evaluate}
    runs the full walkthrough evaluation once. For repeated evaluation
    of the same project across architecture edits — the paper's §4.1
    evolution experiment, or any heavy re-evaluation workload — use
    {!Session}, which caches verdicts and re-evaluates incrementally. *)

val version : string

type project = {
  scenarios : Scenarioml.Scen.set;
  architecture : Adl.Structure.t;
  mapping : Mapping.Types.t;
}

type validation = {
  ontology_problems : Ontology.Wellformed.problem list;
  scenario_problems : Scenarioml.Validate.problem list;
  architecture_problems : Adl.Validate.problem list;
  coverage_problems : Mapping.Coverage.problem list;
  ok : bool;
}

val validate : ?require_responsibilities:bool -> project -> validation

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the worker count {!evaluate}
    and {!evaluate_suite} use when [~jobs] is not given. *)

val evaluate :
  ?config:Walkthrough.Engine.config -> ?jobs:int -> project -> Walkthrough.Engine.set_result
(** Walk every scenario of the project through its architecture.

    Scenarios are evaluated on a pool of [jobs] OCaml domains (default
    {!default_jobs}; [jobs <= 1] runs the plain sequential path). Each
    worker owns a private {!Adl.Reach} oracle, so no evaluation state
    is shared across domains; since a scenario's verdict is a pure
    function of the project and config, the result — content and
    order — is identical to a sequential run for every [jobs]. *)

val evaluate_suite :
  ?config:Walkthrough.Engine.config ->
  ?jobs:int ->
  project ->
  Scenarioml.Scen.t list ->
  Walkthrough.Verdict.scenario_result list
(** Evaluate just the given scenarios (a sub-suite) against the
    project's architecture, in the given order, on the same domain
    pool as {!evaluate}. No style or coverage checks. *)

val evaluate_scenario :
  ?config:Walkthrough.Engine.config ->
  project ->
  string ->
  Walkthrough.Verdict.scenario_result option
(** Evaluate one scenario by id; [None] when the id is unknown. *)

val evaluate_behavioral :
  ?config:Walkthrough.Dynamic.config ->
  project ->
  Statechart.Bundle.t ->
  Walkthrough.Dynamic.result list
(** Behavioral walkthrough of every scenario over the bundle's
    statecharts (paper §3.5's "simulating the behavior of the matched
    components"). *)

val export_owl : project -> Semweb.Store.t
(** Ontology + mapping as OWL triples (paper §8). *)

(** Stateful evaluation sessions over one project.

    A session holds a memoized reachability oracle ({!Adl.Reach}) for
    the current architecture and a per-scenario verdict cache. Each
    cached verdict carries the log of reachability queries its walk
    performed; after an architecture edit ({!Session.apply_diff}), a
    scenario is re-evaluated only when replaying its log against the
    new oracle changes some answer — i.e. only when the edit actually
    touches the communication its walk relied on. Served verdicts are
    bit-for-bit the ones a fresh evaluation would produce.

    The paper's Fig. 4 experiment in session form: excising the
    Loader–Data Access link re-evaluates "Get the current prices of
    shares" (its hop crossed the excised link) while "Create portfolio"
    is served from cache. *)
module Session : sig
  type t

  val create : ?config:Walkthrough.Engine.config -> project -> t
  (** The config is fixed for the session's lifetime. *)

  val project : t -> project
  (** The current project (reflects {!apply_diff} edits). *)

  val config : t -> Walkthrough.Engine.config

  val reach : t -> Adl.Reach.t
  (** The session's oracle for the current architecture. *)

  val revision : t -> int
  (** The session-local architecture revision: 0 at {!create}, bumped
      by every {!apply_diff} and {!set_architecture}. Two reads
      returning the same revision bracket a window with no
      architecture change — the validity key of anything derived from
      the current architecture (the evaluation server caches
      serialized evaluate responses against it). *)

  val evaluate : ?jobs:int -> t -> Walkthrough.Engine.set_result
  (** Evaluate every scenario, serving unchanged verdicts from cache.
      Equal to {!val:evaluate} on the session's current project. The
      [jobs] default is {!default_jobs} — the same default as
      {!val:evaluate}. With [jobs > 1] the scenarios that do need a
      fresh walk — cache misses and failed replays — run on a domain
      pool, each worker with a private oracle; results, cache contents,
      and stats match the sequential path exactly, so the default is
      safe for every caller. [jobs <= 1] forces the plain sequential
      path. *)

  val evaluate_scenario : t -> string -> Walkthrough.Verdict.scenario_result option
  (** One scenario by id, through the cache; [None] when unknown. *)

  val apply_diff : t -> Adl.Diff.op list -> unit
  (** Apply evolution operations to the session's architecture. Cached
      verdicts are kept and revalidated lazily (by query replay) at the
      next evaluation. When every op is a [Remove_link], entries whose
      logged answers never crossed a removed link are revalidated
      immediately, without replay: removals cannot create communication,
      and recorded paths that avoid the removed links survive untouched.
      @raise Adl.Diff.Apply_error when an op does not apply. *)

  val set_architecture : t -> Adl.Structure.t -> unit
  (** Replace the architecture wholesale; same cache semantics as
      {!apply_diff}. *)

  val invalidate : ?scenario:string -> t -> unit
  (** Drop one scenario's cached verdict, or the whole cache. *)

  type stats = {
    evaluations : int;  (** full scenario walks performed *)
    cache_hits : int;  (** verdicts served with no architecture change *)
    replays : int;  (** query-log replays after an architecture change *)
    replay_hits : int;  (** replays that allowed reusing the verdict *)
  }

  val stats : t -> stats
  (** Cumulative since {!create}. *)

  val pp_stats : Format.formatter -> stats -> unit

  val exclusively : t -> (unit -> 'a) -> 'a
  (** Run the callback holding the session's private lock. Session
      operations are not internally synchronized — the verdict cache
      and the oracle are plain mutable state — so concurrent users
      (the evaluation server's registry, any multi-threaded embedding)
      must funnel every operation on a shared session through
      [exclusively]. The lock is per-session: operations on distinct
      sessions never contend. Not reentrant. *)
end

(** {1 Loading and saving projects} *)

type artifact = Scenarios | Architecture | Mapping

type load_error =
  | Io_error of { artifact : artifact; file : string; message : string }
      (** the file cannot be read *)
  | Xml_error of { artifact : artifact; file : string; message : string }
      (** the file is not well-formed XML *)
  | Schema_error of { artifact : artifact; file : string; message : string }
      (** well-formed XML that is not a valid document of its kind *)

val load_project_result :
  scenarios:string ->
  architecture:string ->
  mapping:string ->
  (project, load_error) result
(** Read the three artifacts from XML files; the first failing artifact
    (in scenarios, architecture, mapping order) is reported. *)

val project_of_strings :
  scenarios:string ->
  architecture:string ->
  mapping:string ->
  (project, load_error) result
(** Like {!load_project_result}, but the arguments are the XML
    documents themselves rather than file names — the loading path of
    callers that receive artifacts over the wire (the evaluation
    server's [POST /sessions]). The [file] field of a reported error
    names the artifact slot (["<scenarios>"], ["<architecture>"],
    ["<mapping>"]); [Io_error] cannot occur. *)

val pp_load_error : Format.formatter -> load_error -> unit

val load_error_to_string : load_error -> string

val save_project :
  project -> scenarios:string -> architecture:string -> mapping:string -> unit
(** Write the three artifacts to XML files. *)

val pp_validation : Format.formatter -> validation -> unit

val json_of_validation : validation -> Jsonlight.t

val validation_to_json : validation -> string
(** Machine-readable {!validation}, the companion of
    {!Walkthrough.Report.set_result_to_json}. *)
