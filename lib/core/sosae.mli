(** SOSAE — Scenario and Ontology-based Software Architecture
    Evaluation: the umbrella API tying the four steps of the paper's
    approach together (Fig. 1):

    1. requirements-level scenarios in ScenarioML ({!Scenarioml});
    2. architecture description in an xADL-style ADL ({!Adl},
       {!Statechart});
    3. the ontology-to-component mapping ({!Mapping});
    4. walkthrough evaluation ({!Walkthrough}) plus dynamic simulation
       ({!Dsim}).

    A {!project} bundles the three artifacts; {!validate} checks each
    artifact individually and the references between them; {!evaluate}
    runs the full walkthrough evaluation. *)

val version : string

type project = {
  scenarios : Scenarioml.Scen.set;
  architecture : Adl.Structure.t;
  mapping : Mapping.Types.t;
}

type validation = {
  ontology_problems : Ontology.Wellformed.problem list;
  scenario_problems : Scenarioml.Validate.problem list;
  architecture_problems : Adl.Validate.problem list;
  coverage_problems : Mapping.Coverage.problem list;
  ok : bool;
}

val validate : ?require_responsibilities:bool -> project -> validation

val evaluate : ?config:Walkthrough.Engine.config -> project -> Walkthrough.Engine.set_result
(** Walk every scenario of the project through its architecture. *)

val evaluate_scenario :
  ?config:Walkthrough.Engine.config ->
  project ->
  string ->
  Walkthrough.Verdict.scenario_result option
(** Evaluate one scenario by id; [None] when the id is unknown. *)

val evaluate_behavioral :
  ?config:Walkthrough.Dynamic.config ->
  project ->
  Statechart.Bundle.t ->
  Walkthrough.Dynamic.result list
(** Behavioral walkthrough of every scenario over the bundle's
    statecharts (paper §3.5's "simulating the behavior of the matched
    components"). *)

val export_owl : project -> Semweb.Store.t
(** Ontology + mapping as OWL triples (paper §8). *)

exception Load_error of string

val load_project :
  scenarios:string -> architecture:string -> mapping:string -> project
(** Read the three artifacts from XML files.
    @raise Load_error on I/O, XML, or schema errors. *)

val save_project :
  project -> scenarios:string -> architecture:string -> mapping:string -> unit
(** Write the three artifacts to XML files. *)

val pp_validation : Format.formatter -> validation -> unit
