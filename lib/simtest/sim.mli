(** The deterministic simulator: run op sequences against the real
    [Persist]/[Registry]/[Ship] stack on a simulated disk ({!Env}),
    mirror every step in the {!Model} oracle, and check invariants
    after each op:

    - registry state ≡ model after every op;
    - a crash recovers to exactly one point of the staged history, at
      or past both the fsync frontier and the highest acknowledged
      write;
    - the recovered journal decodes cleanly with increasing sequence
      numbers;
    - a clean restart loses nothing that was staged;
    - the replica never applies past the primary's fsync frontier and
      always equals a prefix of the primary's history;
    - evaluation through a session equals a fresh evaluation of the
      same project. *)

type failure = { index : int; op : Gen.op; reason : string }

val run_ops : Gen.op list -> (unit, failure) result
(** Run one sequence on a fresh simulated machine. *)

val fails : Gen.op list -> bool
(** [Result.is_error (run_ops ops)] — the shrinking predicate. *)

val run_seed : seed:int -> ops:int -> (unit, failure * Gen.op list) result
(** Generate {!Gen.gen}[ ~seed ~ops] and run it; on failure returns
    the failure and the full sequence (for shrinking). *)

val repro_command : Gen.op list -> string
(** The ready-to-paste command that replays a sequence. *)

val report_failure : Format.formatter -> failure * Gen.op list -> unit
(** Shrink the failing sequence and print what failed plus the minimal
    repro command. *)
