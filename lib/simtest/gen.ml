(* Seeded operation sequences. Every op prints as a self-contained
   token ([create:0/full:1], [crash:350], ...) so a failing sequence
   — or its shrunk core — replays from the command line without the
   seed that produced it. *)

(* splitmix64: one multiply-xorshift chain per draw, full 64-bit
   state, no shared tables — the same generator Dsim uses for its
   campaign seeds *)
module Rng = struct
  type t = { mutable state : int64 }

  let make seed = { state = Int64.of_int seed }

  let next t =
    t.state <- Int64.add t.state 0x9e3779b97f4a7c15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94d049bb133111ebL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  (* uniform in [0, bound) *)
  let int t bound =
    Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1)
                    (Int64.of_int bound))
end

type fault =
  | Fsync of int
  | Full of int
  | Torn of int * int
  | Crashat of int

type op =
  | Create of int * fault option
  | Diff of int * int * fault option
  | Excise of int * int * fault option
  | Remove of int * fault option
  | Eval of int
  | Ckpt of fault option
  | Compact of fault option
  | Restart
  | Crash of int  (* cut, permille *)
  | Replica
  | Partition
  | Replica_chain
  | Kill_hop

let to_env_fault = function
  | Fsync n -> Env.Fsync_fail n
  | Full n -> Env.Disk_full n
  | Torn (n, p) -> Env.Torn (n, p)
  | Crashat n -> Env.Crash_at n

(* ------------------------------------------------------------------ *)
(* Printing and parsing                                               *)
(* ------------------------------------------------------------------ *)

let fault_to_string = function
  | Fsync n -> Printf.sprintf "fsync:%d" n
  | Full n -> Printf.sprintf "full:%d" n
  | Torn (n, p) -> Printf.sprintf "torn:%d:%d" n p
  | Crashat n -> Printf.sprintf "crashat:%d" n

let with_fault base = function
  | None -> base
  | Some f -> base ^ "/" ^ fault_to_string f

let to_string = function
  | Create (s, f) -> with_fault (Printf.sprintf "create:%d" s) f
  | Diff (s, e, f) -> with_fault (Printf.sprintf "diff:%d:%d" s e) f
  | Excise (s, e, f) -> with_fault (Printf.sprintf "exc:%d:%d" s e) f
  | Remove (s, f) -> with_fault (Printf.sprintf "rm:%d" s) f
  | Eval s -> Printf.sprintf "eval:%d" s
  | Ckpt f -> with_fault "ckpt" f
  | Compact f -> with_fault "compact" f
  | Restart -> "restart"
  | Crash cut -> Printf.sprintf "crash:%d" cut
  | Replica -> "replica"
  | Partition -> "replica:part"
  | Replica_chain -> "chain"
  | Kill_hop -> "kill-hop"

let ops_to_string ops = String.concat " " (List.map to_string ops)

let fault_of_string s =
  match String.split_on_char ':' s with
  | [ "fsync"; n ] -> Some (Fsync (int_of_string n))
  | [ "full"; n ] -> Some (Full (int_of_string n))
  | [ "torn"; n; p ] -> Some (Torn (int_of_string n, int_of_string p))
  | [ "crashat"; n ] -> Some (Crashat (int_of_string n))
  | _ -> None

let of_string token =
  let base, fault =
    match String.index_opt token '/' with
    | None -> (token, Ok None)
    | Some i ->
        let f = String.sub token (i + 1) (String.length token - i - 1) in
        ( String.sub token 0 i,
          match fault_of_string f with
          | Some f -> Ok (Some f)
          | None -> Error ("bad fault: " ^ f) )
  in
  match fault with
  | Error e -> Error e
  | Ok fault -> (
      (* int_of_string raises from inside a branch, which the exception
         pattern below cannot catch — wrap the whole dispatch *)
      try
        match (String.split_on_char ':' base, fault) with
        | [ "create"; s ], f -> Ok (Create (int_of_string s, f))
        | [ "diff"; s; e ], f -> Ok (Diff (int_of_string s, int_of_string e, f))
        | [ "exc"; s; e ], f -> Ok (Excise (int_of_string s, int_of_string e, f))
        | [ "rm"; s ], f -> Ok (Remove (int_of_string s, f))
        | [ "eval"; s ], None -> Ok (Eval (int_of_string s))
        | [ "ckpt" ], f -> Ok (Ckpt f)
        | [ "compact" ], f -> Ok (Compact f)
        | [ "restart" ], None -> Ok Restart
        | [ "crash"; cut ], None -> Ok (Crash (int_of_string cut))
        | [ "replica" ], None -> Ok Replica
        | [ "replica"; "part" ], None -> Ok Partition
        | [ "chain" ], None -> Ok Replica_chain
        | [ "kill-hop" ], None -> Ok Kill_hop
        | _ -> Error ("bad op: " ^ token)
      with Failure _ -> Error ("bad op: " ^ token))

let ops_of_string s =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match of_string tok with
        | Ok op -> go (op :: acc) rest
        | Error e -> Error e)
  in
  go [] tokens

(* ------------------------------------------------------------------ *)
(* Generation                                                         *)
(* ------------------------------------------------------------------ *)

let sessions = 4

(* roughly one mutation in eight carries a fault *)
let gen_fault rng =
  if Rng.int rng 100 >= 12 then None
  else
    match Rng.int rng 4 with
    | 0 -> Some (Fsync (1 + Rng.int rng 2))
    | 1 -> Some (Full (1 + Rng.int rng 2))
    | 2 -> Some (Torn (1 + Rng.int rng 2, Rng.int rng 1000))
    | _ -> Some (Crashat (1 + Rng.int rng 6))

let gen_op rng =
  let slot () = Rng.int rng sessions in
  let pick () = Rng.int rng 16 in
  match Rng.int rng 120 with
  | n when n < 16 -> Create (slot (), gen_fault rng)
  | n when n < 32 -> Diff (slot (), pick (), gen_fault rng)
  | n when n < 39 -> Excise (slot (), pick (), gen_fault rng)
  | n when n < 46 -> Remove (slot (), gen_fault rng)
  | n when n < 58 -> Eval (slot ())
  | n when n < 63 -> Ckpt (gen_fault rng)
  | n when n < 71 -> Compact (gen_fault rng)
  | n when n < 76 -> Restart
  | n when n < 84 -> Crash (Rng.int rng 1001)
  | n when n < 102 -> Replica
  | n when n < 104 -> Partition
  | n when n < 116 -> Replica_chain
  | _ -> Kill_hop

let gen ~seed ~ops =
  let rng = Rng.make seed in
  List.init ops (fun _ -> gen_op rng)
