(* The simulator: run a generated op sequence against the real
   Persist/Registry/Ship stack on a simulated disk, mirror every step
   in the {!Model} oracle, and check the invariants after each op.

   Single-threaded and allocation-for-allocation deterministic: the
   only sources of nondeterminism in the production stack (the clock,
   the filesystem, sleeps) all come from {!Env}. The same op list
   always produces the same outcome, which is what makes shrinking and
   [--replay] possible. *)

type failure = { index : int; op : Gen.op; reason : string }

exception Violation of string

let violation fmt = Printf.ksprintf (fun m -> raise (Violation m)) fmt

type t = {
  env : Env.t;
  dir : string;
  group : Store.Journal.Group.config;
  mutable persist : Server.Persist.t;
  mutable registry : Server.Registry.t;
  model : Model.t;
  replica : Server.Registry.t;  (* persist-less, fed by Ship batches *)
  mutable replica_applied : int64;
  (* the chained topology: root -> durable hop -> in-memory leaf. The
     hop journals every shipped batch under its own data dir on the
     same simulated disk and serves Ship batches to the leaf *)
  mutable hop_persist : Server.Persist.t;
  mutable hop : Server.Registry.t;
  mutable hop_applied : int64;
  leaf : Server.Registry.t;
  mutable leaf_applied : int64;
  mutable poisoned : bool;  (* a journal fsync failed since last open *)
  mutable diff_counter : int;  (* unique rename targets *)
}

(* open the whole stack against whatever the simulated disk holds *)
let open_raw ~env ~group ~dir =
  let persist, (recovery : Server.Persist.recovery) =
    Server.Persist.open_ ~fsync:Store.Journal.Always ~group ~compact_bytes:1
      ~env:(Env.fs env) dir
  in
  let registry = Server.Registry.create ~jobs:1 ~persist () in
  (* compaction only when an op asks for it, so rotation points are
     chosen by the generator, not by journal size *)
  Server.Registry.set_background_compaction registry true;
  ignore (Server.Registry.recover registry recovery.Server.Persist.mutations);
  (persist, registry)

let open_stack t =
  let persist, registry = open_raw ~env:t.env ~group:t.group ~dir:t.dir in
  t.persist <- persist;
  t.registry <- registry;
  t.poisoned <- false

let hop_dir = "hop"

let create () =
  let env = Env.create () in
  let group = { Store.Journal.Group.window = 0.0; max_batch = 64 } in
  let dir = "sim" in
  let persist, registry = open_raw ~env ~group ~dir in
  let hop_persist, hop = open_raw ~env ~group ~dir:hop_dir in
  {
    env;
    dir;
    group;
    persist;
    registry;
    model = Model.create ();
    replica = Server.Registry.create ~jobs:1 ();
    replica_applied = 0L;
    hop_persist;
    hop;
    hop_applied = 0L;
    leaf = Server.Registry.create ~jobs:1 ();
    leaf_applied = 0L;
    poisoned = false;
    diff_counter = 0;
  }

(* reopen the hop from whatever its directory holds, as after a
   SIGKILL (no checkpoint, no clean close — in the Env model stale
   handles are simply abandoned) *)
let open_hop t =
  let persist, registry = open_raw ~env:t.env ~group:t.group ~dir:hop_dir in
  t.hop_persist <- persist;
  t.hop <- registry

(* ------------------------------------------------------------------ *)
(* Invariants                                                         *)
(* ------------------------------------------------------------------ *)

let check_digest t ctx =
  let reg = Model.registry_digest t.registry in
  let mdl = Model.live_digest t.model in
  if reg <> mdl then
    violation "%s: registry state diverged from model (registry [%s] model [%s])"
      ctx
      (String.concat ";" (Server.Registry.ids t.registry))
      (String.concat ";" (List.map fst t.model.Model.live))

let recovered_seq t = Int64.pred (Server.Persist.next_seq t.persist)

(* the visible journal must always decode cleanly with strictly
   increasing sequence numbers (except right after a torn write, which
   only a crash can expose — callers check at recovery points) *)
let check_journal_wellformed t =
  match Env.visible t.env (Filename.concat t.dir "wal.log") with
  | None -> ()
  | Some data -> (
      let records, _, tail = Store.Record.decode_all data in
      (match tail with
      | Store.Record.Clean -> ()
      | Store.Record.Torn off -> violation "journal torn at %d after recovery" off
      | Store.Record.Corrupt off ->
          violation "journal corrupt at %d after recovery" off);
      ignore
        (List.fold_left
           (fun prev (seq, _) ->
             if seq <= prev then
               violation "journal seqs not increasing: %Ld after %Ld" seq prev;
             seq)
           0L records))

(* Recovery itself runs on the faulty disk, so opening can crash (or
   fail) too: a still-armed fault may fire on the open-time fsync or
   the torn-tail truncate. A crash during recovery is just another
   power failure — take it and recover again; a non-crash open error
   leaves the disk intact and the single-shot fault spent, so retrying
   must succeed. *)
let rec open_surviving_faults t ~index ~attempts =
  match open_stack t with
  | () -> `Clean
  | exception Env.Crashed ->
      Env.crash t.env ~cut:(((index * 577) + 263) mod 1001);
      ignore (open_surviving_faults t ~index ~attempts:(attempts + 1));
      `Crashed
  | exception e ->
      if attempts >= 3 then
        violation "recovery keeps failing: %s" (Printexc.to_string e)
      else open_surviving_faults t ~index ~attempts:(attempts + 1)

(* after a power failure: recovery must land on exactly one model
   entry, at or past every durability floor. [floor] is the journal's
   covered (fsynced) sequence number captured before the op began —
   nothing the journal called durable may be lost. *)
let post_crash_checks t ~floor =
  let recovered = recovered_seq t in
  if recovered < floor then
    violation "crash lost covered records: recovered %Ld < covered %Ld"
      recovered floor;
  if recovered < t.model.Model.acked then
    violation "crash lost an acknowledged write: recovered %Ld < acked %Ld"
      recovered t.model.Model.acked;
  if recovered < t.replica_applied then
    violation "primary recovered behind its replica: %Ld < %Ld" recovered
      t.replica_applied;
  if recovered < t.hop_applied then
    violation "root recovered behind the chain hop: %Ld < %Ld" recovered
      t.hop_applied;
  if recovered < t.leaf_applied then
    violation "root recovered behind the chain leaf: %Ld < %Ld" recovered
      t.leaf_applied;
  Model.truncate t.model ~seq:recovered;
  if recovered <> 0L && Model.last_entry_seq t.model <> recovered then
    violation "recovered seq %Ld selects no model entry" recovered;
  check_journal_wellformed t;
  check_digest t "after crash recovery";
  (* the power failure took the hop's box too; it fsyncs every shipped
     apply before advancing, so its recovery must land exactly where
     it stood (the crash cleared any armed fault, so this open is
     deterministic) *)
  (match open_hop t with
  | () -> ()
  | exception e ->
      violation "hop recovery failed after crash: %s" (Printexc.to_string e));
  let hop_recovered = Int64.pred (Server.Persist.next_seq t.hop_persist) in
  if hop_recovered <> t.hop_applied then
    violation "crash moved the hop's durable frontier: recovered %Ld, applied %Ld"
      hop_recovered t.hop_applied

let reopen_after_crash t ~floor ~index =
  ignore (open_surviving_faults t ~index ~attempts:0);
  post_crash_checks t ~floor

(* a non-crash failure (ENOSPC, failed fsync, poisoned journal) left
   memory and journal possibly apart; reopen and both must land on the
   last staged entry — unless recovery itself crashed, which demotes
   the guarantee to ordinary crash recovery *)
let forced_reopen t ~floor ~index =
  match open_surviving_faults t ~index ~attempts:0 with
  | `Crashed -> post_crash_checks t ~floor
  | `Clean ->
      let recovered = recovered_seq t in
      if recovered <> Model.last_entry_seq t.model then
        violation "reopen after failure: recovered %Ld, last staged %Ld"
          recovered
          (Model.last_entry_seq t.model);
      Model.sync_to_last t.model;
      check_journal_wellformed t;
      check_digest t "after forced reopen"

(* ------------------------------------------------------------------ *)
(* Mutations                                                          *)
(* ------------------------------------------------------------------ *)

(* Each mutation either stages exactly one journal record (plan =
   [Some post_state], run returns [true]) or legitimately stages
   nothing — conflicts, unknown ids, refused diffs. The post state is
   computed BEFORE running so a mid-op crash can record the tentative
   entry the record would create if its bytes turn out durable. *)
type planned = {
  post : Model.state option;  (* live state if the record lands *)
  run : unit -> bool;  (* true = a record was staged *)
}

let plan_create t slot =
  let id = Model.session_id slot in
  if Model.find t.model id <> None then
    {
      post = None;
      run =
        (fun () ->
          match
            Server.Registry.add t.registry ~id
              (Model.project_of_arch (Model.base_arch ()))
          with
          | Error `Conflict -> false
          | Ok () -> violation "create of existing %s succeeded" id);
    }
  else
    let arch = Model.base_arch () in
    {
      post = Some (Model.state_set t.model.Model.live id arch);
      run =
        (fun () ->
          match
            Server.Registry.add t.registry ~id
              ~source:
                ( Model.scenarios_xml (),
                  Model.architecture_xml (),
                  Model.mapping_xml () )
              (Model.project_of_arch arch)
          with
          | Ok () -> true
          | Error `Conflict -> violation "phantom conflict creating %s" id);
    }

let plan_no_session t id =
  {
    post = None;
    run =
      (fun () ->
        match Server.Registry.apply_diff t.registry id ~ops:(fun _ -> []) with
        | Error `Not_found -> false
        | Ok _ -> violation "diff on missing %s succeeded" id
        | Error (`Apply_error m) -> violation "diff on missing %s: %s" id m);
  }

let plan_ops t id arch ops =
  let arch' = Adl.Diff.apply_all arch ops in
  {
    post = Some (Model.state_set t.model.Model.live id arch');
    run =
      (fun () ->
        match Server.Registry.apply_diff t.registry id ~ops:(fun _ -> ops) with
        | Ok _ -> true
        | Error `Not_found -> violation "%s vanished mid-diff" id
        | Error (`Apply_error m) -> violation "diff on %s refused: %s" id m);
  }

let plan_diff t slot pick =
  let id = Model.session_id slot in
  match Model.find t.model id with
  | None -> plan_no_session t id
  | Some arch ->
      let bricks = Adl.Structure.brick_ids arch in
      let target = List.nth bricks (pick mod List.length bricks) in
      t.diff_counter <- t.diff_counter + 1;
      let new_id = Printf.sprintf "%s_r%d" target t.diff_counter in
      plan_ops t id arch [ Adl.Diff.Rename_element { old_id = target; new_id } ]

let plan_excise t slot pick =
  let id = Model.session_id slot in
  match Model.find t.model id with
  | None -> plan_no_session t id
  | Some arch -> (
      match arch.Adl.Structure.links with
      | [] ->
          (* no links left: the op must be refused, atomically *)
          {
            post = None;
            run =
              (fun () ->
                match
                  Server.Registry.apply_diff t.registry id ~ops:(fun _ ->
                      [ Adl.Diff.Remove_link "simtest-no-such-link" ])
                with
                | Error (`Apply_error _) -> false
                | Ok _ -> violation "excise of missing link succeeded"
                | Error `Not_found -> violation "%s vanished mid-excise" id);
          }
      | links ->
          let l = List.nth links (pick mod List.length links) in
          plan_ops t id arch [ Adl.Diff.Remove_link l.Adl.Structure.link_id ])

let plan_remove t slot =
  let id = Model.session_id slot in
  if Model.find t.model id = None then
    {
      post = None;
      run =
        (fun () ->
          if Server.Registry.remove t.registry id then
            violation "remove of missing %s succeeded" id
          else false);
    }
  else
    {
      post = Some (Model.state_del t.model.Model.live id);
      run =
        (fun () ->
          if Server.Registry.remove t.registry id then true
          else violation "remove of live %s refused" id);
    }

(* [rollback_safe]: does the registry roll its memory back when the
   journal refuses the record? Creates and removes do; diffs apply to
   the session before staging and stay applied, so after a staging
   failure memory is ahead of the journal and only a reopen
   reconverges them. *)
let run_mutation t ~index ~fault ~rollback_safe planned =
  let floor = Server.Persist.covered_seq t.persist in
  let predicted = Server.Persist.next_seq t.persist in
  (match fault with
  | Some f -> Env.arm t.env (Gen.to_env_fault f)
  | None -> Env.disarm t.env);
  let land_tentative () =
    match planned.post with
    | Some post ->
        t.model.Model.live <- post;
        Model.push_entry t.model ~seq:predicted
    | None -> ()
  in
  (match planned.run () with
  | staged ->
      if staged then begin
        (match planned.post with
        | Some post -> t.model.Model.live <- post
        | None -> violation "a record was staged with nothing planned");
        Model.push_entry t.model ~seq:predicted;
        if predicted > t.model.Model.acked then t.model.Model.acked <- predicted
      end
  | exception Env.Crashed ->
      (* the process died mid-op; whether the record survives is the
         crash's decision, so record it tentatively and let recovery's
         sequence number arbitrate *)
      land_tentative ();
      let cut =
        match Env.fired t.env with
        | Some (Env.Torn (_, permille)) -> permille
        | _ -> (index * 379) mod 1001
      in
      Env.crash t.env ~cut;
      reopen_after_crash t ~floor ~index
  | exception e -> (
      match Env.fired t.env with
      | Some (Env.Disk_full _) ->
          (* the write never completed: no sequence number may have
             been consumed and nothing new may be on disk *)
          if Server.Persist.next_seq t.persist <> predicted then
            violation "failed append consumed seq %Ld" predicted;
          if rollback_safe then check_digest t "after refused append"
          else forced_reopen t ~floor ~index
      | Some (Env.Fsync_fail _) ->
          (* staged but not durable: memory keeps the mutation, the
             journal is poisoned, the caller saw the error — an
             unacknowledged zombie that recovery may legitimately keep
             (the bytes are written) but no invariant may require *)
          land_tentative ();
          t.poisoned <- true;
          check_digest t "after failed fsync"
      | _ when t.poisoned ->
          (* the journal keeps refusing with its original error *)
          if Server.Persist.next_seq t.persist <> predicted then
            violation "poisoned journal consumed seq %Ld" predicted;
          if rollback_safe then check_digest t "after poisoned append"
          else forced_reopen t ~floor ~index
      | _ ->
          violation "unexpected exception at op %d: %s" index
            (Printexc.to_string e)));
  Env.disarm t.env

(* ------------------------------------------------------------------ *)
(* Maintenance ops (checkpoint / compaction / restarts)               *)
(* ------------------------------------------------------------------ *)

let run_maintenance t ~index ~fault run =
  let floor = Server.Persist.covered_seq t.persist in
  (match fault with
  | Some f -> Env.arm t.env (Gen.to_env_fault f)
  | None -> Env.disarm t.env);
  (match run () with
  | () -> check_digest t "after maintenance"
  | exception Env.Crashed ->
      let cut =
        match Env.fired t.env with
        | Some (Env.Torn (_, permille)) -> permille
        | _ -> (index * 379) mod 1001
      in
      Env.crash t.env ~cut;
      reopen_after_crash t ~floor ~index
  | exception e -> (
      match Env.fired t.env with
      | Some _ -> forced_reopen t ~floor ~index
      | None when t.poisoned -> forced_reopen t ~floor ~index
      | None ->
          violation "unexpected exception at op %d: %s" index
            (Printexc.to_string e)));
  Env.disarm t.env

(* ------------------------------------------------------------------ *)
(* Reads                                                              *)
(* ------------------------------------------------------------------ *)

let run_eval t slot =
  let id = Model.session_id slot in
  let real =
    Server.Registry.with_session t.registry id (fun session ->
        Walkthrough.Report.set_result_to_json
          (Core.Sosae.Session.evaluate ~jobs:1 session))
  in
  match (Model.find t.model id, real) with
  | None, Error `Not_found -> ()
  | Some arch, Ok json ->
      if json <> Model.eval_json arch then
        violation "evaluation of %s diverged from a fresh evaluation" id
  | Some _, Error `Not_found -> violation "%s exists but evaluation says 404" id
  | None, Ok _ -> violation "evaluated ghost session %s" id

(* ------------------------------------------------------------------ *)
(* Replica                                                            *)
(* ------------------------------------------------------------------ *)

(* a follower's state must match the primary history entry at its
   applied frontier, byte for byte *)
let check_node t ~what registry applied =
  match Model.entry_state t.model applied with
  | None -> violation "%s applied seq %Ld unknown to model" what applied
  | Some state ->
      if Model.registry_digest registry <> Model.digest_of_state state then
        violation "%s state diverged from primary history at %Ld" what applied

let check_replica t =
  if t.replica_applied > Server.Persist.covered_seq t.persist then
    violation "replica applied %Ld past the fsync frontier %Ld"
      t.replica_applied
      (Server.Persist.covered_seq t.persist);
  check_node t ~what:"replica" t.replica t.replica_applied

(* the frontier half of the chain invariants, cheap enough to assert
   after every op: no link is ever ahead of the root's fsync frontier,
   and the leaf never ahead of its own upstream's *)
let check_chain_frontiers t =
  let root_covered = Server.Persist.covered_seq t.persist in
  if t.hop_applied > root_covered then
    violation "hop applied %Ld past the root fsync frontier %Ld" t.hop_applied
      root_covered;
  if t.leaf_applied > root_covered then
    violation "leaf applied %Ld past the root fsync frontier %Ld"
      t.leaf_applied root_covered;
  let hop_covered = Server.Persist.covered_seq t.hop_persist in
  if t.leaf_applied > hop_covered then
    violation "leaf applied %Ld past the hop fsync frontier %Ld"
      t.leaf_applied hop_covered

let check_chain t =
  check_chain_frontiers t;
  check_node t ~what:"hop" t.hop t.hop_applied;
  check_node t ~what:"leaf" t.leaf t.leaf_applied

(* pull one Ship batch from [persist] into [registry] (which journals
   it when it persists); returns the new applied frontier *)
let pull ~what ~from_ ~registry ~applied =
  let batch = Server.Persist.ship from_ ~after:applied in
  if batch.Store.Ship.reset || batch.Store.Ship.data <> "" then
    match
      Server.Registry.apply_shipped registry ~reset:batch.Store.Ship.reset
        batch.Store.Ship.data
    with
    | Error e -> violation "%s received a bad batch: %s" what e
    | Ok (_stats, last) -> if last > applied then last else applied
  else applied

let run_replica t =
  match pull ~what:"replica" ~from_:t.persist ~registry:t.replica
          ~applied:t.replica_applied
  with
  | applied ->
      t.replica_applied <- applied;
      check_replica t
  | exception _ when t.poisoned ->
      (* a poisoned journal refuses shipping with its original error;
         the replica just stays where it was *)
      check_replica t

(* one propagation step down the chain: the durable hop pulls from the
   root and journals what it applied, then the leaf pulls from the
   hop *)
let run_chain t =
  (match pull ~what:"hop" ~from_:t.persist ~registry:t.hop
           ~applied:t.hop_applied
   with
  | applied -> t.hop_applied <- applied
  | exception _ when t.poisoned -> ());
  t.leaf_applied <-
    pull ~what:"leaf" ~from_:t.hop_persist ~registry:t.leaf
      ~applied:t.leaf_applied;
  check_chain t

(* SIGKILL the middle hop and bring it back: recovery must land
   exactly on its durable frontier (every shipped apply fsyncs before
   advancing), and the restarted hop compacts its journal — so a leaf
   stranded behind the new snapshot base must heal through a reset
   batch on its next pull *)
let run_kill_hop t =
  let before = t.hop_applied in
  open_hop t;
  let recovered = Int64.pred (Server.Persist.next_seq t.hop_persist) in
  if recovered <> before then
    violation "killed hop recovered %Ld, had applied %Ld" recovered before;
  ignore (Server.Registry.maintenance_compact t.hop);
  check_chain t

(* ------------------------------------------------------------------ *)
(* The per-op step                                                    *)
(* ------------------------------------------------------------------ *)

let step t ~index op =
  (match op with
  | Gen.Create (slot, fault) ->
      run_mutation t ~index ~fault ~rollback_safe:true (plan_create t slot)
  | Gen.Diff (slot, pick, fault) ->
      run_mutation t ~index ~fault ~rollback_safe:false (plan_diff t slot pick)
  | Gen.Excise (slot, pick, fault) ->
      run_mutation t ~index ~fault ~rollback_safe:false
        (plan_excise t slot pick)
  | Gen.Remove (slot, fault) ->
      run_mutation t ~index ~fault ~rollback_safe:true (plan_remove t slot)
  | Gen.Eval slot -> run_eval t slot
  | Gen.Ckpt fault ->
      run_maintenance t ~index ~fault (fun () ->
          Server.Registry.checkpoint t.registry)
  | Gen.Compact fault ->
      run_maintenance t ~index ~fault (fun () ->
          ignore (Server.Registry.maintenance_compact t.registry))
  | Gen.Restart ->
      (try Server.Persist.close t.persist with _ -> ());
      open_stack t;
      let recovered = recovered_seq t in
      if recovered <> Model.last_entry_seq t.model then
        violation "clean restart: recovered %Ld, staged %Ld" recovered
          (Model.last_entry_seq t.model);
      (* a clean restart loses nothing, including unacknowledged
         zombies — everything staged is on disk and gets replayed *)
      Model.sync_to_last t.model;
      check_journal_wellformed t;
      check_digest t "after clean restart"
  | Gen.Crash cut ->
      let floor = Server.Persist.covered_seq t.persist in
      Env.crash t.env ~cut;
      reopen_after_crash t ~floor ~index
  | Gen.Replica -> run_replica t
  | Gen.Partition ->
      (* the primary is unreachable this poll: nothing moves, nothing
         may regress *)
      check_replica t
  | Gen.Replica_chain -> run_chain t
  | Gen.Kill_hop -> run_kill_hop t);
  check_digest t "after op";
  check_chain_frontiers t

(* ------------------------------------------------------------------ *)
(* Running sequences                                                  *)
(* ------------------------------------------------------------------ *)

exception Failed of failure

let run_ops ops =
  match
    let t = create () in
    List.iteri
      (fun index op ->
        try step t ~index op with
        | Violation reason -> raise (Failed { index; op; reason })
        | Failed _ as e -> raise e
        | e ->
            raise
              (Failed
                 {
                   index;
                   op;
                   reason = "uncaught: " ^ Printexc.to_string e;
                 }))
      ops
  with
  | () -> Ok ()
  | exception Failed f -> Error f

let fails ops = Result.is_error (run_ops ops)

let run_seed ~seed ~ops =
  let sequence = Gen.gen ~seed ~ops in
  match run_ops sequence with
  | Ok () -> Ok ()
  | Error f -> Error (f, sequence)

let repro_command ops =
  Printf.sprintf "dune exec bin/sosae.exe -- simtest --replay '%s'"
    (Gen.ops_to_string ops)

let report_failure ppf (f, sequence) =
  let shrunk = Shrink.shrink ~fails sequence in
  Format.fprintf ppf
    "@[<v>FAILED at op %d (%s): %s@,%d-op repro:@,  %s@]" f.index
    (Gen.to_string f.op) f.reason (List.length shrunk)
    (repro_command shrunk)
