(* Greedy delta-debugging over op lists: repeatedly delete chunks,
   halving the chunk size, keeping any deletion that still fails. Runs
   are deterministic, so the predicate is cheap to trust; the budget
   caps pathological sequences, not typical ones (a typical failing
   sequence shrinks in well under a hundred runs). *)

let delete_chunk ops start len =
  List.filteri (fun i _ -> i < start || i >= start + len) ops

let shrink ?(budget = 400) ~fails ops =
  let budget = ref budget in
  let attempt cand =
    if !budget <= 0 then false
    else begin
      decr budget;
      fails cand
    end
  in
  let rec at_size ops size =
    if size < 1 then ops
    else
      (* scan deletion positions left to right; restart the scan at
         the same size whenever a deletion sticks *)
      let rec scan ops start =
        if start >= List.length ops then at_size ops (size / 2)
        else
          let cand = delete_chunk ops start size in
          if List.length cand < List.length ops && attempt cand then
            scan cand start
          else scan ops (start + size)
      in
      scan ops 0
  in
  if not (fails ops) then ops
  else at_size ops (max 1 (List.length ops / 2))
