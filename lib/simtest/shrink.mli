(** Delta-debugging for op sequences. *)

val shrink :
  ?budget:int -> fails:(Gen.op list -> bool) -> Gen.op list -> Gen.op list
(** Greedily delete chunks (halving the chunk size) while [fails]
    still holds, within [budget] (default 400) predicate runs. Returns
    the input unchanged if it does not fail. *)
