(* The oracle the simulator checks the real stack against: a pure
   mirror of what the registry should contain, plus the durable
   history needed to judge recovery.

   [live] mirrors registry memory after every acknowledged (or
   known-unacknowledged-but-applied) mutation. [entries] is the
   journal's image: one snapshot of [live] per staged sequence number,
   newest first — after a crash the journal's recovered sequence
   number selects exactly one entry, and the recovered registry must
   equal it. [acked] is the no-lost-write floor: the highest sequence
   number whose mutation returned successfully to the caller; no crash
   may recover to anything earlier. *)

type state = (string * Adl.Structure.t) list  (* sorted by id *)

type t = {
  mutable live : state;
  mutable entries : (int64 * state) list;  (* newest first *)
  mutable acked : int64;
}

let create () = { live = []; entries = []; acked = 0L }

(* ------------------------------------------------------------------ *)
(* Fixture: the booking project from the quickstart, as both XML      *)
(* sources (what the API would receive) and the parsed architecture   *)
(* (so model and registry start from the identical parse)             *)
(* ------------------------------------------------------------------ *)

let fixture =
  lazy
    (let ontology =
       let open Ontology.Build in
       create ~id:"booking-ontology" ~name:"Room booking domain"
       |> add_class ~id:"actor" ~name:"Actor"
       |> add_class ~id:"user" ~name:"User" ~super:"actor"
       |> add_class ~id:"thing" ~name:"Thing"
       |> add_class ~id:"room" ~name:"Meeting room" ~super:"thing"
       |> add_individual ~id:"alice" ~name:"Alice" ~cls:"user"
       |> add_event_type ~id:"requests" ~name:"requests"
            ~params:[ ("what", "thing") ]
            ~template:"The user requests {what}" ~actor:"user"
       |> add_event_type ~id:"checks" ~name:"checks availability"
            ~params:[ ("what", "thing") ]
            ~template:"The system checks availability of {what}"
       |> add_event_type ~id:"confirms" ~name:"confirms"
            ~params:[ ("what", "thing") ]
            ~template:"The system confirms the booking of {what}"
     in
     let scenario =
       Scenarioml.Scen.scenario ~id:"book-room" ~name:"Book a room"
         ~actors:[ "alice" ]
         [
           Scenarioml.Event.typed ~id:"e1" ~event_type:"requests"
             [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
           Scenarioml.Event.typed ~id:"e2" ~event_type:"checks"
             [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
           Scenarioml.Event.typed ~id:"e3" ~event_type:"confirms"
             [ Scenarioml.Event.literal ~param:"what" "the blue room" ];
         ]
     in
     let set =
       Scenarioml.Scen.make_set ~id:"booking" ~name:"Booking scenarios"
         ontology [ scenario ]
     in
     let architecture =
       let open Adl.Build in
       create ~id:"booking-arch" ~name:"Booking system" ()
       |> add_component ~id:"ui" ~name:"Web UI"
            ~responsibilities:[ "interact with users" ]
       |> add_component ~id:"scheduler" ~name:"Scheduler"
            ~responsibilities:[ "check availability"; "confirm bookings" ]
       |> add_component ~id:"store" ~name:"Calendar store"
            ~responsibilities:[ "persist bookings" ]
       |> add_connector ~id:"http" ~name:"HTTP"
       |> fun t ->
       biconnect t "ui" "http" |> fun t ->
       biconnect t "http" "scheduler" |> fun t ->
       biconnect t "scheduler" "store"
     in
     let mapping =
       let open Mapping.Build in
       create ~id:"booking-mapping" ~ontology ~architecture
       |> map ~event_type:"requests" ~to_:[ "ui" ]
       |> map ~event_type:"checks" ~to_:[ "scheduler"; "store" ]
       |> map ~event_type:"confirms" ~to_:[ "scheduler"; "ui" ]
     in
     let scenarios_xml = Scenarioml.Xml_io.set_to_string set in
     let architecture_xml = Adl.Xml_io.to_string architecture in
     let mapping_xml = Mapping.Xml_io.to_string mapping in
     (* the model's base state is the PARSED architecture — the same
        value the registry ends up with after the API (or recovery)
        parses the XML it was sent *)
     let parsed_arch = Adl.Xml_io.of_string architecture_xml in
     (scenarios_xml, architecture_xml, mapping_xml, parsed_arch))

let scenarios_xml () =
  let x, _, _, _ = Lazy.force fixture in
  x

let architecture_xml () =
  let _, x, _, _ = Lazy.force fixture in
  x

let mapping_xml () =
  let _, _, x, _ = Lazy.force fixture in
  x

let base_arch () =
  let _, _, _, a = Lazy.force fixture in
  a

let project_of_arch arch =
  match
    Core.Sosae.project_of_strings ~scenarios:(scenarios_xml ())
      ~architecture:(Adl.Xml_io.to_string arch) ~mapping:(mapping_xml ())
  with
  | Ok p -> p
  | Error _ -> failwith "simtest: fixture project does not parse"

let session_id slot = Printf.sprintf "s%d" slot

(* ------------------------------------------------------------------ *)
(* Live state                                                         *)
(* ------------------------------------------------------------------ *)

let find t id = List.assoc_opt id t.live

let state_set state id arch =
  List.merge
    (fun (a, _) (b, _) -> compare a b)
    [ (id, arch) ]
    (List.remove_assoc id state)

let state_del state id = List.remove_assoc id state

let set t id arch = t.live <- state_set t.live id arch
let del t id = t.live <- state_del t.live id

(* ------------------------------------------------------------------ *)
(* Digests                                                            *)
(* ------------------------------------------------------------------ *)

let digest_of_state state =
  String.concat "\x00"
    (List.concat_map (fun (id, arch) -> [ id; Adl.Xml_io.to_string arch ]) state)

let live_digest t = digest_of_state t.live

let registry_digest reg =
  let ids = Server.Registry.ids reg in
  let state =
    List.map
      (fun id ->
        match
          Server.Registry.with_session reg id (fun session ->
              Adl.Xml_io.to_string
                (Core.Sosae.Session.project session).Core.Sosae.architecture)
        with
        | Ok xml -> (id, xml)
        | Error `Not_found -> (id, "<gone>"))
      ids
  in
  String.concat "\x00" (List.concat_map (fun (id, xml) -> [ id; xml ]) state)

(* ------------------------------------------------------------------ *)
(* Durable history                                                    *)
(* ------------------------------------------------------------------ *)

let push_entry t ~seq = t.entries <- (seq, t.live) :: t.entries

let last_entry_state t =
  match t.entries with [] -> [] | (_, s) :: _ -> s

let last_entry_seq t = match t.entries with [] -> 0L | (s, _) :: _ -> s

let entry_state t seq =
  if seq = 0L then Some []
  else List.assoc_opt seq t.entries

(* a crash recovered to [seq]: drop every later entry and resync the
   live mirror to what recovery rebuilt *)
let truncate t ~seq =
  t.entries <- List.filter (fun (s, _) -> s <= seq) t.entries;
  t.live <- last_entry_state t

(* a non-crash failure forced a reopen: journal unchanged, memory
   resynced to the last durable entry *)
let sync_to_last t = t.live <- last_entry_state t

(* ------------------------------------------------------------------ *)
(* Evaluation oracle                                                  *)
(* ------------------------------------------------------------------ *)

let eval_json arch =
  let project = project_of_arch arch in
  Walkthrough.Report.set_result_to_json
    (Core.Sosae.evaluate ~jobs:1 project)
