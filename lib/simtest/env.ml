(* An in-memory filesystem behind [Store.Fsenv.S], with a crash model
   and single-shot fault injection. The whole persistence stack
   (Journal, Wal, Persist) runs against it unmodified; the simulator
   arms one fault, runs one operation, and then inspects or crashes
   the "disk".

   Crash model: each file carries the visible contents ([data]) and
   the contents at the last fsync ([synced]). A crash keeps [synced]
   plus a seed-determined fraction of the unsynced extension — the
   kernel got some of the dirty pages out, in order, before the power
   failed. Renames are durable only after [fsync_dir]; a crash before
   that may undo them. *)

exception Crashed

type fault =
  | Disk_full of int  (** the Nth write applies half, then ENOSPC *)
  | Torn of int * int
      (** the Nth write applies [permille]/1000 of its bytes, then the
          process dies ([Crashed]); the env is dead until {!crash} *)
  | Fsync_fail of int  (** the Nth fsync raises EIO *)
  | Crash_at of int
      (** the Nth effect (write/fsync/rename/ftruncate/remove/
          fsync_dir) dies before applying anything *)

type file = {
  mutable data : string;  (* visible contents *)
  mutable synced : string;  (* contents at the last fsync *)
}

(* a rename not yet made durable by fsync_dir; crash may undo it *)
type pending = { p_src : string; p_dst : string; p_old_dst : file option }

type handle = {
  h_path : string;
  h_file : file;
  mutable h_pos : int;
  mutable h_closed : bool;
}

type Store.Fsenv.fd += Sim_fd of handle

type t = {
  files : (string, file) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
  mutable pending : pending list;  (* newest first *)
  mutable armed : fault option;
  mutable fired : fault option;
  mutable writes : int;
  mutable fsyncs : int;
  mutable effects : int;
  mutable dead : bool;
  mutable clock : float;
  mutable salt : int;  (* decorrelates crash coins across crashes *)
}

let create () =
  {
    files = Hashtbl.create 16;
    dirs = Hashtbl.create 4;
    pending = [];
    armed = None;
    fired = None;
    writes = 0;
    fsyncs = 0;
    effects = 0;
    dead = false;
    clock = 1_000_000.0;
    salt = 0;
  }

let arm t fault =
  t.armed <- Some fault;
  t.fired <- None;
  t.writes <- 0;
  t.fsyncs <- 0;
  t.effects <- 0

let disarm t =
  t.armed <- None;
  t.fired <- None
let fired t = t.fired
let dead t = t.dead

let visible t path =
  match Hashtbl.find_opt t.files path with
  | Some f -> Some f.data
  | None -> None

(* ------------------------------------------------------------------ *)
(* Fault bookkeeping                                                  *)
(* ------------------------------------------------------------------ *)

let check_dead t = if t.dead then raise Crashed

(* every mutating effect passes through here; Crash_at dies before the
   effect applies *)
let effect t =
  check_dead t;
  t.effects <- t.effects + 1;
  match t.armed with
  | Some (Crash_at n) when t.effects = n ->
      t.fired <- t.armed;
      t.armed <- None;
      t.dead <- true;
      raise Crashed
  | _ -> ()

let handle_of = function
  | Sim_fd h -> h
  | _ -> raise Store.Fsenv.Foreign_fd

let live_handle t fd =
  check_dead t;
  let h = handle_of fd in
  if h.h_closed then
    raise (Unix.Unix_error (Unix.EBADF, "sim", h.h_path));
  h

(* ------------------------------------------------------------------ *)
(* The Fsenv implementation                                           *)
(* ------------------------------------------------------------------ *)

let fs t : Store.Fsenv.t =
  let module M = struct
    let openfile path mode =
      check_dead t;
      let file =
        match (Hashtbl.find_opt t.files path, mode) with
        | Some f, (Store.Fsenv.Read | Store.Fsenv.Read_write) -> f
        | Some f, Store.Fsenv.Trunc ->
            (* visible contents truncated; what was synced stays the
               durable fallback until the next fsync *)
            f.data <- "";
            f
        | None, Store.Fsenv.Read ->
            raise (Unix.Unix_error (Unix.ENOENT, "open", path))
        | None, (Store.Fsenv.Read_write | Store.Fsenv.Trunc) ->
            let f = { data = ""; synced = "" } in
            Hashtbl.replace t.files path f;
            f
      in
      Sim_fd { h_path = path; h_file = file; h_pos = 0; h_closed = false }

    let read fd buf off len =
      let h = live_handle t fd in
      let avail = String.length h.h_file.data - h.h_pos in
      let n = min len (max 0 avail) in
      Bytes.blit_string h.h_file.data h.h_pos buf off n;
      h.h_pos <- h.h_pos + n;
      n

    (* apply [n] bytes of the requested write at the handle position *)
    let apply_write h buf off n =
      let f = h.h_file in
      let pos = h.h_pos in
      let data = f.data in
      let pre =
        if pos <= String.length data then String.sub data 0 pos
        else data ^ String.make (pos - String.length data) '\000'
      in
      let post =
        let endpos = pos + n in
        if endpos < String.length data then
          String.sub data endpos (String.length data - endpos)
        else ""
      in
      f.data <- pre ^ Bytes.sub_string buf off n ^ post;
      h.h_pos <- pos + n

    let write fd buf off len =
      let h = live_handle t fd in
      effect t;
      t.writes <- t.writes + 1;
      match t.armed with
      | Some (Disk_full n) when t.writes = n ->
          t.fired <- t.armed;
          t.armed <- None;
          apply_write h buf off (len / 2);
          raise (Unix.Unix_error (Unix.ENOSPC, "write", h.h_path))
      | Some (Torn (n, permille)) when t.writes = n ->
          t.fired <- t.armed;
          t.armed <- None;
          apply_write h buf off (len * permille / 1000);
          t.dead <- true;
          raise Crashed
      | _ ->
          apply_write h buf off len;
          len

    let fsync fd =
      let h = live_handle t fd in
      effect t;
      t.fsyncs <- t.fsyncs + 1;
      match t.armed with
      | Some (Fsync_fail n) when t.fsyncs = n ->
          t.fired <- t.armed;
          t.armed <- None;
          raise (Unix.Unix_error (Unix.EIO, "fsync", h.h_path))
      | _ -> h.h_file.synced <- h.h_file.data

    let ftruncate fd len =
      let h = live_handle t fd in
      effect t;
      let f = h.h_file in
      if len <= String.length f.data then f.data <- String.sub f.data 0 len
      else f.data <- f.data ^ String.make (len - String.length f.data) '\000'

    let lseek_set fd pos =
      let h = live_handle t fd in
      h.h_pos <- pos

    let lseek_end fd =
      let h = live_handle t fd in
      h.h_pos <- String.length h.h_file.data;
      h.h_pos

    let size fd =
      let h = live_handle t fd in
      String.length h.h_file.data

    let close fd =
      check_dead t;
      (handle_of fd).h_closed <- true

    let rename src dst =
      check_dead t;
      effect t;
      match Hashtbl.find_opt t.files src with
      | None -> raise (Unix.Unix_error (Unix.ENOENT, "rename", src))
      | Some f ->
          let old_dst = Hashtbl.find_opt t.files dst in
          Hashtbl.remove t.files src;
          Hashtbl.replace t.files dst f;
          t.pending <- { p_src = src; p_dst = dst; p_old_dst = old_dst } :: t.pending

    let remove path =
      check_dead t;
      effect t;
      if not (Hashtbl.mem t.files path) then
        raise (Unix.Unix_error (Unix.ENOENT, "unlink", path));
      Hashtbl.remove t.files path

    let mkdir path =
      check_dead t;
      if Hashtbl.mem t.dirs path then
        raise (Unix.Unix_error (Unix.EEXIST, "mkdir", path));
      Hashtbl.replace t.dirs path ()

    let file_exists path =
      check_dead t;
      Hashtbl.mem t.files path || Hashtbl.mem t.dirs path

    let read_file path =
      check_dead t;
      match Hashtbl.find_opt t.files path with
      | Some f -> f.data
      | None -> raise (Sys_error (path ^ ": No such file or directory"))

    let fsync_dir _path =
      check_dead t;
      effect t;
      (* renames are durable from here on *)
      t.pending <- []

    let gettimeofday () =
      t.clock <- t.clock +. 1e-6;
      t.clock

    let sleepf s = t.clock <- t.clock +. s
  end in
  (module M : Store.Fsenv.S)

(* ------------------------------------------------------------------ *)
(* Crash                                                              *)
(* ------------------------------------------------------------------ *)

(* a cheap deterministic coin: whether this [key] survives a crash at
   this [salt] *)
let coin t key limit =
  let h = Hashtbl.hash (t.salt, key) in
  h mod 1000 < limit

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* Power failure: decide per pending rename and per file what the disk
   retains, then bring the env back to life for recovery. [cut] is the
   permille of each unsynced extension that survives. *)
let crash t ~cut =
  t.salt <- t.salt + 1;
  (* undo renames not covered by an fsync_dir, newest first, with a
     per-rename coin biased by [cut] *)
  List.iter
    (fun p ->
      if not (coin t p.p_dst cut) then begin
        (match Hashtbl.find_opt t.files p.p_dst with
        | Some f ->
            Hashtbl.remove t.files p.p_dst;
            Hashtbl.replace t.files p.p_src f
        | None -> ());
        match p.p_old_dst with
        | Some old -> Hashtbl.replace t.files p.p_dst old
        | None -> ()
      end)
    t.pending;
  t.pending <- [];
  Hashtbl.iter
    (fun path f ->
      let durable =
        if f.data = f.synced then f.data
        else if starts_with ~prefix:f.synced f.data then begin
          (* unsynced extension: keep [cut] permille of it *)
          let extra = String.length f.data - String.length f.synced in
          f.synced ^ String.sub f.data (String.length f.synced) (extra * cut / 1000)
        end
        else if coin t path cut then f.data
        else f.synced
        (* diverged (truncate/overwrite without fsync): the metadata
           either made it out or it didn't *)
      in
      f.data <- durable;
      f.synced <- durable)
    t.files;
  t.armed <- None;
  t.dead <- false
