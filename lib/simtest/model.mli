(** The simulator's oracle: a pure mirror of the registry plus the
    durable history needed to judge crash recovery.

    [live] tracks what registry memory should hold right now;
    [entries] snapshots [live] at every staged journal sequence
    number, so after a crash the recovered sequence number selects the
    one state recovery must rebuild; [acked] is the no-lost-write
    floor — the highest sequence whose mutation was acknowledged. *)

type state = (string * Adl.Structure.t) list
(** Session id to architecture, sorted by id. Scenarios and mapping
    are fixed by the fixture; the architecture is the whole mutable
    state. *)

type t = {
  mutable live : state;
  mutable entries : (int64 * state) list;  (** newest first *)
  mutable acked : int64;
}

val create : unit -> t

(** {2 Fixture} — the quickstart booking project, shared by every
    session the simulator creates. *)

val scenarios_xml : unit -> string
val architecture_xml : unit -> string
val mapping_xml : unit -> string

val base_arch : unit -> Adl.Structure.t
(** The architecture as the registry will hold it: parsed back from
    {!architecture_xml}, not the built value. *)

val project_of_arch : Adl.Structure.t -> Core.Sosae.project

val session_id : int -> string
(** Slot [n] is session ["sN"]. *)

(** {2 Live state} *)

val find : t -> string -> Adl.Structure.t option
val set : t -> string -> Adl.Structure.t -> unit
val del : t -> string -> unit

val state_set : state -> string -> Adl.Structure.t -> state
(** Pure insert-or-replace, keeping the id order — for computing a
    mutation's post-state before running it. *)

val state_del : state -> string -> state

(** {2 Digests} *)

val digest_of_state : state -> string

val live_digest : t -> string

val registry_digest : Server.Registry.t -> string
(** Same encoding as {!digest_of_state}, read out of the real
    registry — equal strings mean equal session ids and architectures. *)

(** {2 Durable history} *)

val push_entry : t -> seq:int64 -> unit
(** Record that the mutation staged at [seq] produced the current
    [live] state. *)

val last_entry_state : t -> state
val last_entry_seq : t -> int64

val entry_state : t -> int64 -> state option
(** [entry_state t 0L] is the empty state. *)

val truncate : t -> seq:int64 -> unit
(** A crash recovered to [seq]: drop later entries, resync [live]. *)

val sync_to_last : t -> unit
(** A non-crash failure forced a reopen: resync [live] to the last
    entry, entries unchanged. *)

(** {2 Evaluation oracle} *)

val eval_json : Adl.Structure.t -> string
(** What evaluating a session holding this architecture must report:
    a fresh single-threaded evaluation of the fixture project,
    serialized. *)
