(** Seeded operation sequences and their replayable token syntax.

    An op prints as a self-contained token — [create:2/full:1],
    [diff:0:5], [crash:350] — so any sequence round-trips through
    {!ops_to_string}/{!ops_of_string} and a shrunk repro can be pasted
    straight into [sosae simtest --replay]. *)

module Rng : sig
  type t

  val make : int -> t

  val int : t -> int -> int
  (** Uniform in [\[0, bound)]. Splitmix64 underneath. *)
end

type fault =
  | Fsync of int  (** Nth fsync fails (EIO, journal poisoned) *)
  | Full of int  (** Nth write: half applied, then ENOSPC *)
  | Torn of int * int  (** Nth write torn at permille, process dies *)
  | Crashat of int  (** process dies at the Nth effect *)

type op =
  | Create of int * fault option  (** session slot *)
  | Diff of int * int * fault option  (** slot, element pick *)
  | Excise of int * int * fault option  (** slot, link pick *)
  | Remove of int * fault option
  | Eval of int
  | Ckpt of fault option  (** inline checkpoint *)
  | Compact of fault option  (** background-style rotation *)
  | Restart  (** clean close + reopen *)
  | Crash of int  (** power failure; cut permille of unsynced tails *)
  | Replica  (** one replica poll + apply *)
  | Partition  (** a poll that cannot reach the primary *)
  | Replica_chain
      (** one propagation step down the chain: the durable hop pulls
          from the root, then the leaf pulls from the hop *)
  | Kill_hop
      (** SIGKILL the chain's middle hop and restart it from its own
          journal (compacting on the way up, so a stranded leaf must
          heal through a snapshot reset) *)

val to_env_fault : fault -> Env.fault

val sessions : int
(** Session-id slots the generator draws from. *)

val to_string : op -> string
val ops_to_string : op list -> string
val of_string : string -> (op, string) result
val ops_of_string : string -> (op list, string) result

val gen : seed:int -> ops:int -> op list
