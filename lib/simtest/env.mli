(** The simulated disk: an in-memory {!Store.Fsenv.S} with
    deterministic fault injection and a crash model.

    One {!t} is one machine. {!fs} hands the persistence stack its
    filesystem; {!arm} loads a single-shot fault that fires on the
    chosen effect; {!crash} is a power failure — it decides what the
    disk retains (everything fsynced, plus a seed-determined fraction
    of unsynced tails) and brings the env back to life for recovery. *)

exception Crashed
(** The simulated process died mid-effect ({!Torn} or {!Crash_at}).
    Every subsequent effect re-raises it until {!crash} resurrects
    the env. *)

type fault =
  | Disk_full of int  (** the Nth write applies half, then ENOSPC *)
  | Torn of int * int
      (** [Torn (n, permille)]: the Nth write applies [permille]/1000
          of its bytes and the process dies *)
  | Fsync_fail of int  (** the Nth fsync raises EIO *)
  | Crash_at of int
      (** the Nth effect (write, fsync, rename, ftruncate, remove,
          fsync_dir) dies before applying anything *)

type t

val create : unit -> t

val fs : t -> Store.Fsenv.t
(** The filesystem to pass as [?env] to [Persist.open_] etc. *)

val arm : t -> fault -> unit
(** Load one fault and reset the effect counters. Single-shot: the
    fault disarms itself when it fires. *)

val disarm : t -> unit
(** Clear both the armed fault and the {!fired} marker. *)

val fired : t -> fault option
(** The fault that fired since the last {!arm}, if any. *)

val dead : t -> bool
(** [true] between a {!Torn}/{!Crash_at} firing and the next
    {!crash}. *)

val crash : t -> cut:int -> unit
(** Power failure. [cut] (permille) is how much of each unsynced tail
    the kernel happened to flush; pending renames survive or unwind on
    a per-rename coin biased by [cut]. Clears {!dead}. *)

val visible : t -> string -> string option
(** Current visible contents of a path, for invariant checks. *)
