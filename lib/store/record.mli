(** Length-prefixed, CRC-checksummed journal records.

    Wire layout of one record (all integers big-endian):

    {v
    +------------+-----------+----------+------------------+
    | length u32 | crc32 u32 | seq u64  | payload bytes    |
    +------------+-----------+----------+------------------+
    v}

    [length] counts the seq field plus the payload ([8 + |payload|]);
    [crc32] covers the same bytes ({!Crc32}). The sequence number is
    assigned by {!Journal} and lets {!Wal} recovery skip journal
    entries already folded into a snapshot.

    Decoding never raises on bad input: a truncated or corrupt record
    terminates the scan with a {!tail} describing why, and everything
    before it is returned — the torn-tail tolerance the recovery
    invariant is built on. *)

val header_size : int
(** Bytes before the payload: 16. *)

val max_payload : int
(** Decoding treats a declared length beyond this (256 MiB) as
    corruption instead of attempting the allocation. *)

val encode : Buffer.t -> seq:int64 -> string -> unit
(** Append one framed record to the buffer. *)

type tail =
  | Clean  (** the scan consumed every byte *)
  | Torn of int  (** a record was cut short; valid bytes end here *)
  | Corrupt of int  (** checksum or length-field mismatch at this offset *)

val decode_all : ?pos:int -> string -> (int64 * string) list * int * tail
(** [decode_all s] scans records from [pos] (default 0) and returns
    [(records, end_of_valid_prefix, tail)]: every complete, checksummed
    record in order, the offset just past the last valid one, and how
    the scan ended. *)
