(* Serves the journal to replicas as raw framed record batches. The
   bytes go out exactly as they sit in the file (CRC intact), spliced
   by [Journal.Tail]; when a compaction has dropped the records a
   replica still needs, the snapshot file's valid prefix is shipped
   instead as a reset batch. *)

type t = {
  wal : Wal.t;
  lock : Mutex.t;
  (* most-recently-used first, keyed by the seq a cursor stopped at;
     sequential pollers hit the front entry and stream in O(new bytes) *)
  mutable cursors : Journal.Tail.cursor list;
  mutable hits : int;
  mutable misses : int;
  mutable resets : int;
}

type batch = { data : string; covered : int64; reset : bool }

type stats = {
  cursor_hits : int;
  cursor_misses : int;
  reset_batches : int;
  cursor_lags : int64 list;
}

let max_cursors = 4

let create wal =
  { wal; lock = Mutex.create (); cursors = []; hits = 0; misses = 0; resets = 0 }

let covered_seq t = Journal.covered_seq (Wal.journal t.wal)

(* the snapshot's valid prefix plus how far it covers (its first
   record is the meta record carrying the coverage seq) *)
let snapshot_prefix t =
  let module E = (val Wal.env t.wal : Fsenv.S) in
  let path = Wal.snapshot_path t.wal in
  match E.read_file path with
  | contents -> (
      let records, valid_end, _ = Record.decode_all contents in
      match records with
      | (meta_seq, _) :: _ -> Some (meta_seq, String.sub contents 0 valid_end)
      | [] -> None)
  | exception Sys_error _ -> None

let snapshot t = Mutex.protect t.lock (fun () -> snapshot_prefix t)

let put_cursor t c =
  let rec keep n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: keep (n - 1) rest
  in
  t.cursors <- c :: keep (max_cursors - 1) t.cursors

let fetch ?max_bytes t ~after =
  Mutex.protect t.lock (fun () ->
      let cursor =
        match
          List.partition (fun c -> Journal.Tail.last c = after) t.cursors
        with
        | c :: _, rest ->
            t.hits <- t.hits + 1;
            t.cursors <- rest;
            c
        | [], _ ->
            t.misses <- t.misses + 1;
            Journal.Tail.cursor ~after ()
      in
      let rec go tries =
        let batch, covered =
          Journal.Tail.read ?max_bytes (Wal.journal t.wal) cursor
        in
        match batch with
        | Journal.Tail.Records data ->
            put_cursor t cursor;
            { data; covered; reset = false }
        | Journal.Tail.Gap -> (
            (* the journal no longer holds what this reader needs;
               bootstrap it from the snapshot (the compaction that
               created the gap made the snapshot durable first) *)
            match snapshot_prefix t with
            | Some (meta_seq, data) when meta_seq > after ->
                t.resets <- t.resets + 1;
                { data; covered; reset = true }
            | Some _ | None ->
                (* a compaction may be mid-rename; look again, then
                   give up and let the replica poll *)
                if tries < 3 then go (tries + 1)
                else { data = ""; covered; reset = false })
      in
      go 0)

let stats t =
  Mutex.protect t.lock (fun () ->
      let covered = covered_seq t in
      {
        cursor_hits = t.hits;
        cursor_misses = t.misses;
        reset_batches = t.resets;
        cursor_lags =
          List.map
            (fun c -> Int64.max 0L (Int64.sub covered (Journal.Tail.last c)))
            t.cursors;
      })

let decode data =
  let records, _, tail = Record.decode_all data in
  match tail with
  | Record.Clean -> Ok records
  | Record.Torn off ->
      Error (Printf.sprintf "shipped batch torn at byte %d" off)
  | Record.Corrupt off ->
      Error (Printf.sprintf "shipped batch corrupt at byte %d" off)
