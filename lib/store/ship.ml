(* Serves the journal to replicas as raw framed record batches. The
   bytes go out exactly as they sit in the file (CRC intact), spliced
   by [Journal.Tail]; when a compaction has dropped the records a
   replica still needs, the snapshot file's valid prefix is shipped
   instead as a reset batch. *)

type t = {
  wal : Wal.t;
  lock : Mutex.t;
  (* most-recently-used first, keyed by the seq a cursor stopped at;
     sequential pollers hit the front entry and stream in O(new bytes) *)
  mutable cursors : Journal.Tail.cursor list;
}

type batch = { data : string; covered : int64; reset : bool }

let max_cursors = 4

let create wal = { wal; lock = Mutex.create (); cursors = [] }

let covered_seq t = Journal.covered_seq (Wal.journal t.wal)

(* the snapshot's valid prefix plus how far it covers (its first
   record is the meta record carrying the coverage seq) *)
let snapshot_prefix t =
  let module E = (val Wal.env t.wal : Fsenv.S) in
  let path = Wal.snapshot_path t.wal in
  match E.read_file path with
  | contents -> (
      let records, valid_end, _ = Record.decode_all contents in
      match records with
      | (meta_seq, _) :: _ -> Some (meta_seq, String.sub contents 0 valid_end)
      | [] -> None)
  | exception Sys_error _ -> None

let put_cursor t c =
  let rec keep n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: keep (n - 1) rest
  in
  t.cursors <- c :: keep (max_cursors - 1) t.cursors

let fetch ?max_bytes t ~after =
  Mutex.protect t.lock (fun () ->
      let cursor =
        match
          List.partition (fun c -> Journal.Tail.last c = after) t.cursors
        with
        | c :: _, rest ->
            t.cursors <- rest;
            c
        | [], _ -> Journal.Tail.cursor ~after ()
      in
      let rec go tries =
        let batch, covered =
          Journal.Tail.read ?max_bytes (Wal.journal t.wal) cursor
        in
        match batch with
        | Journal.Tail.Records data ->
            put_cursor t cursor;
            { data; covered; reset = false }
        | Journal.Tail.Gap -> (
            (* the journal no longer holds what this reader needs;
               bootstrap it from the snapshot (the compaction that
               created the gap made the snapshot durable first) *)
            match snapshot_prefix t with
            | Some (meta_seq, data) when meta_seq > after ->
                { data; covered; reset = true }
            | Some _ | None ->
                (* a compaction may be mid-rename; look again, then
                   give up and let the replica poll *)
                if tries < 3 then go (tries + 1)
                else { data = ""; covered; reset = false })
      in
      go 0)

let decode data =
  let records, _, tail = Record.decode_all data in
  match tail with
  | Record.Clean -> Ok records
  | Record.Torn off ->
      Error (Printf.sprintf "shipped batch torn at byte %d" off)
  | Record.Corrupt off ->
      Error (Printf.sprintf "shipped batch corrupt at byte %d" off)
