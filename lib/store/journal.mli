(** An append-only file of {!Record}-framed entries — the write-ahead
    journal. Thread-safe: appends from concurrent writers serialize on
    an internal lock, and with {!enable_group} concurrent [Always]
    writers share fsyncs through a group-commit barrier.

    Durability is governed by the {!fsync_policy}:
    - [Always] — fsync before the append is acknowledged; an
      acknowledged append survives power loss. With group commit the
      fsync may be performed by another writer (the batch leader), but
      {!await} never returns before a completed fsync covers the
      record.
    - [Interval s] — appends are written immediately but fsynced at
      most once per [s] seconds (plus on {!flush}/{!close}); a crash
      can lose up to the last interval of acknowledged appends.
    - [Never] — no fsyncs except on {!close}; a crash can lose
      anything the OS had not written back yet. Kernel-crash safety
      only comes from [Always]/[Interval]; process-crash ([kill -9])
      safety holds for every policy because appends always reach the
      kernel before the call returns. *)

type fsync_policy = Always | Interval of float | Never

val fsync_policy_to_string : fsync_policy -> string
(** ["always"], ["interval:<seconds>"] or ["never"]. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Accepts ["always"], ["never"], ["interval"] (1 s) and
    ["interval:<seconds>"]. *)

type t

type recovery = {
  records : (int64 * string) list;  (** the valid prefix, in order *)
  truncated_bytes : int;  (** torn/corrupt tail bytes discarded *)
  corrupt : bool;  (** the discard was a checksum/length mismatch,
                       not a clean cut *)
}

val open_ : ?fsync:fsync_policy -> ?env:Fsenv.t -> string -> t * recovery
(** Open (creating if missing) and scan the file. A torn or corrupt
    tail is truncated away on disk so new appends extend the valid
    prefix; everything before it is returned. The next sequence number
    continues after the largest recovered one. Default policy
    [Always]. Every filesystem effect goes through [env] (default
    {!Fsenv.real}, which delegates to [Unix]). *)

val env : t -> Fsenv.t
(** The effect environment the journal was opened with. *)

type counters = { appends : int; bytes : int; fsyncs : int }

val append : t -> string -> int64
(** Append one record and return its sequence number. On return the
    record is durable per the policy (see above); equivalent to
    {!stage} followed by {!await}. *)

val stage : t -> string -> int64
(** Write one record to the file (through the kernel, not necessarily
    to the platter) and return its sequence number. Under group commit
    with policy [Always] this performs no fsync — call {!await} before
    acknowledging; under every other configuration it behaves exactly
    like {!append}. A failed write (ENOSPC, torn) is scrubbed back out
    of the file and consumes no sequence number; a failed fsync
    additionally poisons the journal (see {!await}). *)

val await : t -> int64 -> unit
(** Block until a completed fsync covers the given sequence number.
    The calling writer may be elected batch leader and perform the
    fsync itself, covering everything staged so far. No-op unless
    group commit is enabled with policy [Always] (other policies never
    promised immediate durability). Raises the original fsync
    exception, in every waiting writer, if the shared fsync failed —
    the journal is then poisoned and refuses further appends. *)

(** Group-commit configuration and statistics. *)
module Group : sig
  type config = {
    window : float;
        (** extra seconds the batch leader waits (lock released)
            before fsyncing, letting more writers stage into the
            batch. [0.0] still batches: writers arriving during an
            in-flight fsync are covered by the next one. *)
    max_batch : int;
        (** a pending batch at least this large skips the window *)
  }

  val default : config
  (** [{ window = 0.0; max_batch = 64 }] *)

  type stats = {
    batches : int;  (** group fsyncs that covered at least one record *)
    batched_appends : int;  (** records released by those fsyncs *)
    fsyncs_saved : int;  (** [batched_appends - batches] *)
    largest_batch : int;
    hist : int array;
        (** batch-size histogram; bucket [i] counts batches of size
            ≤ {!hist_bounds}[.(i)], the final bucket is unbounded *)
  }

  val hist_bounds : int array
end

val enable_group : ?config:Group.config -> t -> unit
(** Turn on the group-commit barrier. Call once, before concurrent
    writers start. *)

val group_stats : t -> Group.stats option
(** [None] unless {!enable_group} was called. *)

val append_group : t -> string -> int64
(** Alias for {!append} — under group commit the stage/await pair. *)

val ingest : t -> string -> unit
(** Append a batch of already-framed records shipped from an upstream
    journal verbatim, keeping their upstream-assigned sequence numbers
    ({!Record.encode} is deterministic, so the raw bytes equal a local
    re-encoding and the file stays a journal this process can itself
    ship downstream with {!Tail}). Records at sequence numbers the
    journal already holds are skipped (a re-shipped batch is
    idempotent); the remainder must continue contiguously at
    {!next_seq} or [Invalid_argument] is raised — a silent gap would
    wedge every local tail cursor with no covering snapshot. Durability
    follows the fsync policy, with the fsync performed inline (the
    caller is the single-threaded replica apply loop, not a concurrent
    writer pool). Raises like {!append} on write/fsync failure. *)

val bump_seq : t -> int64 -> unit
(** Ensure the next assigned sequence number exceeds the given one —
    how {!Wal} accounts for sequence numbers consumed before a
    compaction emptied the journal. *)

val next_seq : t -> int64

val file_bytes : t -> int
(** Current size of the journal file in bytes. *)

val flush : t -> bool
(** Fsync now if anything was written since the last one; [true] when
    an fsync actually happened. Waits out an in-flight group fsync. *)

val reset : t -> unit
(** Truncate to empty (and fsync the truncation). Sequence numbers
    keep counting — they must stay monotonic across compactions. Any
    writer parked on {!await} is released: the caller only resets
    after making a snapshot covering every staged record durable. *)

val begin_rotation : t -> int64
(** Start journal rotation for background compaction: returns the
    highest staged sequence number (what the caller's snapshot must
    cover) and begins mirroring every subsequent append in memory.
    Appends keep flowing while the caller writes its snapshot. *)

val commit_rotation : t -> unit
(** Atomically replace the journal file with just the records staged
    since {!begin_rotation} (tmp → fsync → rename → dir fsync), then
    swap file descriptors. Must only be called after the snapshot
    covering {!begin_rotation}'s sequence number is durable. A crash
    before the rename leaves the old journal, whose covered prefix
    recovery skips by sequence number; after it, exactly the tail.
    Releases writers parked on {!await} (their records are durable in
    either the snapshot or the fsynced replacement file). *)

val abort_rotation : t -> unit
(** Drop the mirror without touching the file (snapshot failed). *)

val covered_seq : t -> int64
(** Highest sequence number safe to ship to a replica. Under [Always]
    this is the fsync high-water mark — an acknowledged append
    promised durability, and a replica must never apply a record the
    primary could still lose. Under [Never]/[Interval] acknowledgement
    never implied durability, so everything staged is covered. *)

(** Streaming reader over the journal file for log shipping. A cursor
    remembers a byte offset, the journal epoch it is valid for, and
    the highest sequence number already returned; {!Tail.read} returns
    the raw framed bytes (CRC intact — a replica re-checks them) of
    the next run of records up to {!covered_seq}. Rotation and
    compaction replace the file; the cursor detects this via the epoch
    and rescans from the top, filtering by sequence number, so a
    reader survives any number of compactions. *)
module Tail : sig
  type cursor

  type batch =
    | Records of string
        (** zero or more consecutive framed records; [""] = caught up *)
    | Gap
        (** the records after the cursor were compacted into a
            snapshot — resume from a snapshot bootstrap *)

  val cursor : ?after:int64 -> unit -> cursor
  (** A cursor that will return records with sequence numbers
      strictly greater than [after] (default [0L] — everything). *)

  val last : cursor -> int64
  (** Highest sequence number this cursor has returned. *)

  val read : ?max_bytes:int -> t -> cursor -> batch * int64
  (** Next batch plus the journal's current covered sequence number.
      At most [max_bytes] (default 1 MiB) of records per call, except
      that a single over-sized record is always returned whole. Runs
      under the journal lock, so it serializes with appends and
      rotation but never blocks on an in-flight group fsync. *)
end

val stats : t -> counters

val close : t -> unit
(** Flush, then close. Idempotent. *)
