(** An append-only file of {!Record}-framed entries — the write-ahead
    journal. Not thread-safe: callers serialize access (the server
    funnels every append through one mutation lock).

    Durability is governed by the {!fsync_policy}:
    - [Always] — fsync after every append; an acknowledged append
      survives power loss.
    - [Interval s] — appends are written immediately but fsynced at
      most once per [s] seconds (plus on {!flush}/{!close}); a crash
      can lose up to the last interval of acknowledged appends.
    - [Never] — no fsyncs except on {!close}; a crash can lose
      anything the OS had not written back yet. Kernel-crash safety
      only comes from [Always]/[Interval]; process-crash ([kill -9])
      safety holds for every policy because appends always reach the
      kernel before the call returns. *)

type fsync_policy = Always | Interval of float | Never

val fsync_policy_to_string : fsync_policy -> string
(** ["always"], ["interval:<seconds>"] or ["never"]. *)

val fsync_policy_of_string : string -> (fsync_policy, string) result
(** Accepts ["always"], ["never"], ["interval"] (1 s) and
    ["interval:<seconds>"]. *)

type t

type recovery = {
  records : (int64 * string) list;  (** the valid prefix, in order *)
  truncated_bytes : int;  (** torn/corrupt tail bytes discarded *)
  corrupt : bool;  (** the discard was a checksum/length mismatch,
                       not a clean cut *)
}

val open_ : ?fsync:fsync_policy -> string -> t * recovery
(** Open (creating if missing) and scan the file. A torn or corrupt
    tail is truncated away on disk so new appends extend the valid
    prefix; everything before it is returned. The next sequence number
    continues after the largest recovered one. Default policy
    [Always]. *)

type counters = { appends : int; bytes : int; fsyncs : int }

val append : t -> string -> int64
(** Append one record and return its sequence number. On return the
    record is durable per the policy (see above). *)

val bump_seq : t -> int64 -> unit
(** Ensure the next assigned sequence number exceeds the given one —
    how {!Wal} accounts for sequence numbers consumed before a
    compaction emptied the journal. *)

val next_seq : t -> int64

val flush : t -> bool
(** Fsync now if anything was written since the last one; [true] when
    an fsync actually happened. *)

val reset : t -> unit
(** Truncate to empty (and fsync the truncation). Sequence numbers
    keep counting — they must stay monotonic across compactions. *)

val stats : t -> counters

val close : t -> unit
(** Flush, then close. Idempotent. *)
