(** A durable log directory: one append-only {!Journal} ([wal.log])
    plus an atomically-replaced snapshot ([snapshot.log]) that compacts
    it. Payloads are opaque byte strings — the server layer encodes its
    registry mutations; this module only guarantees they come back.

    Recovery contract: {!open_} returns the snapshot's state payloads
    plus every journal entry appended after that snapshot was taken,
    in order. A torn or corrupt journal tail (the crash case) is
    discarded, never an error: the result is always a prefix of the
    appended sequence. Snapshots are written to a temp file, fsynced,
    and renamed into place (then the directory is fsynced), so a crash
    anywhere during compaction leaves either the old or the new
    snapshot — and journal entries are only discarded {e after} the
    snapshot covering them is durable. Sequence numbers make the
    overlap window safe: entries already folded into the snapshot are
    skipped by their sequence number on recovery.

    Thread-safe for concurrent appends (see {!Journal}); pass [?group]
    to share fsyncs between concurrent [Always] writers. *)

type t

type recovery = {
  state : string list;  (** snapshot payloads (empty without a snapshot) *)
  entries : string list;  (** journal payloads newer than the snapshot *)
  snapshot_seq : int64;  (** highest sequence the snapshot covers; 0L if none *)
  truncated_bytes : int;  (** journal tail bytes discarded on open *)
  corrupt_tail : bool;  (** the discard was a checksum mismatch, not a cut *)
}

val open_ :
  ?fsync:Journal.fsync_policy ->
  ?group:Journal.Group.config ->
  ?env:Fsenv.t ->
  string ->
  t * recovery
(** [open_ dir] creates [dir] (and parents) if needed, recovers, and
    positions for appending. [?group] enables group commit on the
    journal (see {!Journal.enable_group}). Every filesystem effect
    goes through [env] (default {!Fsenv.real}). *)

val append : t -> string -> int64
(** Journal one payload; durable per the fsync policy on return.
    Equivalent to {!stage} then {!await}. *)

val stage : t -> string -> int64
(** Write one payload without waiting for durability — under group
    commit the caller must {!await} the returned sequence number
    before acknowledging. See {!Journal.stage}. *)

val await : t -> int64 -> unit
(** Block until a completed fsync covers the sequence number. See
    {!Journal.await}. *)

val ingest : t -> string -> unit
(** Append a shipped batch of raw record frames to the journal,
    keeping their upstream sequence numbers. See {!Journal.ingest}. *)

val install_snapshot : t -> string -> int64
(** Install an upstream snapshot shipped as raw record frames (what a
    reset batch carries: meta record first, then one state payload per
    record). The bytes become the local [snapshot.log] under the same
    tmp → fsync → rename → dir-fsync protocol as a compaction, the
    journal is emptied, and sequence numbering is re-based past the
    snapshot's covered sequence (returned), so the next {!ingest}
    continues contiguously. Raises [Invalid_argument] when the bytes
    are not a clean run of frames. *)

val journal_bytes : t -> int
(** Current size of the journal file — the compaction trigger input. *)

val compact : t -> state:string list -> unit
(** Write [state] as the new snapshot (covering every sequence number
    assigned so far), atomically replace the old one, then empty the
    journal. The caller must ensure no concurrent appends (the server
    holds its mutation lock). *)

val compact_background : t -> state:(unit -> string list) -> unit
(** Compaction without stopping the writers: capture the covered
    sequence number, start mirroring concurrent appends, call [state]
    (which must return a state reflecting {e at least} every mutation
    up to the captured sequence number), write it as a durable
    snapshot, then atomically replace the journal file with just the
    mirrored tail. On failure the journal is left untouched. *)

val flush : t -> bool
(** Fsync the journal if dirty; [true] when an fsync happened. *)

type counters = {
  appends : int;
  bytes : int;
  fsyncs : int;
  compactions : int;
}

val stats : t -> counters

val group_stats : t -> Journal.Group.stats option
(** [None] unless group commit was enabled. *)

val dir : t -> string

val env : t -> Fsenv.t
(** The effect environment the store was opened with. *)

val journal : t -> Journal.t
(** The underlying journal — what {!Ship} tails for replication. *)

val snapshot_path : t -> string
(** Path of [snapshot.log] (which may not exist yet). *)

val close : t -> unit
(** Flush and close. Idempotent. *)
