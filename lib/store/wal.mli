(** A durable log directory: one append-only {!Journal} ([wal.log])
    plus an atomically-replaced snapshot ([snapshot.log]) that compacts
    it. Payloads are opaque byte strings — the server layer encodes its
    registry mutations; this module only guarantees they come back.

    Recovery contract: {!open_} returns the snapshot's state payloads
    plus every journal entry appended after that snapshot was taken,
    in order. A torn or corrupt journal tail (the crash case) is
    discarded, never an error: the result is always a prefix of the
    appended sequence. Snapshots are written to a temp file, fsynced,
    and renamed into place (then the directory is fsynced), so a crash
    anywhere during compaction leaves either the old or the new
    snapshot — and journal entries are only discarded {e after} the
    snapshot covering them is durable. Sequence numbers make the
    overlap window safe: entries already folded into the snapshot are
    skipped by their sequence number on recovery.

    Not thread-safe; callers serialize (see {!Journal}). *)

type t

type recovery = {
  state : string list;  (** snapshot payloads (empty without a snapshot) *)
  entries : string list;  (** journal payloads newer than the snapshot *)
  snapshot_seq : int64;  (** highest sequence the snapshot covers; 0L if none *)
  truncated_bytes : int;  (** journal tail bytes discarded on open *)
  corrupt_tail : bool;  (** the discard was a checksum mismatch, not a cut *)
}

val open_ : ?fsync:Journal.fsync_policy -> string -> t * recovery
(** [open_ dir] creates [dir] (and parents) if needed, recovers, and
    positions for appending. *)

val append : t -> string -> int64
(** Journal one payload; durable per the fsync policy on return. *)

val journal_bytes : t -> int
(** Current size of the journal file — the compaction trigger input. *)

val compact : t -> state:string list -> unit
(** Write [state] as the new snapshot (covering every sequence number
    assigned so far), atomically replace the old one, then empty the
    journal. *)

val flush : t -> bool
(** Fsync the journal if dirty; [true] when an fsync happened. *)

type counters = {
  appends : int;
  bytes : int;
  fsyncs : int;
  compactions : int;
}

val stats : t -> counters

val dir : t -> string

val close : t -> unit
(** Flush and close. Idempotent. *)
