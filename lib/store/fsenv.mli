(** Injectable filesystem effects for the store layer.

    [Journal], [Wal] and [Ship] perform every filesystem effect
    through one of these first-class modules. The default, {!real},
    delegates directly to [Unix] — identical flags and error behavior
    to the pre-refactor code, with no allocation on the append hot
    path. The simulation harness ([Simtest.Env]) provides an
    in-memory implementation with deterministic fault injection
    (ENOSPC, torn writes, fsync failure, crash-at-chosen-effect). *)

type fd = ..
(** Extensible so each implementation carries its own descriptor
    representation; {!real} uses {!Unix_fd}. *)

type open_mode =
  | Read  (** [O_RDONLY] *)
  | Read_write  (** [O_RDWR | O_CREAT], mode [0o644] *)
  | Trunc  (** [O_WRONLY | O_CREAT | O_TRUNC], mode [0o644] *)

module type S = sig
  val openfile : string -> open_mode -> fd
  val read : fd -> bytes -> int -> int -> int
  val write : fd -> bytes -> int -> int -> int
  (** Partial writes and [EINTR] are the caller's problem, exactly as
      with [Unix.write]. *)

  val fsync : fd -> unit
  val ftruncate : fd -> int -> unit
  val lseek_set : fd -> int -> unit
  val lseek_end : fd -> int
  (** Seek to end of file and return the resulting offset. *)

  val size : fd -> int
  (** [fstat] file size in bytes. *)

  val close : fd -> unit
  val rename : string -> string -> unit
  val remove : string -> unit
  val mkdir : string -> unit
  (** One level, permissions [0o755]; raises [Unix_error (EEXIST, _, _)]
      if present (callers treat that as success). *)

  val file_exists : string -> bool

  val read_file : string -> string
  (** Whole-file read by path; raises [Sys_error] when absent. *)

  val fsync_dir : string -> unit
  (** Best-effort directory fsync after a rename; swallows errors. *)

  val gettimeofday : unit -> float
  val sleepf : float -> unit
end

type t = (module S)

type fd += Unix_fd of Unix.file_descr

exception Foreign_fd
(** Raised when {!Real} is handed a descriptor it did not open. *)

val unix_fd : fd -> Unix.file_descr

module Real : S

val real : t
(** The [Unix]-backed implementation used by every production path. *)
