(** Log shipping: serve {!Wal} journal records to replicas as raw
    framed batches.

    The wire format of a batch {e is} the journal file format — a
    concatenation of {!Record}-framed entries with their original
    CRCs, so a replica validates integrity with the same decoder the
    primary recovers with. A batch only ever contains records at or
    below the journal's covered sequence number ({!Journal.covered_seq}),
    so a replica can never apply a record the primary had not made
    durable (under [fsync=always]; looser policies never promised
    durability to anyone).

    When a compaction has folded the records a replica still needs
    into the snapshot, {!fetch} returns the snapshot file's valid
    prefix flagged [reset = true]: the replica must clear its state
    and apply the snapshot's payloads (its first record is a meta
    record with an empty payload whose sequence number says how far it
    covers). *)

type t

type batch = {
  data : string;  (** raw framed records; [""] = caught up *)
  covered : int64;  (** the primary's covered seq at read time *)
  reset : bool;  (** [data] is a snapshot bootstrap, not a tail *)
}

val create : Wal.t -> t

val fetch : ?max_bytes:int -> t -> after:int64 -> batch
(** Records with sequence numbers in [(after, covered]]. Keeps a small
    cache of tail cursors keyed by position so sequential pollers
    stream in O(new bytes); any [after] value works, cached or not.
    [max_bytes] caps a batch at a record boundary (default 1 MiB), an
    over-sized single record is returned whole. *)

val covered_seq : t -> int64
(** See {!Journal.covered_seq}. *)

val snapshot : t -> (int64 * string) option
(** The snapshot file's valid prefix plus the sequence number it
    covers (its meta record's), or [None] when no snapshot exists yet.
    What [GET /replication/snapshot] serves so a fresh replica can
    bootstrap without replaying the full journal. *)

type stats = {
  cursor_hits : int;  (** fetches served by a cached cursor *)
  cursor_misses : int;  (** fetches that had to open a fresh cursor *)
  reset_batches : int;  (** gap fetches answered with a snapshot bootstrap *)
  cursor_lags : int64 list;
      (** per cached cursor: records between its position and the
          covered sequence — how far each known follower trails *)
}

val stats : t -> stats

val decode : string -> ((int64 * string) list, string) result
(** Replica side: decode a shipped batch into [(seq, payload)] pairs,
    rejecting it unless every byte checks out ([Clean] tail) — a torn
    or corrupt batch means a transport bug, not a crash artifact. *)
