type t = {
  dir : string;
  env : Fsenv.t;
  journal : Journal.t;
  mutable compactions : int;
}

type recovery = {
  state : string list;
  entries : string list;
  snapshot_seq : int64;
  truncated_bytes : int;
  corrupt_tail : bool;
}

type counters = {
  appends : int;
  bytes : int;
  fsyncs : int;
  compactions : int;
}

let journal_file dir = Filename.concat dir "wal.log"
let snapshot_file dir = Filename.concat dir "snapshot.log"
let snapshot_tmp dir = Filename.concat dir "snapshot.tmp"

let rec mkdir_p env dir =
  let module E = (val env : Fsenv.S) in
  if not (E.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p env parent;
    try E.mkdir dir
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The snapshot is record-framed like the journal: record 0 is a meta
   record whose sequence number says how far the snapshot covers (its
   payload is empty), the rest carry one state payload each. A torn
   snapshot can only arise from corruption outside the crash model
   (rename is atomic, the temp file is fsynced first); its valid
   prefix is still used. *)
let read_snapshot env dir =
  let module E = (val env : Fsenv.S) in
  let path = snapshot_file dir in
  if not (E.file_exists path) then (0L, [])
  else
    match Record.decode_all (E.read_file path) with
    | (meta_seq, _meta) :: rest, _, _ -> (meta_seq, List.map snd rest)
    | [], _, _ -> (0L, [])

let open_ ?fsync ?group ?(env = Fsenv.real) dir =
  mkdir_p env dir;
  let snapshot_seq, state = read_snapshot env dir in
  let journal, (jr : Journal.recovery) = Journal.open_ ?fsync ~env (journal_file dir) in
  Journal.bump_seq journal snapshot_seq;
  (match group with
  | Some config -> Journal.enable_group ~config journal
  | None -> ());
  let entries =
    List.filter_map
      (fun (seq, payload) -> if seq > snapshot_seq then Some payload else None)
      jr.Journal.records
  in
  ( { dir; env; journal; compactions = 0 },
    {
      state;
      entries;
      snapshot_seq;
      truncated_bytes = jr.Journal.truncated_bytes;
      corrupt_tail = jr.Journal.corrupt;
    } )

let append t payload = Journal.append t.journal payload
let stage t payload = Journal.stage t.journal payload
let await t seq = Journal.await t.journal seq
let ingest t data = Journal.ingest t.journal data

let journal_bytes t = Journal.file_bytes t.journal

(* snapshot write shared by inline and background compaction: durable
   (tmp → fsync → rename → dir fsync) before the caller is allowed to
   drop the journal entries it covers *)
let write_snapshot t ~covers state =
  let module E = (val t.env : Fsenv.S) in
  let buf = Buffer.create 4096 in
  Record.encode buf ~seq:covers "";
  List.iter (fun payload -> Record.encode buf ~seq:covers payload) state;
  let tmp = snapshot_tmp t.dir in
  let fd = E.openfile tmp Fsenv.Trunc in
  (try
     let b = Buffer.to_bytes buf in
     let rec write_all off len =
       if len > 0 then
         match E.write fd b off len with
         | n -> write_all (off + n) (len - n)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off len
     in
     write_all 0 (Bytes.length b);
     E.fsync fd;
     E.close fd
   with e ->
     (try E.close fd with _ -> ());
     raise e);
  E.rename tmp (snapshot_file t.dir);
  E.fsync_dir t.dir

(* Install an upstream snapshot shipped as raw record frames (the
   bytes a reset batch carries: the meta record first, then one state
   payload per record, all at the covered sequence). The bytes are
   written verbatim as the local snapshot — same durability protocol
   as a local compaction — and the journal is emptied and re-based
   past the covered sequence, so the next ingested batch continues
   contiguously and a local recovery or downstream tail sees exactly
   what this store would have produced by compacting at that point. *)
let install_snapshot t data =
  let records, valid_end, tail = Record.decode_all data in
  (match (records, tail) with
  | (_ :: _), Record.Clean when valid_end = String.length data -> ()
  | _ -> invalid_arg "Wal.install_snapshot: not a clean run of frames");
  let covers = match records with (seq, _) :: _ -> seq | [] -> assert false in
  let module E = (val t.env : Fsenv.S) in
  let tmp = snapshot_tmp t.dir in
  let fd = E.openfile tmp Fsenv.Trunc in
  (try
     let b = Bytes.of_string data in
     let rec write_all off len =
       if len > 0 then
         match E.write fd b off len with
         | n -> write_all (off + n) (len - n)
         | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off len
     in
     write_all 0 (Bytes.length b);
     E.fsync fd;
     E.close fd
   with e ->
     (try E.close fd with _ -> ());
     raise e);
  E.rename tmp (snapshot_file t.dir);
  E.fsync_dir t.dir;
  Journal.reset t.journal;
  Journal.bump_seq t.journal covers;
  t.compactions <- t.compactions + 1;
  covers

let compact t ~state =
  let covers = Int64.pred (Journal.next_seq t.journal) in
  write_snapshot t ~covers state;
  (* the snapshot is durable; only now may the journal entries it
     covers be dropped *)
  Journal.reset t.journal;
  t.compactions <- t.compactions + 1

let compact_background t ~state =
  (* capture [covers] BEFORE the state callback runs: every mutation
     applied after this point is either in the captured state AND
     mirrored (benign double-apply, recovery skips by sequence or the
     mutation vocabulary converges) or only mirrored — never lost *)
  let covers = Journal.begin_rotation t.journal in
  match write_snapshot t ~covers (state ()) with
  | () ->
      Journal.commit_rotation t.journal;
      t.compactions <- t.compactions + 1
  | exception e ->
      Journal.abort_rotation t.journal;
      raise e

let flush t = Journal.flush t.journal

let stats t =
  let j = Journal.stats t.journal in
  {
    appends = j.Journal.appends;
    bytes = j.Journal.bytes;
    fsyncs = j.Journal.fsyncs;
    compactions = t.compactions;
  }

let group_stats t = Journal.group_stats t.journal

let dir t = t.dir

let env t = t.env

let journal t = t.journal

let snapshot_path t = snapshot_file t.dir

let close t = Journal.close t.journal
