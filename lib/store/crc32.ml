(* Reflected CRC-32 with polynomial 0xEDB88320, slicing-by-8. The
   running value is kept pre- and post-inverted the usual way so that
   chunked feeding composes: [string ~crc:(string a) b = string (a^b)].

   Slicing-by-8 folds eight input bytes per round through eight
   derived tables with independent lookups, instead of eight serially
   dependent single-byte rounds — the checksum sits on the journal
   append path, where every mutation pays it over a multi-kilobyte
   payload. *)

let tables =
  lazy
    (let t0 =
       Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c)
     in
     let derive t = Array.map (fun v -> (v lsr 8) lxor t0.(v land 0xFF)) t in
     let rec chain t = function 0 -> [] | n -> t :: chain (derive t) (n - 1) in
     Array.of_list (chain t0 8))

let mask32 = 0xFFFFFFFF

let sub ?(crc = 0) s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let t = Lazy.force tables in
  let t0 = t.(0) and t1 = t.(1) and t2 = t.(2) and t3 = t.(3) in
  let t4 = t.(4) and t5 = t.(5) and t6 = t.(6) and t7 = t.(7) in
  let byte i = Char.code (String.unsafe_get s i) in
  let c = ref (crc lxor mask32) in
  let i = ref pos in
  let last8 = pos + len - 8 in
  while !i <= last8 do
    (* eight input bytes, little-endian, folded in one round; every
       table index is masked to 0xFF, so unsafe access is in-bounds *)
    let x =
      !c
      lxor (byte !i
           lor (byte (!i + 1) lsl 8)
           lor (byte (!i + 2) lsl 16)
           lor (byte (!i + 3) lsl 24))
    in
    let y =
      byte (!i + 4)
      lor (byte (!i + 5) lsl 8)
      lor (byte (!i + 6) lsl 16)
      lor (byte (!i + 7) lsl 24)
    in
    c :=
      Array.unsafe_get t7 (x land 0xFF)
      lxor Array.unsafe_get t6 ((x lsr 8) land 0xFF)
      lxor Array.unsafe_get t5 ((x lsr 16) land 0xFF)
      lxor Array.unsafe_get t4 ((x lsr 24) land 0xFF)
      lxor Array.unsafe_get t3 (y land 0xFF)
      lxor Array.unsafe_get t2 ((y lsr 8) land 0xFF)
      lxor Array.unsafe_get t1 ((y lsr 16) land 0xFF)
      lxor Array.unsafe_get t0 ((y lsr 24) land 0xFF);
    i := !i + 8
  done;
  for j = !i to pos + len - 1 do
    c :=
      Array.unsafe_get t0 ((!c lxor byte j) land 0xFF)
      lxor (!c lsr 8)
  done;
  !c lxor mask32

let string ?crc s = sub ?crc s 0 (String.length s)
