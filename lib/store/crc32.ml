(* Reflected CRC-32 with polynomial 0xEDB88320, table-driven. The
   running value is kept pre- and post-inverted the usual way so that
   chunked feeding composes: [string ~crc:(string a) b = string (a^b)]. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let mask32 = 0xFFFFFFFF

let sub ?(crc = 0) s pos len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let c = ref (crc lxor mask32) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Char.code (String.unsafe_get s i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor mask32

let string ?crc s = sub ?crc s 0 (String.length s)
