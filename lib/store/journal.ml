type fsync_policy = Always | Interval of float | Never

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" s

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 1.0)
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "interval" -> (
          let arg = String.sub other (i + 1) (String.length other - i - 1) in
          match float_of_string_opt arg with
          | Some v when v > 0.0 -> Ok (Interval v)
          | Some _ | None ->
              Error (Printf.sprintf "bad interval %S (need a positive number)" arg))
      | _ ->
          Error
            (Printf.sprintf
               "unknown fsync policy %S (expected always, never, interval or \
                interval:<seconds>)"
               s))

type t = {
  fd : Unix.file_descr;
  policy : fsync_policy;
  mutable seq : int64;  (* next to assign *)
  mutable dirty : bool;  (* bytes written since the last fsync *)
  mutable last_fsync : float;
  mutable appends : int;
  mutable bytes : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

type recovery = {
  records : (int64 * string) list;
  truncated_bytes : int;
  corrupt : bool;
}

type counters = { appends : int; bytes : int; fsyncs : int }

let rec write_all fd b off len =
  if len > 0 then begin
    match Unix.write fd b off len with
    | n -> write_all fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd b off len
  end

let read_file fd =
  let size = (Unix.fstat fd).Unix.st_size in
  let b = Bytes.create size in
  let rec go off =
    if off < size then
      match Unix.read fd b off (size - off) with
      | 0 -> off  (* shrank underneath us; treat as EOF *)
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    else off
  in
  let got = go 0 in
  Bytes.sub_string b 0 got

let open_ ?(fsync = Always) path =
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644 in
  match
    let contents = read_file fd in
    let records, valid_end, tail = Record.decode_all contents in
    let truncated = String.length contents - valid_end in
    if truncated > 0 then begin
      Unix.ftruncate fd valid_end;
      ignore (Unix.lseek fd 0 Unix.SEEK_END)
    end;
    let last_seq =
      List.fold_left (fun acc (seq, _) -> if seq > acc then seq else acc) 0L records
    in
    ( {
        fd;
        policy = fsync;
        seq = Int64.add last_seq 1L;
        dirty = truncated > 0;
        last_fsync = Unix.gettimeofday ();
        appends = 0;
        bytes = 0;
        fsyncs = 0;
        closed = false;
      },
      {
        records;
        truncated_bytes = truncated;
        corrupt = (match tail with Record.Corrupt _ -> true | _ -> false);
      } )
  with
  | result -> result
  | exception e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e

let do_fsync t =
  Unix.fsync t.fd;
  t.dirty <- false;
  t.last_fsync <- Unix.gettimeofday ();
  t.fsyncs <- t.fsyncs + 1

let maybe_fsync t =
  match t.policy with
  | Always -> do_fsync t
  | Never -> ()
  | Interval s -> if Unix.gettimeofday () -. t.last_fsync >= s then do_fsync t

let append t payload =
  let seq = t.seq in
  t.seq <- Int64.add seq 1L;
  let buf = Buffer.create (Record.header_size + String.length payload) in
  Record.encode buf ~seq payload;
  let b = Buffer.to_bytes buf in
  write_all t.fd b 0 (Bytes.length b);
  t.dirty <- true;
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes + Bytes.length b;
  maybe_fsync t;
  seq

let bump_seq t past = if past >= t.seq then t.seq <- Int64.add past 1L

let next_seq t = t.seq

let flush t =
  if t.dirty then begin
    do_fsync t;
    true
  end
  else false

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  do_fsync t

let stats (t : t) : counters =
  { appends = t.appends; bytes = t.bytes; fsyncs = t.fsyncs }

let close t =
  if not t.closed then begin
    t.closed <- true;
    if t.dirty then (try Unix.fsync t.fd with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end
