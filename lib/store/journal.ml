type fsync_policy = Always | Interval of float | Never

let fsync_policy_to_string = function
  | Always -> "always"
  | Never -> "never"
  | Interval s -> Printf.sprintf "interval:%g" s

let fsync_policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "always" -> Ok Always
  | "never" -> Ok Never
  | "interval" -> Ok (Interval 1.0)
  | other -> (
      match String.index_opt other ':' with
      | Some i when String.sub other 0 i = "interval" -> (
          let arg = String.sub other (i + 1) (String.length other - i - 1) in
          match float_of_string_opt arg with
          | Some v when v > 0.0 -> Ok (Interval v)
          | Some _ | None ->
              Error (Printf.sprintf "bad interval %S (need a positive number)" arg))
      | _ ->
          Error
            (Printf.sprintf
               "unknown fsync policy %S (expected always, never, interval or \
                interval:<seconds>)"
               s))

(* Group-commit state: writers stage records under [lock] and park on
   [cond] until a completed fsync covers their sequence number. At
   most one fsync is in flight at a time ([fsync_in_flight]); the
   writer that finds no fsync running becomes the leader, syncs once
   for every record staged so far, and wakes the whole batch. *)
type group = {
  window : float;  (* extra accumulation delay before the leader syncs *)
  max_batch : int;  (* a batch this large skips the window *)
  mutable synced : int64;  (* highest seq covered by a completed fsync *)
  mutable batches : int;
  mutable batched : int;  (* appends released by group fsyncs *)
  mutable saved : int;  (* fsyncs the batching avoided *)
  mutable largest : int;
  hist : int array;  (* batch-size histogram, see Group.hist_bounds *)
}

type t = {
  path : string;
  env : Fsenv.t;  (* every filesystem effect goes through here *)
  mutable fd : Fsenv.fd;
  policy : fsync_policy;
  (* [lock]/[cond] serialize every mutation of the journal (appends,
     truncation, rotation) and carry the group-commit hand-off; a
     leader releases [lock] for the fsync itself, flagged by
     [fsync_in_flight] so truncation/rotation can wait it out. *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable fsync_in_flight : bool;
  mutable failed : exn option;  (* an fsync failed: poisoned *)
  mutable group : group option;
  mutable mirror : (int64 * string) list option;  (* rotation capture *)
  mutable seq : int64;  (* next to assign *)
  mutable durable_seq : int64;  (* highest seq covered by an fsync *)
  mutable epoch : int;  (* bumped whenever the file is replaced/reset *)
  mutable dirty : bool;  (* bytes written since the last fsync *)
  mutable file_bytes : int;  (* current on-disk size *)
  mutable last_fsync : float;
  mutable appends : int;
  mutable bytes : int;
  mutable fsyncs : int;
  mutable closed : bool;
}

type recovery = {
  records : (int64 * string) list;
  truncated_bytes : int;
  corrupt : bool;
}

type counters = { appends : int; bytes : int; fsyncs : int }

let rec write_all env fd b off len =
  if len > 0 then begin
    let module E = (val env : Fsenv.S) in
    match E.write fd b off len with
    | n -> write_all env fd b (off + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all env fd b off len
  end

let read_file env fd =
  let module E = (val env : Fsenv.S) in
  let size = E.size fd in
  let b = Bytes.create size in
  let rec go off =
    if off < size then
      match E.read fd b off (size - off) with
      | 0 -> off  (* shrank underneath us; treat as EOF *)
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    else off
  in
  let got = go 0 in
  Bytes.sub_string b 0 got

let open_ ?(fsync = Always) ?(env = Fsenv.real) path =
  let module E = (val env : Fsenv.S) in
  let fd = E.openfile path Fsenv.Read_write in
  match
    let contents = read_file env fd in
    let records, valid_end, tail = Record.decode_all contents in
    let truncated = String.length contents - valid_end in
    if truncated > 0 then begin
      E.ftruncate fd valid_end;
      ignore (E.lseek_end fd)
    end;
    (* Make the recovered contents actually durable before anything
       trusts them. After a plain process restart the records just
       read may still be unsynced page cache (the previous writer died
       between append and fsync) — yet from here on they count as
       covered and get shipped to replicas, so a later power failure
       must not be able to take them back. One fsync per open. *)
    if valid_end > 0 || truncated > 0 then E.fsync fd;
    let last_seq =
      List.fold_left (fun acc (seq, _) -> if seq > acc then seq else acc) 0L records
    in
    ( {
        path;
        env;
        fd;
        policy = fsync;
        lock = Mutex.create ();
        cond = Condition.create ();
        fsync_in_flight = false;
        failed = None;
        group = None;
        mirror = None;
        seq = Int64.add last_seq 1L;
        (* the fsync above made the recovered records durable, so
           shipping may treat them as covered *)
        durable_seq = last_seq;
        epoch = 0;
        dirty = false;
        file_bytes = valid_end;
        last_fsync = E.gettimeofday ();
        appends = 0;
        bytes = 0;
        fsyncs = 0;
        closed = false;
      },
      {
        records;
        truncated_bytes = truncated;
        corrupt = (match tail with Record.Corrupt _ -> true | _ -> false);
      } )
  with
  | result -> result
  | exception e ->
      (try E.close fd with Unix.Unix_error _ -> () | Fsenv.Foreign_fd -> ());
      raise e

let env t = t.env

(* lock held: everything written so far (seq < t.seq) reached the
   kernel before its append returned, so a completed fsync covers it.
   A failed fsync poisons the journal: the kernel may already have
   dropped dirty pages, so no later ack can be trusted until the file
   is reopened and recovered. *)
let do_fsync t =
  let module E = (val t.env : Fsenv.S) in
  (match E.fsync t.fd with
  | () -> ()
  | exception e ->
      t.failed <- Some e;
      raise e);
  t.dirty <- false;
  t.last_fsync <- E.gettimeofday ();
  t.fsyncs <- t.fsyncs + 1;
  t.durable_seq <- Int64.pred t.seq

let maybe_fsync t =
  let module E = (val t.env : Fsenv.S) in
  match t.policy with
  | Always -> do_fsync t
  | Never -> ()
  | Interval s -> if E.gettimeofday () -. t.last_fsync >= s then do_fsync t

(* lock held: a write blew up partway through a record (ENOSPC, torn
   write). The garbage prefix must not stay in the file: a later
   append would land a valid record *behind* it, and recovery — which
   stops at the first bad frame — would silently discard that
   acknowledged write. Scrub back to the pre-append size and re-seek;
   if even the scrub fails, poison the journal so no further append
   can bury good data behind the wreck. *)
let scrub_partial_append t ~pre_bytes e =
  (try
     let module E = (val t.env : Fsenv.S) in
     E.ftruncate t.fd pre_bytes;
     ignore (E.lseek_end t.fd);
     t.dirty <- true
   with _ -> t.failed <- Some e);
  raise e

(* lock held; writes the record but never fsyncs. [t.seq] is only
   advanced once the bytes are fully written, so a failed write
   consumes no sequence number (a permanent seq gap would wedge every
   tail cursor on [Gap] with no snapshot to reset from). *)
let append_locked t payload =
  (match t.failed with Some e -> raise e | None -> ());
  let seq = t.seq in
  let buf = Buffer.create (Record.header_size + String.length payload) in
  Record.encode buf ~seq payload;
  let b = Buffer.to_bytes buf in
  (try write_all t.env t.fd b 0 (Bytes.length b)
   with e -> scrub_partial_append t ~pre_bytes:t.file_bytes e);
  t.seq <- Int64.add seq 1L;
  t.dirty <- true;
  t.appends <- t.appends + 1;
  t.bytes <- t.bytes + Bytes.length b;
  t.file_bytes <- t.file_bytes + Bytes.length b;
  (match t.mirror with
  | Some tail -> t.mirror <- Some ((seq, payload) :: tail)
  | None -> ());
  seq

(* lock held: the fsync right after an append failed, so the ack is
   about to fail too — scrub the record back out so a later recovery
   cannot resurrect a mutation its caller rolled back. The journal is
   already poisoned by [do_fsync]. *)
let unstage_locked t ~seq ~payload =
  let size = Record.header_size + String.length payload in
  (try
     let module E = (val t.env : Fsenv.S) in
     E.ftruncate t.fd (t.file_bytes - size);
     ignore (E.lseek_end t.fd);
     t.file_bytes <- t.file_bytes - size;
     t.seq <- seq;
     match t.mirror with
     | Some ((s, _) :: tl) when s = seq -> t.mirror <- Some tl
     | Some _ | None -> ()
   with _ -> ())

(* lock held; waits out an in-flight group fsync so the callback can
   safely truncate or replace the fd *)
let quiesce_locked t =
  while t.fsync_in_flight do
    Condition.wait t.cond t.lock
  done

let locked t f = Mutex.protect t.lock (fun () -> f ())

module Group = struct
  type config = { window : float; max_batch : int }

  let default = { window = 0.0; max_batch = 64 }

  (* batch-size histogram upper bounds; the last bucket is +inf *)
  let hist_bounds = [| 1; 2; 4; 8; 16; 32; 64; 128 |]

  type stats = {
    batches : int;
    batched_appends : int;
    fsyncs_saved : int;
    largest_batch : int;
    hist : int array;
  }
end

let enable_group ?(config = Group.default) t =
  locked t (fun () ->
      match t.group with
      | Some _ -> invalid_arg "Journal.enable_group: already enabled"
      | None ->
          t.group <-
            Some
              {
                window = config.Group.window;
                max_batch = max 1 config.Group.max_batch;
                synced = Int64.pred t.seq;
                batches = 0;
                batched = 0;
                saved = 0;
                largest = 0;
                hist = Array.make (Array.length Group.hist_bounds + 1) 0;
              })

let group_stats t =
  locked t (fun () ->
      Option.map
        (fun g ->
          {
            Group.batches = g.batches;
            batched_appends = g.batched;
            fsyncs_saved = g.saved;
            largest_batch = g.largest;
            hist = Array.copy g.hist;
          })
        t.group)

let stage t payload =
  locked t (fun () ->
      let seq = append_locked t payload in
      (match (t.group, t.policy) with
      | Some _, Always -> ()  (* durability is settled in [await] *)
      | Some _, (Never | Interval _) | None, _ -> (
          try maybe_fsync t
          with e ->
            unstage_locked t ~seq ~payload;
            raise e));
      seq)

let hist_index batch =
  let n = Array.length Group.hist_bounds in
  let rec go i =
    if i >= n || batch <= Group.hist_bounds.(i) then i else go (i + 1)
  in
  go 0

(* The group-commit protocol. Whoever arrives while no fsync is in
   flight becomes the leader: it (optionally) sleeps [window] to let
   more writers stage, snapshots the highest staged sequence number,
   drops the lock, fsyncs once, and releases everyone it covered.
   Writers that arrive while a sync is in flight park; when it
   completes, one of the still-uncovered ones leads the next batch —
   so under concurrency each fsync covers everything staged during the
   previous one. *)
let rec await_locked t g seq =
  let module E = (val t.env : Fsenv.S) in
  if g.synced >= seq then ()
  else begin
    (match t.failed with Some e -> raise e | None -> ());
    if t.fsync_in_flight then begin
      Condition.wait t.cond t.lock;
      await_locked t g seq
    end
    else begin
      t.fsync_in_flight <- true;
      if
        g.window > 0.0
        && Int64.to_int (Int64.sub (Int64.pred t.seq) g.synced) < g.max_batch
      then begin
        (* accumulate: stagers only need [lock], not the fsync *)
        Mutex.unlock t.lock;
        E.sleepf g.window;
        Mutex.lock t.lock
      end;
      let covers = Int64.pred t.seq in
      Mutex.unlock t.lock;
      let outcome = try Ok (E.fsync t.fd) with e -> Error e in
      Mutex.lock t.lock;
      t.fsync_in_flight <- false;
      (match outcome with
      | Ok () ->
          t.fsyncs <- t.fsyncs + 1;
          t.last_fsync <- E.gettimeofday ();
          if Int64.pred t.seq = covers then t.dirty <- false;
          (* [covers] can trail [synced] when a rotation or reset
             slipped in between our snapshot and the fsync — never
             move the high-water mark backwards *)
          if covers > g.synced then begin
            let batch = Int64.to_int (Int64.sub covers g.synced) in
            g.batches <- g.batches + 1;
            g.batched <- g.batched + batch;
            g.saved <- g.saved + (batch - 1);
            if batch > g.largest then g.largest <- batch;
            g.hist.(hist_index batch) <- g.hist.(hist_index batch) + 1;
            g.synced <- covers
          end;
          if covers > t.durable_seq then t.durable_seq <- covers
      | Error e -> t.failed <- Some e);
      Condition.broadcast t.cond;
      await_locked t g seq
    end
  end

let await t seq =
  match t.group with
  | None -> ()
  | Some g -> (
      match t.policy with
      | Never | Interval _ -> ()  (* ack never implied durability *)
      | Always -> locked t (fun () -> await_locked t g seq))

let append t payload =
  let seq = stage t payload in
  await t seq;
  seq

let append_group = append

(* Append a batch of already-framed records shipped from an upstream
   journal, keeping their upstream-assigned sequence numbers. The
   frames are written verbatim — [Record.encode] is deterministic, so
   the raw bytes are exactly what re-encoding would produce and the
   local file stays a valid journal an own [Tail] cursor can serve
   downstream. Records at sequences this journal already holds
   (a re-shipped batch after a partially-applied fetch) are skipped;
   the rest must continue contiguously at [t.seq], because a silent
   gap would wedge every local tail cursor with no snapshot covering
   the hole. Durability follows the journal's own fsync policy — the
   caller is the (single-threaded) replica apply loop, so under
   [Always] the fsync happens inline rather than through the
   group-commit barrier. *)
let ingest t data =
  if String.length data = 0 then ()
  else
    locked t (fun () ->
        (match t.failed with Some e -> raise e | None -> ());
        let records, valid_end, tail = Record.decode_all data in
        if valid_end <> String.length data || tail <> Record.Clean then
          invalid_arg "Journal.ingest: batch is not a clean run of frames";
        (* find the byte offset of the first record not yet held *)
        let skip_bytes = ref 0 in
        let fresh =
          List.filter
            (fun (seq, payload) ->
              if seq < t.seq then begin
                skip_bytes :=
                  !skip_bytes + Record.header_size + String.length payload;
                false
              end
              else true)
            records
        in
        match fresh with
        | [] -> ()
        | (first, _) :: _ ->
            if first <> t.seq then
              invalid_arg
                (Printf.sprintf
                   "Journal.ingest: batch starts at %Ld, journal expects %Ld"
                   first t.seq);
            ignore
              (List.fold_left
                 (fun expect (seq, _) ->
                   if seq <> expect then
                     invalid_arg
                       (Printf.sprintf
                          "Journal.ingest: batch skips from %Ld to %Ld"
                          (Int64.pred expect) seq);
                   Int64.succ seq)
                 first fresh);
            let len = String.length data - !skip_bytes in
            let b = Bytes.create len in
            Bytes.blit_string data !skip_bytes b 0 len;
            (try write_all t.env t.fd b 0 len
             with e -> scrub_partial_append t ~pre_bytes:t.file_bytes e);
            let last = List.fold_left (fun _ (seq, _) -> seq) first fresh in
            t.seq <- Int64.succ last;
            t.dirty <- true;
            t.appends <- t.appends + List.length fresh;
            t.bytes <- t.bytes + len;
            t.file_bytes <- t.file_bytes + len;
            (match t.mirror with
            | Some tl -> t.mirror <- Some (List.rev_append fresh tl)
            | None -> ());
            quiesce_locked t;
            maybe_fsync t;
            (* keep the group barrier's view in step so a later [await]
               (after promotion) never waits on already-synced records *)
            (match t.group with
            | Some g -> if t.durable_seq > g.synced then g.synced <- t.durable_seq
            | None -> ()))

let bump_seq t past = locked t (fun () ->
    if past >= t.seq then begin
      t.seq <- Int64.add past 1L;
      (* the skipped numbers belong to records already durable in a
         snapshot, so they never gate shipping or group commit *)
      if past > t.durable_seq then t.durable_seq <- past;
      match t.group with
      | Some g -> if past > g.synced then g.synced <- past
      | None -> ()
    end)

let next_seq t = locked t (fun () -> t.seq)

let file_bytes t = t.file_bytes

let flush t =
  locked t (fun () ->
      quiesce_locked t;
      if t.dirty then begin
        do_fsync t;
        true
      end
      else false)

(* everything staged so far is covered (by the snapshot the caller
   just made durable, or because the file is simply gone): release
   any parked writers *)
let mark_synced_locked t =
  t.durable_seq <- Int64.pred t.seq;
  match t.group with
  | Some g ->
      g.synced <- Int64.pred t.seq;
      Condition.broadcast t.cond
  | None -> ()

let reset t =
  locked t (fun () ->
      let module E = (val t.env : Fsenv.S) in
      quiesce_locked t;
      E.ftruncate t.fd 0;
      E.lseek_set t.fd 0;
      t.file_bytes <- 0;
      t.epoch <- t.epoch + 1;
      do_fsync t;
      mark_synced_locked t)

(* ---------------- Rotation (background compaction) ----------------- *)

let begin_rotation t =
  locked t (fun () ->
      if t.mirror <> None then invalid_arg "Journal.begin_rotation: in progress";
      t.mirror <- Some [];
      Int64.pred t.seq)

let abort_rotation t = locked t (fun () -> t.mirror <- None)

let commit_rotation t =
  locked t (fun () ->
      let module E = (val t.env : Fsenv.S) in
      let tail =
        match t.mirror with
        | Some entries -> List.rev entries
        | None -> invalid_arg "Journal.commit_rotation: no rotation in progress"
      in
      quiesce_locked t;
      let tmp = t.path ^ ".tmp" in
      let buf = Buffer.create 4096 in
      List.iter (fun (seq, payload) -> Record.encode buf ~seq payload) tail;
      let fd = E.openfile tmp Fsenv.Trunc in
      (try
         let b = Buffer.to_bytes buf in
         write_all t.env fd b 0 (Bytes.length b);
         E.fsync fd;
         E.close fd
       with e ->
         (try E.close fd with _ -> ());
         (try E.remove tmp with _ -> ());
         t.mirror <- None;
         raise e);
      (* the tail records are durable in [tmp]; now it may take the
         journal's place. A crash before the rename leaves the old
         journal (whose covered prefix recovery skips by sequence
         number); after it, exactly the tail. *)
      E.rename tmp t.path;
      E.fsync_dir (Filename.dirname t.path);
      let fd = E.openfile t.path Fsenv.Read_write in
      ignore (E.lseek_end fd);
      (try E.close t.fd with _ -> ());
      t.fd <- fd;
      t.file_bytes <- Buffer.length buf;
      t.epoch <- t.epoch + 1;
      t.dirty <- false;
      t.last_fsync <- E.gettimeofday ();
      t.mirror <- None;
      (* staged ≤ covers is durable via the caller's snapshot, the
         mirrored tail via the fsynced replacement file: release
         everyone *)
      mark_synced_locked t)

(* Highest sequence number safe to ship to a replica. Under
   [Always] an acknowledged write promised durability, so shipping is
   gated on the fsync high-water mark; under [Never]/[Interval] acks
   never implied durability and everything staged is fair game. *)
let covered_locked t =
  match t.policy with
  | Always -> t.durable_seq
  | Never | Interval _ -> Int64.pred t.seq

let covered_seq t = locked t (fun () -> covered_locked t)

(* ---------------- Tail (log shipping) ------------------------------ *)

module Tail = struct
  type cursor = {
    mutable c_epoch : int;  (* journal epoch [c_off] is valid for *)
    mutable c_off : int;  (* byte offset of the next unread record *)
    mutable c_last : int64;  (* highest seq already returned *)
  }

  type batch = Records of string | Gap

  let cursor ?(after = 0L) () = { c_epoch = -1; c_off = 0; c_last = after }

  let last c = c.c_last

  (* One bounded read of [path] at [off] through a private fd — the
     journal's own fd carries the writers' implicit position. *)
  let read_at env path ~off ~len =
    let module E = (val env : Fsenv.S) in
    let fd = E.openfile path Fsenv.Read in
    Fun.protect
      ~finally:(fun () -> try E.close fd with _ -> ())
      (fun () ->
        E.lseek_set fd off;
        let b = Bytes.create len in
        let rec go pos =
          if pos >= len then pos
          else
            match E.read fd b pos (len - pos) with
            | 0 -> pos
            | n -> go (pos + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos
        in
        Bytes.sub_string b 0 (go 0))

  let read ?(max_bytes = 1 lsl 20) t c =
    locked t (fun () ->
        (match t.failed with Some e -> raise e | None -> ());
        let covered = covered_locked t in
        if c.c_epoch <> t.epoch then begin
          (* the file was replaced or reset underneath the cursor:
             rescan from the top, filtering by sequence number *)
          c.c_epoch <- t.epoch;
          c.c_off <- 0
        end;
        (* The lock excludes appends, truncation and rotation, so
           [t.path]/[t.file_bytes] are stable for the whole read. *)
        let rec attempt () =
          if c.c_off >= t.file_bytes then
            (* file exhausted: anything still owed lives only in the
               snapshot now — the caller must bootstrap *)
            if covered > c.c_last then Gap else Records ""
          else begin
            let remaining = t.file_bytes - c.c_off in
            let rec load window =
              let region = read_at t.env t.path ~off:c.c_off ~len:window in
              let records, _, _ = Record.decode_all region in
              if records = [] && window < remaining && String.length region >= 4
              then
                (* the window split the first record; size it exactly *)
                let need = 8 + Int32.to_int (String.get_int32_be region 0) in
                if need > window && need <= remaining then load need
                else (region, records)
              else (region, records)
            in
            let region, records = load (min remaining (max max_bytes 65536)) in
            let pos = ref 0 in  (* region-relative scan position *)
            let take_start = ref (-1) in
            let take_end = ref (-1) in
            let last = ref c.c_last in
            let gap = ref false in
            (try
               List.iter
                 (fun (seq, payload) ->
                   let size = Record.header_size + String.length payload in
                   if seq <= !last then
                     if !take_start >= 0 then raise Exit
                     else pos := !pos + size  (* consumed pre-rotation *)
                   else if seq > covered then raise Exit
                   else if
                     !take_end >= 0 && !take_end - !take_start + size > max_bytes
                   then raise Exit
                   else if seq <> Int64.succ !last then begin
                     (* the missing numbers were compacted away *)
                     gap := true;
                     raise Exit
                   end
                   else begin
                     if !take_start < 0 then take_start := !pos;
                     pos := !pos + size;
                     take_end := !pos;
                     last := seq
                   end)
                 records
             with Exit -> ());
            if !take_end >= 0 then begin
              c.c_off <- c.c_off + !take_end;
              c.c_last <- !last;
              Records (String.sub region !take_start (!take_end - !take_start))
            end
            else if !gap then Gap
            else begin
              (* nothing shippable in this window; skip past it and, if
                 the scan has not reached the end of the file, keep
                 going — progress is guaranteed because [c_off]
                 strictly advances *)
              c.c_off <- c.c_off + !pos;
              if !pos > 0 then attempt ()
              else if covered > c.c_last then
                (* first unread record is beyond [covered]: impossible
                   unless the numbers in between vanished *)
                if records = [] then Gap else Records ""
              else Records ""
            end
          end
        in
        (attempt (), covered))
end

let stats (t : t) : counters =
  { appends = t.appends; bytes = t.bytes; fsyncs = t.fsyncs }

let close t =
  locked t (fun () ->
      let module E = (val t.env : Fsenv.S) in
      if not t.closed then begin
        quiesce_locked t;
        t.closed <- true;
        if t.dirty then (try E.fsync t.fd with _ -> ());
        try E.close t.fd with _ -> ()
      end)
