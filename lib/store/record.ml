let header_size = 16
let max_payload = 256 * 1024 * 1024

let put_u32 buf v =
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr (v land 0xFF))

let get_u32 s pos =
  (Char.code s.[pos] lsl 24)
  lor (Char.code s.[pos + 1] lsl 16)
  lor (Char.code s.[pos + 2] lsl 8)
  lor Char.code s.[pos + 3]

let seq_bytes seq =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical seq (8 * (7 - i))) land 0xFF))

let get_seq s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

let encode buf ~seq payload =
  let seq = seq_bytes seq in
  put_u32 buf (8 + String.length payload);
  put_u32 buf (Crc32.string ~crc:(Crc32.string seq) payload);
  Buffer.add_string buf seq;
  Buffer.add_string buf payload

type tail = Clean | Torn of int | Corrupt of int

let decode_all ?(pos = 0) s =
  let n = String.length s in
  let rec go acc off =
    if off = n then (List.rev acc, off, Clean)
    else if n - off < header_size then (List.rev acc, off, Torn off)
    else
      let length = get_u32 s off in
      if length < 8 || length - 8 > max_payload then
        (List.rev acc, off, Corrupt off)
      else if n - off - 8 < length then (List.rev acc, off, Torn off)
      else
        let crc = get_u32 s (off + 4) in
        if Crc32.sub s (off + 8) length <> crc then
          (List.rev acc, off, Corrupt off)
        else
          let seq = get_seq s (off + 8) in
          let payload = String.sub s (off + header_size) (length - 8) in
          go ((seq, payload) :: acc) (off + 8 + length)
  in
  go [] pos
