(* Narrow filesystem-effect interface threaded through the store layer
   ([Journal], [Wal], [Ship]). Production code uses [real], which
   delegates 1:1 to [Unix] — same flags, same error behavior, and no
   per-call allocation on the append hot path (the only boxing happens
   at [openfile] time, when the descriptor is wrapped in the [fd]
   extensible variant). Tests inject an in-memory implementation that
   models crashes, torn writes, ENOSPC and fsync failure
   deterministically (see [Simtest.Env]). *)

type fd = ..

type open_mode = Read | Read_write | Trunc

module type S = sig
  val openfile : string -> open_mode -> fd
  val read : fd -> bytes -> int -> int -> int
  val write : fd -> bytes -> int -> int -> int
  val fsync : fd -> unit
  val ftruncate : fd -> int -> unit
  val lseek_set : fd -> int -> unit
  val lseek_end : fd -> int
  val size : fd -> int
  val close : fd -> unit
  val rename : string -> string -> unit
  val remove : string -> unit
  val mkdir : string -> unit
  val file_exists : string -> bool
  val read_file : string -> string
  val fsync_dir : string -> unit
  val gettimeofday : unit -> float
  val sleepf : float -> unit
end

type t = (module S)

type fd += Unix_fd of Unix.file_descr

exception Foreign_fd

let unix_fd = function Unix_fd fd -> fd | _ -> raise Foreign_fd

module Real : S = struct
  let openfile path mode =
    let flags =
      match mode with
      | Read -> [ Unix.O_RDONLY; Unix.O_CLOEXEC ]
      | Read_write -> [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ]
      | Trunc -> [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
    in
    Unix_fd (Unix.openfile path flags 0o644)

  let read fd b off len = Unix.read (unix_fd fd) b off len
  let write fd b off len = Unix.write (unix_fd fd) b off len
  let fsync fd = Unix.fsync (unix_fd fd)
  let ftruncate fd len = Unix.ftruncate (unix_fd fd) len
  let lseek_set fd off = ignore (Unix.lseek (unix_fd fd) off Unix.SEEK_SET)
  let lseek_end fd = Unix.lseek (unix_fd fd) 0 Unix.SEEK_END
  let size fd = (Unix.fstat (unix_fd fd)).Unix.st_size
  let close fd = Unix.close (unix_fd fd)
  let rename = Unix.rename
  let remove = Sys.remove
  let mkdir path = Unix.mkdir path 0o755
  let file_exists = Sys.file_exists

  let read_file path =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))

  (* Durability of a rename is best-effort on purpose: not every
     filesystem lets a directory be fsynced, and the rename itself is
     already atomic. *)
  let fsync_dir dir =
    match Unix.openfile dir [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0 with
    | fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        Unix.close fd
    | exception Unix.Unix_error _ -> ()

  let gettimeofday = Unix.gettimeofday
  let sleepf = Unix.sleepf
end

let real : t = (module Real)
