(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), for record
    checksumming in {!Journal} files. Implemented with the standard
    256-entry lookup table; no dependencies.

    Checksums are exposed as [int] (always non-negative, fits in 32
    bits) so they can be compared and serialized without [Int32]
    boxing. *)

val string : ?crc:int -> string -> int
(** [string s] is the CRC-32 of [s]. [?crc] continues a running
    checksum (feed chunks in order starting from the default). *)

val sub : ?crc:int -> string -> int -> int -> int
(** [sub s pos len] checksums the given substring without copying.
    @raise Invalid_argument when the range is out of bounds. *)
