type attribute = { attr_name : string; attr_value : string }

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type t = { decl : attribute list; root : element }

let element ?(attrs = []) tag children =
  let attrs =
    List.map (fun (attr_name, attr_value) -> { attr_name; attr_value }) attrs
  in
  { tag; attrs; children }

let elt ?attrs tag children = Element (element ?attrs tag children)

let text s = Text s

let doc root =
  {
    decl =
      [
        { attr_name = "version"; attr_value = "1.0" };
        { attr_name = "encoding"; attr_value = "UTF-8" };
      ];
    root;
  }

let attr e name =
  let rec find = function
    | [] -> None
    | a :: rest -> if String.equal a.attr_name name then Some a.attr_value else find rest
  in
  find e.attrs

let attr_exn e name =
  match attr e name with Some v -> v | None -> raise Not_found

let attr_default e name d = match attr e name with Some v -> v | None -> d

let children_elements e =
  List.filter_map
    (function Element c -> Some c | Text _ | Comment _ | Pi _ -> None)
    e.children

let is_blank s =
  let blank = ref true in
  String.iter (fun c -> if not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then blank := false) s;
  !blank

let child_text e =
  let buf = Buffer.create 16 in
  List.iter
    (function
      | Text s -> Buffer.add_string buf s
      | Element _ | Comment _ | Pi _ -> ())
    e.children;
  String.trim (Buffer.contents buf)

let find_child e tag =
  let rec find = function
    | [] -> None
    | c :: rest -> if String.equal c.tag tag then Some c else find rest
  in
  find (children_elements e)

let find_children e tag =
  List.filter (fun c -> String.equal c.tag tag) (children_elements e)

let descendants e tag =
  let rec walk acc c =
    let acc = if String.equal c.tag tag then c :: acc else acc in
    List.fold_left walk acc (children_elements c)
  in
  List.rev (List.fold_left walk [] (children_elements e))

let significant_children e =
  List.filter
    (function
      | Element _ -> true
      | Text s -> not (is_blank s)
      | Comment _ | Pi _ -> false)
    e.children

let equal_attribute a b =
  String.equal a.attr_name b.attr_name && String.equal a.attr_value b.attr_value

let rec equal_element a b =
  String.equal a.tag b.tag
  && List.length a.attrs = List.length b.attrs
  && List.for_all2 equal_attribute a.attrs b.attrs
  && equal_nodes (significant_children a) (significant_children b)

and equal_nodes xs ys =
  match (xs, ys) with
  | [], [] -> true
  | Element a :: xs, Element b :: ys -> equal_element a b && equal_nodes xs ys
  | Text a :: xs, Text b :: ys ->
      String.equal (String.trim a) (String.trim b) && equal_nodes xs ys
  | _, _ -> false

let rec node_count e =
  List.fold_left
    (fun acc n -> match n with Element c -> acc + node_count c | Text _ | Comment _ | Pi _ -> acc)
    1 e.children
