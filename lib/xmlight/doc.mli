(** XML document model.

    A deliberately small DOM: elements with attributes and ordered
    children, text nodes, comments, and processing instructions. This is
    the substrate on which the ScenarioML and xADL readers/writers are
    built. *)

type attribute = { attr_name : string; attr_value : string }

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of string * string  (** target, content *)

and element = {
  tag : string;
  attrs : attribute list;
  children : node list;
}

type t = {
  decl : attribute list;  (** attributes of the [<?xml ...?>] declaration *)
  root : element;
}

val element : ?attrs:(string * string) list -> string -> node list -> element
(** [element ~attrs tag children] builds an element. *)

val elt : ?attrs:(string * string) list -> string -> node list -> node
(** Like {!element} but wrapped as a node. *)

val text : string -> node

val doc : element -> t
(** Document with the default [version="1.0" encoding="UTF-8"] declaration. *)

val attr : element -> string -> string option
(** [attr e name] is the value of attribute [name] on [e], if present. *)

val attr_exn : element -> string -> string
(** Like {!attr}.
    @raise Not_found if the attribute is absent. *)

val attr_default : element -> string -> string -> string
(** [attr_default e name d] is the attribute value or [d]. *)

val children_elements : element -> element list
(** Element children only, in document order. *)

val child_text : element -> string
(** Concatenation of all immediate text children, whitespace-trimmed. *)

val find_child : element -> string -> element option
(** First element child with the given tag. *)

val find_children : element -> string -> element list
(** All element children with the given tag, in order. *)

val descendants : element -> string -> element list
(** All descendant elements (preorder) with the given tag, excluding the
    element itself. *)

val equal_element : element -> element -> bool
(** Structural equality ignoring comments, processing instructions, and
    whitespace-only text nodes. Attribute order is significant. *)

val node_count : element -> int
(** Number of element nodes in the subtree rooted at the argument. *)
