let path e tags =
  let step acc tag = List.concat_map (fun e -> Doc.find_children e tag) acc in
  List.fold_left step [e] tags

let first e tags = match path e tags with [] -> None | x :: _ -> Some x

let with_attr name value es =
  List.filter
    (fun e -> match Doc.attr e name with Some v -> String.equal v value | None -> false)
    es

let by_id e ~id_attr value =
  let rec search e =
    match Doc.attr e id_attr with
    | Some v when String.equal v value -> Some e
    | Some _ | None ->
        let rec among = function
          | [] -> None
          | c :: rest -> ( match search c with Some r -> Some r | None -> among rest)
        in
        among (Doc.children_elements e)
  in
  search e

let texts e tags = List.map Doc.child_text (path e tags)
