(** XML serialization. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for character data. *)

val escape_attr : string -> string
(** Escape ampersand, angle brackets, and both quote characters for
    attribute values. *)

val to_string : ?indent:int -> Doc.t -> string
(** Serialize a document. [indent] (default 2) controls pretty-printing;
    elements whose children are only text are kept on one line so that
    print∘parse preserves text content exactly. *)

val element_to_string : ?indent:int -> Doc.element -> string
(** Serialize a single element without the XML declaration. *)

val to_file : ?indent:int -> string -> Doc.t -> unit
(** Write a document to a file. *)
