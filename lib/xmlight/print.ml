let escape gen s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when not gen -> Buffer.add_string buf "&quot;"
      | '\'' when not gen -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape true

let escape_attr = escape false

let add_attrs buf attrs =
  List.iter
    (fun a ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf a.Doc.attr_name;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr a.Doc.attr_value);
      Buffer.add_char buf '"')
    attrs

(* An element is "inline" when all its children are text: we print it on
   one line to avoid injecting whitespace into its character data. *)
let inline e =
  List.for_all
    (function Doc.Text _ -> true | Doc.Element _ | Doc.Comment _ | Doc.Pi _ -> false)
    e.Doc.children

let rec add_element buf indent level e =
  let pad = String.make (indent * level) ' ' in
  Buffer.add_string buf pad;
  Buffer.add_char buf '<';
  Buffer.add_string buf e.Doc.tag;
  add_attrs buf e.Doc.attrs;
  match e.Doc.children with
  | [] -> Buffer.add_string buf "/>"
  | children when inline e ->
      Buffer.add_char buf '>';
      List.iter
        (function
          | Doc.Text s -> Buffer.add_string buf (escape_text s)
          | Doc.Element _ | Doc.Comment _ | Doc.Pi _ -> ())
        children;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.Doc.tag;
      Buffer.add_char buf '>'
  | children ->
      Buffer.add_char buf '>';
      List.iter
        (fun n ->
          Buffer.add_char buf '\n';
          add_node buf indent (level + 1) n)
        children;
      Buffer.add_char buf '\n';
      Buffer.add_string buf pad;
      Buffer.add_string buf "</";
      Buffer.add_string buf e.Doc.tag;
      Buffer.add_char buf '>'

and add_node buf indent level = function
  | Doc.Element e -> add_element buf indent level e
  | Doc.Text s ->
      Buffer.add_string buf (String.make (indent * level) ' ');
      Buffer.add_string buf (escape_text (String.trim s))
  | Doc.Comment s ->
      Buffer.add_string buf (String.make (indent * level) ' ');
      Buffer.add_string buf "<!--";
      Buffer.add_string buf s;
      Buffer.add_string buf "-->"
  | Doc.Pi (target, content) ->
      Buffer.add_string buf (String.make (indent * level) ' ');
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      Buffer.add_char buf ' ';
      Buffer.add_string buf content;
      Buffer.add_string buf "?>"

let element_to_string ?(indent = 2) e =
  let buf = Buffer.create 256 in
  add_element buf indent 0 e;
  Buffer.contents buf

let to_string ?(indent = 2) d =
  let buf = Buffer.create 256 in
  if d.Doc.decl <> [] then begin
    Buffer.add_string buf "<?xml";
    add_attrs buf d.Doc.decl;
    Buffer.add_string buf "?>\n"
  end;
  add_element buf indent 0 d.Doc.root;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let to_file ?indent path d =
  let oc = open_out_bin path in
  output_string oc (to_string ?indent d);
  close_out oc
