type position = { line : int; column : int }

type error = { position : position; message : string }

exception Parse_error of error

let error_to_string e =
  Printf.sprintf "%d:%d: %s" e.position.line e.position.column e.message

(* Mutable cursor over the input string with line/column tracking. *)
type cursor = { input : string; mutable pos : int; mutable line : int; mutable col : int }

let cursor input = { input; pos = 0; line = 1; col = 1 }

let position cur = { line = cur.line; column = cur.col }

let fail cur message = raise (Parse_error { position = position cur; message })

let eof cur = cur.pos >= String.length cur.input

let peek cur = if eof cur then '\000' else cur.input.[cur.pos]

let peek2 cur =
  if cur.pos + 1 >= String.length cur.input then '\000' else cur.input.[cur.pos + 1]

let advance cur =
  if not (eof cur) then begin
    (if cur.input.[cur.pos] = '\n' then begin
       cur.line <- cur.line + 1;
       cur.col <- 1
     end
     else cur.col <- cur.col + 1);
    cur.pos <- cur.pos + 1
  end

let advance_n cur n =
  for _ = 1 to n do
    advance cur
  done

let looking_at cur s =
  let n = String.length s in
  cur.pos + n <= String.length cur.input && String.sub cur.input cur.pos n = s

let expect cur s =
  if looking_at cur s then advance_n cur (String.length s)
  else fail cur (Printf.sprintf "expected %S" s)

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_space cur =
  while (not (eof cur)) && is_space (peek cur) do
    advance cur
  done

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c =
  is_name_start c || (c >= '0' && c <= '9') || c = '-' || c = '.'

let parse_name cur =
  if not (is_name_start (peek cur)) then fail cur "expected a name";
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  String.sub cur.input start (cur.pos - start)

(* Decode an entity reference starting at '&'. *)
let parse_entity cur =
  expect cur "&";
  let start = cur.pos in
  while (not (eof cur)) && peek cur <> ';' do
    advance cur
  done;
  if eof cur then fail cur "unterminated entity reference";
  let name = String.sub cur.input start (cur.pos - start) in
  advance cur;
  match name with
  | "lt" -> "<"
  | "gt" -> ">"
  | "amp" -> "&"
  | "apos" -> "'"
  | "quot" -> "\""
  | _ ->
      if String.length name > 1 && name.[0] = '#' then begin
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with Failure _ -> fail cur (Printf.sprintf "bad character reference &%s;" name)
        in
        if code < 0 || code > 0x10FFFF then fail cur "character reference out of range";
        (* Encode as UTF-8. *)
        let buf = Buffer.create 4 in
        Buffer.add_utf_8_uchar buf (Uchar.of_int code);
        Buffer.contents buf
      end
      else fail cur (Printf.sprintf "unknown entity &%s;" name)

let parse_quoted cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted value";
  advance cur;
  let buf = Buffer.create 16 in
  let rec loop () =
    if eof cur then fail cur "unterminated attribute value"
    else if peek cur = quote then advance cur
    else if peek cur = '&' then begin
      Buffer.add_string buf (parse_entity cur);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek cur);
      advance cur;
      loop ()
    end
  in
  loop ();
  Buffer.contents buf

let parse_attributes cur =
  let rec loop acc =
    skip_space cur;
    if is_name_start (peek cur) then begin
      let attr_name = parse_name cur in
      skip_space cur;
      expect cur "=";
      skip_space cur;
      let attr_value = parse_quoted cur in
      loop ({ Doc.attr_name; attr_value } :: acc)
    end
    else List.rev acc
  in
  loop []

let parse_comment cur =
  expect cur "<!--";
  let start = cur.pos in
  let rec loop () =
    if eof cur then fail cur "unterminated comment"
    else if looking_at cur "-->" then begin
      let s = String.sub cur.input start (cur.pos - start) in
      advance_n cur 3;
      s
    end
    else begin
      advance cur;
      loop ()
    end
  in
  loop ()

let parse_pi cur =
  expect cur "<?";
  let target = parse_name cur in
  skip_space cur;
  let start = cur.pos in
  let rec loop () =
    if eof cur then fail cur "unterminated processing instruction"
    else if looking_at cur "?>" then begin
      let s = String.sub cur.input start (cur.pos - start) in
      advance_n cur 2;
      s
    end
    else begin
      advance cur;
      loop ()
    end
  in
  (target, loop ())

let parse_cdata cur =
  expect cur "<![CDATA[";
  let start = cur.pos in
  let rec loop () =
    if eof cur then fail cur "unterminated CDATA section"
    else if looking_at cur "]]>" then begin
      let s = String.sub cur.input start (cur.pos - start) in
      advance_n cur 3;
      s
    end
    else begin
      advance cur;
      loop ()
    end
  in
  loop ()

let skip_doctype cur =
  expect cur "<!DOCTYPE";
  (* Skip to the matching '>', tracking nested '[' ... ']' internal subsets. *)
  let depth = ref 0 in
  let rec loop () =
    if eof cur then fail cur "unterminated DOCTYPE"
    else
      match peek cur with
      | '[' ->
          incr depth;
          advance cur;
          loop ()
      | ']' ->
          decr depth;
          advance cur;
          loop ()
      | '>' when !depth = 0 -> advance cur
      | _ ->
          advance cur;
          loop ()
  in
  loop ()

let parse_text cur =
  let buf = Buffer.create 32 in
  let rec loop () =
    if eof cur || peek cur = '<' then Buffer.contents buf
    else if peek cur = '&' then begin
      Buffer.add_string buf (parse_entity cur);
      loop ()
    end
    else begin
      Buffer.add_char buf (peek cur);
      advance cur;
      loop ()
    end
  in
  loop ()

let rec parse_element cur =
  expect cur "<";
  let tag = parse_name cur in
  let attrs = parse_attributes cur in
  skip_space cur;
  if looking_at cur "/>" then begin
    advance_n cur 2;
    { Doc.tag; attrs; children = [] }
  end
  else begin
    expect cur ">";
    let children = parse_content cur tag in
    { Doc.tag; attrs; children }
  end

and parse_content cur tag =
  let rec loop acc =
    if eof cur then fail cur (Printf.sprintf "unterminated element <%s>" tag)
    else if looking_at cur "</" then begin
      advance_n cur 2;
      let close = parse_name cur in
      skip_space cur;
      expect cur ">";
      if String.equal close tag then List.rev acc
      else fail cur (Printf.sprintf "mismatched close tag </%s> for <%s>" close tag)
    end
    else if looking_at cur "<!--" then loop (Doc.Comment (parse_comment cur) :: acc)
    else if looking_at cur "<![CDATA[" then loop (Doc.Text (parse_cdata cur) :: acc)
    else if looking_at cur "<?" then begin
      let target, content = parse_pi cur in
      loop (Doc.Pi (target, content) :: acc)
    end
    else if peek cur = '<' && (is_name_start (peek2 cur)) then
      loop (Doc.Element (parse_element cur) :: acc)
    else if peek cur = '<' then fail cur "unexpected '<'"
    else
      let s = parse_text cur in
      if String.length s = 0 then fail cur "empty text run" else loop (Doc.Text s :: acc)
  in
  loop []

let parse_prolog cur =
  let decl =
    if looking_at cur "<?xml" then begin
      advance_n cur 5;
      let attrs = parse_attributes cur in
      skip_space cur;
      expect cur "?>";
      attrs
    end
    else []
  in
  let rec skip_misc () =
    skip_space cur;
    if looking_at cur "<!--" then begin
      ignore (parse_comment cur);
      skip_misc ()
    end
    else if looking_at cur "<!DOCTYPE" then begin
      skip_doctype cur;
      skip_misc ()
    end
    else if looking_at cur "<?" then begin
      ignore (parse_pi cur);
      skip_misc ()
    end
  in
  skip_misc ();
  decl

let parse_exn input =
  let cur = cursor input in
  let decl = parse_prolog cur in
  if eof cur then fail cur "missing root element";
  let root = parse_element cur in
  skip_space cur;
  let rec skip_trailing () =
    if looking_at cur "<!--" then begin
      ignore (parse_comment cur);
      skip_space cur;
      skip_trailing ()
    end
  in
  skip_trailing ();
  if not (eof cur) then fail cur "trailing content after root element";
  { Doc.decl; root }

let parse input =
  match parse_exn input with
  | doc -> Ok doc
  | exception Parse_error e -> Error e

let parse_file path =
  match
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  with
  | s -> parse s
  | exception Sys_error msg ->
      Error { position = { line = 0; column = 0 }; message = msg }
