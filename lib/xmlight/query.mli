(** Small query combinators over the DOM, in the spirit of a drastically
    reduced XPath: tag paths, attribute predicates, and collection. *)

val path : Doc.element -> string list -> Doc.element list
(** [path e [t1; t2; ...]] follows child axes: all elements reached by
    taking a [t1] child of [e], then a [t2] child of that, and so on.
    The empty path yields [[e]]. *)

val first : Doc.element -> string list -> Doc.element option
(** First element reached by {!path}, in document order. *)

val with_attr : string -> string -> Doc.element list -> Doc.element list
(** Keep elements whose attribute [name] equals [value]. *)

val by_id : Doc.element -> id_attr:string -> string -> Doc.element option
(** Search the whole subtree for an element whose [id_attr] attribute
    equals the given value. *)

val texts : Doc.element -> string list -> string list
(** Trimmed text content of every element reached by {!path}. *)
