(** XML parser.

    Recursive-descent parser for the XML subset used by ScenarioML and
    xADL documents: elements, attributes, character data, CDATA sections,
    comments, processing instructions, numeric and predefined entity
    references, and an (ignored) DOCTYPE declaration. Namespaces are kept
    as prefixed names; no DTD validation is performed. *)

type position = { line : int; column : int }

type error = { position : position; message : string }

exception Parse_error of error

val error_to_string : error -> string

val parse : string -> (Doc.t, error) result
(** Parse a complete document from a string. *)

val parse_exn : string -> Doc.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> (Doc.t, error) result
(** Read and parse a file. I/O errors are reported as parse errors at
    position 0:0. *)
