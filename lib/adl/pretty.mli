(** Human-readable rendering of architectures (used by the figure
    reproductions and the CLI). *)

val pp : Format.formatter -> Structure.t -> unit
(** Components (with layer tags, responsibilities, interfaces),
    connectors, and links. *)

val to_string : Structure.t -> string

val pp_layered : Format.formatter -> Structure.t -> unit
(** ASCII box diagram grouping components by their ["layer"] tag,
    highest layer first — the shape of the paper's Fig. 3. Components
    without a layer tag are listed below the stack. *)

val summary : Structure.t -> string
(** One line: id, style, and element counts. *)
