(** Architecture evolution operations and structural diffing.

    The paper's traceability argument (§5) is that requirements and
    architecture co-evolve, so both the mapping and the evaluation must
    survive edits. This module represents edits explicitly: the Fig. 4
    experiment ("we artificially introduced an error in the PIMS
    architecture by excising the link between the Data Access and Loader
    components") is [Remove_link] applied to the intact architecture. *)

type op =
  | Add_component of Structure.component
  | Remove_component of string
      (** also removes links anchored at the component *)
  | Add_connector of Structure.connector
  | Remove_connector of string  (** also removes links anchored at it *)
  | Add_link of Structure.link
  | Remove_link of string  (** by link id *)
  | Rename_element of { old_id : string; new_id : string }
      (** consistently renames anchors in links too *)

exception Apply_error of string

val apply : Structure.t -> op -> Structure.t
(** @raise Apply_error when the op does not apply (unknown ids, clashes). *)

val apply_all : Structure.t -> op list -> Structure.t

val excise_link_between : Structure.t -> string -> string -> Structure.t
(** Remove every link whose two anchors are the given elements (in
    either orientation).
    @raise Apply_error when no such link exists. *)

val diff : Structure.t -> Structure.t -> op list
(** An edit script from the first architecture to the second: removals
    (links, then components/connectors), replacements of elements whose
    definition changed (remove + add, re-adding surviving links), then
    additions. Renames are not inferred. [apply_all a (diff a b)] has
    the same elements and links as [b]. *)

val pp_op : Format.formatter -> op -> unit
