(** Symbol interning: a frozen bijection between a structure's brick
    ids (strings) and dense integers [0 .. size-1].

    The compact graph core ({!Graph}, {!Reach}) keys all per-node state
    by these dense ints — adjacency in CSR arrays, BFS visited-sets and
    parent trees in flat arrays — and only converts back to strings at
    the API boundary. Indices follow first-occurrence order of the id
    list the table was built from, so for a structure they are:
    components in definition order, then connectors. *)

type t

val of_list : string list -> t
(** Intern each id at its first occurrence; duplicates collapse onto
    the first index. *)

val size : t -> int

val find : t -> string -> int option
(** Dense index of an id; [None] for ids the table never saw. *)

val mem : t -> string -> bool

val name : t -> int -> string
(** Inverse of {!find}.
    @raise Invalid_argument when the index is out of bounds. *)

val names : t -> string list
(** All interned ids in index order. *)
