(** Well-formedness checking of architecture descriptions. *)

type problem =
  | Duplicate_element of string
  | Duplicate_interface of { element : string; interface : string }
  | Duplicate_link of string
  | Unknown_anchor of { link : string; anchor : string }
  | Unknown_interface of { link : string; anchor : string; interface : string }
  | Incompatible_link of string
      (** neither endpoint can initiate toward the other (e.g. two
          [Provided] interfaces wired together) *)
  | Self_link of string
  | Isolated_element of string  (** element with no link at all *)
  | Empty_name of string
  | Missing_responsibilities of string
      (** component without declared responsibilities: the mapping step
          requires each component's role to be "specified unambiguously"
          (paper §3.3) *)
  | Substructure_problem of { component : string; problem : problem }

val pp_problem : Format.formatter -> problem -> unit

val problem_to_string : problem -> string

val check : ?require_responsibilities:bool -> Structure.t -> problem list
(** All problems in deterministic order. [require_responsibilities]
    (default true) controls whether {!Missing_responsibilities} is
    reported. Substructures are checked recursively. *)

val is_wellformed : ?require_responsibilities:bool -> Structure.t -> bool
