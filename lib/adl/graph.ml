type policy = Direct | Routed

(* Compact core: bricks are interned to dense ints (components first,
   then connectors — first-occurrence order of [Structure.brick_ids]),
   and both adjacency directions are stored as CSR arrays
   ([succ_off.(u) .. succ_off.(u+1)) indexes [succ_tgt]). BFS works
   entirely on ints with a flat parent array doubling as the visited
   set; strings only appear at the API boundary. *)
type t = {
  node_list : string list;  (* brick ids as given, for [nodes] *)
  tab : Symtab.t;
  connector : bool array;
  succ_off : int array;
  succ_tgt : int array;
  pred_off : int array;
  pred_tgt : int array;
  edges : int;
}

let can_initiate = function
  | Structure.Required | Structure.In_out -> true
  | Structure.Provided -> false

let can_accept = function
  | Structure.Provided | Structure.In_out -> true
  | Structure.Required -> false

(* Turn an edge list (insertion order, deduplicated) into CSR arrays.
   Filling in insertion order keeps each node's adjacency in the order
   the edges were added, matching the list-based implementation this
   replaced. *)
let csr n edges select =
  let off = Array.make (n + 1) 0 in
  List.iter (fun e -> let u, _ = select e in off.(u + 1) <- off.(u + 1) + 1) edges;
  for i = 0 to n - 1 do
    off.(i + 1) <- off.(i + 1) + off.(i)
  done;
  let cursor = Array.copy off in
  let tgt = Array.make (List.length edges) 0 in
  List.iter
    (fun e ->
      let u, v = select e in
      tgt.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    edges;
  (off, tgt)

let of_structure s =
  let node_list = Structure.brick_ids s in
  let tab = Symtab.of_list node_list in
  let n = Symtab.size tab in
  let connector = Array.make n false in
  List.iter
    (fun c ->
      match Symtab.find tab c.Structure.conn_id with
      | Some i -> connector.(i) <- true
      | None -> ())
    s.Structure.connectors;
  (* Gather directed edges in insertion order; the hashtable dedup
     keeps construction O(E) where appending to per-node lists with a
     linear membership scan was O(E^2) on dense architectures. *)
  let seen = Hashtbl.create 64 in
  let edges = ref [] in
  let add_edge a b =
    if not (Hashtbl.mem seen (a, b)) then begin
      Hashtbl.add seen (a, b) ();
      edges := (a, b) :: !edges
    end
  in
  List.iter
    (fun l ->
      let fa = l.Structure.link_from.Structure.anchor in
      let ta = l.Structure.link_to.Structure.anchor in
      match
        (Structure.find_interface s l.Structure.link_from, Structure.find_interface s l.Structure.link_to)
      with
      | Some fi, Some ti -> (
          match (Symtab.find tab fa, Symtab.find tab ta) with
          | Some fa, Some ta ->
              if can_initiate fi.Structure.direction && can_accept ti.Structure.direction then
                add_edge fa ta;
              if can_initiate ti.Structure.direction && can_accept fi.Structure.direction then
                add_edge ta fa
          | None, _ | _, None -> ())
      | None, _ | _, None -> ())
    s.Structure.links;
  let edges = List.rev !edges in
  let succ_off, succ_tgt = csr n edges (fun (a, b) -> (a, b)) in
  let pred_off, pred_tgt = csr n edges (fun (a, b) -> (b, a)) in
  {
    node_list;
    tab;
    connector;
    succ_off;
    succ_tgt;
    pred_off;
    pred_tgt;
    edges = List.length edges;
  }

let nodes g = g.node_list

let is_connector g id =
  match Symtab.find g.tab id with Some i -> g.connector.(i) | None -> false

let slice off tgt i = Array.to_list (Array.sub tgt off.(i) (off.(i + 1) - off.(i)))

let successors g id =
  match Symtab.find g.tab id with
  | Some i -> List.map (Symtab.name g.tab) (slice g.succ_off g.succ_tgt i)
  | None -> []

let predecessors g id =
  match Symtab.find g.tab id with
  | Some i -> List.map (Symtab.name g.tab) (slice g.pred_off g.pred_tgt i)
  | None -> []

let adjacent g a b =
  match (Symtab.find g.tab a, Symtab.find g.tab b) with
  | Some a, Some b ->
      let rec scan i = i < g.succ_off.(a + 1) && (g.succ_tgt.(i) = b || scan (i + 1)) in
      scan g.succ_off.(a)
  | None, _ | _, None -> false

let may_relay policy g source u =
  u = source || (match policy with Routed -> true | Direct -> g.connector.(u))

(* Int BFS from [source]; stops once [target] (when >= 0) is
   discovered. Returns the parent array: [parent.(v) >= 0] iff [v] was
   discovered, the source maps to itself. Exploration order (FIFO
   queue, successors in CSR order) matches the original string BFS, so
   reconstructed paths are identical. *)
let bfs_core policy g source target =
  let n = Symtab.size g.tab in
  let parent = Array.make n (-1) in
  let queue = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  parent.(source) <- source;
  queue.(!tail) <- source;
  incr tail;
  let found = ref false in
  while (not !found) && !head < !tail do
    let u = queue.(!head) in
    incr head;
    if may_relay policy g source u then
      for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
        let v = g.succ_tgt.(i) in
        if parent.(v) < 0 then begin
          parent.(v) <- u;
          if v = target then found := true
          else begin
            queue.(!tail) <- v;
            incr tail
          end
        end
      done
  done;
  parent

let build_path g parent source target =
  let rec build acc v =
    if v = source then Symtab.name g.tab source :: acc
    else build (Symtab.name g.tab v :: acc) parent.(v)
  in
  build [] target

let path ?(policy = Routed) g a b =
  if String.equal a b then Some [ a ]
  else
    match (Symtab.find g.tab a, Symtab.find g.tab b) with
    | Some sa, Some sb ->
        let parent = bfs_core policy g sa sb in
        if parent.(sb) < 0 then None else Some (build_path g parent sa sb)
    | None, _ | _, None -> None

let reachable ?(policy = Routed) g a b =
  String.equal a b
  ||
  match (Symtab.find g.tab a, Symtab.find g.tab b) with
  | Some sa, Some sb -> (bfs_core policy g sa sb).(sb) >= 0
  | None, _ | _, None -> false

let undirected_components g =
  let n = Symtab.size g.tab in
  let visited = Bytes.make n '\000' in
  let queue = Array.make n 0 in
  let component start =
    let acc = ref [] in
    let head = ref 0 and tail = ref 0 in
    Bytes.set visited start '\001';
    queue.(!tail) <- start;
    incr tail;
    while !head < !tail do
      let u = queue.(!head) in
      incr head;
      acc := Symtab.name g.tab u :: !acc;
      let visit i =
        let v = i in
        if Bytes.get visited v = '\000' then begin
          Bytes.set visited v '\001';
          queue.(!tail) <- v;
          incr tail
        end
      in
      for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
        visit g.succ_tgt.(i)
      done;
      for i = g.pred_off.(u) to g.pred_off.(u + 1) - 1 do
        visit g.pred_tgt.(i)
      done
    done;
    List.sort String.compare !acc
  in
  let comps = ref [] in
  for i = n - 1 downto 0 do
    if Bytes.get visited i = '\000' then comps := component i :: !comps
  done;
  List.sort
    (fun a b ->
      match (a, b) with
      | x :: _, y :: _ -> String.compare x y
      | [], _ -> -1
      | _, [] -> 1)
    !comps

let degree g id =
  match Symtab.find g.tab id with
  | Some i -> (g.pred_off.(i + 1) - g.pred_off.(i), g.succ_off.(i + 1) - g.succ_off.(i))
  | None -> (0, 0)

let edge_count g = g.edges

module Core = struct
  let node_count g = Symtab.size g.tab

  let index g id = Symtab.find g.tab id

  let label g i = Symtab.name g.tab i

  let is_connector g i = g.connector.(i)

  let iter_succ g u f =
    for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
      f g.succ_tgt.(i)
    done

  let bfs_tree policy g source = bfs_core policy g source (-1)
end
