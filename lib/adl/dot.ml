(* Escape only double quotes: backslashes stay as-is so DOT escape
   sequences like [\n] in labels keep their meaning. *)
let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_dot ?(highlight = []) ?(rankdir = "TB") t =
  let buf = Buffer.create 1024 in
  let highlighted id = List.exists (String.equal id) highlight in
  let on_path a b =
    (* consecutive highlighted bricks form the highlighted edges *)
    let rec consecutive = function
      | x :: (y :: _ as rest) ->
          (String.equal x a && String.equal y b)
          || (String.equal x b && String.equal y a)
          || consecutive rest
      | [ _ ] | [] -> false
    in
    consecutive highlight
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" (quote t.Structure.arch_id));
  Buffer.add_string buf (Printf.sprintf "  rankdir=%s;\n" rankdir);
  Buffer.add_string buf "  node [fontname=\"Helvetica\"];\n";
  List.iter
    (fun c ->
      let label =
        match Structure.layer_of c with
        | Some layer -> Printf.sprintf "%s\\n(layer %d)" c.Structure.comp_name layer
        | None -> c.Structure.comp_name
      in
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=box, label=%s%s];\n" (quote c.Structure.comp_id)
           (quote label)
           (if highlighted c.Structure.comp_id then ", color=red, penwidth=2" else "")))
    t.Structure.components;
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=ellipse, style=dashed, label=%s%s];\n"
           (quote c.Structure.conn_id)
           (quote c.Structure.conn_name)
           (if highlighted c.Structure.conn_id then ", color=red, penwidth=2" else "")))
    t.Structure.connectors;
  List.iter
    (fun l ->
      let a = l.Structure.link_from.Structure.anchor in
      let b = l.Structure.link_to.Structure.anchor in
      Buffer.add_string buf
        (Printf.sprintf "  %s -> %s [dir=none%s];\n" (quote a) (quote b)
           (if on_path a b then ", color=red, penwidth=2" else "")))
    t.Structure.links;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
