(** xADL-style structural architecture description.

    An architecture is a set of components and connectors, each exposing
    named interfaces, wired by links between interfaces. Components
    carry "precisely defined responsibilities and services ... provided
    through their interfaces" (paper §1) — responsibilities are what the
    event-type mapping is grounded in. Components may have a
    sub-architecture ([substructure]); tags carry style-specific
    properties (e.g. the layer index for the Layered style, or the C2
    [side] of an interface). *)

type direction = Provided | Required | In_out
(** Provided: services offered (others call in). Required: services this
    element calls on others. [In_out] both. *)

type interface = {
  iface_id : string;  (** unique within the owning element *)
  iface_name : string;
  direction : direction;
  iface_tags : (string * string) list;
      (** e.g. [("side", "top")] for C2 architectures *)
}

type component = {
  comp_id : string;
  comp_name : string;
  comp_description : string;
  responsibilities : string list;
  comp_interfaces : interface list;
  substructure : t option;
  comp_tags : (string * string) list;  (** e.g. [("layer", "2")] *)
}

and connector = {
  conn_id : string;
  conn_name : string;
  conn_description : string;
  conn_interfaces : interface list;
  conn_tags : (string * string) list;
}

(** One end of a link: an element (component or connector) id and one of
    its interface ids. *)
and point = { anchor : string; interface : string }

and link = { link_id : string; link_from : point; link_to : point }
(** Links are directed from [link_from] to [link_to]; communication
    follows interface directions (see {!Graph}). *)

and t = {
  arch_id : string;
  arch_name : string;
  style : string option;  (** declared style name, e.g. ["layered"], ["c2"] *)
  components : component list;
  connectors : connector list;
  links : link list;
}

val empty : ?style:string -> id:string -> name:string -> unit -> t

val find_component : t -> string -> component option

val find_connector : t -> string -> connector option

val component_exn : t -> string -> component
(** @raise Not_found if absent. *)

val element_interfaces : t -> string -> interface list
(** Interfaces of the component or connector with the given id; [] if
    the id is unknown. *)

val find_interface : t -> point -> interface option

val tag : (string * string) list -> string -> string option

val component_tag : component -> string -> string option

val interface_tag : interface -> string -> string option

val layer_of : component -> int option
(** The integer value of the component's ["layer"] tag, if present. *)

val brick_ids : t -> string list
(** Component ids then connector ids, in definition order. *)

val size : t -> int
(** Components + connectors + links, including substructures. *)
