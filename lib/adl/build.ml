exception Duplicate of string

exception Unknown of string

let create ?style ~id ~name () = Structure.empty ?style ~id ~name ()

let interface ?name ?(tags = []) ~direction id =
  {
    Structure.iface_id = id;
    iface_name = (match name with Some n -> n | None -> id);
    direction;
    iface_tags = tags;
  }

let check_fresh t id =
  if Structure.find_component t id <> None || Structure.find_connector t id <> None then
    raise (Duplicate id)

let check_iface_unique ifaces =
  let seen = Hashtbl.create 8 in
  List.iter
    (fun i ->
      let id = i.Structure.iface_id in
      if Hashtbl.mem seen id then raise (Duplicate id) else Hashtbl.add seen id ())
    ifaces

let add_component ?(description = "") ?(responsibilities = []) ?(interfaces = [])
    ?substructure ?(tags = []) ~id ~name t =
  check_fresh t id;
  check_iface_unique interfaces;
  let c =
    {
      Structure.comp_id = id;
      comp_name = name;
      comp_description = description;
      responsibilities;
      comp_interfaces = interfaces;
      substructure;
      comp_tags = tags;
    }
  in
  { t with Structure.components = t.Structure.components @ [ c ] }

let add_connector ?(description = "") ?(interfaces = []) ?(tags = []) ~id ~name t =
  check_fresh t id;
  check_iface_unique interfaces;
  let c =
    {
      Structure.conn_id = id;
      conn_name = name;
      conn_description = description;
      conn_interfaces = interfaces;
      conn_tags = tags;
    }
  in
  { t with Structure.connectors = t.Structure.connectors @ [ c ] }

let resolve t (anchor, iface) =
  let point = { Structure.anchor; interface = iface } in
  match Structure.find_interface t point with
  | Some _ -> point
  | None -> raise (Unknown (anchor ^ "." ^ iface))

let add_link ?id ~from_ ~to_ t =
  let link_from = resolve t from_ in
  let link_to = resolve t to_ in
  let link_id =
    match id with
    | Some i -> i
    | None ->
        Printf.sprintf "%s.%s->%s.%s" link_from.Structure.anchor link_from.Structure.interface
          link_to.Structure.anchor link_to.Structure.interface
  in
  if List.exists (fun l -> String.equal l.Structure.link_id link_id) t.Structure.links then
    raise (Duplicate link_id);
  { t with Structure.links = t.Structure.links @ [ { Structure.link_id; link_from; link_to } ] }

(* Add an interface to an existing element if not already present. *)
let ensure_interface t elt iface =
  let has =
    List.exists
      (fun i -> String.equal i.Structure.iface_id iface.Structure.iface_id)
      (Structure.element_interfaces t elt)
  in
  if has then t
  else
    match Structure.find_component t elt with
    | Some c ->
        let c = { c with Structure.comp_interfaces = c.Structure.comp_interfaces @ [ iface ] } in
        {
          t with
          Structure.components =
            List.map
              (fun x -> if String.equal x.Structure.comp_id elt then c else x)
              t.Structure.components;
        }
    | None -> (
        match Structure.find_connector t elt with
        | Some c ->
            let c =
              { c with Structure.conn_interfaces = c.Structure.conn_interfaces @ [ iface ] }
            in
            {
              t with
              Structure.connectors =
                List.map
                  (fun x -> if String.equal x.Structure.conn_id elt then c else x)
                  t.Structure.connectors;
            }
        | None -> raise (Unknown elt))

let biconnect t a b =
  let iface id = interface ~direction:Structure.In_out id in
  let t = ensure_interface t a (iface ("io_" ^ b)) in
  let t = ensure_interface t b (iface ("io_" ^ a)) in
  add_link ~from_:(a, "io_" ^ b) ~to_:(b, "io_" ^ a) t

let connect ?via t a b =
  match via with
  | None ->
      let t = ensure_interface t a (interface ~direction:Structure.Required ("to_" ^ b)) in
      let t = ensure_interface t b (interface ~direction:Structure.Provided ("from_" ^ a)) in
      add_link ~from_:(a, "to_" ^ b) ~to_:(b, "from_" ^ a) t
  | Some conn ->
      let t = ensure_interface t a (interface ~direction:Structure.Required ("to_" ^ conn)) in
      let t =
        ensure_interface t conn (interface ~direction:Structure.Provided ("from_" ^ a))
      in
      let t =
        ensure_interface t conn (interface ~direction:Structure.Required ("to_" ^ b))
      in
      let t = ensure_interface t b (interface ~direction:Structure.Provided ("from_" ^ conn)) in
      let t = add_link ~from_:(a, "to_" ^ conn) ~to_:(conn, "from_" ^ a) t in
      add_link ~from_:(conn, "to_" ^ b) ~to_:(b, "from_" ^ conn) t
