(** Graphviz DOT export of architectures.

    The paper's tooling (Archipelago/ArchStudio) is graphical; this
    module renders the structural view for `dot`: components as boxes
    (labelled with their layer when tagged), connectors as ellipses,
    links as edges. [highlight] paints a brick path — e.g. a
    walkthrough hop — in red. *)

val to_dot :
  ?highlight:string list ->
  ?rankdir:string ->
  Structure.t ->
  string
(** [rankdir] defaults to ["TB"]. Ids are quoted, so any brick id is
    safe. *)
