(** xADL-style XML reading and writing for architecture structures.

    Concrete syntax (an xADL-2.0-like vocabulary):
    {v
    <archStructure id name [style]>
      <component id name>
        <description>...</description>?
        <responsibility>...</responsibility>*
        <interface id name direction="provided|required|inout">
          <tag name="..." value="..."/>*
        </interface>*
        <tag name="..." value="..."/>*
        <subArchitecture><archStructure.../></subArchitecture>?
      </component>*
      <connector id name>...</connector>*
      <link id>
        <from anchor="..." interface="..."/>
        <to anchor="..." interface="..."/>
      </link>*
    </archStructure>
    v} *)

exception Malformed of string

val to_element : Structure.t -> Xmlight.Doc.element

val to_string : Structure.t -> string

val of_element : Xmlight.Doc.element -> Structure.t
(** @raise Malformed on schema errors. *)

val of_string : string -> Structure.t
(** @raise Malformed on XML or schema errors. *)
