let pp_interface ppf i =
  let dir =
    match i.Structure.direction with
    | Structure.Provided -> "provided"
    | Structure.Required -> "required"
    | Structure.In_out -> "inout"
  in
  Format.fprintf ppf "%s (%s)" i.Structure.iface_id dir

let pp ppf t =
  let style = match t.Structure.style with Some s -> " [" ^ s ^ "]" | None -> "" in
  Format.fprintf ppf "@[<v>Architecture %s: %s%s@," t.Structure.arch_id t.Structure.arch_name
    style;
  List.iter
    (fun c ->
      let layer =
        match Structure.layer_of c with
        | Some n -> Printf.sprintf " (layer %d)" n
        | None -> ""
      in
      Format.fprintf ppf "  component %s: %s%s@," c.Structure.comp_id c.Structure.comp_name
        layer;
      List.iter (fun r -> Format.fprintf ppf "    - %s@," r) c.Structure.responsibilities;
      if c.Structure.comp_interfaces <> [] then
        Format.fprintf ppf "    interfaces: %s@,"
          (String.concat ", "
             (List.map (Format.asprintf "%a" pp_interface) c.Structure.comp_interfaces));
      match c.Structure.substructure with
      | Some sub ->
          Format.fprintf ppf "    substructure: %d components, %d connectors@,"
            (List.length sub.Structure.components)
            (List.length sub.Structure.connectors)
      | None -> ())
    t.Structure.components;
  List.iter
    (fun c -> Format.fprintf ppf "  connector %s: %s@," c.Structure.conn_id c.Structure.conn_name)
    t.Structure.connectors;
  List.iter
    (fun l ->
      Format.fprintf ppf "  link %s: %s.%s -> %s.%s@," l.Structure.link_id
        l.Structure.link_from.Structure.anchor l.Structure.link_from.Structure.interface
        l.Structure.link_to.Structure.anchor l.Structure.link_to.Structure.interface)
    t.Structure.links;
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t

let pp_layered ppf t =
  let layered, unlayered =
    List.partition (fun c -> Structure.layer_of c <> None) t.Structure.components
  in
  let layers =
    List.sort_uniq compare (List.filter_map Structure.layer_of layered)
  in
  let width =
    List.fold_left
      (fun acc c -> max acc (String.length c.Structure.comp_name))
      20 t.Structure.components
    + 4
  in
  let rule = String.make width '-' in
  Format.fprintf ppf "@[<v>+%s+@," rule;
  List.iter
    (fun layer ->
      let members = List.filter (fun c -> Structure.layer_of c = Some layer) layered in
      List.iter
        (fun c ->
          let name = c.Structure.comp_name in
          let padding = String.make (width - String.length name - 2) ' ' in
          Format.fprintf ppf "| %s%s |  (layer %d)@," name padding layer)
        members;
      Format.fprintf ppf "+%s+@," rule)
    (List.rev layers);
  List.iter
    (fun c -> Format.fprintf ppf "  %s (no layer)@," c.Structure.comp_name)
    unlayered;
  Format.fprintf ppf "@]"

let summary t =
  Printf.sprintf "architecture %s%s: %d components, %d connectors, %d links"
    t.Structure.arch_id
    (match t.Structure.style with Some s -> " [" ^ s ^ "]" | None -> "")
    (List.length t.Structure.components)
    (List.length t.Structure.connectors)
    (List.length t.Structure.links)
