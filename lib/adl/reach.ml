(* One full BFS tree per (policy, source), shared by every query from
   that source. On the compact core a tree is a flat int array of
   parent handles ([Graph.Core.bfs_tree]), so memoizing a source costs
   one O(V+E) sweep and two words per node — cheap enough that a
   session can afford a tree per queried source even on large
   architectures. The exploration order matches Graph.path exactly
   (same queue discipline, same relay rule), so reconstructed paths are
   identical to the ones Graph.path returns — Graph.path merely stops
   early once the target is discovered, at which point the parents on
   the source-to-target chain are already final. *)

type t = {
  g : Graph.t;
  trees : (Graph.policy * int, int array) Hashtbl.t;
  (* source handle -> parent handles; the source maps to itself *)
  mutable sources : int;
  mutable queries : int;
  mutable memo_hits : int;
}

let create g = { g; trees = Hashtbl.create 16; sources = 0; queries = 0; memo_hits = 0 }

let of_structure s = create (Graph.of_structure s)

let graph t = t.g

let tree t policy source =
  match Hashtbl.find_opt t.trees (policy, source) with
  | Some tr ->
      t.memo_hits <- t.memo_hits + 1;
      tr
  | None ->
      let tr = Graph.Core.bfs_tree policy t.g source in
      Hashtbl.replace t.trees (policy, source) tr;
      t.sources <- t.sources + 1;
      tr

type query = {
  q_policy : Graph.policy;
  q_source : string;
  q_target : string;
  q_answer : string list option;
}

type recorder = { mutable log : query list (* reversed *) }

let recorder () = { log = [] }

let recorded r = List.rev r.log

let path_answer t policy source target =
  t.queries <- t.queries + 1;
  if String.equal source target then Some [ source ]
  else
    match (Graph.Core.index t.g source, Graph.Core.index t.g target) with
    | Some si, Some ti ->
        let tr = tree t policy si in
        if tr.(ti) < 0 then None
        else begin
          let rec build acc v =
            if v = si then Graph.Core.label t.g si :: acc
            else build (Graph.Core.label t.g v :: acc) tr.(v)
          in
          Some (build [] ti)
        end
    | None, _ | _, None -> None

let path ?(policy = Graph.Routed) ?record t source target =
  let answer = path_answer t policy source target in
  (match record with
  | Some r ->
      r.log <- { q_policy = policy; q_source = source; q_target = target; q_answer = answer } :: r.log
  | None -> ());
  answer

let reachable ?policy ?record t source target = path ?policy ?record t source target <> None

let replay t log =
  List.for_all
    (fun q -> path_answer t q.q_policy q.q_source q.q_target = q.q_answer)
    log

type stats = { sources : int; queries : int; memo_hits : int }

let stats (t : t) = { sources = t.sources; queries = t.queries; memo_hits = t.memo_hits }

let fingerprint (s : Structure.t) = Digest.to_hex (Digest.string (Marshal.to_string s []))
