(* One full BFS tree per (policy, source), shared by every query from
   that source. The exploration order matches Graph.bfs exactly (same
   queue discipline, same relay rule), so reconstructed paths are
   identical to the ones Graph.path returns — Graph.bfs merely stops
   early once the target is discovered, at which point the parents on
   the source-to-target chain are already final. *)

type tree = (string, string) Hashtbl.t
(* discovered brick -> parent; the source maps to itself *)

type t = {
  g : Graph.t;
  trees : (Graph.policy * string, tree) Hashtbl.t;
  mutable sources : int;
  mutable queries : int;
  mutable memo_hits : int;
}

let create g = { g; trees = Hashtbl.create 16; sources = 0; queries = 0; memo_hits = 0 }

let of_structure s = create (Graph.of_structure s)

let graph t = t.g

let explore g policy source =
  let parent : tree = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace parent source source;
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let may_relay =
      String.equal u source
      || match policy with Graph.Routed -> true | Graph.Direct -> Graph.is_connector g u
    in
    if may_relay then
      List.iter
        (fun v ->
          if not (Hashtbl.mem parent v) then begin
            Hashtbl.replace parent v u;
            Queue.push v queue
          end)
        (Graph.successors g u)
  done;
  parent

let tree t policy source =
  match Hashtbl.find_opt t.trees (policy, source) with
  | Some tr ->
      t.memo_hits <- t.memo_hits + 1;
      tr
  | None ->
      let tr = explore t.g policy source in
      Hashtbl.replace t.trees (policy, source) tr;
      t.sources <- t.sources + 1;
      tr

type query = {
  q_policy : Graph.policy;
  q_source : string;
  q_target : string;
  q_answer : string list option;
}

type recorder = { mutable log : query list (* reversed *) }

let recorder () = { log = [] }

let recorded r = List.rev r.log

let path_answer t policy source target =
  t.queries <- t.queries + 1;
  if String.equal source target then Some [ source ]
  else
    let tr = tree t policy source in
    if not (Hashtbl.mem tr target) then None
    else begin
      let rec build acc v =
        if String.equal v source then source :: acc else build (v :: acc) (Hashtbl.find tr v)
      in
      Some (build [] target)
    end

let path ?(policy = Graph.Routed) ?record t source target =
  let answer = path_answer t policy source target in
  (match record with
  | Some r ->
      r.log <- { q_policy = policy; q_source = source; q_target = target; q_answer = answer } :: r.log
  | None -> ());
  answer

let reachable ?policy ?record t source target = path ?policy ?record t source target <> None

let replay t log =
  List.for_all
    (fun q -> path_answer t q.q_policy q.q_source q.q_target = q.q_answer)
    log

type stats = { sources : int; queries : int; memo_hits : int }

let stats (t : t) = { sources = t.sources; queries = t.queries; memo_hits = t.memo_hits }

let fingerprint (s : Structure.t) = Digest.to_hex (Digest.string (Marshal.to_string s []))
