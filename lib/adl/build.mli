(** Construction of architecture descriptions with duplicate-id
    detection and a compact link syntax. *)

exception Duplicate of string

exception Unknown of string
(** Raised when a link endpoint names an element or interface that does
    not exist. *)

val create : ?style:string -> id:string -> name:string -> unit -> Structure.t

val interface :
  ?name:string ->
  ?tags:(string * string) list ->
  direction:Structure.direction ->
  string ->
  Structure.interface
(** [interface ~direction id] builds an interface; [name] defaults to the
    id. *)

val add_component :
  ?description:string ->
  ?responsibilities:string list ->
  ?interfaces:Structure.interface list ->
  ?substructure:Structure.t ->
  ?tags:(string * string) list ->
  id:string ->
  name:string ->
  Structure.t ->
  Structure.t

val add_connector :
  ?description:string ->
  ?interfaces:Structure.interface list ->
  ?tags:(string * string) list ->
  id:string ->
  name:string ->
  Structure.t ->
  Structure.t

val add_link :
  ?id:string ->
  from_:string * string ->
  to_:string * string ->
  Structure.t ->
  Structure.t
(** [add_link ~from_:(elt, iface) ~to_:(elt, iface) t] wires two
    interfaces. The link id defaults to ["from.iface->to.iface"].
    @raise Unknown when an endpoint does not resolve. *)

val biconnect : Structure.t -> string -> string -> Structure.t
(** [biconnect t a b] wires [a] and [b] bidirectionally: each gains an
    [In_out] interface ([io_<other>], reused when present) joined by a
    single link. Models request/reply channels where data flows both
    ways. *)

val connect :
  ?via:string ->
  Structure.t ->
  string ->
  string ->
  Structure.t
(** [connect t a b] is a convenience that gives [a] a [Required]
    interface, [b] a [Provided] interface (creating interfaces
    [to_b] / [from_a], or reusing them), optionally routes through the
    connector [via] (which gains [Provided]/[Required] interfaces), and
    adds the link(s). Intended for tests and compact example
    construction. *)
