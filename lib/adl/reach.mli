(** Memoized transitive reachability over a communication graph.

    {!Graph.path} runs a fresh BFS per query; repeated evaluation
    workloads (a whole scenario suite, or the same suite after an
    architecture edit — the paper's §4.1 excision experiment) ask many
    queries from the same sources. A [Reach.t] caches one BFS tree per
    [(policy, source)] pair, so every later query from that source is
    answered by an O(path) walk up the cached tree. Answers are
    identical to {!Graph.path}/{!Graph.reachable} on the same graph.

    A {!recorder} captures the queries (and answers) an evaluation
    performed; {!replay} checks the same queries against another
    architecture's oracle. When every answer is unchanged, a cached
    verdict built from those answers is still exact — the basis of
    incremental re-evaluation in [Sosae.Session]. *)

type t

val create : Graph.t -> t

val of_structure : Structure.t -> t

val graph : t -> Graph.t

(** {1 Query log} *)

type query = {
  q_policy : Graph.policy;
  q_source : string;
  q_target : string;
  q_answer : string list option;
      (** the witness path; {!reachable} records the path underlying its
          boolean, so every logged answer carries the links it used *)
}

type recorder
(** Accumulates the queries asked through it, in order. *)

val recorder : unit -> recorder

val recorded : recorder -> query list

(** {1 Queries} *)

val path :
  ?policy:Graph.policy -> ?record:recorder -> t -> string -> string -> string list option
(** Same contract as {!Graph.path} (default policy [Routed]), memoized
    per [(policy, source)]. *)

val reachable :
  ?policy:Graph.policy -> ?record:recorder -> t -> string -> string -> bool
(** Same contract as {!Graph.reachable}, memoized. *)

val replay : t -> query list -> bool
(** [replay t log] is [true] when every query in [log] yields the same
    answer against [t] as the recorded one. *)

(** {1 Introspection} *)

type stats = {
  sources : int;  (** BFS trees computed *)
  queries : int;  (** path/reachable calls answered *)
  memo_hits : int;  (** queries served from an existing tree *)
}

val stats : t -> stats

val fingerprint : Structure.t -> string
(** Content digest of a structure; equal fingerprints mean equal
    architectures (components, connectors, interfaces, links). *)
