type problem =
  | Duplicate_element of string
  | Duplicate_interface of { element : string; interface : string }
  | Duplicate_link of string
  | Unknown_anchor of { link : string; anchor : string }
  | Unknown_interface of { link : string; anchor : string; interface : string }
  | Incompatible_link of string
  | Self_link of string
  | Isolated_element of string
  | Empty_name of string
  | Missing_responsibilities of string
  | Substructure_problem of { component : string; problem : problem }

let rec pp_problem ppf = function
  | Duplicate_element id -> Format.fprintf ppf "duplicate element id %S" id
  | Duplicate_interface { element; interface } ->
      Format.fprintf ppf "element %S: duplicate interface %S" element interface
  | Duplicate_link id -> Format.fprintf ppf "duplicate link id %S" id
  | Unknown_anchor { link; anchor } ->
      Format.fprintf ppf "link %S: unknown element %S" link anchor
  | Unknown_interface { link; anchor; interface } ->
      Format.fprintf ppf "link %S: element %S has no interface %S" link anchor interface
  | Incompatible_link id ->
      Format.fprintf ppf "link %S: no endpoint can initiate communication toward the other" id
  | Self_link id -> Format.fprintf ppf "link %S connects an element to itself" id
  | Isolated_element id -> Format.fprintf ppf "element %S has no links" id
  | Empty_name id -> Format.fprintf ppf "element %S has an empty name" id
  | Missing_responsibilities id ->
      Format.fprintf ppf "component %S declares no responsibilities" id
  | Substructure_problem { component; problem } ->
      Format.fprintf ppf "in substructure of %S: %a" component pp_problem problem

let problem_to_string p = Format.asprintf "%a" pp_problem p

let can_initiate = function
  | Structure.Required | Structure.In_out -> true
  | Structure.Provided -> false

let can_accept = function
  | Structure.Provided | Structure.In_out -> true
  | Structure.Required -> false

let rec check ?(require_responsibilities = true) t =
  let ids = Structure.brick_ids t in
  let seen = Hashtbl.create 16 in
  let duplicate_elements =
    List.filter_map
      (fun id ->
        if Hashtbl.mem seen id then Some (Duplicate_element id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      ids
  in
  let duplicate_interfaces =
    let of_element element ifaces =
      let seen = Hashtbl.create 8 in
      List.filter_map
        (fun i ->
          let id = i.Structure.iface_id in
          if Hashtbl.mem seen id then Some (Duplicate_interface { element; interface = id })
          else begin
            Hashtbl.add seen id ();
            None
          end)
        ifaces
    in
    List.concat_map
      (fun c -> of_element c.Structure.comp_id c.Structure.comp_interfaces)
      t.Structure.components
    @ List.concat_map
        (fun c -> of_element c.Structure.conn_id c.Structure.conn_interfaces)
        t.Structure.connectors
  in
  let link_ids = List.map (fun l -> l.Structure.link_id) t.Structure.links in
  let duplicate_links =
    let seen = Hashtbl.create 16 in
    List.filter_map
      (fun id ->
        if Hashtbl.mem seen id then Some (Duplicate_link id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      link_ids
  in
  let known id = List.exists (String.equal id) ids in
  let endpoint_problems =
    List.concat_map
      (fun l ->
        let link = l.Structure.link_id in
        let check_point p =
          let anchor = p.Structure.anchor in
          if not (known anchor) then [ Unknown_anchor { link; anchor } ]
          else if Structure.find_interface t p = None then
            [ Unknown_interface { link; anchor; interface = p.Structure.interface } ]
          else []
        in
        check_point l.Structure.link_from @ check_point l.Structure.link_to)
      t.Structure.links
  in
  let direction_problems =
    List.filter_map
      (fun l ->
        match
          ( Structure.find_interface t l.Structure.link_from,
            Structure.find_interface t l.Structure.link_to )
        with
        | Some fi, Some ti ->
            let fwd = can_initiate fi.Structure.direction && can_accept ti.Structure.direction in
            let bwd = can_initiate ti.Structure.direction && can_accept fi.Structure.direction in
            if fwd || bwd then None else Some (Incompatible_link l.Structure.link_id)
        | None, _ | _, None -> None)
      t.Structure.links
  in
  let self_links =
    List.filter_map
      (fun l ->
        if
          String.equal l.Structure.link_from.Structure.anchor
            l.Structure.link_to.Structure.anchor
        then Some (Self_link l.Structure.link_id)
        else None)
      t.Structure.links
  in
  let linked = Hashtbl.create 16 in
  List.iter
    (fun l ->
      Hashtbl.replace linked l.Structure.link_from.Structure.anchor ();
      Hashtbl.replace linked l.Structure.link_to.Structure.anchor ())
    t.Structure.links;
  let isolated =
    (* A single-element architecture has nothing to link to. *)
    if List.length ids <= 1 then []
    else
      List.filter_map
        (fun id -> if Hashtbl.mem linked id then None else Some (Isolated_element id))
        ids
  in
  let empty_names =
    List.filter_map
      (fun (id, name) -> if String.trim name = "" then Some (Empty_name id) else None)
      (List.map (fun c -> (c.Structure.comp_id, c.Structure.comp_name)) t.Structure.components
      @ List.map (fun c -> (c.Structure.conn_id, c.Structure.conn_name)) t.Structure.connectors)
  in
  let missing_resp =
    if not require_responsibilities then []
    else
      List.filter_map
        (fun c ->
          if c.Structure.responsibilities = [] then
            Some (Missing_responsibilities c.Structure.comp_id)
          else None)
        t.Structure.components
  in
  let substructure_problems =
    List.concat_map
      (fun c ->
        match c.Structure.substructure with
        | None -> []
        | Some sub ->
            List.map
              (fun p -> Substructure_problem { component = c.Structure.comp_id; problem = p })
              (check ~require_responsibilities sub))
      t.Structure.components
  in
  duplicate_elements @ duplicate_interfaces @ duplicate_links @ endpoint_problems
  @ direction_problems @ self_links @ isolated @ empty_names @ missing_resp
  @ substructure_problems

let is_wellformed ?require_responsibilities t = check ?require_responsibilities t = []
