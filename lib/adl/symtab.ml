type t = { ids : string array; index : (string, int) Hashtbl.t }

let of_list ids =
  let index = Hashtbl.create (2 * List.length ids + 1) in
  let fresh =
    List.filter
      (fun id ->
        if Hashtbl.mem index id then false
        else begin
          Hashtbl.add index id (Hashtbl.length index);
          true
        end)
      ids
  in
  { ids = Array.of_list fresh; index }

let size t = Array.length t.ids

let find t id = Hashtbl.find_opt t.index id

let mem t id = Hashtbl.mem t.index id

let name t i =
  if i < 0 || i >= Array.length t.ids then invalid_arg "Symtab.name";
  t.ids.(i)

let names t = Array.to_list t.ids
