exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let required e name =
  match Xmlight.Doc.attr e name with
  | Some v -> v
  | None -> malformed "<%s> is missing required attribute %S" e.Xmlight.Doc.tag name

let direction_to_string = function
  | Structure.Provided -> "provided"
  | Structure.Required -> "required"
  | Structure.In_out -> "inout"

let direction_of_string = function
  | "provided" -> Structure.Provided
  | "required" -> Structure.Required
  | "inout" -> Structure.In_out
  | other -> malformed "unknown interface direction %S" other

let tags_to_elements tags =
  List.map
    (fun (name, value) -> Xmlight.Doc.elt ~attrs:[ ("name", name); ("value", value) ] "tag" [])
    tags

let tags_of_element e =
  List.map (fun t -> (required t "name", required t "value")) (Xmlight.Doc.find_children e "tag")

let interface_to_element i =
  Xmlight.Doc.elt
    ~attrs:
      [
        ("id", i.Structure.iface_id);
        ("name", i.Structure.iface_name);
        ("direction", direction_to_string i.Structure.direction);
      ]
    "interface"
    (tags_to_elements i.Structure.iface_tags)

let interface_of_element e =
  {
    Structure.iface_id = required e "id";
    iface_name = required e "name";
    direction = direction_of_string (required e "direction");
    iface_tags = tags_of_element e;
  }

let description_to_elements d =
  if d = "" then [] else [ Xmlight.Doc.elt "description" [ Xmlight.Doc.text d ] ]

let description_of_element e =
  match Xmlight.Doc.find_child e "description" with
  | Some d -> Xmlight.Doc.child_text d
  | None -> ""

let rec component_to_element c =
  let responsibilities =
    List.map
      (fun r -> Xmlight.Doc.elt "responsibility" [ Xmlight.Doc.text r ])
      c.Structure.responsibilities
  in
  let interfaces =
    List.map interface_to_element c.Structure.comp_interfaces
  in
  let sub =
    match c.Structure.substructure with
    | Some s -> [ Xmlight.Doc.elt "subArchitecture" [ Xmlight.Doc.Element (to_element s) ] ]
    | None -> []
  in
  Xmlight.Doc.element
    ~attrs:[ ("id", c.Structure.comp_id); ("name", c.Structure.comp_name) ]
    "component"
    (description_to_elements c.Structure.comp_description
    @ responsibilities @ interfaces
    @ tags_to_elements c.Structure.comp_tags
    @ sub)

and connector_to_element c =
  Xmlight.Doc.element
    ~attrs:[ ("id", c.Structure.conn_id); ("name", c.Structure.conn_name) ]
    "connector"
    (description_to_elements c.Structure.conn_description
    @ List.map interface_to_element c.Structure.conn_interfaces
    @ tags_to_elements c.Structure.conn_tags)

and link_to_element l =
  let point tag p =
    Xmlight.Doc.elt
      ~attrs:[ ("anchor", p.Structure.anchor); ("interface", p.Structure.interface) ]
      tag []
  in
  Xmlight.Doc.element
    ~attrs:[ ("id", l.Structure.link_id) ]
    "link"
    [ point "from" l.Structure.link_from; point "to" l.Structure.link_to ]

and to_element t =
  let attrs =
    [ ("id", t.Structure.arch_id); ("name", t.Structure.arch_name) ]
    @ match t.Structure.style with Some s -> [ ("style", s) ] | None -> []
  in
  Xmlight.Doc.element ~attrs "archStructure"
    (List.map (fun c -> Xmlight.Doc.Element (component_to_element c)) t.Structure.components
    @ List.map (fun c -> Xmlight.Doc.Element (connector_to_element c)) t.Structure.connectors
    @ List.map (fun l -> Xmlight.Doc.Element (link_to_element l)) t.Structure.links)

let to_string t = Xmlight.Print.to_string (Xmlight.Doc.doc (to_element t))

let rec component_of_element e =
  let substructure =
    match Xmlight.Doc.find_child e "subArchitecture" with
    | Some sub -> (
        match Xmlight.Doc.find_child sub "archStructure" with
        | Some arch -> Some (of_element arch)
        | None -> malformed "<subArchitecture> without <archStructure>")
    | None -> None
  in
  {
    Structure.comp_id = required e "id";
    comp_name = required e "name";
    comp_description = description_of_element e;
    responsibilities =
      List.map Xmlight.Doc.child_text (Xmlight.Doc.find_children e "responsibility");
    comp_interfaces = List.map interface_of_element (Xmlight.Doc.find_children e "interface");
    substructure;
    comp_tags = tags_of_element e;
  }

and connector_of_element e =
  {
    Structure.conn_id = required e "id";
    conn_name = required e "name";
    conn_description = description_of_element e;
    conn_interfaces = List.map interface_of_element (Xmlight.Doc.find_children e "interface");
    conn_tags = tags_of_element e;
  }

and link_of_element e =
  let point tag =
    match Xmlight.Doc.find_child e tag with
    | Some p -> { Structure.anchor = required p "anchor"; interface = required p "interface" }
    | None -> malformed "<link id=%S> is missing <%s>" (required e "id") tag
  in
  { Structure.link_id = required e "id"; link_from = point "from"; link_to = point "to" }

and of_element e =
  if not (String.equal e.Xmlight.Doc.tag "archStructure") then
    malformed "expected <archStructure>, found <%s>" e.Xmlight.Doc.tag;
  {
    Structure.arch_id = required e "id";
    arch_name = required e "name";
    style = Xmlight.Doc.attr e "style";
    components = List.map component_of_element (Xmlight.Doc.find_children e "component");
    connectors = List.map connector_of_element (Xmlight.Doc.find_children e "connector");
    links = List.map link_of_element (Xmlight.Doc.find_children e "link");
  }

let of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> of_element doc.Xmlight.Doc.root
  | Error e -> malformed "XML error: %s" (Xmlight.Parse.error_to_string e)
