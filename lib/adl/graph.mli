(** Communication graph over an architecture's bricks (components and
    connectors).

    Each link induces directed communication edges between its two
    anchor elements according to the interface directions: an element
    can initiate communication through a [Required] (or [In_out])
    interface toward a [Provided] (or [In_out]) interface.

    Two path policies reflect two readings of "the two components may
    need to be able to communicate" (paper §3.5):
    - [Direct]: every intermediate element on the path must be a
      connector (components talk only through connectors);
    - [Routed]: requests may be relayed through intervening components,
      as in the paper's Fig. 4 walkthrough ("sends a request from the
      Master Controller through intervening connectors and components"). *)

type policy = Direct | Routed

type t
(** Immutable communication graph built from a structure. Internally
    the graph is compact: brick ids are interned to dense ints
    ({!Symtab}) and adjacency lives in CSR arrays; the string API below
    is a thin boundary layer over it (see {!Core} for the int view). *)

val of_structure : Structure.t -> t

val nodes : t -> string list
(** All brick ids, components first, definition order. *)

val is_connector : t -> string -> bool

val successors : t -> string -> string list
(** Bricks reachable by one communication edge. Unknown ids yield []. *)

val predecessors : t -> string -> string list

val adjacent : t -> string -> string -> bool
(** One-edge communication. *)

val reachable : ?policy:policy -> t -> string -> string -> bool
(** Default policy [Routed]. [reachable g a a] is [true]. *)

val path : ?policy:policy -> t -> string -> string -> string list option
(** Shortest communication path (BFS) as a brick-id list from source to
    target inclusive; [None] when unreachable. *)

val undirected_components : t -> string list list
(** Connected components ignoring edge direction, each sorted, the list
    sorted by first element; used to detect isolated islands. *)

val degree : t -> string -> int * int
(** (in-degree, out-degree) in the communication graph. *)

val edge_count : t -> int

(** The interned-int view of the graph, for callers that keep per-node
    state of their own (e.g. {!Reach}'s memoized BFS trees): node
    handles are dense ints in [0 .. node_count-1], components first
    then connectors, definition order. *)
module Core : sig
  val node_count : t -> int

  val index : t -> string -> int option
  (** Dense handle of a brick id; [None] for unknown ids. *)

  val label : t -> int -> string
  (** Inverse of {!index}. *)

  val is_connector : t -> int -> bool

  val iter_succ : t -> int -> (int -> unit) -> unit
  (** Apply a function to each successor handle, in edge order. *)

  val bfs_tree : policy -> t -> int -> int array
  (** Full BFS tree from a source handle under the policy's relay rule:
      [tree.(v)] is the parent handle of [v], the source maps to
      itself, [-1] means unreached. Exploration order matches
      {!val:path}, so a source-to-target parent walk reconstructs
      exactly the path {!val:path} returns. *)
end
