type op =
  | Add_component of Structure.component
  | Remove_component of string
  | Add_connector of Structure.connector
  | Remove_connector of string
  | Add_link of Structure.link
  | Remove_link of string
  | Rename_element of { old_id : string; new_id : string }

exception Apply_error of string

let apply_error fmt = Format.kasprintf (fun s -> raise (Apply_error s)) fmt

let links_not_anchored_at t id =
  List.filter
    (fun l ->
      (not (String.equal l.Structure.link_from.Structure.anchor id))
      && not (String.equal l.Structure.link_to.Structure.anchor id))
    t.Structure.links

let apply t op =
  match op with
  | Add_component c ->
      if List.exists (String.equal c.Structure.comp_id) (Structure.brick_ids t) then
        apply_error "add component: id %S already exists" c.Structure.comp_id;
      { t with Structure.components = t.Structure.components @ [ c ] }
  | Remove_component id ->
      if Structure.find_component t id = None then
        apply_error "remove component: unknown id %S" id;
      {
        t with
        Structure.components =
          List.filter (fun c -> not (String.equal c.Structure.comp_id id)) t.Structure.components;
        links = links_not_anchored_at t id;
      }
  | Add_connector c ->
      if List.exists (String.equal c.Structure.conn_id) (Structure.brick_ids t) then
        apply_error "add connector: id %S already exists" c.Structure.conn_id;
      { t with Structure.connectors = t.Structure.connectors @ [ c ] }
  | Remove_connector id ->
      if Structure.find_connector t id = None then
        apply_error "remove connector: unknown id %S" id;
      {
        t with
        Structure.connectors =
          List.filter (fun c -> not (String.equal c.Structure.conn_id id)) t.Structure.connectors;
        links = links_not_anchored_at t id;
      }
  | Add_link l ->
      if List.exists (fun x -> String.equal x.Structure.link_id l.Structure.link_id) t.Structure.links
      then apply_error "add link: id %S already exists" l.Structure.link_id;
      if Structure.find_interface t l.Structure.link_from = None then
        apply_error "add link %S: endpoint %s.%s does not resolve" l.Structure.link_id
          l.Structure.link_from.Structure.anchor l.Structure.link_from.Structure.interface;
      if Structure.find_interface t l.Structure.link_to = None then
        apply_error "add link %S: endpoint %s.%s does not resolve" l.Structure.link_id
          l.Structure.link_to.Structure.anchor l.Structure.link_to.Structure.interface;
      { t with Structure.links = t.Structure.links @ [ l ] }
  | Remove_link id ->
      if not (List.exists (fun l -> String.equal l.Structure.link_id id) t.Structure.links) then
        apply_error "remove link: unknown id %S" id;
      {
        t with
        Structure.links =
          List.filter (fun l -> not (String.equal l.Structure.link_id id)) t.Structure.links;
      }
  | Rename_element { old_id; new_id } ->
      if Structure.find_component t old_id = None && Structure.find_connector t old_id = None
      then apply_error "rename: unknown id %S" old_id;
      if List.exists (String.equal new_id) (Structure.brick_ids t) then
        apply_error "rename: id %S already exists" new_id;
      let rename_point p =
        if String.equal p.Structure.anchor old_id then { p with Structure.anchor = new_id }
        else p
      in
      {
        t with
        Structure.components =
          List.map
            (fun c ->
              if String.equal c.Structure.comp_id old_id then
                { c with Structure.comp_id = new_id }
              else c)
            t.Structure.components;
        connectors =
          List.map
            (fun c ->
              if String.equal c.Structure.conn_id old_id then
                { c with Structure.conn_id = new_id }
              else c)
            t.Structure.connectors;
        links =
          List.map
            (fun l ->
              {
                l with
                Structure.link_from = rename_point l.Structure.link_from;
                link_to = rename_point l.Structure.link_to;
              })
            t.Structure.links;
      }

let apply_all t ops = List.fold_left apply t ops

let excise_link_between t a b =
  let between l =
    let fa = l.Structure.link_from.Structure.anchor in
    let ta = l.Structure.link_to.Structure.anchor in
    (String.equal fa a && String.equal ta b) || (String.equal fa b && String.equal ta a)
  in
  let doomed = List.filter between t.Structure.links in
  if doomed = [] then apply_error "no link between %S and %S" a b;
  List.fold_left (fun t l -> apply t (Remove_link l.Structure.link_id)) t doomed

let diff a b =
  let link_ids t = List.map (fun l -> l.Structure.link_id) t.Structure.links in
  let removed_links =
    List.filter_map
      (fun id ->
        if List.exists (String.equal id) (link_ids b) then None else Some (Remove_link id))
      (link_ids a)
  in
  (* Elements present on both sides but structurally changed are
     replaced: removed (which prunes their links) and re-added, with the
     pruned-but-surviving links re-added afterwards. *)
  let replaced_components =
    List.filter
      (fun c ->
        match Structure.find_component a c.Structure.comp_id with
        | Some old -> old <> c
        | None -> false)
      b.Structure.components
  in
  let replaced_connectors =
    List.filter
      (fun c ->
        match Structure.find_connector a c.Structure.conn_id with
        | Some old -> old <> c
        | None -> false)
      b.Structure.connectors
  in
  let replaced_ids =
    List.map (fun c -> c.Structure.comp_id) replaced_components
    @ List.map (fun c -> c.Structure.conn_id) replaced_connectors
  in
  let readded_links =
    List.filter_map
      (fun l ->
        let anchored_at_replaced =
          List.exists (String.equal l.Structure.link_from.Structure.anchor) replaced_ids
          || List.exists (String.equal l.Structure.link_to.Structure.anchor) replaced_ids
        in
        if anchored_at_replaced && List.exists (String.equal l.Structure.link_id) (link_ids a)
        then Some (Add_link l)
        else None)
      b.Structure.links
  in
  let replace_ops =
    List.concat_map
      (fun c -> [ Remove_component c.Structure.comp_id; Add_component c ])
      replaced_components
    @ List.concat_map
        (fun c -> [ Remove_connector c.Structure.conn_id; Add_connector c ])
        replaced_connectors
  in
  let removed_components =
    List.filter_map
      (fun c ->
        if Structure.find_component b c.Structure.comp_id = None then
          Some (Remove_component c.Structure.comp_id)
        else None)
      a.Structure.components
  in
  let removed_connectors =
    List.filter_map
      (fun c ->
        if Structure.find_connector b c.Structure.conn_id = None then
          Some (Remove_connector c.Structure.conn_id)
        else None)
      a.Structure.connectors
  in
  let added_components =
    List.filter_map
      (fun c ->
        if Structure.find_component a c.Structure.comp_id = None then Some (Add_component c)
        else None)
      b.Structure.components
  in
  let added_connectors =
    List.filter_map
      (fun c ->
        if Structure.find_connector a c.Structure.conn_id = None then Some (Add_connector c)
        else None)
      b.Structure.connectors
  in
  let added_links =
    List.filter_map
      (fun l ->
        if List.exists (String.equal l.Structure.link_id) (link_ids a) then None
        else Some (Add_link l))
      b.Structure.links
  in
  removed_links @ removed_components @ removed_connectors @ replace_ops
  @ added_components @ added_connectors @ added_links @ readded_links

let pp_op ppf = function
  | Add_component c -> Format.fprintf ppf "add component %s" c.Structure.comp_id
  | Remove_component id -> Format.fprintf ppf "remove component %s" id
  | Add_connector c -> Format.fprintf ppf "add connector %s" c.Structure.conn_id
  | Remove_connector id -> Format.fprintf ppf "remove connector %s" id
  | Add_link l -> Format.fprintf ppf "add link %s" l.Structure.link_id
  | Remove_link id -> Format.fprintf ppf "remove link %s" id
  | Rename_element { old_id; new_id } -> Format.fprintf ppf "rename %s -> %s" old_id new_id
