type direction = Provided | Required | In_out

type interface = {
  iface_id : string;
  iface_name : string;
  direction : direction;
  iface_tags : (string * string) list;
}

type component = {
  comp_id : string;
  comp_name : string;
  comp_description : string;
  responsibilities : string list;
  comp_interfaces : interface list;
  substructure : t option;
  comp_tags : (string * string) list;
}

and connector = {
  conn_id : string;
  conn_name : string;
  conn_description : string;
  conn_interfaces : interface list;
  conn_tags : (string * string) list;
}

and point = { anchor : string; interface : string }

and link = { link_id : string; link_from : point; link_to : point }

and t = {
  arch_id : string;
  arch_name : string;
  style : string option;
  components : component list;
  connectors : connector list;
  links : link list;
}

let empty ?style ~id ~name () =
  { arch_id = id; arch_name = name; style; components = []; connectors = []; links = [] }

let find_component t id = List.find_opt (fun c -> String.equal c.comp_id id) t.components

let find_connector t id = List.find_opt (fun c -> String.equal c.conn_id id) t.connectors

let component_exn t id =
  match find_component t id with Some c -> c | None -> raise Not_found

let element_interfaces t id =
  match find_component t id with
  | Some c -> c.comp_interfaces
  | None -> (
      match find_connector t id with Some c -> c.conn_interfaces | None -> [])

let find_interface t point =
  List.find_opt
    (fun i -> String.equal i.iface_id point.interface)
    (element_interfaces t point.anchor)

let tag tags name =
  Option.map snd (List.find_opt (fun (k, _) -> String.equal k name) tags)

let component_tag c name = tag c.comp_tags name

let interface_tag i name = tag i.iface_tags name

let layer_of c =
  match component_tag c "layer" with Some v -> int_of_string_opt v | None -> None

let brick_ids t =
  List.map (fun c -> c.comp_id) t.components @ List.map (fun c -> c.conn_id) t.connectors

let rec size t =
  let sub =
    List.fold_left
      (fun acc c -> match c.substructure with Some s -> acc + size s | None -> acc)
      0 t.components
  in
  List.length t.components + List.length t.connectors + List.length t.links + sub
