include Jsonlight
