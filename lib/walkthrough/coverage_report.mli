(** Which components the scenarios actually exercise.

    "The mapping can be done at the subcomponent-level, which can give
    more detailed information about the fitness of the architecture in
    regard to requirements" (paper §3.3). This report inverts a set
    evaluation: per component, the scenarios whose walkthroughs placed
    an event on it; components never exercised are candidates for
    missing requirements (or dead architecture). *)

type component_coverage = {
  component : string;
  scenarios : string list;  (** scenario ids, first-touch order *)
  events_placed : int;  (** total step placements across all traces *)
}

type t = {
  covered : component_coverage list;  (** exercised components *)
  unexercised : string list;  (** components no scenario touched *)
}

val of_set_result : Adl.Structure.t -> Engine.set_result -> t

val pp : Format.formatter -> t -> unit

val to_string : t -> string
