type component_coverage = {
  component : string;
  scenarios : string list;
  events_placed : int;
}

type t = { covered : component_coverage list; unexercised : string list }

let of_set_result architecture (result : Engine.set_result) =
  let table : (string, string list * int) Hashtbl.t = Hashtbl.create 16 in
  let touch component scenario =
    let scenarios, count =
      match Hashtbl.find_opt table component with Some x -> x | None -> ([], 0)
    in
    let scenarios =
      if List.exists (String.equal scenario) scenarios then scenarios
      else scenarios @ [ scenario ]
    in
    Hashtbl.replace table component (scenarios, count + 1)
  in
  List.iter
    (fun sr ->
      List.iter
        (fun trace ->
          List.iter
            (fun step ->
              List.iter
                (fun c -> touch c sr.Verdict.scenario_id)
                step.Verdict.components)
            trace.Verdict.steps)
        sr.Verdict.traces)
    result.Engine.results;
  let component_ids =
    List.map (fun c -> c.Adl.Structure.comp_id) architecture.Adl.Structure.components
  in
  let covered =
    List.filter_map
      (fun component ->
        match Hashtbl.find_opt table component with
        | Some (scenarios, events_placed) -> Some { component; scenarios; events_placed }
        | None -> None)
      component_ids
  in
  let unexercised =
    List.filter (fun c -> not (Hashtbl.mem table c)) component_ids
  in
  { covered; unexercised }

let pp ppf t =
  Format.fprintf ppf "@[<v>Component coverage:@,";
  List.iter
    (fun c ->
      Format.fprintf ppf "  %-22s %3d placements, %2d scenarios@," c.component
        c.events_placed (List.length c.scenarios))
    t.covered;
  (match t.unexercised with
  | [] -> Format.fprintf ppf "  every component is exercised by some scenario@,"
  | l ->
      Format.fprintf ppf "  UNEXERCISED: %s@," (String.concat ", " l));
  Format.fprintf ppf "@]"

let to_string t = Format.asprintf "%a" pp t
