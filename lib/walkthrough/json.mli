(** Minimal JSON document builder (and reader) for machine-readable
    reports.

    Strings are escaped per RFC 8259; non-finite floats serialize as
    [null]. {!of_string} parses documents this module wrote (plus
    whitespace) — enough to read a report back and merge into it. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_buffer : Buffer.t -> t -> unit

val strings : string list -> t
(** [List] of [String]s. *)

val of_string : string -> (t, string) result
(** Parse one JSON document. Numbers without [.]/[e] parse as [Int]
    (falling back to [Float] when out of [int] range), others as
    [Float]. *)

val member : string -> t -> t option
(** First field of that name when the value is an [Obj]; [None]
    otherwise. *)
