(** Deprecated alias of {!Jsonlight}, kept so call sites written
    against [Walkthrough.Json] compile unchanged. The JSON builder and
    parser now live in the standalone [jsonlight] library; all types
    are equal ([Walkthrough.Json.t = Jsonlight.t]), so migration is a
    textual rename. *)

[@@@deprecated "use Jsonlight instead; Walkthrough.Json is a compatibility alias"]

include module type of struct
  include Jsonlight
end
