(** Minimal JSON document builder for machine-readable reports.

    Construction and serialization only (the reports are write-only:
    verdicts, bench results); no parsing. Strings are escaped per RFC
    8259; non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line. *)

val to_buffer : Buffer.t -> t -> unit

val strings : string list -> t
(** [List] of [String]s. *)
