type candidate = { first : string; second : string; witness_path : string list }

let typed_sequence trace =
  List.filter_map
    (fun step ->
      match step.Scenarioml.Linearize.step_event with
      | Scenarioml.Event.Typed { event_type; _ } -> Some event_type
      | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
      | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
      | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
          None)
    trace

let rec pairs_of = function
  | a :: (b :: _ as rest) -> (a, b) :: pairs_of rest
  | [ _ ] | [] -> []

let successions_in_scenarios ?(config = Scenarioml.Linearize.default_config) set =
  let all =
    List.concat_map
      (fun s ->
        let { Scenarioml.Linearize.traces; _ } =
          Scenarioml.Linearize.scenario ~config set s
        in
        List.concat_map (fun t -> pairs_of (typed_sequence t)) traces)
      set.Scenarioml.Scen.scenarios
  in
  List.sort_uniq compare all

let implied ?(config = Scenarioml.Linearize.default_config)
    ?(policy = Adl.Graph.Routed) ~set ~architecture ~mapping () =
  let written = successions_in_scenarios ~config set in
  let graph = Adl.Graph.of_structure architecture in
  let mapped =
    List.filter
      (fun et -> Mapping.Types.components_of mapping et <> [])
      (List.map (fun e -> e.Ontology.Types.event_id)
         set.Scenarioml.Scen.ontology.Ontology.Types.event_types)
  in
  let connectable a b =
    let ca = Mapping.Types.components_of mapping a in
    let cb = Mapping.Types.components_of mapping b in
    let shared = List.filter (fun c -> List.exists (String.equal c) cb) ca in
    match shared with
    | c :: _ -> Some [ c ]
    | [] ->
        List.fold_left
          (fun acc x ->
            match acc with
            | Some _ -> acc
            | None ->
                List.fold_left
                  (fun acc y ->
                    match acc with
                    | Some _ -> acc
                    | None -> Adl.Graph.path ~policy graph x y)
                  None cb)
          None ca
  in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if List.exists (fun (x, y) -> String.equal x a && String.equal y b) written then None
          else
            match connectable a b with
            | Some witness_path -> Some { first = a; second = b; witness_path }
            | None -> None)
        mapped)
    mapped

let pp_candidate ppf c =
  Format.fprintf ppf "%s -> %s (via %s)" c.first c.second (String.concat " -> " c.witness_path)
