type simple_event_policy = Skip_simple | Report_simple

type config = {
  policy : Adl.Graph.policy;
  simple_events : simple_event_policy;
  linearize : Scenarioml.Linearize.config;
  check_style : bool;
  check_internal : bool;
  internal_policy : Adl.Graph.policy;
  constraints : Styles.Constraint_lang.t list;
  placement_hook : (Scenarioml.Event.t -> string list option) option;
}

let config ?(policy = Adl.Graph.Routed) ?(simple_events = Skip_simple)
    ?(linearize = Scenarioml.Linearize.default_config) ?(check_style = true)
    ?(check_internal = true) ?(internal_policy = Adl.Graph.Direct) ?(constraints = [])
    ?placement_hook () =
  {
    policy;
    simple_events;
    linearize;
    check_style;
    check_internal;
    internal_policy;
    constraints;
    placement_hook;
  }

let default_config = config ()

let with_policy policy c = { c with policy }

let with_simple_events simple_events c = { c with simple_events }

let with_linearize linearize c = { c with linearize }

let with_style_checks check_style c = { c with check_style }

let with_internal_checks ?policy check_internal c =
  {
    c with
    check_internal;
    internal_policy = Option.value policy ~default:c.internal_policy;
  }

let with_constraints constraints c = { c with constraints }

let with_placement_hook hook c = { c with placement_hook = Some hook }

(* Components of one step; [None] means "no placement required" (simple
   event under [Skip_simple]). *)
let place config mapping ontology step =
  match
    Option.bind config.placement_hook (fun hook ->
        hook step.Scenarioml.Linearize.step_event)
  with
  | Some components -> (
      match step.Scenarioml.Linearize.step_event with
      | Scenarioml.Event.Typed { event_type; _ } -> `Placed (Some event_type, components)
      | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
      | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
      | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
          `Placed (None, components))
  | None -> (
  match step.Scenarioml.Linearize.step_event with
  | Scenarioml.Event.Typed { event_type; _ } ->
      let direct = Mapping.Types.components_of mapping event_type in
      if direct <> [] then `Placed (Some event_type, direct)
      else begin
        (* Fall back on the event-type hierarchy: an unmapped subtype
           inherits its nearest mapped ancestor's placement (the paper's
           generalization discussion, §5). *)
        let rec up id =
          match Ontology.Types.find_event_type ontology id with
          | Some { Ontology.Types.event_super = Some super; _ } -> (
              match Mapping.Types.components_of mapping super with
              | [] -> up super
              | components -> Some components)
          | Some { Ontology.Types.event_super = None; _ } | None -> None
        in
        match up event_type with
        | Some components -> `Placed (Some event_type, components)
        | None -> `Unmapped_type event_type
      end
  | Scenarioml.Event.Simple { text; _ } -> (
      match config.simple_events with
      | Skip_simple -> `Narrative
      | Report_simple -> `Unplaceable text)
  | Scenarioml.Event.Compound _ | Scenarioml.Event.Alternation _
  | Scenarioml.Event.Iteration _ | Scenarioml.Event.Optional _
  | Scenarioml.Event.Episode _ ->
      (* Linearization only emits primitive steps. *)
      `Narrative)

let connect_hop config ?record reach from_components to_components =
  (* Some component of the previous step must communicate with some
     component of this step. Components shared by both steps connect
     trivially. *)
  let shared =
    List.filter (fun c -> List.exists (String.equal c) to_components) from_components
  in
  match shared with
  | c :: _ -> Some { Verdict.hop_from = c; hop_to = c; via = [ c ] }
  | [] ->
      let candidate =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b ->
                match Adl.Reach.path ~policy:config.policy ?record reach a b with
                | Some via -> Some { Verdict.hop_from = a; hop_to = b; via }
                | None -> None)
              to_components)
          from_components
      in
      (* Prefer the shortest communication path. *)
      List.fold_left
        (fun acc hop ->
          match acc with
          | None -> Some hop
          | Some best ->
              if List.length hop.Verdict.via < List.length best.Verdict.via then Some hop
              else acc)
        None candidate

let walk_trace config ?record set mapping reach trace_index trace =
  let ontology = set.Scenarioml.Scen.ontology in
  let rec loop index prev_components acc = function
    | [] -> List.rev acc
    | step :: rest -> (
        let text = Scenarioml.Event.render ontology step.Scenarioml.Linearize.step_event in
        match place config mapping ontology step with
        | `Narrative ->
            let result =
              {
                Verdict.index;
                text;
                event_type = None;
                components = [];
                hop = None;
                step_problems = [];
              }
            in
            (* Narrative steps do not move the placement. *)
            loop (index + 1) prev_components (result :: acc) rest
        | `Unplaceable event ->
            let result =
              {
                Verdict.index;
                text;
                event_type = None;
                components = [];
                hop = None;
                step_problems = [ Verdict.Unmapped_simple_event { step = index; event } ];
              }
            in
            loop (index + 1) prev_components (result :: acc) rest
        | `Unmapped_type event_type ->
            let result =
              {
                Verdict.index;
                text;
                event_type = Some event_type;
                components = [];
                hop = None;
                step_problems = [ Verdict.Unmapped_event_type { step = index; event_type } ];
              }
            in
            loop (index + 1) prev_components (result :: acc) rest
        | `Placed (event_type, components) ->
            let hop, hop_problems =
              match prev_components with
              | [] -> (None, [])
              | prev -> (
                  match connect_hop config ?record reach prev components with
                  | Some hop -> (Some hop, [])
                  | None ->
                      ( None,
                        [
                          Verdict.Missing_link
                            {
                              step = index;
                              from_components = prev;
                              to_components = components;
                            };
                        ] ))
            in
            (* An event mapped to several components is realized by that
               chain of components in order (Fig. 4's fourth event:
               "transfer specific data from the Loader through Data
               Access to the Data Repository"): each consecutive pair
               must be able to communicate. *)
            let internal_problems =
              if not config.check_internal then []
              else
                let rec chain = function
                  | a :: (b :: _ as rest) ->
                      let tail = chain rest in
                      if
                        String.equal a b
                        || Adl.Reach.reachable ~policy:config.internal_policy ?record reach
                             a b
                      then tail
                      else
                        Verdict.Missing_link
                          { step = index; from_components = [ a ]; to_components = [ b ] }
                        :: tail
                  | [ _ ] | [] -> []
                in
                chain components
            in
            let result =
              {
                Verdict.index;
                text;
                event_type;
                components;
                hop;
                step_problems = hop_problems @ internal_problems;
              }
            in
            loop (index + 1) components (result :: acc) rest)
  in
  let steps = loop 1 [] [] trace in
  let walked =
    List.for_all (fun s -> s.Verdict.step_problems = []) steps
  in
  { Verdict.trace_index; steps; walked }

let evaluate_scenario ?(config = default_config) ?reach ?record ~set ~architecture
    ~mapping s =
  let reach =
    match reach with Some r -> r | None -> Adl.Reach.of_structure architecture
  in
  let { Scenarioml.Linearize.traces; truncated } =
    Scenarioml.Linearize.scenario ~config:config.linearize set s
  in
  let results =
    List.mapi
      (fun i trace -> walk_trace config ?record set mapping reach (i + 1) trace)
      traces
  in
  let negative = Scenarioml.Scen.is_negative s in
  let verdict, inconsistencies =
    if negative then begin
      (* Inconsistent when any trace executes successfully. *)
      let executing = List.filter (fun t -> t.Verdict.walked) results in
      match executing with
      | [] -> (Verdict.Consistent, [])
      | ts ->
          ( Verdict.Inconsistent,
            List.map
              (fun t ->
                Verdict.Negative_scenario_executes
                  { scenario = s.Scenarioml.Scen.scenario_id; trace_index = t.Verdict.trace_index })
              ts )
    end
    else begin
      let failing = List.filter (fun t -> not t.Verdict.walked) results in
      match failing with
      | [] -> (Verdict.Consistent, [])
      | ts ->
          ( Verdict.Inconsistent,
            List.concat_map
              (fun t ->
                List.concat_map (fun st -> st.Verdict.step_problems) t.Verdict.steps)
              ts )
    end
  in
  {
    Verdict.scenario_id = s.Scenarioml.Scen.scenario_id;
    scenario_name = s.Scenarioml.Scen.scenario_name;
    negative;
    traces = results;
    truncated;
    verdict;
    inconsistencies;
  }

type set_result = {
  results : Verdict.scenario_result list;
  style_violations : Styles.Rule.violation list;
  coverage_problems : Mapping.Coverage.problem list;
  consistent : bool;
}

let check_architecture config architecture =
  (if config.check_style then Styles.Check.check_declared architecture else [])
  @ Styles.Constraint_lang.check architecture config.constraints

let evaluate_set ?(config = default_config) ?reach ~set ~architecture ~mapping () =
  let reach =
    match reach with Some r -> r | None -> Adl.Reach.of_structure architecture
  in
  let results =
    List.map
      (evaluate_scenario ~config ~reach ~set ~architecture ~mapping)
      set.Scenarioml.Scen.scenarios
  in
  let style_violations = check_architecture config architecture in
  let coverage_problems =
    Mapping.Coverage.check set.Scenarioml.Scen.ontology architecture mapping
  in
  let consistent =
    List.for_all Verdict.is_consistent results && style_violations = []
  in
  { results; style_violations; coverage_problems; consistent }
