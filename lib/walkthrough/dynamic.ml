type behavioral_mismatch = {
  step : int;
  component : string;
  trigger : string;
  active_states : string list;
}

type step_exec = {
  exec_index : int;
  exec_trigger : string option;
  reactions : (string * string list) list;
  mismatches : behavioral_mismatch list;
}

type trace_exec = {
  exec_trace_index : int;
  steps : step_exec list;
  accepted : bool;
  final_configs : (string * Statechart.Exec.config) list;
}

type result = { scenario_id : string; traces : trace_exec list; ok : bool }

type config = {
  trigger_of : Scenarioml.Event.t -> string option;
  guards : string -> bool;
  linearize : Scenarioml.Linearize.config;
}

let default_trigger = function
  | Scenarioml.Event.Typed { event_type; _ } -> Some event_type
  | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
  | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
  | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
      None

let default_config =
  {
    trigger_of = default_trigger;
    guards = (fun _ -> true);
    linearize = Scenarioml.Linearize.default_config;
  }

(* Mutable chart states for one trace execution. *)
let fresh_states charts =
  List.map (fun chart -> (chart.Statechart.Types.component, ref (Statechart.Exec.initial_config chart), chart)) charts

let placed_components ontology mapping event =
  match event with
  | Scenarioml.Event.Typed { event_type; _ } -> (
      match Mapping.Types.components_of mapping event_type with
      | [] ->
          (* inherit the nearest mapped ancestor's placement, as the
             static engine does *)
          let rec up id =
            match Ontology.Types.find_event_type ontology id with
            | Some { Ontology.Types.event_super = Some super; _ } -> (
                match Mapping.Types.components_of mapping super with
                | [] -> up super
                | components -> components)
            | Some { Ontology.Types.event_super = None; _ } | None -> []
          in
          up event_type
      | components -> components)
  | Scenarioml.Event.Simple _ | Scenarioml.Event.Compound _
  | Scenarioml.Event.Alternation _ | Scenarioml.Event.Iteration _
  | Scenarioml.Event.Optional _ | Scenarioml.Event.Episode _ ->
      []

let execute_trace config ontology mapping charts trace_index trace =
  let states = fresh_states charts in
  let chart_of component =
    List.find_opt (fun (c, _, _) -> String.equal c component) states
  in
  let steps =
    List.mapi
      (fun i step ->
        let exec_index = i + 1 in
        let event = step.Scenarioml.Linearize.step_event in
        match config.trigger_of event with
        | None -> { exec_index; exec_trigger = None; reactions = []; mismatches = [] }
        | Some trigger ->
            let components = placed_components ontology mapping event in
            let reactions, mismatches =
              List.fold_left
                (fun (reactions, mismatches) component ->
                  match chart_of component with
                  | None -> (reactions, mismatches)
                  | Some (_, state, chart) ->
                      let reaction =
                        Statechart.Exec.step ~guards:config.guards chart !state trigger
                      in
                      state := reaction.Statechart.Exec.new_config;
                      (match reaction.Statechart.Exec.fired with
                      | Some _ ->
                          ( reactions @ [ (component, reaction.Statechart.Exec.outputs) ],
                            mismatches )
                      | None ->
                          ( reactions,
                            mismatches
                            @ [
                                {
                                  step = exec_index;
                                  component;
                                  trigger;
                                  active_states = reaction.Statechart.Exec.new_config;
                                };
                              ] )))
                ([], []) components
            in
            { exec_index; exec_trigger = Some trigger; reactions; mismatches })
      trace
  in
  let accepted = List.for_all (fun s -> s.mismatches = []) steps in
  {
    exec_trace_index = trace_index;
    steps;
    accepted;
    final_configs = List.map (fun (c, state, _) -> (c, !state)) states;
  }

let evaluate_scenario ?(config = default_config) ~set ~mapping ~charts s =
  let ontology = set.Scenarioml.Scen.ontology in
  let { Scenarioml.Linearize.traces; _ } =
    Scenarioml.Linearize.scenario ~config:config.linearize set s
  in
  let executed =
    List.mapi (fun i t -> execute_trace config ontology mapping charts (i + 1) t) traces
  in
  let ok =
    if Scenarioml.Scen.is_negative s then
      List.for_all (fun t -> not t.accepted) executed
    else List.for_all (fun t -> t.accepted) executed
  in
  { scenario_id = s.Scenarioml.Scen.scenario_id; traces = executed; ok }

let pp_mismatch ppf m =
  Format.fprintf ppf
    "step %d: component %S rejects trigger %S (active states: %s)" m.step m.component
    m.trigger
    (String.concat "/" m.active_states)

let pp_result ppf r =
  Format.fprintf ppf "@[<v>behavioral walkthrough of %s: %s@," r.scenario_id
    (if r.ok then "ACCEPTED" else "REJECTED");
  List.iter
    (fun t ->
      Format.fprintf ppf "  trace %d: %s@," t.exec_trace_index
        (if t.accepted then "accepted" else "rejected");
      List.iter
        (fun s ->
          List.iter (fun m -> Format.fprintf ppf "    !! %a@," pp_mismatch m) s.mismatches)
        t.steps)
    r.traces;
  Format.fprintf ppf "@]"
