(** The walkthrough engine.

    "The task of evaluating an architecture against a set of scenarios
    consists of going through the sequence of the events in the
    scenarios, using the established mapping to match events to
    components, while simulating the behavior of the matched
    components. The resulting architecture behavior is then evaluated
    for inconsistencies with the scenario" (paper §3.5).

    For each linearized trace of a scenario, each event is matched to
    its mapped components; for each pair of successive events, some
    component of the first must be able to communicate with some
    component of the second through the structure (under the configured
    path policy). A positive scenario is consistent when *every* trace
    walks; a negative scenario is consistent when *no* trace walks.

    Communication queries go through an {!Adl.Reach} oracle. Callers
    evaluating repeatedly against the same architecture should build the
    oracle once and pass it as [?reach]; each call otherwise builds a
    fresh one. [Sosae.Session] layers caching and incremental
    re-evaluation on top of this. *)

type simple_event_policy =
  | Skip_simple  (** simple events are narrative: no placement required *)
  | Report_simple  (** simple events are reported as unplaceable *)

type config = {
  policy : Adl.Graph.policy;  (** communication path policy *)
  simple_events : simple_event_policy;
  linearize : Scenarioml.Linearize.config;
  check_style : bool;  (** include declared-style violations *)
  check_internal : bool;
      (** an event mapped to several components is realized by that
          chain in order; check each consecutive pair can communicate *)
  internal_policy : Adl.Graph.policy;
      (** policy for the realization chain; default [Direct]: the data
          handoff inside one event cannot be routed through unrelated
          components (Fig. 4: "other paths do not support transfer of
          this data") *)
  constraints : Styles.Constraint_lang.t list;
      (** requirements-imposed communication constraints, checked with
          the declared style and reported as style violations *)
  placement_hook : (Scenarioml.Event.t -> string list option) option;
      (** when set and returning [Some components], overrides the
          mapping's placement for that event — the hook for
          argument-sensitive placement (paper §8: events "map to a
          specific component ... determined by the domain entities that
          appear in those events") *)
}

val config :
  ?policy:Adl.Graph.policy ->
  ?simple_events:simple_event_policy ->
  ?linearize:Scenarioml.Linearize.config ->
  ?check_style:bool ->
  ?check_internal:bool ->
  ?internal_policy:Adl.Graph.policy ->
  ?constraints:Styles.Constraint_lang.t list ->
  ?placement_hook:(Scenarioml.Event.t -> string list option) ->
  unit ->
  config
(** Build a configuration without spelling out the whole record; every
    omitted field takes its {!default_config} value. *)

val default_config : config
(** [config ()]: [Routed] paths, [Skip_simple], default linearization,
    style and internal-chain checks on. *)

(** Functional updates, for deriving one configuration from another:
    [default_config |> with_policy Direct |> with_constraints cs]. *)

val with_policy : Adl.Graph.policy -> config -> config

val with_simple_events : simple_event_policy -> config -> config

val with_linearize : Scenarioml.Linearize.config -> config -> config

val with_style_checks : bool -> config -> config

val with_internal_checks : ?policy:Adl.Graph.policy -> bool -> config -> config
(** [with_internal_checks ~policy on c] toggles the realization-chain
    check; [policy] also replaces the chain policy when given. *)

val with_constraints : Styles.Constraint_lang.t list -> config -> config

val with_placement_hook :
  (Scenarioml.Event.t -> string list option) -> config -> config

val evaluate_scenario :
  ?config:config ->
  ?reach:Adl.Reach.t ->
  ?record:Adl.Reach.recorder ->
  set:Scenarioml.Scen.set ->
  architecture:Adl.Structure.t ->
  mapping:Mapping.Types.t ->
  Scenarioml.Scen.t ->
  Verdict.scenario_result
(** [reach], when given, must have been built from [architecture] (or an
    architecture with the same communication graph); [record] captures
    the reachability queries the walk performs, for later
    {!Adl.Reach.replay}. *)

type set_result = {
  results : Verdict.scenario_result list;
  style_violations : Styles.Rule.violation list;
  coverage_problems : Mapping.Coverage.problem list;
  consistent : bool;
      (** every scenario consistent, no style violations (when checked) *)
}

val check_architecture : config -> Adl.Structure.t -> Styles.Rule.violation list
(** The per-architecture checks of {!evaluate_set}: declared-style rules
    (under [check_style]) plus the configured constraints. *)

val evaluate_set :
  ?config:config ->
  ?reach:Adl.Reach.t ->
  set:Scenarioml.Scen.set ->
  architecture:Adl.Structure.t ->
  mapping:Mapping.Types.t ->
  unit ->
  set_result
