(** Result types of the walkthrough evaluation (paper §3.5).

    An architecture can be inconsistent with the requirements as:
    - a missing link between two components required by successive
      scenario events;
    - a violated communication constraint (style rule);
    - an event the mapping cannot place on any component;
    - a *negative* scenario that executes successfully. *)

type inconsistency =
  | Unmapped_event_type of { step : int; event_type : string }
      (** a typed event whose event type maps to no component *)
  | Unmapped_simple_event of { step : int; event : string }
      (** a simple (untyped) event, which cannot be placed *)
  | Missing_link of {
      step : int;  (** index of the second of the two events *)
      from_components : string list;
      to_components : string list;
    }
      (** no communication path between the components of successive
          events *)
  | Constraint_violation of Styles.Rule.violation
  | Negative_scenario_executes of { scenario : string; trace_index : int }

type hop = {
  hop_from : string;
  hop_to : string;
  via : string list;  (** full brick path, endpoints included *)
}

type step_result = {
  index : int;  (** 1-based, as in the paper's numbered events *)
  text : string;  (** rendered event text *)
  event_type : string option;  (** for typed events *)
  components : string list;  (** mapped components *)
  hop : hop option;  (** communication used from the previous step *)
  step_problems : inconsistency list;
}

type trace_result = {
  trace_index : int;
  steps : step_result list;
  walked : bool;  (** every step placed and connected *)
}

type verdict = Consistent | Inconsistent

type scenario_result = {
  scenario_id : string;
  scenario_name : string;
  negative : bool;
  traces : trace_result list;
  truncated : bool;  (** linearization hit its cap *)
  verdict : verdict;
  inconsistencies : inconsistency list;
      (** aggregated: for positive scenarios, the problems of failing
          traces; for negative ones, {!Negative_scenario_executes} *)
}

val pp_inconsistency : Format.formatter -> inconsistency -> unit

val inconsistency_to_string : inconsistency -> string

val is_consistent : scenario_result -> bool
