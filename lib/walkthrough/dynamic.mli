(** Behavioral walkthrough: executing scenarios over component
    statecharts.

    The static engine ({!Engine}) checks that successive events land on
    components that *can* communicate. This module adds the behavioral
    half the paper sketches — "going through the sequence of the events
    in the scenarios ... while simulating the behavior of the matched
    components" (§3.5) and SOSAE's "mechanism for automatically
    executing the scenarios on the architecture" (§8).

    Semantics: each component may carry a statechart (matched by the
    chart's [component] field). Walking a trace delivers each typed
    event's trigger — by default the event-type id — to the chart of
    every component the event maps to, in chain order, advancing the
    charts as it goes. A chart that cannot fire on a delivered trigger
    *rejects* the event: a {!behavioral_mismatch}. Components without a
    chart accept vacuously. Chart outputs are recorded per step.

    This catches protocol-order defects the static walkthrough cannot:
    e.g. a scenario that saves downloaded prices before downloading them
    walks statically (all links exist) but is rejected by a Loader chart
    that only accepts [system-saves] after [system-downloads]. *)

type behavioral_mismatch = {
  step : int;  (** 1-based step index *)
  component : string;
  trigger : string;
  active_states : string list;  (** chart configuration at rejection *)
}

type step_exec = {
  exec_index : int;
  exec_trigger : string option;  (** [None] for narrative steps *)
  reactions : (string * string list) list;
      (** per fired component: its emitted outputs *)
  mismatches : behavioral_mismatch list;
}

type trace_exec = {
  exec_trace_index : int;
  steps : step_exec list;
  accepted : bool;  (** no mismatch anywhere *)
  final_configs : (string * Statechart.Exec.config) list;
}

type result = {
  scenario_id : string;
  traces : trace_exec list;
  ok : bool;
      (** positive scenario: all traces accepted; negative: none *)
}

type config = {
  trigger_of : Scenarioml.Event.t -> string option;
      (** trigger extracted from a primitive event; [None] skips the
          step behaviorally *)
  guards : string -> bool;
  linearize : Scenarioml.Linearize.config;
}

val default_config : config
(** Typed events trigger with their event-type id; simple events are
    skipped; all guards true. *)

val evaluate_scenario :
  ?config:config ->
  set:Scenarioml.Scen.set ->
  mapping:Mapping.Types.t ->
  charts:Statechart.Types.t list ->
  Scenarioml.Scen.t ->
  result

val pp_mismatch : Format.formatter -> behavioral_mismatch -> unit

val pp_result : Format.formatter -> result -> unit
