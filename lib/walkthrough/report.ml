let pp_step ppf s =
  let placement =
    match s.Verdict.components with
    | [] -> ""
    | l -> Printf.sprintf "  @ %s" (String.concat ", " l)
  in
  let hop =
    match s.Verdict.hop with
    | Some h when List.length h.Verdict.via > 1 ->
        Printf.sprintf "\n      path: %s" (String.concat " -> " h.Verdict.via)
    | Some _ | None -> ""
  in
  let marker = if s.Verdict.step_problems = [] then "  " else "??" in
  Format.fprintf ppf "%s (%d) %s%s%s" marker s.Verdict.index s.Verdict.text placement hop;
  List.iter
    (fun p -> Format.fprintf ppf "@,      !! %a" Verdict.pp_inconsistency p)
    s.Verdict.step_problems

let pp_trace ppf t =
  Format.fprintf ppf "@[<v>trace %d: %s@," t.Verdict.trace_index
    (if t.Verdict.walked then "walks" else "FAILS");
  List.iter (fun s -> Format.fprintf ppf "%a@," pp_step s) t.Verdict.steps;
  Format.fprintf ppf "@]"

let pp_scenario_result ppf r =
  let kind = if r.Verdict.negative then " (negative)" else "" in
  let verdict =
    match r.Verdict.verdict with
    | Verdict.Consistent -> "CONSISTENT"
    | Verdict.Inconsistent -> "INCONSISTENT"
  in
  Format.fprintf ppf "@[<v>== %s: %s%s -> %s@," r.Verdict.scenario_id
    r.Verdict.scenario_name kind verdict;
  if r.Verdict.truncated then
    Format.fprintf ppf "   (trace enumeration truncated)@,";
  List.iter (fun t -> Format.fprintf ppf "%a" pp_trace t) r.Verdict.traces;
  List.iter
    (fun i -> Format.fprintf ppf "   inconsistency: %a@," Verdict.pp_inconsistency i)
    r.Verdict.inconsistencies;
  Format.fprintf ppf "@]"

let pp_set_result ppf (r : Engine.set_result) =
  Format.fprintf ppf "@[<v>";
  List.iter (fun sr -> Format.fprintf ppf "%a@," pp_scenario_result sr) r.Engine.results;
  if r.Engine.style_violations <> [] then begin
    Format.fprintf ppf "Style violations:@,";
    List.iter
      (fun v -> Format.fprintf ppf "  %a@," Styles.Rule.pp_violation v)
      r.Engine.style_violations
  end;
  if r.Engine.coverage_problems <> [] then begin
    Format.fprintf ppf "Mapping coverage:@,";
    List.iter
      (fun p -> Format.fprintf ppf "  %a@," Mapping.Coverage.pp_problem p)
      r.Engine.coverage_problems
  end;
  Format.fprintf ppf "Overall: %s@]"
    (if r.Engine.consistent then "CONSISTENT" else "INCONSISTENT")

let scenario_result_to_string r = Format.asprintf "%a" pp_scenario_result r

let set_result_to_string r = Format.asprintf "%a" pp_set_result r

let summary_line r =
  Printf.sprintf "%s: %s (%d trace%s)%s" r.Verdict.scenario_id
    (match r.Verdict.verdict with
    | Verdict.Consistent -> "CONSISTENT"
    | Verdict.Inconsistent -> "INCONSISTENT")
    (List.length r.Verdict.traces)
    (if List.length r.Verdict.traces = 1 then "" else "s")
    (if r.Verdict.negative then " [negative]" else "")

(* ---- machine-readable form (the CLI's --json flag) ---------------- *)

let json_of_inconsistency i =
  let tagged tag fields = Jsonlight.Obj (("kind", Jsonlight.String tag) :: fields) in
  match i with
  | Verdict.Unmapped_event_type { step; event_type } ->
      tagged "unmapped-event-type"
        [ ("step", Jsonlight.Int step); ("event_type", Jsonlight.String event_type) ]
  | Verdict.Unmapped_simple_event { step; event } ->
      tagged "unmapped-simple-event"
        [ ("step", Jsonlight.Int step); ("event", Jsonlight.String event) ]
  | Verdict.Missing_link { step; from_components; to_components } ->
      tagged "missing-link"
        [
          ("step", Jsonlight.Int step);
          ("from_components", Jsonlight.strings from_components);
          ("to_components", Jsonlight.strings to_components);
        ]
  | Verdict.Constraint_violation v ->
      tagged "constraint-violation"
        [
          ("rule", Jsonlight.String v.Styles.Rule.rule);
          ("subject", Jsonlight.String v.Styles.Rule.subject);
          ("detail", Jsonlight.String v.Styles.Rule.detail);
        ]
  | Verdict.Negative_scenario_executes { scenario; trace_index } ->
      tagged "negative-scenario-executes"
        [ ("scenario", Jsonlight.String scenario); ("trace_index", Jsonlight.Int trace_index) ]

let json_of_step s =
  Jsonlight.Obj
    [
      ("index", Jsonlight.Int s.Verdict.index);
      ("text", Jsonlight.String s.Verdict.text);
      ( "event_type",
        match s.Verdict.event_type with Some t -> Jsonlight.String t | None -> Jsonlight.Null );
      ("components", Jsonlight.strings s.Verdict.components);
      ( "hop",
        match s.Verdict.hop with
        | Some h ->
            Jsonlight.Obj
              [
                ("from", Jsonlight.String h.Verdict.hop_from);
                ("to", Jsonlight.String h.Verdict.hop_to);
                ("via", Jsonlight.strings h.Verdict.via);
              ]
        | None -> Jsonlight.Null );
      ("problems", Jsonlight.List (List.map json_of_inconsistency s.Verdict.step_problems));
    ]

let json_of_trace t =
  Jsonlight.Obj
    [
      ("trace_index", Jsonlight.Int t.Verdict.trace_index);
      ("walked", Jsonlight.Bool t.Verdict.walked);
      ("steps", Jsonlight.List (List.map json_of_step t.Verdict.steps));
    ]

let json_of_scenario_result r =
  Jsonlight.Obj
    [
      ("scenario_id", Jsonlight.String r.Verdict.scenario_id);
      ("scenario_name", Jsonlight.String r.Verdict.scenario_name);
      ("negative", Jsonlight.Bool r.Verdict.negative);
      ( "verdict",
        Jsonlight.String
          (match r.Verdict.verdict with
          | Verdict.Consistent -> "consistent"
          | Verdict.Inconsistent -> "inconsistent") );
      ("truncated", Jsonlight.Bool r.Verdict.truncated);
      ("traces", Jsonlight.List (List.map json_of_trace r.Verdict.traces));
      ( "inconsistencies",
        Jsonlight.List (List.map json_of_inconsistency r.Verdict.inconsistencies) );
    ]

let json_of_violation v =
  Jsonlight.Obj
    [
      ("rule", Jsonlight.String v.Styles.Rule.rule);
      ("subject", Jsonlight.String v.Styles.Rule.subject);
      ("detail", Jsonlight.String v.Styles.Rule.detail);
    ]

let json_of_set_result (r : Engine.set_result) =
  Jsonlight.Obj
    [
      ("consistent", Jsonlight.Bool r.Engine.consistent);
      ("scenarios", Jsonlight.List (List.map json_of_scenario_result r.Engine.results));
      ( "style_violations",
        Jsonlight.List (List.map json_of_violation r.Engine.style_violations) );
      ( "coverage_problems",
        Jsonlight.strings
          (List.map
             (Format.asprintf "%a" Mapping.Coverage.pp_problem)
             r.Engine.coverage_problems) );
    ]

let scenario_result_to_json r = Jsonlight.to_string (json_of_scenario_result r)

let set_result_to_json r = Jsonlight.to_string (json_of_set_result r)

let trace_to_dot architecture t =
  let highlight =
    List.concat_map
      (fun s ->
        let hop_bricks =
          match s.Verdict.hop with Some h -> h.Verdict.via | None -> []
        in
        let failing_bricks =
          if s.Verdict.step_problems = [] then [] else s.Verdict.components
        in
        hop_bricks @ failing_bricks)
      t.Verdict.steps
  in
  (* dedupe but keep order: consecutive pairs drive edge highlighting *)
  Adl.Dot.to_dot ~highlight architecture
