(** Implied-scenario detection (the paper's §8 future-work item, after
    Uchitel et al.): event-type successions that the architecture and
    mapping *can* execute but that no written scenario exercises. Such
    pairs are candidates for review — either missing requirements or
    undesired behaviours the architecture permits. *)

type candidate = {
  first : string;  (** event type *)
  second : string;  (** event type *)
  witness_path : string list;  (** brick path realizing the succession *)
}

val successions_in_scenarios :
  ?config:Scenarioml.Linearize.config -> Scenarioml.Scen.set -> (string * string) list
(** Ordered pairs of event types occurring as consecutive typed events
    in some linearized trace, without duplicates. *)

val implied :
  ?config:Scenarioml.Linearize.config ->
  ?policy:Adl.Graph.policy ->
  set:Scenarioml.Scen.set ->
  architecture:Adl.Structure.t ->
  mapping:Mapping.Types.t ->
  unit ->
  candidate list
(** Pairs of mapped event types whose component sets can communicate in
    the architecture but which appear consecutively in no scenario. *)

val pp_candidate : Format.formatter -> candidate -> unit
