(** Rendering of walkthrough results, in the numbered-step style of the
    paper's Fig. 4 (failing hops are marked with [??]). *)

val pp_trace : Format.formatter -> Verdict.trace_result -> unit

val pp_scenario_result : Format.formatter -> Verdict.scenario_result -> unit

val pp_set_result : Format.formatter -> Engine.set_result -> unit

val scenario_result_to_string : Verdict.scenario_result -> string

val set_result_to_string : Engine.set_result -> string

val summary_line : Verdict.scenario_result -> string
(** e.g. ["create-portfolio: CONSISTENT (1 trace)"]. *)

(** {1 Machine-readable verdicts}

    JSON mirrors of the pretty-printers above, for tooling built on the
    CLI's [evaluate --json] (and the shared story with
    [Sosae.validation_to_json]). *)

val json_of_inconsistency : Verdict.inconsistency -> Jsonlight.t

val json_of_scenario_result : Verdict.scenario_result -> Jsonlight.t

val json_of_set_result : Engine.set_result -> Jsonlight.t

val scenario_result_to_json : Verdict.scenario_result -> string

val set_result_to_json : Engine.set_result -> string

val trace_to_dot :
  Adl.Structure.t -> Verdict.trace_result -> string
(** Graphviz DOT of the architecture with the trace's hop paths (and the
    components of failing steps) highlighted — a textual Fig. 4. *)
