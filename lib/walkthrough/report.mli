(** Rendering of walkthrough results, in the numbered-step style of the
    paper's Fig. 4 (failing hops are marked with [??]). *)

val pp_trace : Format.formatter -> Verdict.trace_result -> unit

val pp_scenario_result : Format.formatter -> Verdict.scenario_result -> unit

val pp_set_result : Format.formatter -> Engine.set_result -> unit

val scenario_result_to_string : Verdict.scenario_result -> string

val set_result_to_string : Engine.set_result -> string

val summary_line : Verdict.scenario_result -> string
(** e.g. ["create-portfolio: CONSISTENT (1 trace)"]. *)

val trace_to_dot :
  Adl.Structure.t -> Verdict.trace_result -> string
(** Graphviz DOT of the architecture with the trace's hop paths (and the
    components of failing steps) highlighted — a textual Fig. 4. *)
