type inconsistency =
  | Unmapped_event_type of { step : int; event_type : string }
  | Unmapped_simple_event of { step : int; event : string }
  | Missing_link of {
      step : int;
      from_components : string list;
      to_components : string list;
    }
  | Constraint_violation of Styles.Rule.violation
  | Negative_scenario_executes of { scenario : string; trace_index : int }

type hop = { hop_from : string; hop_to : string; via : string list }

type step_result = {
  index : int;
  text : string;
  event_type : string option;
  components : string list;
  hop : hop option;
  step_problems : inconsistency list;
}

type trace_result = { trace_index : int; steps : step_result list; walked : bool }

type verdict = Consistent | Inconsistent

type scenario_result = {
  scenario_id : string;
  scenario_name : string;
  negative : bool;
  traces : trace_result list;
  truncated : bool;
  verdict : verdict;
  inconsistencies : inconsistency list;
}

let pp_inconsistency ppf = function
  | Unmapped_event_type { step; event_type } ->
      Format.fprintf ppf "step %d: event type %S maps to no component" step event_type
  | Unmapped_simple_event { step; event } ->
      Format.fprintf ppf "step %d: simple event %S cannot be placed on the architecture" step
        event
  | Missing_link { step; from_components; to_components } ->
      Format.fprintf ppf "step %d: no communication path from {%s} to {%s}" step
        (String.concat ", " from_components)
        (String.concat ", " to_components)
  | Constraint_violation v -> Format.fprintf ppf "constraint: %a" Styles.Rule.pp_violation v
  | Negative_scenario_executes { scenario; trace_index } ->
      Format.fprintf ppf "negative scenario %S executes successfully (trace %d)" scenario
        trace_index

let inconsistency_to_string i = Format.asprintf "%a" pp_inconsistency i

let is_consistent r = match r.verdict with Consistent -> true | Inconsistent -> false
