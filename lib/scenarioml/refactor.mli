(** Scenario-side refactorings that keep a scenario set synchronized
    with ontology evolution ({!Ontology.Evolve}) — "requirements can
    evolve while the pre-established mapping assists developers"
    (paper §7). The set's embedded ontology is not modified here; apply
    the corresponding [Ontology.Evolve] op and rebuild the set. *)

val rename_event_type : old_id:string -> new_id:string -> Scen.set -> Scen.set
(** Every [typedEvent] referencing [old_id] now references [new_id]. *)

val rename_individual : old_id:string -> new_id:string -> Scen.set -> Scen.set
(** Every individual argument and actor reference follows. *)

val rename_scenario : old_id:string -> new_id:string -> Scen.set -> Scen.set
(** The scenario's id and every episode referencing it follow. *)

val with_ontology : Ontology.Types.t -> Scen.set -> Scen.set
(** Replace the set's embedded ontology (after applying evolution ops to
    it). *)
