(** Linearization of a scenario into primitive traces.

    The walkthrough engine (paper §3.5) walks "the sequence of the events
    in the scenario". Structured events induce several possible
    sequences: alternations contribute one trace per branch, optional
    events two, iterations are unrolled a configurable number of times,
    any-order compounds contribute every permutation, and episodes are
    expanded in place (cyclic episode references are cut). Linearization
    enumerates these sequences as traces of primitive (simple or typed)
    events. *)

type step = {
  step_event : Event.t;  (** always [Simple] or [Typed] *)
  step_scenario : string;  (** scenario the step originates from (episodes) *)
}

type trace = step list

type config = {
  iteration_unroll : int;  (** unrollings for [Zero_or_more]/[One_or_more] *)
  max_traces : int;  (** enumeration cap; [truncated] is set when hit *)
}

val default_config : config
(** [iteration_unroll = 1], [max_traces = 256]. *)

type result = { traces : trace list; truncated : bool }

val scenario : ?config:config -> Scen.set -> Scen.t -> result
(** All traces of a scenario. On a scenario with no structured events
    this is a single trace with its events in order. *)

val first_trace : Scen.set -> Scen.t -> trace
(** The first trace (alternations take their first branch, optionals are
    included, iterations unrolled once). *)

val render_trace : Ontology.Types.t -> trace -> string list
(** One line of text per step. *)
