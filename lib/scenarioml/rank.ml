type score = {
  scenario : string;
  distinct_event_types : int;
  marginal_event_types : int;
  structured_events : int;
  negative : bool;
  total : float;
}

let distinct_types s = List.sort_uniq String.compare (Scen.typed_event_types s)

let structured_count s =
  let count acc e =
    match e with
    | Event.Alternation _ | Event.Iteration _ | Event.Optional _ | Event.Episode _ ->
        acc + 1
    | Event.Simple _ | Event.Typed _ | Event.Compound _ -> acc
  in
  List.fold_left (fun acc e -> Event.fold count acc e) 0 s.Scen.events

let score_of ~covered s =
  let types = distinct_types s in
  let marginal =
    List.length (List.filter (fun t -> not (List.exists (String.equal t) covered)) types)
  in
  let structured = structured_count s in
  let negative = Scen.is_negative s in
  {
    scenario = s.Scen.scenario_id;
    distinct_event_types = List.length types;
    marginal_event_types = marginal;
    structured_events = structured;
    negative;
    total =
      (3.0 *. float_of_int marginal)
      +. float_of_int (List.length types)
      +. (0.5 *. float_of_int structured)
      +. (if negative then 1.0 else 0.0);
  }

let rank set =
  let rec loop covered remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        let scored = List.map (fun s -> (s, score_of ~covered s)) remaining in
        let better (s1, sc1) (s2, sc2) =
          if sc1.total <> sc2.total then compare sc2.total sc1.total
          else if sc1.distinct_event_types <> sc2.distinct_event_types then
            compare sc2.distinct_event_types sc1.distinct_event_types
          else if sc1.negative <> sc2.negative then compare sc2.negative sc1.negative
          else String.compare s1.Scen.scenario_id s2.Scen.scenario_id
        in
        (match List.sort better scored with
        | (best, best_score) :: _ ->
            let covered =
              List.fold_left
                (fun acc t -> if List.exists (String.equal t) acc then acc else t :: acc)
                covered (distinct_types best)
            in
            let remaining =
              List.filter
                (fun s -> not (String.equal s.Scen.scenario_id best.Scen.scenario_id))
                remaining
            in
            loop covered remaining (best_score :: acc)
        | [] -> List.rev acc)
  in
  loop [] set.Scen.scenarios []

let cover set n =
  List.filteri (fun i _ -> i < n) (rank set) |> List.map (fun sc -> sc.scenario)

let pp_score ppf sc =
  Format.fprintf ppf "%-28s total %5.1f (marginal %d, distinct %d, structured %d%s)"
    sc.scenario sc.total sc.marginal_event_types sc.distinct_event_types
    sc.structured_events
    (if sc.negative then ", negative" else "")
