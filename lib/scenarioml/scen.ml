type kind = Positive | Negative

type t = {
  scenario_id : string;
  scenario_name : string;
  description : string;
  kind : kind;
  actors : string list;
  events : Event.t list;
}

type set = {
  set_id : string;
  set_name : string;
  ontology : Ontology.Types.t;
  scenarios : t list;
}

let scenario ?(description = "") ?(kind = Positive) ?(actors = []) ~id ~name events =
  { scenario_id = id; scenario_name = name; description; kind; actors; events }

let make_set ~id ~name ontology scenarios =
  { set_id = id; set_name = name; ontology; scenarios }

let find set id = List.find_opt (fun s -> String.equal s.scenario_id id) set.scenarios

let find_exn set id = match find set id with Some s -> s | None -> raise Not_found

let event_count t = List.fold_left (fun acc e -> acc + Event.size e) 0 t.events

let typed_event_types t = List.concat_map Event.typed_event_types t.events

let episodes t =
  let collect acc e =
    match e with
    | Event.Episode { scenario; _ } -> scenario :: acc
    | Event.Simple _ | Event.Typed _ | Event.Compound _ | Event.Alternation _
    | Event.Iteration _ | Event.Optional _ ->
        acc
  in
  List.rev (List.fold_left (fun acc e -> Event.fold collect acc e) [] t.events)

let is_negative t = match t.kind with Negative -> true | Positive -> false
