(** Relationships between scenarios (after Alspaugh's "Relationships
    between scenarios", the ScenarioML foundation the paper builds on).

    Supported relationships:
    - *specializes*: scenario A specializes B when A's traces pair up
      with B's traces of the same length, each of A's typed events
      instantiating the same or a subtype of B's event type at that
      position (simple events must match textually);
    - *shares events*: the event types two scenarios have in common;
    - *episode dependency*: A uses B as an episode. *)

val specializes :
  ?config:Linearize.config -> Scen.set -> sub:Scen.t -> super:Scen.t -> bool
(** Every trace of [sub] specializes some trace of [super]; [sub]'s
    trace set must be non-empty. *)

val shared_event_types : Scen.t -> Scen.t -> string list
(** Sorted, without duplicates. *)

type relation =
  | Specializes of { sub : string; super : string }
  | Shares of { left : string; right : string; event_types : string list }
  | Uses_episode of { scenario : string; episode : string }

val analyze : ?config:Linearize.config -> Scen.set -> relation list
(** All pairwise relationships in the set: episode uses, proper
    specializations (excluding identical ids), and sharing pairs with at
    least one common event type (each unordered pair reported once). *)

val pp_relation : Format.formatter -> relation -> unit
