(** Scenarios and scenario sets.

    A scenario is a named temporal pattern of events with declared
    actors. Scenarios may be [Positive] (the behaviour must be
    supported) or [Negative] (an undesirable behaviour: the architecture
    is inconsistent if the scenario *can* execute — paper §3.5). A
    scenario set groups the scenarios of a system together with the
    ontology they are written against. *)

type kind = Positive | Negative

type t = {
  scenario_id : string;
  scenario_name : string;
  description : string;
  kind : kind;
  actors : string list;  (** ids of ontology classes or individuals *)
  events : Event.t list;  (** top level is a sequence *)
}

type set = {
  set_id : string;
  set_name : string;
  ontology : Ontology.Types.t;
  scenarios : t list;
}

val scenario :
  ?description:string ->
  ?kind:kind ->
  ?actors:string list ->
  id:string ->
  name:string ->
  Event.t list ->
  t

val make_set : id:string -> name:string -> Ontology.Types.t -> t list -> set

val find : set -> string -> t option

val find_exn : set -> string -> t
(** @raise Not_found if no scenario has the id. *)

val event_count : t -> int
(** Total event nodes across the scenario's top-level events. *)

val typed_event_types : t -> string list
(** All event-type references in the scenario, with duplicates. *)

val episodes : t -> string list
(** Ids of scenarios referenced as episodes, with duplicates. *)

val is_negative : t -> bool
