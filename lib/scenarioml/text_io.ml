exception Prose_error of string

let slug name =
  let buf = Buffer.create (String.length name) in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then Buffer.add_char buf c
      else if c >= 'A' && c <= 'Z' then Buffer.add_char buf (Char.lowercase_ascii c)
      else if c = ' ' || c = '-' || c = '_' then Buffer.add_char buf '-')
    name;
  match Buffer.contents buf with "" -> "scenario" | s -> s

(* Strip a leading event number: "(1)", "1.", "1)", "(4.a.1)", "4.a.1.".
   Returns the remaining text, or None when the line is not numbered. *)
let strip_number line =
  let n = String.length line in
  let is_number_char c =
    (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') || c = '.'
  in
  let rest_from i =
    let rec skip i = if i < n && line.[i] = ' ' then skip (i + 1) else i in
    String.sub line (skip i) (n - skip i)
  in
  if n = 0 then None
  else if line.[0] = '(' then
    match String.index_opt line ')' with
    | Some close when close > 1 ->
        let label = String.sub line 1 (close - 1) in
        if String.for_all is_number_char label && String.exists (fun c -> c >= '0' && c <= '9') label
        then Some (rest_from (close + 1))
        else None
    | Some _ | None -> None
  else if line.[0] >= '0' && line.[0] <= '9' then begin
    (* consume number chars, then an optional '.' or ')' *)
    let rec scan i = if i < n && is_number_char line.[i] then scan (i + 1) else i in
    let stop = scan 0 in
    if stop < n && line.[stop] = ')' then Some (rest_from (stop + 1))
    else if stop > 0 && line.[stop - 1] = '.' then Some (rest_from stop)
    else if stop < n && line.[stop] = ' ' then Some (rest_from stop)
    else None
  end
  else None

let of_prose ?id input =
  let lines = String.split_on_char '\n' input in
  let name = ref "" in
  let kind = ref Scen.Positive in
  let events = ref [] in
  let flush_continuation text =
    match !events with
    | [] -> ()
    | last :: rest -> events := (last ^ " " ^ text) :: rest
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" then ()
      else
        let lower = String.lowercase_ascii line in
        let header prefix =
          if
            String.length lower >= String.length prefix
            && String.sub lower 0 (String.length prefix) = prefix
          then
            Some
              (String.trim
                 (String.sub line (String.length prefix)
                    (String.length line - String.length prefix)))
          else None
        in
        match header "negative scenario:" with
        | Some n ->
            name := n;
            kind := Scen.Negative
        | None -> (
            match header "scenario:" with
            | Some n -> name := n
            | None -> (
                match strip_number line with
                | Some text -> events := text :: !events
                | None -> flush_continuation line)))
    lines;
  let events = List.rev !events in
  if events = [] then raise (Prose_error "no numbered events found");
  let scenario_name = if !name = "" then "Untitled scenario" else !name in
  let scenario_id = match id with Some i -> i | None -> slug scenario_name in
  Scen.scenario ~kind:!kind ~id:scenario_id ~name:scenario_name
    (List.mapi
       (fun i text ->
         Event.simple ~id:(Printf.sprintf "%s-e%d" scenario_id (i + 1)) text)
       events)

let to_prose ontology set s =
  let buf = Buffer.create 256 in
  let label = match s.Scen.kind with Scen.Negative -> "Negative scenario" | Scen.Positive -> "Scenario" in
  Buffer.add_string buf (Printf.sprintf "%s: %s\n" label s.Scen.scenario_name);
  let trace = Linearize.first_trace set s in
  List.iteri
    (fun i step ->
      let text = Event.render ontology step.Linearize.step_event in
      let period =
        if String.length text > 0 && text.[String.length text - 1] = '.' then "" else "."
      in
      Buffer.add_string buf (Printf.sprintf "(%d) %s%s\n" (i + 1) text period))
    trace;
  Buffer.contents buf
