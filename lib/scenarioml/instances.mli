(** Analysis of event-type instances across a scenario set.

    ScenarioML supports "explicit relationships among a parameterized
    event type's instances with different arguments" (paper §2); the
    paper's §8 proposes exploiting them for finer-grained mappings. This
    module collects every [typedEvent] instance, resolves its argument
    texts, and reports per-type argument profiles and pairwise instance
    relationships. *)

type instance = {
  scenario : string;
  event_id : string;
  event_type : string;
  args : (string * string) list;  (** parameter -> resolved text *)
}

val collect : Scen.set -> instance list
(** All typed-event instances across the set, scenario order. Argument
    values resolve individuals to their names and fresh individuals to
    their labels. *)

val by_event_type : Scen.set -> (string * instance list) list
(** Grouped by event type, types in first-occurrence order. *)

type relationship =
  | Identical_args  (** the reuse the paper's complexity argument counts *)
  | Differ_in of string list  (** parameters whose values differ *)

val relate : instance -> instance -> relationship option
(** [None] when the instances have different event types. *)

val argument_profile : Scen.set -> string -> (string * string list) list
(** For one event type: each parameter with its distinct argument values
    across all instances, in first-use order. The PIMS profile of
    [user-initiates]'s [function] parameter, for example, enumerates the
    system's 22 functionalities. *)

val duplication_ratio : Scen.set -> string -> float
(** instances / distinct argument vectors for one event type; 1.0 means
    every instance differs, higher means verbatim reuse. *)
