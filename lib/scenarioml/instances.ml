type instance = {
  scenario : string;
  event_id : string;
  event_type : string;
  args : (string * string) list;
}

let resolve ontology arg =
  let text =
    match arg.Event.arg_value with
    | Event.Literal s -> s
    | Event.Fresh { label; _ } -> label
    | Event.Individual id -> (
        match Ontology.Types.find_individual ontology id with
        | Some i -> i.Ontology.Types.ind_name
        | None -> id)
  in
  (arg.Event.arg_param, text)

let collect set =
  let ontology = set.Scen.ontology in
  List.concat_map
    (fun s ->
      let gather acc e =
        match e with
        | Event.Typed { id; event_type; args } ->
            {
              scenario = s.Scen.scenario_id;
              event_id = id;
              event_type;
              args = List.map (resolve ontology) args;
            }
            :: acc
        | Event.Simple _ | Event.Compound _ | Event.Alternation _ | Event.Iteration _
        | Event.Optional _ | Event.Episode _ ->
            acc
      in
      List.rev (List.fold_left (fun acc e -> Event.fold gather acc e) [] s.Scen.events))
    set.Scen.scenarios

let by_event_type set =
  let all = collect set in
  let order =
    List.fold_left
      (fun acc i ->
        if List.exists (String.equal i.event_type) acc then acc else acc @ [ i.event_type ])
      [] all
  in
  List.map
    (fun et -> (et, List.filter (fun i -> String.equal i.event_type et) all))
    order

type relationship = Identical_args | Differ_in of string list

let relate a b =
  if not (String.equal a.event_type b.event_type) then None
  else begin
    let params =
      List.fold_left
        (fun acc (p, _) -> if List.exists (String.equal p) acc then acc else acc @ [ p ])
        [] (a.args @ b.args)
    in
    let differing =
      List.filter
        (fun p -> List.assoc_opt p a.args <> List.assoc_opt p b.args)
        params
    in
    match differing with [] -> Some Identical_args | ps -> Some (Differ_in ps)
  end

let argument_profile set event_type =
  let mine =
    List.filter (fun i -> String.equal i.event_type event_type) (collect set)
  in
  let params =
    List.fold_left
      (fun acc i ->
        List.fold_left
          (fun acc (p, _) -> if List.exists (String.equal p) acc then acc else acc @ [ p ])
          acc i.args)
      [] mine
  in
  List.map
    (fun p ->
      let values =
        List.fold_left
          (fun acc i ->
            match List.assoc_opt p i.args with
            | Some v when not (List.exists (String.equal v) acc) -> acc @ [ v ]
            | Some _ | None -> acc)
          [] mine
      in
      (p, values))
    params

let duplication_ratio set event_type =
  let mine =
    List.filter (fun i -> String.equal i.event_type event_type) (collect set)
  in
  match mine with
  | [] -> 1.0
  | _ ->
      let distinct =
        List.length
          (List.sort_uniq compare (List.map (fun i -> List.sort compare i.args) mine))
      in
      float_of_int (List.length mine) /. float_of_int distinct
