(** Prose scenarios — the form stakeholders write and the paper prints.

    [of_prose] turns a numbered natural-language scenario (the format of
    the paper's §4.1 use-case listings) into a ScenarioML scenario of
    simple events; structuring and typing the events against an ontology
    is then an (assisted) authoring step. [to_prose] renders any
    scenario back as numbered prose via its first trace.

    Accepted input:
    {v
    Scenario: Create portfolio
    (1) User initiates the "create portfolio" functionality.
    (2) System asks the user for the portfolio name.
    3. User enters the portfolio name.
    4) An empty portfolio is created.
    v}
    A leading [Scenario: NAME] (or [Negative scenario: NAME]) line is
    optional; numbering may be [(1)], [1.], [1)], or hierarchical
    ([4.a.1]); unnumbered non-blank lines continue the previous event. *)

exception Prose_error of string

val of_prose : ?id:string -> string -> Scen.t
(** [id] defaults to a slug of the scenario name.
    @raise Prose_error when no events can be extracted. *)

val to_prose : Ontology.Types.t -> Scen.set -> Scen.t -> string
(** Numbered prose of the scenario's first trace. *)
