let rec pp_event_at ontology depth ppf e =
  let pad = String.make (2 * depth) ' ' in
  match e with
  | Event.Simple { id; text } -> Format.fprintf ppf "%s[%s] %s" pad id text
  | Event.Typed { id; event_type; _ } ->
      Format.fprintf ppf "%s[%s] %s  (typedEvent %s)" pad id
        (Event.render ontology e) event_type
  | Event.Compound { id; pattern; body } ->
      let order =
        match pattern with Event.Sequence -> "sequence" | Event.Any_order -> "any order"
      in
      Format.fprintf ppf "%s[%s] compound (%s):" pad id order;
      List.iter (fun c -> Format.fprintf ppf "@,%a" (pp_event_at ontology (depth + 1)) c) body
  | Event.Alternation { id; branches } ->
      Format.fprintf ppf "%s[%s] alternation:" pad id;
      List.iteri
        (fun i body ->
          Format.fprintf ppf "@,%s  branch %d:" pad (i + 1);
          List.iter
            (fun c -> Format.fprintf ppf "@,%a" (pp_event_at ontology (depth + 2)) c)
            body)
        branches
  | Event.Iteration { id; bound; body } ->
      let how =
        match bound with
        | Event.Zero_or_more -> "zero or more"
        | Event.One_or_more -> "one or more"
        | Event.Exactly n -> string_of_int n
      in
      Format.fprintf ppf "%s[%s] iteration (%s):" pad id how;
      List.iter (fun c -> Format.fprintf ppf "@,%a" (pp_event_at ontology (depth + 1)) c) body
  | Event.Optional { id; body } ->
      Format.fprintf ppf "%s[%s] optional:" pad id;
      List.iter (fun c -> Format.fprintf ppf "@,%a" (pp_event_at ontology (depth + 1)) c) body
  | Event.Episode { id; scenario } ->
      Format.fprintf ppf "%s[%s] episode of %s" pad id scenario

let pp_event ontology ppf e = pp_event_at ontology 0 ppf e

let pp_scenario ontology ppf s =
  let kind = match s.Scen.kind with Scen.Positive -> "" | Scen.Negative -> " (negative)" in
  Format.fprintf ppf "@[<v>Scenario %s: %s%s@," s.Scen.scenario_id s.Scen.scenario_name kind;
  if s.Scen.description <> "" then Format.fprintf ppf "  %s@," s.Scen.description;
  if s.Scen.actors <> [] then
    Format.fprintf ppf "  actors: %s@," (String.concat ", " s.Scen.actors);
  List.iteri
    (fun i e ->
      Format.fprintf ppf "  (%d) @[<v>%a@]@," (i + 1) (pp_event_at ontology 0) e)
    s.Scen.events;
  Format.fprintf ppf "@]"

let pp_set ppf set =
  Format.fprintf ppf "@[<v>Scenario set %s: %s@,@," set.Scen.set_id set.Scen.set_name;
  Format.fprintf ppf "%a@,@," Ontology.Pretty.pp set.Scen.ontology;
  List.iter
    (fun s -> Format.fprintf ppf "%a@," (pp_scenario set.Scen.ontology) s)
    set.Scen.scenarios;
  Format.fprintf ppf "@]"

let scenario_to_string ontology s = Format.asprintf "%a" (pp_scenario ontology) s

let set_to_string set = Format.asprintf "%a" pp_set set
