(** Validation of scenarios and scenario sets against their ontology. *)

type problem =
  | Duplicate_scenario_id of string
  | Duplicate_event_id of { scenario : string; event : string }
  | Unknown_event_type of { scenario : string; event : string; event_type : string }
  | Unknown_param of { scenario : string; event : string; param : string }
  | Missing_arg of { scenario : string; event : string; param : string }
  | Unknown_individual of { scenario : string; event : string; individual : string }
  | Arg_class_mismatch of {
      scenario : string;
      event : string;
      param : string;
      expected : string;  (** class required by the parameter *)
      actual : string;  (** class of the supplied individual *)
    }
  | Unknown_actor of { scenario : string; actor : string }
  | Unknown_episode of { scenario : string; event : string; episode : string }
  | Episode_cycle of string list  (** scenario ids on the cycle *)
  | Bad_iteration_count of { scenario : string; event : string; count : int }
  | Empty_alternation of { scenario : string; event : string }

val pp_problem : Format.formatter -> problem -> unit

val problem_to_string : problem -> string

val check_scenario : Scen.set -> Scen.t -> problem list
(** Problems local to one scenario (episode cycle detection is global and
    reported by {!check} only). *)

val check : Scen.set -> problem list
(** All problems across the set, including episode cycles, in a
    deterministic order. *)

val is_valid : Scen.set -> bool
