(** ScenarioML XML reading and writing for scenarios and scenario sets.

    Concrete syntax (paper vocabulary):
    {v
    <scenarioSet id name>
      <ontology .../>            (see Ontology.Xml_io)
      <scenario id name kind="positive|negative">
        <description>...</description>
        <actor ref="..."/>*
        <events> EVENT* </events>
      </scenario>*
    </scenarioSet>
    v}
    where EVENT is one of [<event id>text</event>],
    [<typedEvent id type> <arg param ref|value/>* </typedEvent>],
    [<compound id order="sequence|any">EVENT*</compound>],
    [<alternation id> <branch>EVENT*</branch>* </alternation>],
    [<iteration id bound="zeroOrMore|oneOrMore|N">EVENT*</iteration>],
    [<optional id>EVENT*</optional>], and
    [<episode id scenario="..."/>]. *)

exception Malformed of string

val event_to_element : Event.t -> Xmlight.Doc.element

val event_of_element : Xmlight.Doc.element -> Event.t
(** @raise Malformed on schema errors. *)

val scenario_to_element : Scen.t -> Xmlight.Doc.element

val scenario_of_element : Xmlight.Doc.element -> Scen.t

val set_to_element : Scen.set -> Xmlight.Doc.element

val set_of_element : Xmlight.Doc.element -> Scen.set

val set_to_string : Scen.set -> string

val set_of_string : string -> Scen.set
(** @raise Malformed on XML or schema errors. *)
