(** Human-readable rendering of scenarios (used by the figure
    reproductions and the CLI). *)

val pp_event : Ontology.Types.t -> Format.formatter -> Event.t -> unit
(** Numbered, indented rendering of an event tree. *)

val pp_scenario : Ontology.Types.t -> Format.formatter -> Scen.t -> unit

val pp_set : Format.formatter -> Scen.set -> unit

val scenario_to_string : Ontology.Types.t -> Scen.t -> string

val set_to_string : Scen.set -> string
