type event_kind_counts = {
  simple : int;
  typed : int;
  compound : int;
  alternation : int;
  iteration : int;
  optional : int;
  episode : int;
}

type t = {
  scenario_count : int;
  negative_count : int;
  event_nodes : int;
  kinds : event_kind_counts;
  typed_occurrences : int;
  distinct_event_types_used : int;
  usage : (string * int) list;
  reuse_factor : float;
}

let zero_kinds =
  { simple = 0; typed = 0; compound = 0; alternation = 0; iteration = 0; optional = 0; episode = 0 }

let count_kind k e =
  match e with
  | Event.Simple _ -> { k with simple = k.simple + 1 }
  | Event.Typed _ -> { k with typed = k.typed + 1 }
  | Event.Compound _ -> { k with compound = k.compound + 1 }
  | Event.Alternation _ -> { k with alternation = k.alternation + 1 }
  | Event.Iteration _ -> { k with iteration = k.iteration + 1 }
  | Event.Optional _ -> { k with optional = k.optional + 1 }
  | Event.Episode _ -> { k with episode = k.episode + 1 }

let of_set set =
  let scenarios = set.Scen.scenarios in
  let kinds =
    List.fold_left
      (fun acc s ->
        List.fold_left (fun acc e -> Event.fold count_kind acc e) acc s.Scen.events)
      zero_kinds scenarios
  in
  let occurrences = List.concat_map Scen.typed_event_types scenarios in
  let table = Hashtbl.create 16 in
  List.iter
    (fun et ->
      let n = match Hashtbl.find_opt table et with Some n -> n | None -> 0 in
      Hashtbl.replace table et (n + 1))
    occurrences;
  let usage =
    Hashtbl.fold (fun et n acc -> (et, n) :: acc) table []
    |> List.sort (fun (a, na) (b, nb) ->
           if na <> nb then compare nb na else String.compare a b)
  in
  let typed_occurrences = List.length occurrences in
  let distinct = List.length usage in
  {
    scenario_count = List.length scenarios;
    negative_count = List.length (List.filter Scen.is_negative scenarios);
    event_nodes = List.fold_left (fun acc s -> acc + Scen.event_count s) 0 scenarios;
    kinds;
    typed_occurrences;
    distinct_event_types_used = distinct;
    usage;
    reuse_factor =
      (if distinct = 0 then 1.0 else float_of_int typed_occurrences /. float_of_int distinct);
  }

let unused_event_types set =
  let used = List.concat_map Scen.typed_event_types set.Scen.scenarios in
  List.filter_map
    (fun et ->
      let id = et.Ontology.Types.event_id in
      if List.exists (String.equal id) used then None else Some id)
    set.Scen.ontology.Ontology.Types.event_types

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d scenarios (%d negative), %d event nodes@,\
     kinds: %d simple, %d typed, %d compound, %d alternation, %d iteration, %d optional, %d \
     episode@,\
     typed occurrences: %d over %d distinct event types (reuse factor %.2f)@]"
    t.scenario_count t.negative_count t.event_nodes t.kinds.simple t.kinds.typed
    t.kinds.compound t.kinds.alternation t.kinds.iteration t.kinds.optional t.kinds.episode
    t.typed_occurrences t.distinct_event_types_used t.reuse_factor
