let step_specializes ontology sub_step super_step =
  match
    (sub_step.Linearize.step_event, super_step.Linearize.step_event)
  with
  | Event.Typed { event_type = sub_type; _ }, Event.Typed { event_type = super_type; _ } ->
      Ontology.Subsume.event_subsumes ontology ~super:super_type ~sub:sub_type
  | Event.Simple { text = a; _ }, Event.Simple { text = b; _ } -> String.equal a b
  | ( ( Event.Simple _ | Event.Typed _ | Event.Compound _ | Event.Alternation _
      | Event.Iteration _ | Event.Optional _ | Event.Episode _ ),
      _ ) ->
      false

let trace_specializes ontology sub_trace super_trace =
  List.length sub_trace = List.length super_trace
  && List.for_all2 (step_specializes ontology) sub_trace super_trace

let specializes ?(config = Linearize.default_config) set ~sub ~super =
  let ontology = set.Scen.ontology in
  let sub_traces = (Linearize.scenario ~config set sub).Linearize.traces in
  let super_traces = (Linearize.scenario ~config set super).Linearize.traces in
  sub_traces <> []
  && List.for_all
       (fun st ->
         List.exists (fun sup -> trace_specializes ontology st sup) super_traces)
       sub_traces

let shared_event_types a b =
  let ta = List.sort_uniq String.compare (Scen.typed_event_types a) in
  let tb = List.sort_uniq String.compare (Scen.typed_event_types b) in
  List.filter (fun t -> List.exists (String.equal t) tb) ta

type relation =
  | Specializes of { sub : string; super : string }
  | Shares of { left : string; right : string; event_types : string list }
  | Uses_episode of { scenario : string; episode : string }

let analyze ?config set =
  let scenarios = set.Scen.scenarios in
  let episodes =
    List.concat_map
      (fun s ->
        List.map
          (fun ep -> Uses_episode { scenario = s.Scen.scenario_id; episode = ep })
          (List.sort_uniq String.compare (Scen.episodes s)))
      scenarios
  in
  let pairs =
    List.concat_map
      (fun a ->
        List.filter_map
          (fun b ->
            if String.compare a.Scen.scenario_id b.Scen.scenario_id < 0 then Some (a, b)
            else None)
          scenarios)
      scenarios
  in
  let specializations =
    List.concat_map
      (fun (a, b) ->
        let ab =
          if specializes ?config set ~sub:a ~super:b then
            [ Specializes { sub = a.Scen.scenario_id; super = b.Scen.scenario_id } ]
          else []
        in
        let ba =
          if specializes ?config set ~sub:b ~super:a then
            [ Specializes { sub = b.Scen.scenario_id; super = a.Scen.scenario_id } ]
          else []
        in
        ab @ ba)
      pairs
  in
  let sharing =
    List.filter_map
      (fun (a, b) ->
        match shared_event_types a b with
        | [] -> None
        | event_types ->
            Some
              (Shares
                 { left = a.Scen.scenario_id; right = b.Scen.scenario_id; event_types }))
      pairs
  in
  episodes @ specializations @ sharing

let pp_relation ppf = function
  | Specializes { sub; super } -> Format.fprintf ppf "%s specializes %s" sub super
  | Shares { left; right; event_types } ->
      Format.fprintf ppf "%s and %s share {%s}" left right (String.concat ", " event_types)
  | Uses_episode { scenario; episode } ->
      Format.fprintf ppf "%s uses %s as an episode" scenario episode
