type arg = { arg_param : string; arg_value : value }

and value =
  | Individual of string
  | Literal of string
  | Fresh of { label : string; cls : string }

type temporal = Sequence | Any_order

type iteration_bound = Zero_or_more | One_or_more | Exactly of int

type t =
  | Simple of { id : string; text : string }
  | Typed of { id : string; event_type : string; args : arg list }
  | Compound of { id : string; pattern : temporal; body : t list }
  | Alternation of { id : string; branches : t list list }
  | Iteration of { id : string; bound : iteration_bound; body : t list }
  | Optional of { id : string; body : t list }
  | Episode of { id : string; scenario : string }

let id = function
  | Simple { id; _ }
  | Typed { id; _ }
  | Compound { id; _ }
  | Alternation { id; _ }
  | Iteration { id; _ }
  | Optional { id; _ }
  | Episode { id; _ } ->
      id

let individual ~param v = { arg_param = param; arg_value = Individual v }

let literal ~param v = { arg_param = param; arg_value = Literal v }

let fresh ~param ~label ~cls = { arg_param = param; arg_value = Fresh { label; cls } }

let simple ~id text = Simple { id; text }

let typed ~id ~event_type args = Typed { id; event_type; args }

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Simple _ | Typed _ | Episode _ -> acc
  | Compound { body; _ } | Iteration { body; _ } | Optional { body; _ } ->
      List.fold_left (fold f) acc body
  | Alternation { branches; _ } ->
      List.fold_left (fun acc branch -> List.fold_left (fold f) acc branch) acc branches

let all_ids e = List.rev (fold (fun acc e -> id e :: acc) [] e)

let typed_event_types e =
  List.rev
    (fold
       (fun acc e ->
         match e with
         | Typed { event_type; _ } -> event_type :: acc
         | Simple _ | Compound _ | Alternation _ | Iteration _ | Optional _ | Episode _ -> acc)
       [] e)

let size e = fold (fun acc _ -> acc + 1) 0 e

let rec depth = function
  | Simple _ | Typed _ | Episode _ -> 1
  | Compound { body; _ } | Iteration { body; _ } | Optional { body; _ } -> 1 + depth_of_list body
  | Alternation { branches; _ } ->
      1 + List.fold_left (fun acc b -> max acc (depth_of_list b)) 0 branches

and depth_of_list body = List.fold_left (fun acc e -> max acc (depth e)) 0 body

let arg_text ontology arg =
  match arg.arg_value with
  | Literal s -> s
  | Fresh { label; _ } -> label
  | Individual ind_id -> (
      match Ontology.Types.find_individual ontology ind_id with
      | Some i -> i.Ontology.Types.ind_name
      | None -> ind_id)

let rec render ontology e =
  match e with
  | Simple { text; _ } -> text
  | Typed { event_type; args; _ } -> (
      match Ontology.Types.find_event_type ontology event_type with
      | Some et ->
          let bindings = List.map (fun a -> (a.arg_param, arg_text ontology a)) args in
          Ontology.Types.expand_template et bindings
      | None -> Printf.sprintf "<unresolved event type %s>" event_type)
  | Compound { pattern; body; _ } ->
      let sep = match pattern with Sequence -> "; then " | Any_order -> " and (in any order) " in
      String.concat sep (List.map (render ontology) body)
  | Alternation { branches; _ } ->
      let branch body = String.concat "; then " (List.map (render ontology) body) in
      "either " ^ String.concat " or " (List.map branch branches)
  | Iteration { bound; body; _ } ->
      let how =
        match bound with
        | Zero_or_more -> "zero or more times"
        | One_or_more -> "one or more times"
        | Exactly n -> Printf.sprintf "%d times" n
      in
      Printf.sprintf "repeat %s: %s" how
        (String.concat "; then " (List.map (render ontology) body))
  | Optional { body; _ } ->
      Printf.sprintf "optionally: %s"
        (String.concat "; then " (List.map (render ontology) body))
  | Episode { scenario; _ } -> Printf.sprintf "episode of scenario %s" scenario
