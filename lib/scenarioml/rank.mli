(** Scenario prioritization.

    "Our approach does not propose a method for ranking scenarios by
    importance, so that limited evaluation time can be focused on the
    most important ones" (paper §3.2) — this module supplies the missing
    heuristic: scenarios are scored by how much *new* evaluation
    coverage they buy. *)

type score = {
  scenario : string;
  distinct_event_types : int;  (** distinct event types the scenario uses *)
  marginal_event_types : int;
      (** event types not used by any higher-ranked scenario (computed
          greedily) *)
  structured_events : int;  (** alternations/iterations/options/episodes *)
  negative : bool;
  total : float;
}

val rank : Scen.set -> score list
(** Greedy ranking: repeatedly pick the scenario adding the most
    not-yet-covered event types (ties: more distinct event types, then
    negative scenarios first, then id order). [total] combines marginal
    coverage (weight 3), distinct usage (1), structure (0.5), and a
    negative-scenario bonus (1). *)

val cover : Scen.set -> int -> string list
(** The first [n] scenario ids of the ranking — a small suite whose
    union covers event types greedily. *)

val pp_score : Format.formatter -> score -> unit
