type problem =
  | Duplicate_scenario_id of string
  | Duplicate_event_id of { scenario : string; event : string }
  | Unknown_event_type of { scenario : string; event : string; event_type : string }
  | Unknown_param of { scenario : string; event : string; param : string }
  | Missing_arg of { scenario : string; event : string; param : string }
  | Unknown_individual of { scenario : string; event : string; individual : string }
  | Arg_class_mismatch of {
      scenario : string;
      event : string;
      param : string;
      expected : string;
      actual : string;
    }
  | Unknown_actor of { scenario : string; actor : string }
  | Unknown_episode of { scenario : string; event : string; episode : string }
  | Episode_cycle of string list
  | Bad_iteration_count of { scenario : string; event : string; count : int }
  | Empty_alternation of { scenario : string; event : string }

let pp_problem ppf = function
  | Duplicate_scenario_id id -> Format.fprintf ppf "duplicate scenario id %S" id
  | Duplicate_event_id { scenario; event } ->
      Format.fprintf ppf "scenario %S: duplicate event id %S" scenario event
  | Unknown_event_type { scenario; event; event_type } ->
      Format.fprintf ppf "scenario %S event %S: unknown event type %S" scenario event event_type
  | Unknown_param { scenario; event; param } ->
      Format.fprintf ppf "scenario %S event %S: argument for undeclared parameter %S" scenario
        event param
  | Missing_arg { scenario; event; param } ->
      Format.fprintf ppf "scenario %S event %S: no argument for parameter %S" scenario event
        param
  | Unknown_individual { scenario; event; individual } ->
      Format.fprintf ppf "scenario %S event %S: unknown individual %S" scenario event individual
  | Arg_class_mismatch { scenario; event; param; expected; actual } ->
      Format.fprintf ppf
        "scenario %S event %S: parameter %S expects class %S but the individual has class %S"
        scenario event param expected actual
  | Unknown_actor { scenario; actor } ->
      Format.fprintf ppf "scenario %S: unknown actor %S" scenario actor
  | Unknown_episode { scenario; event; episode } ->
      Format.fprintf ppf "scenario %S event %S: unknown episode scenario %S" scenario event
        episode
  | Episode_cycle ids ->
      Format.fprintf ppf "episode cycle: %s" (String.concat " -> " ids)
  | Bad_iteration_count { scenario; event; count } ->
      Format.fprintf ppf "scenario %S event %S: invalid iteration count %d" scenario event count
  | Empty_alternation { scenario; event } ->
      Format.fprintf ppf "scenario %S event %S: alternation with no branches" scenario event

let problem_to_string p = Format.asprintf "%a" pp_problem p

let check_typed_event ontology scenario eid event_type args =
  match Ontology.Types.find_event_type ontology event_type with
  | None -> [ Unknown_event_type { scenario; event = eid; event_type } ]
  | Some et ->
      let params = Ontology.Subsume.inherited_params ontology et in
      let declared p =
        List.exists (fun q -> String.equal q.Ontology.Types.param_name p) params
      in
      let supplied p =
        List.exists (fun a -> String.equal a.Event.arg_param p) args
      in
      let unknown_params =
        List.filter_map
          (fun a ->
            if declared a.Event.arg_param then None
            else Some (Unknown_param { scenario; event = eid; param = a.Event.arg_param }))
          args
      in
      let missing =
        List.filter_map
          (fun p ->
            if supplied p.Ontology.Types.param_name then None
            else Some (Missing_arg { scenario; event = eid; param = p.Ontology.Types.param_name }))
          params
      in
      let value_problems =
        List.concat_map
          (fun a ->
            match a.Event.arg_value with
            | Event.Literal _ -> []
            | Event.Fresh { label = _; cls } -> (
                if Ontology.Types.find_class ontology cls = None then
                  [ Unknown_individual { scenario; event = eid; individual = cls } ]
                else
                  match
                    List.find_opt
                      (fun p -> String.equal p.Ontology.Types.param_name a.Event.arg_param)
                      params
                  with
                  | None -> []
                  | Some p ->
                      let expected = p.Ontology.Types.param_class in
                      if Ontology.Subsume.class_subsumes ontology ~super:expected ~sub:cls
                      then []
                      else
                        [
                          Arg_class_mismatch
                            {
                              scenario;
                              event = eid;
                              param = a.Event.arg_param;
                              expected;
                              actual = cls;
                            };
                        ])
            | Event.Individual ind_id -> (
                match Ontology.Types.find_individual ontology ind_id with
                | None -> [ Unknown_individual { scenario; event = eid; individual = ind_id } ]
                | Some ind -> (
                    match
                      List.find_opt
                        (fun p -> String.equal p.Ontology.Types.param_name a.Event.arg_param)
                        params
                    with
                    | None -> []
                    | Some p ->
                        let expected = p.Ontology.Types.param_class in
                        let actual = ind.Ontology.Types.ind_class in
                        if Ontology.Subsume.class_subsumes ontology ~super:expected ~sub:actual
                        then []
                        else
                          [
                            Arg_class_mismatch
                              { scenario; event = eid; param = a.Event.arg_param; expected; actual };
                          ])))
          args
      in
      unknown_params @ missing @ value_problems

let check_scenario set s =
  let ontology = set.Scen.ontology in
  let sid = s.Scen.scenario_id in
  (* duplicate event ids *)
  let ids = List.concat_map Event.all_ids s.Scen.events in
  let seen = Hashtbl.create 16 in
  let dup_ids =
    List.filter_map
      (fun id ->
        if Hashtbl.mem seen id then Some (Duplicate_event_id { scenario = sid; event = id })
        else begin
          Hashtbl.add seen id ();
          None
        end)
      ids
  in
  let actor_problems =
    List.filter_map
      (fun actor ->
        if
          Ontology.Types.find_class ontology actor <> None
          || Ontology.Types.find_individual ontology actor <> None
        then None
        else Some (Unknown_actor { scenario = sid; actor }))
      s.Scen.actors
  in
  let per_event acc e =
    match e with
    | Event.Typed { id; event_type; args } ->
        acc @ check_typed_event ontology sid id event_type args
    | Event.Episode { id; scenario } ->
        if Scen.find set scenario = None then
          acc @ [ Unknown_episode { scenario = sid; event = id; episode = scenario } ]
        else acc
    | Event.Iteration { id; bound = Event.Exactly n; _ } when n < 0 ->
        acc @ [ Bad_iteration_count { scenario = sid; event = id; count = n } ]
    | Event.Alternation { id; branches } when branches = [] ->
        acc @ [ Empty_alternation { scenario = sid; event = id } ]
    | Event.Simple _ | Event.Compound _ | Event.Alternation _ | Event.Iteration _
    | Event.Optional _ ->
        acc
  in
  let event_problems =
    List.fold_left (fun acc e -> Event.fold per_event acc e) [] s.Scen.events
  in
  dup_ids @ actor_problems @ event_problems

let episode_cycles set =
  let deps s = Scen.episodes s in
  let rec walk visited sid =
    if List.exists (String.equal sid) visited then Some (List.rev (sid :: visited))
    else
      match Scen.find set sid with
      | None -> None
      | Some s ->
          let rec try_deps = function
            | [] -> None
            | d :: rest -> (
                match walk (sid :: visited) d with Some c -> Some c | None -> try_deps rest)
          in
          try_deps (deps s)
  in
  let cycles =
    List.filter_map (fun s -> walk [] s.Scen.scenario_id) set.Scen.scenarios
  in
  (* keep each cycle once: smallest id first on the path *)
  let canonical = function
    | first :: rest -> List.for_all (fun id -> String.compare first id <= 0) rest
    | [] -> false
  in
  List.filter_map
    (fun c -> if canonical c then Some (Episode_cycle c) else None)
    cycles

let check set =
  let seen = Hashtbl.create 16 in
  let dup_scenarios =
    List.filter_map
      (fun s ->
        let id = s.Scen.scenario_id in
        if Hashtbl.mem seen id then Some (Duplicate_scenario_id id)
        else begin
          Hashtbl.add seen id ();
          None
        end)
      set.Scen.scenarios
  in
  dup_scenarios
  @ List.concat_map (check_scenario set) set.Scen.scenarios
  @ episode_cycles set

let is_valid set = check set = []
