(** Statistics over scenario sets.

    The paper's central complexity argument (§1, §5) rests on event-type
    *reuse*: "the more extensive the reuse of the ontology definitions in
    the scenarios, the greater is the reduction in complexity". These
    statistics quantify reuse and feed the complexity benchmarks. *)

type event_kind_counts = {
  simple : int;
  typed : int;
  compound : int;
  alternation : int;
  iteration : int;
  optional : int;
  episode : int;
}

type t = {
  scenario_count : int;
  negative_count : int;
  event_nodes : int;  (** all event nodes across all scenarios *)
  kinds : event_kind_counts;
  typed_occurrences : int;  (** total [Typed] events *)
  distinct_event_types_used : int;
  usage : (string * int) list;
      (** per event type: occurrence count, sorted descending then by id *)
  reuse_factor : float;
      (** typed occurrences / distinct event types used; 1.0 = no reuse *)
}

val of_set : Scen.set -> t

val unused_event_types : Scen.set -> string list
(** Event types defined in the ontology but never instantiated by any
    scenario, in definition order. *)

val pp : Format.formatter -> t -> unit
