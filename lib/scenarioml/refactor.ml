let map_events f set =
  {
    set with
    Scen.scenarios =
      List.map
        (fun s -> { s with Scen.events = List.map f s.Scen.events })
        set.Scen.scenarios;
  }

let rec map_event f e =
  let e = f e in
  match e with
  | Event.Simple _ | Event.Typed _ | Event.Episode _ -> e
  | Event.Compound { id; pattern; body } ->
      Event.Compound { id; pattern; body = List.map (map_event f) body }
  | Event.Alternation { id; branches } ->
      Event.Alternation { id; branches = List.map (List.map (map_event f)) branches }
  | Event.Iteration { id; bound; body } ->
      Event.Iteration { id; bound; body = List.map (map_event f) body }
  | Event.Optional { id; body } ->
      Event.Optional { id; body = List.map (map_event f) body }

let rename_event_type ~old_id ~new_id set =
  let rename e =
    match e with
    | Event.Typed { id; event_type; args } when String.equal event_type old_id ->
        Event.Typed { id; event_type = new_id; args }
    | Event.Typed _ | Event.Simple _ | Event.Compound _ | Event.Alternation _
    | Event.Iteration _ | Event.Optional _ | Event.Episode _ ->
        e
  in
  map_events (map_event rename) set

let rename_individual ~old_id ~new_id set =
  let rename_arg a =
    match a.Event.arg_value with
    | Event.Individual id when String.equal id old_id ->
        { a with Event.arg_value = Event.Individual new_id }
    | Event.Individual _ | Event.Literal _ | Event.Fresh _ -> a
  in
  let rename e =
    match e with
    | Event.Typed { id; event_type; args } ->
        Event.Typed { id; event_type; args = List.map rename_arg args }
    | Event.Simple _ | Event.Compound _ | Event.Alternation _ | Event.Iteration _
    | Event.Optional _ | Event.Episode _ ->
        e
  in
  let set = map_events (map_event rename) set in
  {
    set with
    Scen.scenarios =
      List.map
        (fun s ->
          {
            s with
            Scen.actors =
              List.map (fun a -> if String.equal a old_id then new_id else a) s.Scen.actors;
          })
        set.Scen.scenarios;
  }

let rename_scenario ~old_id ~new_id set =
  let rename e =
    match e with
    | Event.Episode { id; scenario } when String.equal scenario old_id ->
        Event.Episode { id; scenario = new_id }
    | Event.Episode _ | Event.Simple _ | Event.Typed _ | Event.Compound _
    | Event.Alternation _ | Event.Iteration _ | Event.Optional _ ->
        e
  in
  let set = map_events (map_event rename) set in
  {
    set with
    Scen.scenarios =
      List.map
        (fun s ->
          if String.equal s.Scen.scenario_id old_id then
            { s with Scen.scenario_id = new_id }
          else s)
        set.Scen.scenarios;
  }

let with_ontology ontology set = { set with Scen.ontology }
