(** Assisted typing of prose events against an ontology.

    The paper's workflow starts from prose scenarios ("the scenarios
    will be described in the Scenario Workbench and automatically loaded
    in SOSAE", §8); turning each prose event into a [typedEvent] is an
    authoring step this module assists: given a natural-language event,
    rank the ontology's event types by template similarity and, where a
    template has a single placeholder, extract the argument text. *)

type suggestion = {
  event_type : string;
  score : float;  (** in [0, 1]; token overlap with the template *)
  bindings : (string * string) list;
      (** extracted arguments (single-placeholder templates only) *)
}

val for_text : ?limit:int -> Ontology.Types.t -> string -> suggestion list
(** Best-first suggestions (default limit 3); zero-score candidates are
    dropped. *)

val type_event : Ontology.Types.t -> Event.t -> Event.t
(** Replace a [Simple] event by a [Typed] one when the best suggestion
    scores at least 0.5 and binds every declared parameter (others are
    returned unchanged); structured events are left untouched. *)

val type_scenario : Ontology.Types.t -> Scen.t -> Scen.t
(** {!type_event} over every top-level event of the scenario. *)
