exception Malformed of string

let malformed fmt = Format.kasprintf (fun s -> raise (Malformed s)) fmt

let required e name =
  match Xmlight.Doc.attr e name with
  | Some v -> v
  | None -> malformed "<%s> is missing required attribute %S" e.Xmlight.Doc.tag name

let arg_to_element a =
  let value_attrs =
    match a.Event.arg_value with
    | Event.Individual id -> [ ("ref", id) ]
    | Event.Literal s -> [ ("value", s) ]
    | Event.Fresh { label; cls } -> [ ("new", label); ("type", cls) ]
  in
  Xmlight.Doc.elt ~attrs:(("param", a.Event.arg_param) :: value_attrs) "arg" []

let rec event_to_element e =
  match e with
  | Event.Simple { id; text } ->
      Xmlight.Doc.element ~attrs:[ ("id", id) ] "event" [ Xmlight.Doc.text text ]
  | Event.Typed { id; event_type; args } ->
      Xmlight.Doc.element
        ~attrs:[ ("id", id); ("type", event_type) ]
        "typedEvent" (List.map arg_to_element args)
  | Event.Compound { id; pattern; body } ->
      let order = match pattern with Event.Sequence -> "sequence" | Event.Any_order -> "any" in
      Xmlight.Doc.element
        ~attrs:[ ("id", id); ("order", order) ]
        "compound"
        (List.map (fun e -> Xmlight.Doc.Element (event_to_element e)) body)
  | Event.Alternation { id; branches } ->
      let branch body =
        Xmlight.Doc.elt "branch" (List.map (fun e -> Xmlight.Doc.Element (event_to_element e)) body)
      in
      Xmlight.Doc.element ~attrs:[ ("id", id) ] "alternation" (List.map branch branches)
  | Event.Iteration { id; bound; body } ->
      let bound_attr =
        match bound with
        | Event.Zero_or_more -> "zeroOrMore"
        | Event.One_or_more -> "oneOrMore"
        | Event.Exactly n -> string_of_int n
      in
      Xmlight.Doc.element
        ~attrs:[ ("id", id); ("bound", bound_attr) ]
        "iteration"
        (List.map (fun e -> Xmlight.Doc.Element (event_to_element e)) body)
  | Event.Optional { id; body } ->
      Xmlight.Doc.element ~attrs:[ ("id", id) ] "optional"
        (List.map (fun e -> Xmlight.Doc.Element (event_to_element e)) body)
  | Event.Episode { id; scenario } ->
      Xmlight.Doc.element ~attrs:[ ("id", id); ("scenario", scenario) ] "episode" []

let arg_of_element e =
  let param = required e "param" in
  match
    (Xmlight.Doc.attr e "ref", Xmlight.Doc.attr e "value", Xmlight.Doc.attr e "new")
  with
  | Some id, None, None -> Event.individual ~param id
  | None, Some v, None -> Event.literal ~param v
  | None, None, Some label -> Event.fresh ~param ~label ~cls:(required e "type")
  | None, None, None -> malformed "<arg param=%S> has neither ref, value nor new" param
  | _, _, _ -> malformed "<arg param=%S> mixes ref/value/new" param

let rec event_of_element e =
  let id = required e "id" in
  match e.Xmlight.Doc.tag with
  | "event" -> Event.Simple { id; text = Xmlight.Doc.child_text e }
  | "typedEvent" ->
      Event.Typed
        {
          id;
          event_type = required e "type";
          args = List.map arg_of_element (Xmlight.Doc.find_children e "arg");
        }
  | "compound" ->
      let pattern =
        match Xmlight.Doc.attr_default e "order" "sequence" with
        | "sequence" -> Event.Sequence
        | "any" -> Event.Any_order
        | other -> malformed "<compound id=%S>: unknown order %S" id other
      in
      Event.Compound { id; pattern; body = events_of e }
  | "alternation" ->
      let branches =
        List.map (fun b -> events_of b) (Xmlight.Doc.find_children e "branch")
      in
      Event.Alternation { id; branches }
  | "iteration" ->
      let bound =
        match required e "bound" with
        | "zeroOrMore" -> Event.Zero_or_more
        | "oneOrMore" -> Event.One_or_more
        | n -> (
            match int_of_string_opt n with
            | Some k -> Event.Exactly k
            | None -> malformed "<iteration id=%S>: bad bound %S" id n)
      in
      Event.Iteration { id; bound; body = events_of e }
  | "optional" -> Event.Optional { id; body = events_of e }
  | "episode" -> Event.Episode { id; scenario = required e "scenario" }
  | tag -> malformed "unknown event element <%s>" tag

and events_of e =
  List.filter_map
    (fun c ->
      match c.Xmlight.Doc.tag with
      | "event" | "typedEvent" | "compound" | "alternation" | "iteration" | "optional"
      | "episode" ->
          Some (event_of_element c)
      | _ -> None)
    (Xmlight.Doc.children_elements e)

let scenario_to_element s =
  let kind = match s.Scen.kind with Scen.Positive -> "positive" | Scen.Negative -> "negative" in
  let description =
    if s.Scen.description = "" then []
    else [ Xmlight.Doc.elt "description" [ Xmlight.Doc.text s.Scen.description ] ]
  in
  let actors =
    List.map (fun a -> Xmlight.Doc.elt ~attrs:[ ("ref", a) ] "actor" []) s.Scen.actors
  in
  let events =
    Xmlight.Doc.elt "events"
      (List.map (fun e -> Xmlight.Doc.Element (event_to_element e)) s.Scen.events)
  in
  Xmlight.Doc.element
    ~attrs:[ ("id", s.Scen.scenario_id); ("name", s.Scen.scenario_name); ("kind", kind) ]
    "scenario"
    (description @ actors @ [ events ])

let scenario_of_element e =
  if not (String.equal e.Xmlight.Doc.tag "scenario") then
    malformed "expected <scenario>, found <%s>" e.Xmlight.Doc.tag;
  let kind =
    match Xmlight.Doc.attr_default e "kind" "positive" with
    | "positive" -> Scen.Positive
    | "negative" -> Scen.Negative
    | other -> malformed "unknown scenario kind %S" other
  in
  let description =
    match Xmlight.Doc.find_child e "description" with
    | Some d -> Xmlight.Doc.child_text d
    | None -> ""
  in
  let actors =
    List.map (fun a -> required a "ref") (Xmlight.Doc.find_children e "actor")
  in
  let events =
    match Xmlight.Doc.find_child e "events" with
    | Some evs -> events_of evs
    | None -> malformed "<scenario id=%S> is missing <events>" (required e "id")
  in
  Scen.scenario ~description ~kind ~actors ~id:(required e "id") ~name:(required e "name")
    events

let set_to_element set =
  Xmlight.Doc.element
    ~attrs:[ ("id", set.Scen.set_id); ("name", set.Scen.set_name) ]
    "scenarioSet"
    (Xmlight.Doc.Element (Ontology.Xml_io.to_element set.Scen.ontology)
    :: List.map (fun s -> Xmlight.Doc.Element (scenario_to_element s)) set.Scen.scenarios)

let set_of_element e =
  if not (String.equal e.Xmlight.Doc.tag "scenarioSet") then
    malformed "expected <scenarioSet>, found <%s>" e.Xmlight.Doc.tag;
  let ontology =
    match Xmlight.Doc.find_child e "ontology" with
    | Some o -> (
        match Ontology.Xml_io.of_element o with
        | o -> o
        | exception Ontology.Xml_io.Malformed m -> malformed "in <ontology>: %s" m)
    | None -> malformed "<scenarioSet> is missing <ontology>"
  in
  Scen.make_set ~id:(required e "id") ~name:(required e "name") ontology
    (List.map scenario_of_element (Xmlight.Doc.find_children e "scenario"))

let set_to_string set = Xmlight.Print.to_string (Xmlight.Doc.doc (set_to_element set))

let set_of_string s =
  match Xmlight.Parse.parse s with
  | Ok doc -> set_of_element doc.Xmlight.Doc.root
  | Error e -> malformed "XML error: %s" (Xmlight.Parse.error_to_string e)
