type suggestion = {
  event_type : string;
  score : float;
  bindings : (string * string) list;
}

let tokenize text =
  let buf = Buffer.create 16 in
  let tokens = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      tokens := Buffer.contents buf :: !tokens;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') then Buffer.add_char buf c
      else if c >= 'A' && c <= 'Z' then Buffer.add_char buf (Char.lowercase_ascii c)
      else flush ())
    text;
  flush ();
  List.rev !tokens

(* Template tokens with placeholders removed. *)
let template_tokens template =
  let without_placeholders =
    (* drop {name} spans *)
    let buf = Buffer.create (String.length template) in
    let n = String.length template in
    let rec loop i =
      if i >= n then ()
      else if template.[i] = '{' then
        match String.index_from_opt template i '}' with
        | Some j ->
            Buffer.add_char buf ' ';
            loop (j + 1)
        | None -> Buffer.add_char buf ' '
      else begin
        Buffer.add_char buf template.[i];
        loop (i + 1)
      end
    in
    loop 0;
    Buffer.contents buf
  in
  tokenize without_placeholders

let overlap_score template_toks text_toks =
  match template_toks with
  | [] -> 0.0
  | _ ->
      let hits =
        List.length
          (List.filter (fun t -> List.exists (String.equal t) text_toks) template_toks)
      in
      float_of_int hits /. float_of_int (List.length template_toks)

(* Single-placeholder binding: the template is prefix{p}suffix; if the
   text starts with prefix and ends with suffix, the middle binds p.
   Comparison is case-insensitive and tolerant of a trailing period. *)
let try_bind template text =
  match (String.index_opt template '{', String.index_opt template '}') with
  | Some open_, Some close
    when close > open_
         && not (String.contains_from template close '{')
         (* exactly one placeholder *) ->
      let param = String.sub template (open_ + 1) (close - open_ - 1) in
      let prefix = String.lowercase_ascii (String.trim (String.sub template 0 open_)) in
      let suffix =
        String.lowercase_ascii
          (String.trim (String.sub template (close + 1) (String.length template - close - 1)))
      in
      let text =
        let t = String.trim text in
        let t =
          if String.length t > 0 && t.[String.length t - 1] = '.' then
            String.sub t 0 (String.length t - 1)
          else t
        in
        t
      in
      let lower = String.lowercase_ascii text in
      let starts =
        prefix = ""
        || String.length lower >= String.length prefix
           && String.sub lower 0 (String.length prefix) = prefix
      in
      let ends =
        suffix = ""
        || String.length lower >= String.length suffix
           && String.sub lower
                (String.length lower - String.length suffix)
                (String.length suffix)
              = suffix
      in
      if starts && ends then begin
        let from_ = if prefix = "" then 0 else String.length prefix in
        let until =
          if suffix = "" then String.length text
          else String.length text - String.length suffix
        in
        if until > from_ then
          let value = String.trim (String.sub text from_ (until - from_)) in
          if value = "" then [] else [ (param, value) ]
        else []
      end
      else []
  | _, _ -> []

let for_text ?(limit = 3) ontology text =
  let text_toks = tokenize text in
  let scored =
    List.filter_map
      (fun (et : Ontology.Types.event_type) ->
        let score = overlap_score (template_tokens et.Ontology.Types.template) text_toks in
        if score <= 0.0 then None
        else
          Some
            {
              event_type = et.Ontology.Types.event_id;
              score;
              bindings = try_bind et.Ontology.Types.template text;
            })
      ontology.Ontology.Types.event_types
  in
  let sorted =
    List.sort
      (fun a b ->
        if a.score <> b.score then compare b.score a.score
        else compare (List.length b.bindings) (List.length a.bindings))
      scored
  in
  List.filteri (fun i _ -> i < limit) sorted

let type_event ontology event =
  match event with
  | Event.Simple { id; text } -> (
      match for_text ~limit:1 ontology text with
      | [ best ] when best.score >= 0.5 -> (
          match Ontology.Types.find_event_type ontology best.event_type with
          | Some et ->
              let params = Ontology.Subsume.inherited_params ontology et in
              let all_bound =
                List.for_all
                  (fun p -> List.mem_assoc p.Ontology.Types.param_name best.bindings)
                  params
              in
              if all_bound then
                Event.typed ~id ~event_type:best.event_type
                  (List.map
                     (fun (param, value) -> Event.literal ~param value)
                     best.bindings)
              else event
          | None -> event)
      | _ :: _ | [] -> event)
  | Event.Typed _ | Event.Compound _ | Event.Alternation _ | Event.Iteration _
  | Event.Optional _ | Event.Episode _ ->
      event

let type_scenario ontology s =
  { s with Scen.events = List.map (type_event ontology) s.Scen.events }
