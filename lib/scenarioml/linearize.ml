type step = { step_event : Event.t; step_scenario : string }

type trace = step list

type config = { iteration_unroll : int; max_traces : int }

let default_config = { iteration_unroll = 1; max_traces = 256 }

type result = { traces : trace list; truncated : bool }

(* All the enumeration below threads a [truncated] flag through a record
   of state; every list of alternatives is capped at [max_traces]. *)
type state = { config : config; mutable truncated : bool }

let cap st alternatives =
  let n = st.config.max_traces in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  let rec length_exceeds k = function
    | [] -> false
    | _ :: rest -> if k = 0 then true else length_exceeds (k - 1) rest
  in
  if length_exceeds n alternatives then begin
    st.truncated <- true;
    take n alternatives
  end
  else alternatives

(* Cartesian concatenation of alternative lists: sequences [xs] then [ys]. *)
let product st xs ys =
  cap st (List.concat_map (fun x -> List.map (fun y -> x @ y) ys) xs)

let rec permutations st = function
  | [] -> [ [] ]
  | x :: rest ->
      let insert_everywhere perm =
        let rec inserts prefix = function
          | [] -> [ List.rev (x :: prefix) ]
          | y :: tail ->
              List.rev_append prefix (x :: y :: tail) :: inserts (y :: prefix) tail
        in
        inserts [] perm
      in
      cap st (List.concat_map insert_everywhere (permutations st rest))

let rec event_traces st set scenario_id visited e : trace list =
  match e with
  | Event.Simple _ | Event.Typed _ ->
      [ [ { step_event = e; step_scenario = scenario_id } ] ]
  | Event.Compound { pattern = Event.Sequence; body; _ } ->
      sequence_traces st set scenario_id visited body
  | Event.Compound { pattern = Event.Any_order; body; _ } ->
      let orders = permutations st body in
      cap st
        (List.concat_map (fun order -> sequence_traces st set scenario_id visited order) orders)
  | Event.Alternation { branches; _ } ->
      cap st
        (List.concat_map (fun branch -> sequence_traces st set scenario_id visited branch) branches)
  | Event.Iteration { bound; body; _ } ->
      let unroll = st.config.iteration_unroll in
      let counts =
        match bound with
        | Event.Zero_or_more -> List.init (unroll + 1) (fun i -> i)
        | Event.One_or_more -> List.init (max unroll 1) (fun i -> i + 1)
        | Event.Exactly n -> [ max n 0 ]
      in
      let once = sequence_traces st set scenario_id visited body in
      let rec repeat k =
        if k <= 0 then [ [] ] else product st once (repeat (k - 1))
      in
      cap st (List.concat_map repeat counts)
  | Event.Optional { body; _ } ->
      cap st ([] :: sequence_traces st set scenario_id visited body)
  | Event.Episode { scenario; _ } ->
      if List.exists (String.equal scenario) visited then [ [] ]
      else (
        match Scen.find set scenario with
        | None -> [ [] ]
        | Some s -> sequence_traces st set scenario (scenario :: visited) s.Scen.events)

and sequence_traces st set scenario_id visited events =
  List.fold_left
    (fun acc e -> product st acc (event_traces st set scenario_id visited e))
    [ [] ] events

let scenario ?(config = default_config) set s =
  let st = { config; truncated = false } in
  let traces =
    sequence_traces st set s.Scen.scenario_id [ s.Scen.scenario_id ] s.Scen.events
  in
  { traces; truncated = st.truncated }

let first_trace set s =
  let { traces; _ } = scenario ~config:{ iteration_unroll = 1; max_traces = 1 } set s in
  match traces with [] -> [] | t :: _ -> t

let render_trace ontology trace =
  List.map (fun step -> Event.render ontology step.step_event) trace
