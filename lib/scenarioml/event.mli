(** ScenarioML events.

    ScenarioML divides scenarios into events: natural-language simple
    events; typed events instantiating an ontology event type; compound
    events consisting of subevents in a temporal pattern; event schemas
    for alternation and iteration; and episodes that reuse an entire
    scenario as a single event of another (paper, §2). *)

type arg = {
  arg_param : string;  (** parameter name of the event type *)
  arg_value : value;
}

and value =
  | Individual of string  (** reference to an ontology individual id *)
  | Literal of string  (** literal text *)
  | Fresh of { label : string; cls : string }
      (** an individual "newly created or identified during the course
          of a scenario" (paper §2): a label for it plus its domain
          class *)

type temporal =
  | Sequence  (** subevents occur in the given order *)
  | Any_order  (** subevents all occur, order unconstrained *)

type iteration_bound =
  | Zero_or_more
  | One_or_more
  | Exactly of int

type t =
  | Simple of { id : string; text : string }
      (** natural-language event whose meaning is understood by humans *)
  | Typed of { id : string; event_type : string; args : arg list }
      (** [typedEvent]: references and reuses a defined [eventType] *)
  | Compound of { id : string; pattern : temporal; body : t list }
  | Alternation of { id : string; branches : t list list }
      (** exactly one branch occurs *)
  | Iteration of { id : string; bound : iteration_bound; body : t list }
  | Optional of { id : string; body : t list }
  | Episode of { id : string; scenario : string }
      (** reuse of an entire scenario as a single event *)

val id : t -> string

val individual : param:string -> string -> arg
(** Argument bound to an ontology individual. *)

val literal : param:string -> string -> arg

val fresh : param:string -> label:string -> cls:string -> arg
(** Argument denoting an individual created in the scenario itself. *)

val simple : id:string -> string -> t

val typed : id:string -> event_type:string -> arg list -> t

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a
(** Preorder fold over an event and all its subevents (episodes are not
    expanded: the [Episode] node itself is visited). *)

val all_ids : t -> string list
(** Ids of the event and all subevents, preorder. *)

val typed_event_types : t -> string list
(** Event-type ids referenced by [Typed] events in the subtree, in
    occurrence order, with duplicates. *)

val size : t -> int
(** Number of event nodes in the subtree. *)

val depth : t -> int
(** Nesting depth; a leaf has depth 1. *)

val render : Ontology.Types.t -> t -> string
(** Human-readable text of an event: simple events verbatim; typed
    events via template expansion with individual names substituted;
    structured events summarized. *)
