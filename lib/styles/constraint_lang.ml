type t =
  | Connect of { src : string; dst : string }
  | Forbid of { src : string; dst : string }
  | Route_via of { src : string; dst : string; via : string }
  | Mediate of { src : string; dst : string }
  | Acyclic

exception Syntax_error of { line : int; message : string }

let syntax_error line fmt =
  Format.kasprintf (fun message -> raise (Syntax_error { line; message })) fmt

let parse input =
  let parse_line lineno line =
    let line =
      match String.index_opt line '#' with
      | Some i -> String.sub line 0 i
      | None -> line
    in
    let words =
      List.filter (fun w -> w <> "") (String.split_on_char ' ' (String.trim line))
    in
    match words with
    | [] -> None
    | [ "acyclic" ] -> Some Acyclic
    | [ "connect"; src; "->"; dst ] -> Some (Connect { src; dst })
    | [ "forbid"; src; "->"; dst ] -> Some (Forbid { src; dst })
    | [ "route"; src; "->"; dst; "via"; via ] -> Some (Route_via { src; dst; via })
    | [ "mediate"; src; "->"; dst ] -> Some (Mediate { src; dst })
    | keyword :: _ -> syntax_error lineno "cannot parse constraint starting with %S" keyword
  in
  input
  |> String.split_on_char '\n'
  |> List.mapi (fun i line -> parse_line (i + 1) line)
  |> List.filter_map Fun.id

let to_string = function
  | Connect { src; dst } -> Printf.sprintf "connect %s -> %s" src dst
  | Forbid { src; dst } -> Printf.sprintf "forbid %s -> %s" src dst
  | Route_via { src; dst; via } -> Printf.sprintf "route %s -> %s via %s" src dst via
  | Mediate { src; dst } -> Printf.sprintf "mediate %s -> %s" src dst
  | Acyclic -> "acyclic"

(* Is [dst] reachable from [src] without passing through [blocked]
   (endpoints excluded)? *)
let reaches_avoiding graph src dst blocked =
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace visited src ();
  Queue.push src queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Hashtbl.mem visited v) then
          if String.equal v dst then found := true
          else if not (List.exists (String.equal v) blocked) then begin
            Hashtbl.replace visited v ();
            Queue.push v queue
          end)
      (Adl.Graph.successors graph u)
  done;
  !found

let has_cycle graph =
  let color = Hashtbl.create 16 in
  let cyclic = ref false in
  let rec visit u =
    match Hashtbl.find_opt color u with
    | Some `Gray -> cyclic := true
    | Some `Black -> ()
    | None ->
        Hashtbl.replace color u `Gray;
        List.iter (fun v -> if not !cyclic then visit v) (Adl.Graph.successors graph u);
        Hashtbl.replace color u `Black
  in
  List.iter (fun u -> if not !cyclic then visit u) (Adl.Graph.nodes graph);
  !cyclic

let check arch constraints =
  let graph = Adl.Graph.of_structure arch in
  let known id = List.exists (String.equal id) (Adl.Structure.brick_ids arch) in
  let unknown_violation c id =
    Rule.violation ~rule:"constraint.unknown" ~subject:id
      (Printf.sprintf "constraint %S names an unknown element" (to_string c))
  in
  List.concat_map
    (fun c ->
      let require_known ids body =
        match List.filter (fun id -> not (known id)) ids with
        | [] -> body ()
        | missing -> List.map (unknown_violation c) missing
      in
      match c with
      | Connect { src; dst } ->
          require_known [ src; dst ] (fun () ->
              if Adl.Graph.reachable graph src dst then []
              else
                [
                  Rule.violation ~rule:"constraint.connect" ~subject:(src ^ "->" ^ dst)
                    "required communication is not possible";
                ])
      | Forbid { src; dst } ->
          require_known [ src; dst ] (fun () ->
              if String.equal src dst || not (Adl.Graph.reachable graph src dst) then []
              else
                [
                  Rule.violation ~rule:"constraint.forbid" ~subject:(src ^ "->" ^ dst)
                    "forbidden communication is possible";
                ])
      | Route_via { src; dst; via } ->
          require_known [ src; dst; via ] (fun () ->
              if not (Adl.Graph.reachable graph src dst) then
                [
                  Rule.violation ~rule:"constraint.route" ~subject:(src ^ "->" ^ dst)
                    "no communication path exists at all";
                ]
              else if reaches_avoiding graph src dst [ via ] then
                [
                  Rule.violation ~rule:"constraint.route" ~subject:(src ^ "->" ^ dst)
                    (Printf.sprintf "a path bypasses the required intermediary %S" via);
                ]
              else [])
      | Mediate { src; dst } ->
          require_known [ src; dst ] (fun () ->
              if Adl.Graph.reachable ~policy:Adl.Graph.Direct graph src dst then []
              else
                [
                  Rule.violation ~rule:"constraint.mediate" ~subject:(src ^ "->" ^ dst)
                    "no connector-mediated path exists";
                ])
      | Acyclic ->
          if has_cycle graph then
            [
              Rule.violation ~rule:"constraint.acyclic" ~subject:arch.Adl.Structure.arch_id
                "the communication graph contains a cycle";
            ]
          else [])
    constraints

let as_rule constraints =
  Rule.make ~id:"constraints" ~description:"requirements-imposed communication constraints"
    (fun arch -> check arch constraints)
