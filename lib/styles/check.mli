(** Style registry: look up rule sets by declared style name and check
    an architecture against its own declared style. *)

val known_styles : string list
(** ["layered"; "layered-strict"; "c2"; "client-server"; "pipe-filter"]. *)

val rules_for : string -> Rule.t list option
(** Rule set for a style name; [None] for unknown styles. *)

val check_declared : Adl.Structure.t -> Rule.violation list
(** Check an architecture against the rule set named by its [style]
    field. Architectures with no declared or an unknown style yield no
    violations. *)

val conforms : Adl.Structure.t -> string -> bool
(** Does the architecture satisfy the named style's rules?
    Unknown styles conform vacuously. *)
