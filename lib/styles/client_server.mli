(** The client–server style, including the paper's §3.5 example
    constraint: "Clients need to communicate through a central server" —
    violated "if the architecture allows two clients to communicate
    directly, bypassing the central server."

    Components carry a [("role", "client" | "server")] tag. Rules:
    - [cs.role]: every component declares a role;
    - [cs.no-client-client]: no communication path from a client to a
      client avoids every server;
    - [cs.server-reach]: every client can reach some server. *)

val rules : Rule.t list
