let mediated_rule =
  Rule.make ~id:"pf.mediated" ~description:"filters link only to pipes" (fun arch ->
      let is_component id = Adl.Structure.find_component arch id <> None in
      List.filter_map
        (fun l ->
          let a = l.Adl.Structure.link_from.Adl.Structure.anchor in
          let b = l.Adl.Structure.link_to.Adl.Structure.anchor in
          if is_component a = is_component b then
            Some
              (Rule.violation ~rule:"pf.mediated" ~subject:l.Adl.Structure.link_id
                 (if is_component a then "filter linked directly to filter"
                  else "pipe linked directly to pipe"))
          else None)
        arch.Adl.Structure.links)

let pipe_arity_rule =
  Rule.make ~id:"pf.pipe-arity" ~description:"a pipe joins exactly two elements" (fun arch ->
      List.filter_map
        (fun c ->
          let id = c.Adl.Structure.conn_id in
          let anchored =
            List.filter
              (fun l ->
                String.equal l.Adl.Structure.link_from.Adl.Structure.anchor id
                || String.equal l.Adl.Structure.link_to.Adl.Structure.anchor id)
              arch.Adl.Structure.links
          in
          let n = List.length anchored in
          if n = 2 then None
          else
            Some
              (Rule.violation ~rule:"pf.pipe-arity" ~subject:id
                 (Printf.sprintf "pipe is anchored by %d links, expected 2" n)))
        arch.Adl.Structure.connectors)

let acyclic_rule =
  Rule.make ~id:"pf.acyclic" ~description:"the filter graph is acyclic" (fun arch ->
      let g = Adl.Graph.of_structure arch in
      let nodes = Adl.Graph.nodes g in
      (* Detect a cycle with DFS colors. *)
      let color = Hashtbl.create 16 in
      let cycle_node = ref None in
      let rec visit u =
        match Hashtbl.find_opt color u with
        | Some `Gray -> cycle_node := Some u
        | Some `Black -> ()
        | None ->
            Hashtbl.replace color u `Gray;
            List.iter (fun v -> if !cycle_node = None then visit v) (Adl.Graph.successors g u);
            Hashtbl.replace color u `Black
      in
      List.iter (fun u -> if !cycle_node = None then visit u) nodes;
      match !cycle_node with
      | Some u ->
          [ Rule.violation ~rule:"pf.acyclic" ~subject:u "element participates in a cycle" ]
      | None -> [])

let rules = [ mediated_rule; pipe_arity_rule; acyclic_rule ]
