(** The C2 architectural style (the CRASH system's style).

    "A C2 architecture is composed of components and connectors that are
    organized into layers. Components in a layer are only aware of
    components in the layers above and have no knowledge about
    components in layers below. Components communicate ... using two
    types of asynchronous event-based messages, requests and
    notifications. Request messages travel up the architecture while
    notification messages move down" (paper §4.2).

    Structural encoding: every interface of a C2 element carries a
    [("side", "top" | "bottom")] tag. Rules:
    - [c2.no-direct]: components never link directly to components —
      all communication is mediated by connectors;
    - [c2.side]: every interface on a linked element declares a side;
    - [c2.topology]: a link joins the *top* side of the lower element to
      the *bottom* side of the element above it — i.e. one endpoint is a
      "top" and the other a "bottom". *)

val rules : Rule.t list

val side_of : Adl.Structure.t -> Adl.Structure.point -> string option
(** The ["side"] tag of the interface at a link endpoint. *)
