(** Communication constraints imposed by the requirements (paper §3.5:
    "Another possible inconsistency occurs when the structural
    description of the architecture violates constraints imposed by the
    requirements. For instance ... 'Clients need to communicate through
    a central server.'").

    Constraints are written in a small textual language, one per line:
    {v
    connect a -> b            # a must be able to communicate to b
    forbid  a -> b            # a must not be able to communicate to b
    route   a -> b via m      # every a-to-b path passes through m
    mediate a -> b            # a reaches b through connectors only
    acyclic                   # the communication graph has no cycles
    v}
    [#] starts a comment; blank lines are ignored. Element names may be
    any brick id. *)

type t =
  | Connect of { src : string; dst : string }
  | Forbid of { src : string; dst : string }
  | Route_via of { src : string; dst : string; via : string }
  | Mediate of { src : string; dst : string }
  | Acyclic

exception Syntax_error of { line : int; message : string }

val parse : string -> t list
(** Parse a constraint document.
    @raise Syntax_error on malformed lines. *)

val to_string : t -> string
(** The textual form, re-parsable by {!parse}. *)

val check : Adl.Structure.t -> t list -> Rule.violation list
(** Violations (rule ids [constraint.connect], [constraint.forbid],
    [constraint.route], [constraint.mediate], [constraint.acyclic]).
    Constraints naming unknown elements are violations of the
    constraint itself ([constraint.unknown]). *)

val as_rule : t list -> Rule.t
(** Package a constraint set as a style rule for {!Rule.check_all}. *)
