(** Architectural style rules.

    A style is a named set of structural constraints. The walkthrough
    engine reports an inconsistency "when the structural description of
    the architecture violates constraints imposed by the requirements"
    (paper §3.5) — style rules are the machine-checkable form of such
    communication constraints. *)

type violation = {
  rule : string;  (** rule identifier, e.g. ["layered.skip"] *)
  subject : string;  (** offending element or link id *)
  detail : string;
}

type t = {
  rule_id : string;
  rule_description : string;
  check : Adl.Structure.t -> violation list;
}

val make : id:string -> description:string -> (Adl.Structure.t -> violation list) -> t

val violation : rule:string -> subject:string -> string -> violation

val pp_violation : Format.formatter -> violation -> unit

val check_all : t list -> Adl.Structure.t -> violation list
(** Violations from every rule, rule order then discovery order. *)

val comm_edges : Adl.Structure.t -> (string * string) list
(** Directed communication edges between bricks, one per ordered pair,
    derived from the link/interface directions (shared helper for rule
    implementations). *)
