let side_of arch point =
  match Adl.Structure.find_interface arch point with
  | Some i -> Adl.Structure.interface_tag i "side"
  | None -> None

let is_component arch id = Adl.Structure.find_component arch id <> None

let no_direct_rule =
  Rule.make ~id:"c2.no-direct"
    ~description:"components communicate only through connectors" (fun arch ->
      List.filter_map
        (fun l ->
          let a = l.Adl.Structure.link_from.Adl.Structure.anchor in
          let b = l.Adl.Structure.link_to.Adl.Structure.anchor in
          if is_component arch a && is_component arch b then
            Some
              (Rule.violation ~rule:"c2.no-direct" ~subject:l.Adl.Structure.link_id
                 (Printf.sprintf "components %s and %s are linked directly" a b))
          else None)
        arch.Adl.Structure.links)

let side_rule =
  Rule.make ~id:"c2.side" ~description:"linked interfaces declare a C2 side" (fun arch ->
      List.concat_map
        (fun l ->
          let check p =
            match side_of arch p with
            | Some "top" | Some "bottom" -> []
            | Some other ->
                [
                  Rule.violation ~rule:"c2.side"
                    ~subject:(p.Adl.Structure.anchor ^ "." ^ p.Adl.Structure.interface)
                    (Printf.sprintf "invalid side %S" other);
                ]
            | None ->
                [
                  Rule.violation ~rule:"c2.side"
                    ~subject:(p.Adl.Structure.anchor ^ "." ^ p.Adl.Structure.interface)
                    "interface has no \"side\" tag";
                ]
          in
          check l.Adl.Structure.link_from @ check l.Adl.Structure.link_to)
        arch.Adl.Structure.links)

let topology_rule =
  Rule.make ~id:"c2.topology"
    ~description:"links join a top side to a bottom side" (fun arch ->
      List.filter_map
        (fun l ->
          match (side_of arch l.Adl.Structure.link_from, side_of arch l.Adl.Structure.link_to) with
          | Some "top", Some "bottom" | Some "bottom", Some "top" -> None
          | Some a, Some b ->
              Some
                (Rule.violation ~rule:"c2.topology" ~subject:l.Adl.Structure.link_id
                   (Printf.sprintf "link joins side %S to side %S" a b))
          | None, _ | _, None -> None)
        arch.Adl.Structure.links)

let rules = [ no_direct_rule; side_rule; topology_rule ]
