let layer_span arch =
  List.filter_map
    (fun c ->
      match Adl.Structure.layer_of c with
      | Some n -> Some (c.Adl.Structure.comp_id, n)
      | None -> None)
    arch.Adl.Structure.components

(* Component-to-component communication edges, attributing paths through
   connectors to the component pair they join. *)
let component_edges arch =
  let g = Adl.Graph.of_structure arch in
  let components = List.map (fun c -> c.Adl.Structure.comp_id) arch.Adl.Structure.components in
  let edges_from a =
    (* BFS across connectors only. *)
    let visited = Hashtbl.create 8 in
    let queue = Queue.create () in
    let reached = ref [] in
    Queue.push a queue;
    Hashtbl.replace visited a ();
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          if not (Hashtbl.mem visited v) then begin
            Hashtbl.replace visited v ();
            if Adl.Graph.is_connector g v then Queue.push v queue
            else reached := v :: !reached
          end)
        (Adl.Graph.successors g u)
    done;
    List.map (fun b -> (a, b)) (List.rev !reached)
  in
  List.concat_map edges_from components

let tag_rule =
  Rule.make ~id:"layered.tag"
    ~description:"every non-external component declares a layer" (fun arch ->
      List.filter_map
        (fun c ->
          match (Adl.Structure.layer_of c, Adl.Structure.component_tag c "external") with
          | Some _, _ | None, Some "true" -> None
          | None, (Some _ | None) ->
              Some
                (Rule.violation ~rule:"layered.tag" ~subject:c.Adl.Structure.comp_id
                   "component has no integer \"layer\" tag"))
        arch.Adl.Structure.components)

let layer_of_exn arch id =
  match Adl.Structure.find_component arch id with
  | Some c -> Adl.Structure.layer_of c
  | None -> None

let downward_rule =
  Rule.make ~id:"layered.downward"
    ~description:"components only initiate communication to the same or immediately lower layer"
    (fun arch ->
      List.filter_map
        (fun (a, b) ->
          match (layer_of_exn arch a, layer_of_exn arch b) with
          | Some la, Some lb when lb > la || la - lb > 1 ->
              Some
                (Rule.violation ~rule:"layered.downward" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "layer %d initiates to layer %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let skip_rule =
  Rule.make ~id:"layered.skip"
    ~description:"no communication edge skips a layer" (fun arch ->
      List.filter_map
        (fun (a, b) ->
          match (layer_of_exn arch a, layer_of_exn arch b) with
          | Some la, Some lb when abs (la - lb) > 1 ->
              Some
                (Rule.violation ~rule:"layered.skip" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "edge spans layers %d and %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let strict_rule =
  Rule.make ~id:"layered.strict"
    ~description:"no upward communication at all" (fun arch ->
      List.filter_map
        (fun (a, b) ->
          match (layer_of_exn arch a, layer_of_exn arch b) with
          | Some la, Some lb when lb > la ->
              Some
                (Rule.violation ~rule:"layered.strict" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "layer %d initiates upward to layer %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let rules = [ tag_rule; skip_rule ]

let strict_rules = rules @ [ downward_rule; strict_rule ]
