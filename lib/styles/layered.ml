let layer_span arch =
  List.filter_map
    (fun c ->
      match Adl.Structure.layer_of c with
      | Some n -> Some (c.Adl.Structure.comp_id, n)
      | None -> None)
    arch.Adl.Structure.components

(* Component-to-component communication edges, attributing paths through
   connectors to the component pair they join. Runs on the graph's
   interned-int core with a flat visited set: the per-component BFS is
   on the hot path of every evaluation of a layered architecture. *)
let component_edges arch =
  let g = Adl.Graph.of_structure arch in
  let module C = Adl.Graph.Core in
  let n = C.node_count g in
  let visited = Bytes.create (max n 1) in
  let queue = Array.make (max n 1) 0 in
  let components = List.map (fun c -> c.Adl.Structure.comp_id) arch.Adl.Structure.components in
  let edges_from a =
    match C.index g a with
    | None -> []
    | Some ai ->
        (* BFS across connectors only. *)
        Bytes.fill visited 0 n '\000';
        Bytes.set visited ai '\001';
        let head = ref 0 and tail = ref 0 in
        queue.(!tail) <- ai;
        incr tail;
        let reached = ref [] in
        while !head < !tail do
          let u = queue.(!head) in
          incr head;
          C.iter_succ g u (fun v ->
              if Bytes.get visited v = '\000' then begin
                Bytes.set visited v '\001';
                if C.is_connector g v then begin
                  queue.(!tail) <- v;
                  incr tail
                end
                else reached := v :: !reached
              end)
        done;
        List.rev_map (fun b -> (a, C.label g b)) !reached
  in
  List.concat_map edges_from components

let tag_rule =
  Rule.make ~id:"layered.tag"
    ~description:"every non-external component declares a layer" (fun arch ->
      List.filter_map
        (fun c ->
          match (Adl.Structure.layer_of c, Adl.Structure.component_tag c "external") with
          | Some _, _ | None, Some "true" -> None
          | None, (Some _ | None) ->
              Some
                (Rule.violation ~rule:"layered.tag" ~subject:c.Adl.Structure.comp_id
                   "component has no integer \"layer\" tag"))
        arch.Adl.Structure.components)

(* Layer lookups happen once per communication edge; index them. *)
let layer_table arch =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun c ->
      match Adl.Structure.layer_of c with
      | Some n -> Hashtbl.replace tbl c.Adl.Structure.comp_id n
      | None -> ())
    arch.Adl.Structure.components;
  tbl

let downward_rule =
  Rule.make ~id:"layered.downward"
    ~description:"components only initiate communication to the same or immediately lower layer"
    (fun arch ->
      let layers = layer_table arch in
      List.filter_map
        (fun (a, b) ->
          match (Hashtbl.find_opt layers a, Hashtbl.find_opt layers b) with
          | Some la, Some lb when lb > la || la - lb > 1 ->
              Some
                (Rule.violation ~rule:"layered.downward" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "layer %d initiates to layer %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let skip_rule =
  Rule.make ~id:"layered.skip"
    ~description:"no communication edge skips a layer" (fun arch ->
      let layers = layer_table arch in
      List.filter_map
        (fun (a, b) ->
          match (Hashtbl.find_opt layers a, Hashtbl.find_opt layers b) with
          | Some la, Some lb when abs (la - lb) > 1 ->
              Some
                (Rule.violation ~rule:"layered.skip" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "edge spans layers %d and %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let strict_rule =
  Rule.make ~id:"layered.strict"
    ~description:"no upward communication at all" (fun arch ->
      let layers = layer_table arch in
      List.filter_map
        (fun (a, b) ->
          match (Hashtbl.find_opt layers a, Hashtbl.find_opt layers b) with
          | Some la, Some lb when lb > la ->
              Some
                (Rule.violation ~rule:"layered.strict" ~subject:(a ^ "->" ^ b)
                   (Printf.sprintf "layer %d initiates upward to layer %d" la lb))
          | Some _, Some _ | None, _ | _, None -> None)
        (component_edges arch))

let rules = [ tag_rule; skip_rule ]

let strict_rules = rules @ [ downward_rule; strict_rule ]
