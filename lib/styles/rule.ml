type violation = { rule : string; subject : string; detail : string }

type t = {
  rule_id : string;
  rule_description : string;
  check : Adl.Structure.t -> violation list;
}

let make ~id ~description check = { rule_id = id; rule_description = description; check }

let violation ~rule ~subject detail = { rule; subject; detail }

let pp_violation ppf v =
  Format.fprintf ppf "[%s] %s: %s" v.rule v.subject v.detail

let check_all rules arch = List.concat_map (fun r -> r.check arch) rules

let comm_edges arch =
  let g = Adl.Graph.of_structure arch in
  List.concat_map
    (fun u -> List.map (fun v -> (u, v)) (Adl.Graph.successors g u))
    (Adl.Graph.nodes g)
