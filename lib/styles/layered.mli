(** The Layered architectural style (the PIMS architecture's style).

    Components carry a ["layer"] tag with an integer value; higher
    numbers are higher layers (the presentation layer on top).
    Components tagged [("external", "true")] (e.g. a remote web site)
    are outside the stack and exempt. Connectors are transparent: an
    edge through a connector is attributed to the component pair it
    joins.

    Base rules (request/reply channels between adjacent layers are
    legal, so replies flowing upward are not flagged):
    - [layered.tag]: every non-external component declares a layer;
    - [layered.skip]: no communication edge skips a layer (in either
      direction). *)

val rules : Rule.t list

val strict_rules : Rule.t list
(** {!rules} plus [layered.downward] (initiate only to the same or the
    immediately lower layer) and [layered.strict] (no upward
    communication at all — callbacks up the stack are disallowed). *)

val layer_span : Adl.Structure.t -> (string * int) list
(** The declared layer of every layered component. *)
