let role_of c = Adl.Structure.component_tag c "role"

let clients arch =
  List.filter_map
    (fun c -> if role_of c = Some "client" then Some c.Adl.Structure.comp_id else None)
    arch.Adl.Structure.components

let servers arch =
  List.filter_map
    (fun c -> if role_of c = Some "server" then Some c.Adl.Structure.comp_id else None)
    arch.Adl.Structure.components

let role_rule =
  Rule.make ~id:"cs.role" ~description:"every component declares a client/server role"
    (fun arch ->
      List.filter_map
        (fun c ->
          match role_of c with
          | Some "client" | Some "server" -> None
          | Some other ->
              Some
                (Rule.violation ~rule:"cs.role" ~subject:c.Adl.Structure.comp_id
                   (Printf.sprintf "invalid role %S" other))
          | None ->
              Some
                (Rule.violation ~rule:"cs.role" ~subject:c.Adl.Structure.comp_id
                   "component has no \"role\" tag"))
        arch.Adl.Structure.components)

(* Reachability from [a] to [b] avoiding all elements in [blocked]
   (except as source). Connectors relay; components relay too (a client
   could bounce through another client). *)
let reaches_avoiding g a b blocked =
  let visited = Hashtbl.create 16 in
  let queue = Queue.create () in
  Hashtbl.replace visited a ();
  Queue.push a queue;
  let found = ref false in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if not (Hashtbl.mem visited v) then
          if String.equal v b then found := true
          else if not (List.exists (String.equal v) blocked) then begin
            Hashtbl.replace visited v ();
            Queue.push v queue
          end)
      (Adl.Graph.successors g u)
  done;
  !found

let no_client_client_rule =
  Rule.make ~id:"cs.no-client-client"
    ~description:"clients communicate only through a server" (fun arch ->
      let g = Adl.Graph.of_structure arch in
      let clients = clients arch in
      let servers = servers arch in
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if String.equal a b then None
              else if reaches_avoiding g a b servers then
                Some
                  (Rule.violation ~rule:"cs.no-client-client" ~subject:(a ^ "->" ^ b)
                     "clients can communicate bypassing every server")
              else None)
            clients)
        clients)

let server_reach_rule =
  Rule.make ~id:"cs.server-reach" ~description:"every client can reach a server" (fun arch ->
      let g = Adl.Graph.of_structure arch in
      let servers = servers arch in
      List.filter_map
        (fun a ->
          if List.exists (fun s -> Adl.Graph.reachable g a s) servers then None
          else
            Some
              (Rule.violation ~rule:"cs.server-reach" ~subject:a
                 "client cannot reach any server"))
        (clients arch))

let rules = [ role_rule; no_client_client_rule; server_reach_rule ]
