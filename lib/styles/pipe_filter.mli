(** The pipe-and-filter style. Components are filters, connectors are
    pipes. Rules:
    - [pf.mediated]: filters link only to pipes;
    - [pf.pipe-arity]: a pipe joins exactly two elements (one upstream,
      one downstream);
    - [pf.acyclic]: the filter graph is acyclic. *)

val rules : Rule.t list
