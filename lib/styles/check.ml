let registry =
  [
    ("layered", Layered.rules);
    ("layered-strict", Layered.strict_rules);
    ("c2", C2.rules);
    ("client-server", Client_server.rules);
    ("pipe-filter", Pipe_filter.rules);
  ]

let known_styles = List.map fst registry

let rules_for name = List.assoc_opt name registry

let check_declared arch =
  match arch.Adl.Structure.style with
  | None -> []
  | Some style -> (
      match rules_for style with
      | Some rules -> Rule.check_all rules arch
      | None -> [])

let conforms arch style =
  match rules_for style with
  | Some rules -> Rule.check_all rules arch = []
  | None -> true
