(** The replica side of log shipping: a background thread that polls
    the primary's [GET /replication/log] endpoint and applies each
    shipped batch to the local {!Registry} (via
    {!Registry.apply_shipped}) while the daemon serves reads from it.

    The loop reconnects through primary restarts, handles reset
    batches (snapshot bootstraps after the primary compacted away its
    position), and keeps polling through errors — the last failure is
    surfaced in {!last_error} and the replication status is mirrored
    into {!Metrics} after every poll. *)

type t

type shipped = { data : string; covered : int64; reset : bool }
(** One fetched batch: the raw framed record bytes, the primary's
    covered sequence number, and whether this is a snapshot reset. *)

type transport = {
  fetch : after:int64 -> (shipped, string) result;
      (** Fetch the next batch of records with sequence numbers
          strictly greater than [after]. *)
  fetch_snapshot : unit -> (shipped option, string) result;
      (** The upstream's current snapshot as a reset batch, or [None]
          when it has none — how a replica starting from nothing
          catches up in O(live state) instead of replaying the full
          journal. *)
  shutdown : unit -> unit;
      (** Drop any held connection state; the next [fetch] starts
          fresh. Called on apply errors and once at loop exit. *)
}

val http_transport : host:string -> port:int -> transport
(** The production transport: one keep-alive {!Client} connection to
    the primary's [GET /replication/log] and
    [GET /replication/snapshot], reopened on any failure. *)

val start :
  ?poll_interval:float ->
  ?transport:transport ->
  ?sleep:(float -> unit) ->
  registry:Registry.t ->
  metrics:Metrics.t ->
  host:string ->
  port:int ->
  unit ->
  t
(** Spawn the apply loop against the primary at [host]:[port].
    [poll_interval] (default 0.02 s) is the sleep between polls once
    caught up; while batches keep arriving the loop doesn't sleep.
    [transport] (default {!http_transport} to [host]:[port]) and
    [sleep] are injectable so the loop is testable without sockets or
    real time. When [registry] persists, the loop resumes from the
    local journal frontier (everything below it was applied and
    journaled before the restart); a replica starting from nothing
    first asks the upstream for a snapshot bootstrap
    ([fetch_snapshot]) so first-connect catch-up is O(live state)
    rather than a full-journal replay. *)

val primary_address : t -> string
(** ["HOST:PORT"] — what read-only rejections advertise. *)

val applied_seq : t -> int64
(** Highest shipped sequence number applied locally. *)

val covered_seq : t -> int64
(** The primary's covered sequence number as of the last successful
    poll. *)

val lag : t -> int64
(** [max 0 (covered_seq - applied_seq)]. [0] means every record the
    primary had made durable at the last poll is applied here. *)

val last_error : t -> string option
(** The most recent poll/apply failure, or [None] when the last poll
    succeeded. A dead primary shows up here while the loop keeps
    trying. *)

val sealed : t -> bool

val seal : t -> unit
(** Stop the apply loop and join its thread; after this no further
    shipped record will be applied. Idempotent. Called on daemon
    shutdown and as the first step of a promotion. *)
