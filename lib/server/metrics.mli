(** Server-side observability counters, safe to update from every worker
    thread. One instance lives for the daemon's lifetime and is rendered
    by [GET /metrics].

    Tracked: per-route/status request counts, a fixed-bucket latency
    histogram (cumulative, Prometheus-style), an in-flight gauge, and
    rejection counters for the two load-shedding paths (full accept
    queue, request timeouts). *)

type t

val create : unit -> t

val incr_in_flight : t -> unit
val decr_in_flight : t -> unit

val observe : t -> route:string -> status:int -> seconds:float -> unit
(** Record one completed request: bumps the route/status counter and
    adds the latency to the histogram. [route] is the matched pattern
    (e.g. ["/sessions/:id/evaluate"]), not the concrete target, so the
    cardinality stays bounded. *)

val reject_overload : t -> unit
(** A connection was turned away with 429 because the accept queue was
    full. *)

val reject_timeout : t -> unit
(** A connection was closed after a read or write timeout. *)

(** {2 Write-ahead journal}

    Populated only when the daemon runs with a data directory; without
    one, the rendered JSON is unchanged from the journal-less server. *)

val set_journal :
  t -> records:int -> bytes:int -> fsyncs:int -> compactions:int -> unit
(** Overwrite the journal counters with the given lifetime totals (the
    persistence layer reports absolute values after each operation). *)

val set_group_commit : t -> Store.Journal.Group.stats -> unit
(** Overwrite the group-commit batching counters. Rendered under
    [journal.group_commit] — but only once at least one batch has
    completed, so enabling group commit on an idle server leaves
    [/metrics] byte-identical. *)

type recovery = {
  sessions : int;  (** sessions alive after boot-time replay *)
  entries : int;  (** snapshot + journal records replayed *)
  skipped : int;  (** records that no longer applied and were dropped *)
  truncated_bytes : int;  (** torn/corrupt journal tail discarded *)
  corrupt_tail : bool;  (** the tail failed its checksum (vs a clean cut) *)
}

val set_recovery : t -> recovery -> unit
(** Record the outcome of boot-time recovery, rendered under
    [journal.recovery]. *)

(** {2 Replication} *)

type replication = {
  role : string;  (** ["primary"] or ["replica"] *)
  primary : string option;  (** upstream [HOST:PORT] when a replica *)
  applied_seq : int64;  (** highest shipped record applied locally *)
  covered_seq : int64;  (** the primary's fsync-covered high-water mark *)
  lag : int64;  (** [covered_seq - applied_seq] *)
}

val set_replication : t -> replication -> unit
(** Overwrite the replication status, rendered as a top-level
    [replication] object. Never set on a plain single-process server,
    whose [/metrics] stays byte-identical. *)

type ship = {
  cursor_hits : int;  (** ship fetches served by a cached tail cursor *)
  cursor_misses : int;  (** fetches that opened a fresh cursor *)
  reset_batches : int;  (** gap fetches answered with a snapshot bootstrap *)
  cursor_lags : int64 list;  (** per cached cursor, records behind covered *)
}

val set_ship : t -> ship -> unit
(** Overwrite the log-shipping serving stats, rendered as a top-level
    [ship] object. Only set once a follower has actually fetched, so a
    primary nobody tails keeps [/metrics] byte-identical. *)

val ship_json : ship -> Jsonlight.t
(** The rendered [ship] object — shared with [GET /replication] on a
    primary. *)

val to_json : t -> extra:(string * Jsonlight.t) list -> Jsonlight.t
(** Snapshot; [extra] is appended verbatim (the API layer adds
    registry-wide cache statistics). Buckets are upper bounds in
    seconds; counts are cumulative ("le" semantics), the last bucket is
    +inf. *)

val write : t -> extra:(string * Jsonlight.t) list -> Jsonlight.Writer.t -> unit
(** {!to_json} rendered into a caller-reused {!Jsonlight.Writer} — the
    [/metrics] endpoint passes one from the API layer's pool so the
    (large) snapshot never allocates a fresh serialization buffer. *)
