(* A small free-list of serialization buffers: each in-flight response
   render checks one out, so steady-state traffic reuses a handful of
   grown-to-size buffers instead of allocating a fresh one per
   response. *)
type writer_pool = { pool : Jsonlight.Writer.t Queue.t; pool_lock : Mutex.t }

(* What this daemon is in the replication topology. A [Replica] serves
   reads from locally applied shipped records and bounces mutations to
   the primary; promotion flips the field to [Primary] (a word-sized
   mutable read, safe without a lock). *)
type role = Primary | Replica of Replica.t

type ctx = {
  registry : Registry.t;
  metrics : Metrics.t;
  writers : writer_pool;
  mutable role : role;
}

let make_ctx ?jobs ?persist () =
  {
    registry = Registry.create ?jobs ?persist ();
    metrics = Metrics.create ();
    writers = { pool = Queue.create (); pool_lock = Mutex.create () };
    role = Primary;
  }

let with_writer ctx f =
  let { pool; pool_lock } = ctx.writers in
  let w =
    match Mutex.protect pool_lock (fun () -> Queue.take_opt pool) with
    | Some w -> w
    | None -> Jsonlight.Writer.create ~size:(16 * 1024) ()
  in
  Jsonlight.Writer.clear w;
  Fun.protect
    ~finally:(fun () -> Mutex.protect pool_lock (fun () -> Queue.push w pool))
    (fun () -> f w)

(* ------------------------------------------------------------------ *)
(* JSON bodies                                                        *)
(* ------------------------------------------------------------------ *)

let json_reply ctx ?(status = 200) json =
  with_writer ctx (fun w ->
      Jsonlight.Writer.json w json;
      Http.response
        ~headers:[ ("Content-Type", "application/json") ]
        status
        (Jsonlight.Writer.contents w))

(* Every non-2xx body is {"error":{category,message,…}}; [extra]
   appends machine-readable fields to the error object (the read-only
   rejection carries the primary's address there), [headers] appends
   to the response headers (Retry-After, Allow). *)
let error_response ?(headers = []) ?(extra = []) status ~category message =
  Http.response
    ~headers:(("Content-Type", "application/json") :: headers)
    status
    (Jsonlight.to_string
       (Jsonlight.Obj
          [
            ( "error",
              Jsonlight.Obj
                ([
                   ("category", Jsonlight.String category);
                   ("message", Jsonlight.String message);
                 ]
                @ extra) );
          ]))

let response_of_parse_error e =
  let status, category =
    match e with
    | Http.Bad_request _ -> (400, "bad_request")
    | Http.Head_too_large | Http.Body_too_large -> (413, "payload_too_large")
    | Http.Unsupported _ -> (501, "unsupported")
  in
  error_response status ~category (Http.parse_error_message e)

let overloaded_response =
  error_response 429 ~category:"overloaded"
    "the server's accept queue is full; retry later"

let load_error_category = function
  | Core.Sosae.Io_error _ -> "io_error"
  | Core.Sosae.Xml_error _ -> "xml_error"
  | Core.Sosae.Schema_error _ -> "schema_error"

(* ------------------------------------------------------------------ *)
(* Request-body helpers                                               *)
(* ------------------------------------------------------------------ *)

exception Reply of Http.response

let reply_error status ~category message =
  raise (Reply (error_response status ~category message))

(* Mutating handlers call this first. 421 Misdirected Request is
   deliberately NOT in {!Client.retryable_status}: retrying the same
   replica can never succeed, so a plain client fails fast while one
   opted into [~follow_primary] reconnects to the advertised address. *)
let reject_read_only ctx =
  match ctx.role with
  | Primary -> ()
  | Replica r ->
      let primary = Replica.primary_address r in
      raise
        (Reply
           (error_response 421
              ~headers:[ ("Retry-After", "1") ]
              ~extra:[ ("primary", Jsonlight.String primary) ]
              ~category:"read_only"
              (Printf.sprintf
                 "this daemon is a read replica; send mutations to the \
                  primary at %s"
                 primary)))

let parse_body (request : Http.request) =
  if request.Http.body = "" then Jsonlight.Obj []
  else
    match Jsonlight.of_string request.Http.body with
    | Ok json -> json
    | Error message ->
        reply_error 400 ~category:"bad_request"
          (Printf.sprintf "request body is not valid JSON: %s" message)

let required_string json field =
  match Option.bind (Jsonlight.member field json) Jsonlight.string_opt with
  | Some s -> s
  | None ->
      reply_error 400 ~category:"bad_request"
        (Printf.sprintf "missing or non-string field %S" field)

let optional_string json field =
  Option.bind (Jsonlight.member field json) Jsonlight.string_opt

let number_opt = function
  | Jsonlight.Int i -> Some (float_of_int i)
  | Jsonlight.Float f -> Some f
  | Jsonlight.Null | Jsonlight.Bool _ | Jsonlight.String _ | Jsonlight.List _
  | Jsonlight.Obj _ ->
      None

let optional_number json field ~default =
  match Jsonlight.member field json with
  | None -> default
  | Some v -> (
      match number_opt v with
      | Some f -> f
      | None ->
          reply_error 400 ~category:"bad_request"
            (Printf.sprintf "field %S must be a number" field))

let optional_int json field ~default =
  match Jsonlight.member field json with
  | None -> default
  | Some v -> (
      match Jsonlight.int_opt v with
      | Some i -> i
      | None ->
          reply_error 400 ~category:"bad_request"
            (Printf.sprintf "field %S must be an integer" field))

(* ------------------------------------------------------------------ *)
(* Shared renderings                                                  *)
(* ------------------------------------------------------------------ *)

let json_of_stats (s : Core.Sosae.Session.stats) =
  Jsonlight.Obj
    [
      ("evaluations", Jsonlight.Int s.Core.Sosae.Session.evaluations);
      ("cache_hits", Jsonlight.Int s.Core.Sosae.Session.cache_hits);
      ("replays", Jsonlight.Int s.Core.Sosae.Session.replays);
      ("replay_hits", Jsonlight.Int s.Core.Sosae.Session.replay_hits);
    ]

let json_of_architecture (a : Adl.Structure.t) =
  Jsonlight.Obj
    [
      ("id", Jsonlight.String a.Adl.Structure.arch_id);
      ("components", Jsonlight.Int (List.length a.Adl.Structure.components));
      ("connectors", Jsonlight.Int (List.length a.Adl.Structure.connectors));
      ("links", Jsonlight.Int (List.length a.Adl.Structure.links));
    ]

let with_session ctx id f =
  match Registry.with_session ctx.registry id f with
  | Ok response -> response
  | Error `Not_found ->
      error_response 404 ~category:"not_found"
        (Printf.sprintf "no session named %S" id)

(* Stats deltas bracket the evaluation so concurrent clients each see
   what *their* call cost, not the session's lifetime totals. The
   session lock is held across the bracket (Registry.with_session), so
   the delta cannot interleave with another client's evaluation. *)
let bracket_stats session f =
  let before = Core.Sosae.Session.stats session in
  let result = f () in
  let after = Core.Sosae.Session.stats session in
  let d get = get after - get before in
  let re_evaluated = d (fun s -> s.Core.Sosae.Session.evaluations) in
  let served_from_cache =
    d (fun s -> s.Core.Sosae.Session.cache_hits)
    + d (fun s -> s.Core.Sosae.Session.replay_hits)
  in
  (result, re_evaluated, served_from_cache)

(* ------------------------------------------------------------------ *)
(* Handlers                                                           *)
(* ------------------------------------------------------------------ *)

let health ctx _request _params =
  json_reply ctx
    (Jsonlight.Obj
       [
         ("status", Jsonlight.String "ok");
         ("version", Jsonlight.String Core.Sosae.version);
         ("sessions", Jsonlight.Int (List.length (Registry.ids ctx.registry)));
       ])

let metrics ctx _request _params =
  let totals = ref Core.Sosae.Session.{ evaluations = 0; cache_hits = 0; replays = 0; replay_hits = 0 } in
  let ids = Registry.ids ctx.registry in
  List.iter
    (fun id ->
      match
        Registry.with_session ctx.registry id (fun s -> Core.Sosae.Session.stats s)
      with
      | Error `Not_found -> ()
      | Ok s ->
          let t = !totals in
          totals :=
            Core.Sosae.Session.
              {
                evaluations = t.evaluations + s.evaluations;
                cache_hits = t.cache_hits + s.cache_hits;
                replays = t.replays + s.replays;
                replay_hits = t.replay_hits + s.replay_hits;
              })
    ids;
  with_writer ctx (fun w ->
      Metrics.write ctx.metrics
        ~extra:
          [
            ("sessions", Jsonlight.Int (List.length ids));
            ("cache", json_of_stats !totals);
          ]
        w;
      Http.response
        ~headers:[ ("Content-Type", "application/json") ]
        200
        (Jsonlight.Writer.contents w))

let list_sessions ctx _request _params =
  let sessions =
    List.filter_map
      (fun id ->
        match
          Registry.with_session ctx.registry id (fun s ->
              Jsonlight.Obj
                [
                  ("id", Jsonlight.String id);
                  ("stats", json_of_stats (Core.Sosae.Session.stats s));
                ])
        with
        | Ok json -> Some json
        | Error `Not_found -> None)
      (Registry.ids ctx.registry)
  in
  json_reply ctx (Jsonlight.Obj [ ("sessions", Jsonlight.List sessions) ])

let parse_policy json =
  match optional_string json "policy" with
  | None | Some "routed" -> Adl.Graph.Routed
  | Some "direct" -> Adl.Graph.Direct
  | Some p ->
      reply_error 400 ~category:"bad_request"
        (Printf.sprintf "unknown policy %S (expected \"routed\" or \"direct\")" p)

(* Alongside the project, the XML strings it was parsed from (when the
   request carried them inline) — handed to [Registry.add ~source] so
   the journal payload is those exact bytes, not a re-serialization. *)
let load_create_project json =
  match Jsonlight.member "paths" json with
  | Some paths ->
      let path field = required_string paths field in
      Result.map
        (fun project -> (project, None))
        (Core.Sosae.load_project_result ~scenarios:(path "scenarios")
           ~architecture:(path "architecture") ~mapping:(path "mapping"))
  | None ->
      let scenarios = required_string json "scenarios" in
      let architecture = required_string json "architecture" in
      let mapping = required_string json "mapping" in
      Result.map
        (fun project -> (project, Some (scenarios, architecture, mapping)))
        (Core.Sosae.project_of_strings ~scenarios ~architecture ~mapping)

let create_session ctx (request : Http.request) _params =
  reject_read_only ctx;
  let json = parse_body request in
  let id = required_string json "id" in
  let policy = parse_policy json in
  match load_create_project json with
  | Error e ->
      error_response 400 ~category:(load_error_category e)
        (Core.Sosae.load_error_to_string e)
  | Ok (project, source) -> (
      let config = Walkthrough.Engine.config ~policy () in
      match Registry.add ctx.registry ~id ~config ?source project with
      | Error `Conflict ->
          error_response 409 ~category:"conflict"
            (Printf.sprintf "session %S already exists" id)
      | Ok () ->
          json_reply ctx ~status:201
            (Jsonlight.Obj
               [
                 ("id", Jsonlight.String id);
                 ( "scenarios",
                   Jsonlight.Int
                     (List.length
                        project.Core.Sosae.scenarios.Scenarioml.Scen.scenarios) );
                 ( "architecture",
                   json_of_architecture project.Core.Sosae.architecture );
               ]))

let delete_session ctx _request params =
  reject_read_only ctx;
  let id = Router.param params "id" in
  if Registry.remove ctx.registry id then
    json_reply ctx (Jsonlight.Obj [ ("deleted", Jsonlight.String id) ])
  else
    error_response 404 ~category:"not_found"
      (Printf.sprintf "no session named %S" id)

let session_stats ctx _request params =
  let id = Router.param params "id" in
  with_session ctx id (fun s ->
      json_reply ctx
        (Jsonlight.Obj
           [
             ("id", Jsonlight.String id);
             ("stats", json_of_stats (Core.Sosae.Session.stats s));
             ( "architecture",
               json_of_architecture
                 (Core.Sosae.Session.project s).Core.Sosae.architecture );
           ]))

let parse_sub_suite json =
  match Jsonlight.member "scenarios" json with
  | None -> None
  | Some (Jsonlight.List items) ->
      Some
        (List.map
           (fun item ->
             match Jsonlight.string_opt item with
             | Some s -> s
             | None ->
                 reply_error 400 ~category:"bad_request"
                   "\"scenarios\" must be a list of scenario ids")
           items)
  | Some _ ->
      reply_error 400 ~category:"bad_request"
        "\"scenarios\" must be a list of scenario ids"

type eval_outcome =
  | Full_suite of {
      etag : string;
      result : string;  (** the serialized set result, cache-spliced *)
      re_evaluated : int;
      served_from_cache : int;
    }
  | Sub_suite of {
      results : Jsonlight.t list;
      re_evaluated : int;
      served_from_cache : int;
    }

(* One evaluate body against [session], whose lock the caller holds.
   The full-suite path still runs [Session.evaluate] — warm it only
   serves cached verdicts, and the per-call stats bracket it — but the
   dominant warm cost, rendering the whole result tree to JSON, is paid
   once per architecture revision: the serialized string is cached in
   the registry against {!Core.Sosae.Session.revision} and spliced
   verbatim into later responses. Same revision means same architecture
   means bit-identical verdicts, so the splice is exact. *)
let evaluate_once ctx ~id ~jobs session json =
  match parse_sub_suite json with
  | None ->
      let revision = Core.Sosae.Session.revision session in
      let cached = Registry.cached_response ctx.registry id ~session ~revision in
      let result, re_evaluated, served_from_cache =
        bracket_stats session (fun () ->
            Core.Sosae.Session.evaluate ~jobs session)
      in
      let etag, body =
        match cached with
        | Some (etag, body) -> (etag, body)
        | None ->
            let body =
              Jsonlight.to_string (Walkthrough.Report.json_of_set_result result)
            in
            (Registry.cache_response ctx.registry id ~session ~revision ~body, body)
      in
      Full_suite { etag; result = body; re_evaluated; served_from_cache }
  | Some scenario_ids ->
      let results, re_evaluated, served_from_cache =
        bracket_stats session (fun () ->
            List.map
              (fun sid ->
                match Core.Sosae.Session.evaluate_scenario session sid with
                | Some r -> Walkthrough.Report.json_of_scenario_result r
                | None ->
                    reply_error 404 ~category:"not_found"
                      (Printf.sprintf "no scenario %S in session %S" sid id))
              scenario_ids)
      in
      Sub_suite { results; re_evaluated; served_from_cache }

(* Writes exactly what the pre-cache handler answered:
   [{"result":…,"re_evaluated":n,"served_from_cache":n}] (full suite)
   or the same with ["results"] (sub-suite). *)
let write_outcome w outcome =
  let counters re_evaluated served_from_cache =
    Jsonlight.Writer.raw w ",\"re_evaluated\":";
    Jsonlight.Writer.int w re_evaluated;
    Jsonlight.Writer.raw w ",\"served_from_cache\":";
    Jsonlight.Writer.int w served_from_cache;
    Jsonlight.Writer.char w '}'
  in
  match outcome with
  | Full_suite { result; re_evaluated; served_from_cache; etag = _ } ->
      Jsonlight.Writer.raw w "{\"result\":";
      Jsonlight.Writer.raw w result;
      counters re_evaluated served_from_cache
  | Sub_suite { results; re_evaluated; served_from_cache } ->
      Jsonlight.Writer.raw w "{\"results\":";
      Jsonlight.Writer.json w (Jsonlight.List results);
      counters re_evaluated served_from_cache

let evaluate ctx (request : Http.request) params =
  let id = Router.param params "id" in
  let json = parse_body request in
  let jobs = Registry.jobs ctx.registry in
  with_session ctx id (fun session ->
      match evaluate_once ctx ~id ~jobs session json with
      | Full_suite { etag; _ }
        when Http.if_none_match_matches request ~etag ->
          Http.response ~headers:[ ("ETag", etag) ] 304 ""
      | outcome ->
          let headers =
            ("Content-Type", "application/json")
            ::
            (match outcome with
            | Full_suite { etag; _ } -> [ ("ETag", etag) ]
            | Sub_suite _ -> [])
          in
          with_writer ctx (fun w ->
              write_outcome w outcome;
              Http.response ~headers 200 (Jsonlight.Writer.contents w)))

(* POST /sessions/:id/evaluate/batch — many evaluate bodies through one
   request: the session lock is taken once, responses render into one
   reused buffer, and the client pays dispatch + framing once for the
   whole batch. Each element of "suites" is shaped exactly like a
   one-shot evaluate body; each element of "responses" is byte-for-byte
   the matching one-shot 200 body, in order. All-or-nothing on errors:
   a bad body or unknown scenario id fails the whole batch with the
   one-shot status. *)
let evaluate_batch ctx (request : Http.request) params =
  let id = Router.param params "id" in
  let json = parse_body request in
  let suites =
    match Jsonlight.member "suites" json with
    | Some (Jsonlight.List (_ :: _ as items)) -> items
    | Some (Jsonlight.List []) ->
        reply_error 400 ~category:"bad_request" "\"suites\" must not be empty"
    | Some _ | None ->
        reply_error 400 ~category:"bad_request"
          "missing \"suites\": a non-empty list of evaluate request bodies"
  in
  if List.length suites > 1024 then
    reply_error 400 ~category:"bad_request"
      "at most 1024 suites per batch request";
  let jobs = Registry.jobs ctx.registry in
  with_session ctx id (fun session ->
      let outcomes =
        List.map (fun body -> evaluate_once ctx ~id ~jobs session body) suites
      in
      with_writer ctx (fun w ->
          Jsonlight.Writer.raw w "{\"responses\":[";
          List.iteri
            (fun i outcome ->
              if i > 0 then Jsonlight.Writer.char w ',';
              write_outcome w outcome)
            outcomes;
          Jsonlight.Writer.raw w "]}";
          Http.response
            ~headers:[ ("Content-Type", "application/json") ]
            200
            (Jsonlight.Writer.contents w)))

(* Diff ops arrive as [{"op":"remove_link","id":...}] objects. The
   supported vocabulary is the removal/rename subset of {!Adl.Diff.op}
   plus "excise" — additions need full element descriptions, which the
   wire format does not model yet. "excise" expands to one Remove_link
   per link joining the two named elements, in either orientation
   (Fig. 4's experiment verbatim). *)
let parse_diff_ops session json =
  let architecture =
    (Core.Sosae.Session.project session).Core.Sosae.architecture
  in
  let excise_ops from_ to_ =
    let between (l : Adl.Structure.link) =
      let a = l.Adl.Structure.link_from.Adl.Structure.anchor
      and b = l.Adl.Structure.link_to.Adl.Structure.anchor in
      (String.equal a from_ && String.equal b to_)
      || (String.equal a to_ && String.equal b from_)
    in
    match List.filter between architecture.Adl.Structure.links with
    | [] ->
        reply_error 409 ~category:"apply_error"
          (Printf.sprintf "no link between %S and %S" from_ to_)
    | links ->
        List.map
          (fun (l : Adl.Structure.link) ->
            Adl.Diff.Remove_link l.Adl.Structure.link_id)
          links
  in
  let parse_op op_json =
    match optional_string op_json "op" with
    | None ->
        reply_error 400 ~category:"bad_request"
          "each diff op needs a string \"op\" field"
    | Some "remove_link" ->
        [ Adl.Diff.Remove_link (required_string op_json "id") ]
    | Some "remove_component" ->
        [ Adl.Diff.Remove_component (required_string op_json "id") ]
    | Some "remove_connector" ->
        [ Adl.Diff.Remove_connector (required_string op_json "id") ]
    | Some "rename" ->
        [
          Adl.Diff.Rename_element
            {
              old_id = required_string op_json "old_id";
              new_id = required_string op_json "new_id";
            };
        ]
    | Some "excise" ->
        excise_ops (required_string op_json "from") (required_string op_json "to")
    | Some op ->
        reply_error 400 ~category:"bad_request"
          (Printf.sprintf
             "unknown diff op %S (supported: remove_link, remove_component, \
              remove_connector, rename, excise)"
             op)
  in
  match Jsonlight.member "ops" json with
  | Some (Jsonlight.List ops) -> List.concat_map parse_op ops
  | Some _ | None ->
      reply_error 400 ~category:"bad_request" "missing \"ops\" list"

let diff ctx (request : Http.request) params =
  reject_read_only ctx;
  let id = Router.param params "id" in
  let json = parse_body request in
  (* the registry applies and journals the ops atomically; the parse
     callback runs under the session lock because excise expansion
     reads the current link set *)
  match
    Registry.apply_diff ctx.registry id ~ops:(fun session ->
        parse_diff_ops session json)
  with
  | Error `Not_found ->
      error_response 404 ~category:"not_found"
        (Printf.sprintf "no session named %S" id)
  | Error (`Apply_error message) ->
      error_response 409 ~category:"apply_error" message
  | Ok ops ->
      with_session ctx id (fun session ->
          json_reply ctx
            (Jsonlight.Obj
               [
                 ("applied", Jsonlight.Int (List.length ops));
                 ( "architecture",
                   json_of_architecture
                     (Core.Sosae.Session.project session).Core.Sosae.architecture
                 );
               ]))

(* POST /sessions/:id/diff/preview — expand and validate a diff body
   (including excise, which reads the current link set) without
   applying anything. A read, so replicas serve it: a client can dry-
   run an evolution against a replica before sending it to the
   primary. *)
let diff_preview ctx (request : Http.request) params =
  let id = Router.param params "id" in
  let json = parse_body request in
  with_session ctx id (fun session ->
      let ops = parse_diff_ops session json in
      let encoded =
        match Persist.encode_ops ops with
        | Some j -> j
        (* parse_diff_ops only produces removals/renames, which all
           have a wire encoding *)
        | None -> Jsonlight.List []
      in
      json_reply ctx
        (Jsonlight.Obj
           [ ("would_apply", Jsonlight.Int (List.length ops)); ("ops", encoded) ]))

(* ------------------------------------------------------------------ *)
(* Replication                                                        *)
(* ------------------------------------------------------------------ *)

(* GET /replication — the role and lag surface, one JSON object for
   either role. *)
let replication ctx _request _params =
  let int64 v = Jsonlight.Int (Int64.to_int v) in
  (* how the journal is being served downstream: cursor-cache
     hits/misses, snapshot resets, and each cached follower cursor's
     distance behind the covered frontier — absent until someone has
     actually fetched. Any journaling node reports it: a primary, but
     also a durable replica feeding chained replicas. *)
  let ship_fields p =
    let s = Persist.ship_stats p in
    if s.Store.Ship.cursor_hits + s.Store.Ship.cursor_misses = 0 then []
    else
      [
        ( "ship",
          Metrics.ship_json
            {
              Metrics.cursor_hits = s.Store.Ship.cursor_hits;
              cursor_misses = s.Store.Ship.cursor_misses;
              reset_batches = s.Store.Ship.reset_batches;
              cursor_lags = s.Store.Ship.cursor_lags;
            } );
      ]
  in
  let fields =
    match ctx.role with
    | Replica r ->
        [
          ("role", Jsonlight.String "replica");
          ("primary", Jsonlight.String (Replica.primary_address r));
          ("applied_seq", int64 (Replica.applied_seq r));
          ("covered_seq", int64 (Replica.covered_seq r));
          ("lag", int64 (Replica.lag r));
        ]
        @ (match Replica.last_error r with
          | Some e -> [ ("last_error", Jsonlight.String e) ]
          | None -> [])
        @ (match Registry.persist ctx.registry with
          | Some p -> ship_fields p
          | None -> [])
    | Primary -> (
        ("role", Jsonlight.String "primary")
        ::
        (match Registry.persist ctx.registry with
        | Some p ->
            let covered = Persist.covered_seq p in
            (* a primary applies its own writes before journaling them *)
            [
              ("applied_seq", int64 covered);
              ("covered_seq", int64 covered);
              ("lag", Jsonlight.Int 0);
            ]
            @ ship_fields p
        | None -> []))
  in
  json_reply ctx (Jsonlight.Obj fields)

(* GET /replication/log?after=N — the ship endpoint: raw framed
   journal records, gated at the covered sequence number. The body is
   bytes, not JSON; the covered seq and the reset flag ride in
   headers so the replica never parses the payload twice. *)
let replication_log ctx (request : Http.request) _params =
  match Registry.persist ctx.registry with
  | None ->
      error_response 409 ~category:"no_journal"
        "this daemon has no journal to ship (started without --data-dir)"
  | Some p ->
      let after =
        match List.assoc_opt "after" request.Http.query with
        | None -> 0L
        | Some v -> (
            match Int64.of_string_opt v with
            | Some n when n >= 0L -> n
            | Some _ | None ->
                reply_error 400 ~category:"bad_request"
                  "\"after\" must be a non-negative integer")
      in
      let max_bytes =
        match List.assoc_opt "max_bytes" request.Http.query with
        | None -> None
        | Some v -> (
            match int_of_string_opt v with
            | Some n when n > 0 -> Some n
            | Some _ | None ->
                reply_error 400 ~category:"bad_request"
                  "\"max_bytes\" must be a positive integer")
      in
      let batch = Persist.ship ?max_bytes p ~after in
      Http.response
        ~headers:
          ([
             ("Content-Type", "application/octet-stream");
             ("X-Sosae-Covered", Int64.to_string batch.Store.Ship.covered);
           ]
          @ if batch.Store.Ship.reset then [ ("X-Sosae-Reset", "1") ] else [])
        200 batch.Store.Ship.data

(* GET /replication/snapshot — the catch-up endpoint: the current
   snapshot file's raw frames (meta record first), exactly what a
   reset batch carries, so a fresh replica bootstraps in O(live state)
   and then tails from the covered sequence in X-Sosae-Covered. 404
   when no compaction has produced a snapshot yet (the replica falls
   back to tailing the journal from the top). *)
let replication_snapshot ctx _request _params =
  match Registry.persist ctx.registry with
  | None ->
      error_response 409 ~category:"no_journal"
        "this daemon has no journal to ship (started without --data-dir)"
  | Some p -> (
      match Persist.snapshot p with
      | None ->
          error_response 404 ~category:"not_found"
            "no snapshot yet (nothing has been compacted)"
      | Some (covers, data) ->
          Http.response
            ~headers:
              [
                ("Content-Type", "application/octet-stream");
                ("X-Sosae-Covered", Int64.to_string covers);
                ("X-Sosae-Reset", "1");
              ]
            200 data)

(* ------------------------------------------------------------------ *)
(* Simulation campaigns                                                *)
(* ------------------------------------------------------------------ *)

(* A sampling range arrives either as one number (degenerate range) or
   as {"lo": x, "hi": y}. *)
let range_of json field =
  let bad () =
    reply_error 400 ~category:"bad_request"
      (Printf.sprintf "field %S must be a number or a {\"lo\", \"hi\"} object" field)
  in
  match Jsonlight.member field json with
  | None ->
      reply_error 400 ~category:"bad_request"
        (Printf.sprintf "missing range field %S" field)
  | Some v -> (
      match number_opt v with
      | Some f -> Dsim.Campaign.fixed f
      | None -> (
          match v with
          | Jsonlight.Obj _ ->
              let bound b =
                match Option.bind (Jsonlight.member b v) number_opt with
                | Some x -> x
                | None -> bad ()
              in
              { Dsim.Campaign.lo = bound "lo"; hi = bound "hi" }
          | _ -> bad ()))

let parse_fault json =
  match optional_string json "kind" with
  | Some "crash" ->
      Dsim.Campaign.Crash_window
        {
          node = required_string json "node";
          at = range_of json "at";
          downtime = range_of json "downtime";
        }
  | Some "partition" ->
      let groups =
        match Jsonlight.member "groups" json with
        | Some (Jsonlight.List gs) ->
            List.map
              (fun g ->
                match Jsonlight.list_opt g with
                | Some items ->
                    List.map
                      (fun item ->
                        match Jsonlight.string_opt item with
                        | Some s -> s
                        | None ->
                            reply_error 400 ~category:"bad_request"
                              "partition groups must be lists of node ids")
                      items
                | None ->
                    reply_error 400 ~category:"bad_request"
                      "partition groups must be lists of node ids")
              gs
        | Some _ | None ->
            reply_error 400 ~category:"bad_request"
              "a partition fault needs a \"groups\" list of lists"
      in
      Dsim.Campaign.Partition_window
        { groups; from_ = range_of json "from"; width = range_of json "width" }
  | Some kind ->
      reply_error 400 ~category:"bad_request"
        (Printf.sprintf "unknown fault kind %S (supported: crash, partition)" kind)
  | None ->
      reply_error 400 ~category:"bad_request" "each fault needs a string \"kind\" field"

let parse_goal json =
  match Jsonlight.member "goal" json with
  | Some goal -> (
      let component = required_string goal "component" in
      match (optional_string goal "payload", optional_string goal "state") with
      | Some payload, None -> Dsim.Campaign.Delivered { component; payload }
      | None, Some state -> Dsim.Campaign.Chart_state { component; state }
      | Some _, Some _ | None, None ->
          reply_error 400 ~category:"bad_request"
            "\"goal\" needs exactly one of \"payload\" or \"state\"")
  | None -> reply_error 400 ~category:"bad_request" "missing \"goal\" object"

let parse_stimuli json =
  match Jsonlight.member "stimuli" json with
  | Some (Jsonlight.List (_ :: _ as items)) ->
      List.map
        (fun s ->
          {
            Dsim.Campaign.at = optional_number s "at" ~default:0.0;
            component = required_string s "component";
            trigger = required_string s "trigger";
          })
        items
  | Some _ | None ->
      reply_error 400 ~category:"bad_request"
        "missing non-empty \"stimuli\" list of {component, trigger, at?}"

(* POST /sessions/:id/simulate — a Monte-Carlo dependability campaign
   over the session's *current* architecture (so diff-then-simulate
   measures the edited system). The behavioral bundle, stimuli, goal,
   and fault windows come from the request body; trials fan out on a
   domain pool sized like evaluation ([Registry.jobs]) unless the body
   says otherwise. Responses are deterministic for a given seed —
   timing is reported separately in "elapsed_ms". *)
let simulate ctx (request : Http.request) params =
  let id = Router.param params "id" in
  let json = parse_body request in
  let charts =
    match Statechart.Bundle.of_string (required_string json "behavior") with
    | bundle -> bundle.Statechart.Bundle.charts
    | exception Statechart.Bundle.Malformed message ->
        reply_error 400 ~category:"xml_error"
          (Printf.sprintf "behavior bundle: %s" message)
  in
  let stimuli = parse_stimuli json in
  let goal = parse_goal json in
  let faults =
    match Jsonlight.member "faults" json with
    | None -> []
    | Some (Jsonlight.List fs) -> List.map parse_fault fs
    | Some _ -> reply_error 400 ~category:"bad_request" "\"faults\" must be a list"
  in
  let trials = optional_int json "trials" ~default:100 in
  if trials < 1 || trials > 1_000_000 then
    reply_error 400 ~category:"bad_request" "\"trials\" must be in [1, 1000000]";
  let seed = optional_int json "seed" ~default:0 in
  let horizon =
    match Jsonlight.member "horizon" json with
    | None -> None
    | Some v -> (
        match number_opt v with
        | Some f -> Some f
        | None -> reply_error 400 ~category:"bad_request" "\"horizon\" must be a number")
  in
  let watched =
    match Jsonlight.member "watched" json with
    | None -> None
    | Some (Jsonlight.List items) ->
        Some
          (List.map
             (fun item ->
               match Jsonlight.string_opt item with
               | Some s -> s
               | None ->
                   reply_error 400 ~category:"bad_request"
                     "\"watched\" must be a list of node ids")
             items)
    | Some _ ->
        reply_error 400 ~category:"bad_request" "\"watched\" must be a list of node ids"
  in
  let config =
    {
      Dsim.Network.default_config with
      default_latency = optional_number json "latency" ~default:1.0;
      jitter = optional_number json "jitter" ~default:0.0;
      drop_probability = optional_number json "loss" ~default:0.0;
    }
  in
  let jobs =
    match optional_int json "jobs" ~default:(Registry.jobs ctx.registry) with
    | j when j >= 1 -> j
    | _ -> reply_error 400 ~category:"bad_request" "\"jobs\" must be >= 1"
  in
  with_session ctx id (fun session ->
      let architecture =
        (Core.Sosae.Session.project session).Core.Sosae.architecture
      in
      let campaign =
        Dsim.Campaign.make ~config ?horizon ~faults ?watched ~architecture ~charts
          ~stimuli ~goal ()
      in
      let started = Unix.gettimeofday () in
      let report = Dsim.Campaign.report ~jobs ~seed ~trials campaign in
      let elapsed = Unix.gettimeofday () -. started in
      json_reply ctx
        (Jsonlight.Obj
           [
             ("trials", Jsonlight.Int trials);
             ("seed", Jsonlight.Int seed);
             ("report", Dsim.Stats.to_json report);
             ("elapsed_ms", Jsonlight.Float (1000.0 *. elapsed));
           ]))

(* ------------------------------------------------------------------ *)
(* Dispatch                                                           *)
(* ------------------------------------------------------------------ *)

let routes : ctx Router.route list =
  [
    Router.route Http.GET "/health" health;
    Router.route Http.GET "/metrics" metrics;
    Router.route Http.GET "/replication" replication;
    Router.route Http.GET "/replication/log" replication_log;
    Router.route Http.GET "/replication/snapshot" replication_snapshot;
    Router.route Http.GET "/sessions" list_sessions;
    Router.route Http.POST "/sessions" create_session;
    Router.route Http.GET "/sessions/:id/stats" session_stats;
    Router.route Http.POST "/sessions/:id/evaluate" evaluate;
    Router.route Http.POST "/sessions/:id/evaluate/batch" evaluate_batch;
    Router.route Http.POST "/sessions/:id/simulate" simulate;
    Router.route Http.POST "/sessions/:id/diff" diff;
    Router.route Http.POST "/sessions/:id/diff/preview" diff_preview;
    Router.route Http.DELETE "/sessions/:id" delete_session;
  ]

let handle ctx request =
  match Router.dispatch routes ctx request with
  | `Response (pattern, response) -> (pattern, response)
  | `Not_found ->
      ( "<unmatched>",
        error_response 404 ~category:"not_found"
          (Printf.sprintf "no such endpoint: %s" request.Http.target) )
  | `Method_not_allowed meths ->
      let allow =
        String.concat ", " (List.map Http.meth_to_string meths)
      in
      ( "<unmatched>",
        error_response 405 ~category:"method_not_allowed"
          ~headers:[ ("Allow", allow) ]
          (Printf.sprintf "%s does not support %s (allowed: %s)"
             request.Http.target
             (Http.meth_to_string request.Http.meth)
             allow) )
  | exception Reply response -> ("<error>", response)
  | exception e ->
      ( "<error>",
        error_response 500 ~category:"internal"
          (Printf.sprintf "unhandled server error: %s" (Printexc.to_string e)) )
