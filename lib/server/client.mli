(** A minimal blocking HTTP/1.1 client, just enough to talk to
    {!Daemon}: one keep-alive connection, [Content-Length]-framed
    responses. Used by the e2e tests, the serve benchmark, and the CI
    smoke script — not a general-purpose client. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP to [host] (default 127.0.0.1). The host is resolved with
    [getaddrinfo], so names like ["localhost"] work as well as numeric
    addresses. *)

val connect_unix : string -> t
(** Unix-domain socket at the given path. *)

val of_fd : Unix.file_descr -> t
(** Wrap an already-connected descriptor (e.g. one end of a
    socketpair) — lets tests drive the protocol machinery with no
    listener. The client takes ownership: {!close} closes it. *)

type response = { status : int; headers : (string * string) list; body : string }

val request :
  t ->
  ?headers:(string * string) list ->
  ?body:string ->
  Http.meth ->
  string ->
  (response, string) result
(** [request t meth target] sends one request and reads the response.
    A [Content-Length] header is added when [body] is given. A [HEAD]
    response is read as header-only (its [Content-Length] names the
    GET body it does not carry). [Error] means the connection is
    unusable (closed, timed out, or the response did not parse) —
    reconnect to retry. Never raises. *)

val get : t -> string -> (response, string) result

val post : t -> string -> body:string -> (response, string) result

val close : t -> unit

(** {2 Retries}

    Restart-tolerant calls: {!with_retry} reconnects and retries
    through the window where a daemon is down or draining. *)

type retry_policy = {
  max_attempts : int;  (** total tries, including the first *)
  base_delay : float;  (** seconds before the first retry *)
  multiplier : float;  (** exponential growth factor *)
  max_delay : float;  (** cap on any single delay, seconds *)
  jitter : float;  (** 0..1 — each delay is shrunk by up to this
                       fraction of itself *)
}

val default_policy : retry_policy
(** 6 attempts, 50 ms base, doubling, 2 s cap, 0.2 jitter — worst
    case a little under 4 s of waiting. *)

val retryable_status : int -> bool
(** [true] for 408 (request timeout), 429 (overloaded) and 503.
    Deliberately NOT 421 (a replica's read-only rejection): retrying
    the same replica can never succeed, so plain calls fail fast and
    only [~follow_primary] redirects. Exception: a 421 carrying
    [Retry-After] is retried by {!with_retry}/{!call} after at least
    that many seconds — the server is saying the rejection is
    transient (a promotion in flight), not structural. *)

val retry_after : response -> float option
(** The server-sent [Retry-After] header in seconds, when present and
    numeric. {!with_retry} and {!call} use it as a floor under every
    backoff sleep: the server knows its own drain or promotion
    timeline better than the client's jitter schedule. *)

val read_only_primary : response -> string option
(** [Some "HOST:PORT"] when the response is a replica's [421]
    [read_only] rejection advertising its primary. *)

val backoff_schedule : ?seed:int -> retry_policy -> float list
(** The exact delays {!with_retry} would sleep with the same [seed] —
    [max_attempts - 1] of them. Deterministic, for tests. *)

(** {2 Persistent connections}

    {!with_retry} opens and closes a connection per call — correct, but
    it pays the TCP handshake every time. A {!persistent} handle keeps
    one keep-alive connection open across calls and composes the same
    backoff/reconnect behavior into each call: the warm path is a
    single request/response on an already-open socket. *)

type persistent

val persistent :
  ?policy:retry_policy ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  ?follow_primary:bool ->
  ?connect_to:(string * int -> t) ->
  (unit -> t) ->
  persistent
(** [persistent connect] — no connection is opened until the first
    {!call}. [policy], [seed], and [sleep] mean what they mean for
    {!with_retry}; the jitter schedule is shared across the handle's
    lifetime. With [follow_primary] (default [false]), a replica's
    [421] [read_only] rejection makes the handle reconnect to the
    advertised primary — sticky for the handle's lifetime — instead of
    returning the 421. [connect_to] (default: a TCP {!connect}) opens
    the connection to a redirect target, injectable so follow-primary
    behavior is testable without sockets. Not thread-safe: one handle
    per thread. *)

val call : persistent -> (t -> (response, string) result) -> (response, string) result
(** Run [f] on the held connection, opening or reopening it as needed.
    A torn connection (or a failed [connect]) drops the socket, backs
    off, and retries like {!with_retry}; a {!retryable_status} response
    backs off and retries on the same connection; any other response is
    returned and the connection stays open for the next [call]. A
    response carrying [Connection: close] (the daemon's per-connection
    request cap, or a drain) closes the socket eagerly so the next
    [call] reconnects instead of failing into a retry. Note the retry
    semantics assume [f] is safe to repeat, exactly as {!with_retry}
    does. *)

val persistent_close : persistent -> unit
(** Close the held connection, if any. The handle stays usable — the
    next {!call} reconnects. *)

val with_retry :
  ?policy:retry_policy ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  ?follow_primary:bool ->
  ?connect_to:(string * int -> t) ->
  connect:(unit -> t) ->
  (t -> (response, string) result) ->
  (response, string) result
(** [with_retry ~connect f] opens a fresh connection, runs [f], and
    closes it. A refused/torn connection ([connect] raising
    [Unix_error], or [f] returning [Error]) or a {!retryable_status}
    response triggers a capped, jittered exponential backoff and a
    reconnect, up to [policy.max_attempts] tries; the final outcome is
    returned as-is when retries run out. [seed] fixes the jitter
    schedule; [sleep] (default [Unix.sleepf]) is injectable so tests
    can record delays instead of waiting. With [follow_primary]
    (default [false]), a [421] [read_only] response redirects the
    remaining attempts to the advertised primary — the redirect counts
    as an attempt but skips the backoff sleep. [connect_to] (default:
    a TCP {!connect}) opens the redirect connection; if the advertised
    primary is itself unreachable the remaining attempts back off and
    fail like any refused connect — never an infinite follow loop. *)

(** {2 Replication status} *)

type replication = {
  role : string;  (** ["primary"] or ["replica"] *)
  primary : string option;  (** upstream address, when a replica *)
  applied_seq : int64;
  covered_seq : int64;
  lag : int64;
}

val replication : t -> (replication, string) result
(** [GET /replication], decoded. Sequence fields are [0L] when the
    server omits them (a primary without a journal). *)

(** {2 Replica sets}

    Client-side failover over a fleet of daemons — a primary plus its
    (possibly chained) replicas. Reads spread round-robin across the
    healthy endpoints and fail over to a sibling when a hop dies;
    mutations chase the primary, wherever promotion has moved it. One
    connection per operation: the abstraction is about placement, not
    connection reuse. Not thread-safe: one handle per thread. *)

type replica_set

val replica_set :
  ?policy:retry_policy ->
  ?seed:int ->
  ?sleep:(float -> unit) ->
  ?connect_to:(string * int -> t) ->
  ?max_lag:int64 ->
  (string * int) list ->
  replica_set
(** [replica_set endpoints] — no connection is opened until the first
    operation (which runs {!probe} if none has). [policy], [seed], and
    [sleep] govern the between-pass backoff exactly as in
    {!with_retry}; [connect_to] opens every connection, injectable for
    tests. [max_lag] (default 1024): a replica reporting more shipped
    records outstanding than this is skipped by reads until a probe
    sees it caught up. @raise Invalid_argument on an empty list. *)

val probe : replica_set -> unit
(** One [GET /replication] per endpoint: refresh reachability, role,
    and lag, and learn where the primary is (an endpoint answering as
    primary wins; failing that, a replica's advertised upstream).
    Runs automatically before the first operation and after a fully
    failed read pass; call it explicitly after reshaping the fleet. *)

val healthy_endpoints : replica_set -> (string * int) list
(** The endpoints the last probe (or operation) left marked healthy:
    reachable, and — for replicas — within [max_lag]. *)

val read :
  replica_set -> (t -> (response, string) result) -> (response, string) result
(** Run one read, trying healthy endpoints round-robin. A hop that
    dies mid-request (connect refused, torn connection) is marked
    unhealthy and the read moves to the next sibling back-to-back —
    no backoff between siblings, they are different hosts. When a
    whole pass fails (or only {!retryable_status} answers came back),
    the set backs off per [policy] (floored by any [Retry-After]),
    re-probes, and tries again, up to [policy.max_attempts] passes.
    The endpoint that answers is marked healthy and the rotation
    advances past it. [f] must be safe to repeat. *)

val mutate :
  replica_set -> (t -> (response, string) result) -> (response, string) result
(** Run one mutation against the primary: first the best-known primary
    address (from probes, 421 redirects, or a previous success), then
    the fleet in rotation, with [~follow_primary] turning every [421]
    [read_only] rejection into a redirect toward the advertised
    primary. The address that finally accepts (any status below 400)
    is remembered for the next call. Retry/backoff semantics are
    {!with_retry}'s. [f] must be safe to repeat. *)
