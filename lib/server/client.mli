(** A minimal blocking HTTP/1.1 client, just enough to talk to
    {!Daemon}: one keep-alive connection, [Content-Length]-framed
    responses. Used by the e2e tests, the serve benchmark, and the CI
    smoke script — not a general-purpose client. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** TCP to [host] (default 127.0.0.1). *)

val connect_unix : string -> t
(** Unix-domain socket at the given path. *)

type response = { status : int; headers : (string * string) list; body : string }

val request :
  t ->
  ?headers:(string * string) list ->
  ?body:string ->
  Http.meth ->
  string ->
  (response, string) result
(** [request t meth target] sends one request and reads the response.
    A [Content-Length] header is added when [body] is given. [Error]
    means the connection is unusable (closed, timed out, or the
    response did not parse) — reconnect to retry. Never raises. *)

val get : t -> string -> (response, string) result

val post : t -> string -> body:string -> (response, string) result

val close : t -> unit
