type params = (string * string) list

let param params name =
  match List.assoc_opt name params with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Router.param: no capture %S" name)

type 'ctx route = {
  meth : Http.meth;
  pattern : string;
  segments : string list;
  handler : 'ctx -> Http.request -> params -> Http.response;
}

let route meth pattern handler =
  let segments =
    String.split_on_char '/' pattern |> List.filter (fun s -> s <> "")
  in
  { meth; pattern; segments; handler }

let pattern r = r.pattern

let match_segments segments path =
  let rec go acc segments path =
    match (segments, path) with
    | [], [] -> Some (List.rev acc)
    | seg :: segments, p :: path ->
        if String.length seg > 0 && seg.[0] = ':' then
          go ((String.sub seg 1 (String.length seg - 1), p) :: acc) segments path
        else if String.equal seg p then go acc segments path
        else None
    | _ -> None
  in
  go [] segments path

let dispatch routes ctx (request : Http.request) =
  let matches =
    List.filter_map
      (fun r ->
        match match_segments r.segments request.Http.path with
        | Some params -> Some (r, params)
        | None -> None)
      routes
  in
  let find meth = List.find_opt (fun (r, _) -> r.meth = meth) matches in
  let found =
    match find request.Http.meth with
    | Some _ as hit -> hit
    | None ->
        (* HEAD is GET without the body (the serializer drops it), so
           every GET route answers HEAD unless one is registered *)
        if request.Http.meth = Http.HEAD then find Http.GET else None
  in
  match found with
  | Some (r, params) ->
      `Response (r.pattern, r.handler ctx request params)
  | None -> (
      match matches with
      | [] -> `Not_found
      | _ ->
          let allowed = List.map (fun (r, _) -> r.meth) matches in
          let allowed =
            if List.mem Http.GET allowed && not (List.mem Http.HEAD allowed)
            then allowed @ [ Http.HEAD ]
            else allowed
          in
          `Method_not_allowed allowed)
