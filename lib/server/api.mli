(** The HTTP endpoints: routes, JSON payloads, and error bodies. Pure
    request → response logic over the registry — no sockets, which is
    what lets the e2e tests also call {!handle} directly.

    Every error response is
    [{"error":{"category":<string>,"message":<string>}}] (possibly
    with extra machine-readable fields in the error object). Categories
    mirror {!Core.Sosae.load_error} for loading failures ([io_error],
    [xml_error], [schema_error]) and extend them with [apply_error],
    [bad_request], [not_found], [method_not_allowed],
    [payload_too_large], [unsupported], [overloaded], [timeout],
    [read_only], [no_journal] and [internal].

    Roles: a daemon is a [Primary] (the default) or a [Replica]
    feeding off one. A replica serves every read — [GET]s, evaluate,
    evaluate/batch, diff/preview, simulate — from its locally applied
    copy, and rejects mutations ([POST /sessions], [DELETE],
    [POST .../diff]) with [421] [read_only], the primary's address in
    the error object's ["primary"] field, and [Retry-After: 1].

    Endpoints:
    - [GET /health] — liveness: status, version, session count.
    - [GET /metrics] — request counters, latency histogram, in-flight
      gauge, registry-wide cache statistics.
    - [GET /sessions] — session ids with their cache stats.
    - [POST /sessions] — create a session; the body carries the
      artifact XML inline ([scenarios]/[architecture]/[mapping] string
      fields) or server-side file names (a [paths] object), plus an
      optional [policy] ("routed"|"direct"). 201, or 409 on a taken id.
    - [GET /sessions/:id/stats] — one session's cache stats and
      architecture size.
    - [POST /sessions/:id/evaluate] — the full suite through the
      verdict cache (empty body), or a sub-suite ([{"scenarios":
      [ids]}]); responds with the verdicts plus how many scenarios were
      re-walked vs served from cache for this call. Full-suite
      responses carry a strong [ETag] bound to the session's
      architecture revision; a request whose [If-None-Match] matches is
      answered [304 Not Modified] with no body (the session's verdict
      cache is still consulted, so stats count the call like any
      other). The serialized result is cached per revision, so warm
      responses splice a pre-rendered string instead of re-serializing
      the result tree.
    - [POST /sessions/:id/evaluate/batch] — [{"suites": [body, …]}]
      where each element is shaped like a one-shot evaluate body (at
      most 1024); answers [{"responses": [r, …]}] with each element
      byte-for-byte the one-shot 200 body, in order, computed under one
      session-lock acquisition. Any bad element fails the whole batch
      with the one-shot status.
    - [POST /sessions/:id/diff] — apply evolution ops
      ([{"ops":[{"op":"remove_link","id":...}, ...]}]); [excise]
      removes every link between two elements (the paper's Fig. 4
      excision as an API call). 409 [apply_error] when an op does not
      apply, and the session is untouched.
    - [POST /sessions/:id/diff/preview] — expand and validate the same
      body without applying anything; answers the expanded op list.
      Served by replicas (it is a read).
    - [DELETE /sessions/:id] — drop a session.
    - [GET /replication] — role, primary address (replicas), applied
      and covered sequence numbers, lag.
    - [GET /replication/log?after=N] — the ship endpoint: raw
      {!Store.Record}-framed journal records with sequence numbers in
      [(N, covered]] as [application/octet-stream], the covered seq in
      [X-Sosae-Covered], and [X-Sosae-Reset: 1] when the body is a
      snapshot bootstrap. [409] [no_journal] without a data dir. *)

type writer_pool
(** A free-list of {!Jsonlight.Writer}s; every response render checks
    one out, so steady-state traffic reuses a few grown-to-size buffers
    instead of allocating per response. *)

type role = Primary | Replica of Replica.t

type ctx = {
  registry : Registry.t;
  metrics : Metrics.t;
  writers : writer_pool;
  mutable role : role;
      (** set once by the daemon before serving; flipped to [Primary]
          by a promotion *)
}

val make_ctx : ?jobs:int -> ?persist:Persist.t -> unit -> ctx
(** [persist] makes every registry mutation durable (see {!Registry});
    the caller replays recovered mutations with {!Registry.recover}
    before serving. The role starts as [Primary]. *)

val error_response :
  ?headers:(string * string) list ->
  ?extra:(string * Jsonlight.t) list ->
  int ->
  category:string ->
  string ->
  Http.response
(** [headers] are appended after [Content-Type]; [extra] fields are
    appended inside the error object. *)

val response_of_parse_error : Http.parse_error -> Http.response
(** 400/413/501 with the matching category, for the connection layer. *)

val overloaded_response : Http.response
(** The 429 written when the accept queue is full. *)

val handle : ctx -> Http.request -> string * Http.response
(** Dispatch one request. The returned string is the matched route
    pattern (["<unmatched>"] otherwise) — the metrics label. Handler
    escapes are caught and mapped to 500 [internal]; never raises. *)
