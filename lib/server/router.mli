(** Method + path-pattern dispatch. Patterns are literal segments with
    [:name] captures, e.g. ["/sessions/:id/evaluate"]; a request path
    matches when the segment counts agree and every literal segment is
    equal. Captures are handed to the handler by name. *)

type params = (string * string) list

val param : params -> string -> string
(** @raise Invalid_argument on a capture name absent from the pattern —
    a programming error in the route table, not a request error. *)

type 'ctx route

val route :
  Http.meth ->
  string ->
  ('ctx -> Http.request -> params -> Http.response) ->
  'ctx route

val pattern : _ route -> string

val dispatch :
  'ctx route list ->
  'ctx ->
  Http.request ->
  [ `Response of string * Http.response  (** matched pattern, for metrics *)
  | `Not_found
  | `Method_not_allowed of Http.meth list  (** the path exists under these *) ]
(** Handlers are not expected to raise; the daemon wraps dispatch in a
    catch-all that maps escapes to 500. *)
