(** Hand-rolled HTTP/1.1 on byte strings: an incremental request parser
    and a response serializer. No sockets here — the daemon feeds bytes
    in as they arrive and writes the serialized response out — which is
    what makes the parser property-testable: any split of a valid
    request into chunks must parse identically, and no byte sequence
    may raise.

    Supported: request line + headers + [Content-Length] bodies,
    percent-encoded targets with query strings, keep-alive pipelining
    (unconsumed bytes stay buffered for the next request). Not
    supported, by design: [Transfer-Encoding] (rejected as 501-shaped
    [`Unsupported]), multiline header folding (rejected), HTTP/2. *)

type meth = GET | HEAD | POST | PUT | DELETE | OPTIONS | Other of string

val meth_to_string : meth -> string

type request = {
  meth : meth;
  target : string;  (** the raw request target, e.g. ["/sessions/a?x=1"] *)
  path : string list;  (** decoded segments, e.g. [["sessions"; "a"]] *)
  query : (string * string) list;  (** decoded key/value pairs *)
  version : [ `Http_1_0 | `Http_1_1 ];
  headers : (string * string) list;  (** names lowercased, values trimmed *)
  body : string;
}

val header : request -> string -> string option
(** Case-insensitive lookup (first match). *)

val keep_alive : request -> bool
(** HTTP/1.1 without [Connection: close], or HTTP/1.0 with
    [Connection: keep-alive]. *)

val if_none_match_matches : request -> etag:string -> bool
(** Does the request's [If-None-Match] header match the resource's
    current (quoted, strong) entity tag? ["*"] matches anything;
    otherwise the header is a comma-separated tag list compared
    byte-for-byte. [false] without the header. *)

type parse_error =
  | Bad_request of string  (** malformed request line, header, or framing *)
  | Head_too_large  (** request line + headers exceed the head limit *)
  | Body_too_large  (** declared [Content-Length] exceeds the body limit *)
  | Unsupported of string  (** e.g. [Transfer-Encoding: chunked] *)

val parse_error_message : parse_error -> string

type parser_

val parser_ : ?max_head:int -> ?max_body:int -> unit -> parser_
(** Limits default to 16 KiB of head and 4 MiB of body. *)

val feed : parser_ -> string -> unit
(** Append newly received bytes. *)

val next : parser_ -> [ `Request of request | `Need_more | `Error of parse_error ]
(** Try to extract the next complete request from the buffered bytes.
    [`Request] consumes the request's bytes (later bytes remain
    buffered); [`Error] is sticky — the connection cannot be re-synced
    and must be closed after the error response. Never raises. *)

val buffered : parser_ -> int
(** Bytes currently buffered (0 on a quiescent keep-alive connection —
    used to tell an idle timeout from a mid-request one). *)

(** {1 Responses} *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response : ?headers:(string * string) list -> int -> string -> response
(** [response status body]; the reason phrase comes from the status
    code. *)

val reason_phrase : int -> string

val serialize : ?request_meth:meth -> close:bool -> response -> string
(** Status line, headers ([Content-Length] computed and always
    explicit, [0] included, [Connection: close] added when [close]),
    blank line, body — the exact bytes to write. A [HEAD]
    [request_meth] suppresses the body but keeps its [Content-Length];
    204/304/1xx statuses suppress the body {e and} declare
    [Content-Length: 0], whatever body the response value carries. *)

val serialize_to :
  Buffer.t -> ?request_meth:meth -> close:bool -> response -> unit
(** {!serialize} into a caller-owned buffer — the daemon reuses one
    per connection so steady-state responses allocate no fresh
    buffer. *)
