(* A follower's continuous apply loop: poll the primary's ship
   endpoint and fold each batch into the local registry while it
   serves reads. The loop owns one transport (by default an HTTP
   client connection) and survives the primary restarting (reconnect),
   compacting (reset batches), and dying (the error is surfaced,
   polling continues until {!seal}). *)

type shipped = { data : string; covered : int64; reset : bool }

type transport = {
  fetch : after:int64 -> (shipped, string) result;
  shutdown : unit -> unit;
      (* drop whatever connection state the transport holds; the next
         [fetch] starts fresh. Called on apply errors and at loop
         exit. *)
}

type t = {
  primary : string;
  registry : Registry.t;
  metrics : Metrics.t;
  transport : transport;
  poll_interval : float;
  sleep : float -> unit;
  lock : Mutex.t;
  mutable applied : int64;  (* highest shipped seq applied locally *)
  mutable covered : int64;  (* primary's covered seq, last seen *)
  mutable error : string option;  (* last fetch/apply failure *)
  mutable sealed : bool;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let primary_address t = t.primary

let applied_seq t = Mutex.protect t.lock (fun () -> t.applied)
let covered_seq t = Mutex.protect t.lock (fun () -> t.covered)

let lag t =
  Mutex.protect t.lock (fun () ->
      if t.covered > t.applied then Int64.sub t.covered t.applied else 0L)

let last_error t = Mutex.protect t.lock (fun () -> t.error)
let sealed t = Mutex.protect t.lock (fun () -> t.sealed)

let header name headers =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = name then Some v else None)
    headers

(* the production transport: one keep-alive connection to the
   primary's ship endpoint, reopened on any failure *)
let http_transport ~host ~port =
  let conn = ref None in
  let drop () =
    (match !conn with Some c -> Client.close c | None -> ());
    conn := None
  in
  let fetch ~after =
    try
      let c =
        match !conn with
        | Some c -> c
        | None ->
            let c = Client.connect ~host ~port () in
            conn := Some c;
            c
      in
      match Client.get c (Printf.sprintf "/replication/log?after=%Ld" after) with
      | Ok { Client.status = 200; headers; body } ->
          let covered =
            match
              Option.bind (header "x-sosae-covered" headers) Int64.of_string_opt
            with
            | Some v -> v
            | None -> after
          in
          let reset = header "x-sosae-reset" headers = Some "1" in
          Ok { data = body; covered; reset }
      | Ok { Client.status; _ } ->
          Error (Printf.sprintf "primary answered %d" status)
      | Error e ->
          drop ();
          Error e
    with e ->
      drop ();
      Error (Printexc.to_string e)
  in
  { fetch; shutdown = drop }

let publish t =
  let applied, covered =
    Mutex.protect t.lock (fun () -> (t.applied, t.covered))
  in
  Metrics.set_replication t.metrics
    {
      Metrics.role = "replica";
      primary = Some t.primary;
      applied_seq = applied;
      covered_seq = covered;
      lag = (if covered > applied then Int64.sub covered applied else 0L);
    }

let set_error t msg =
  Mutex.protect t.lock (fun () -> t.error <- Some msg)

(* Fold one shipped batch into the registry. The snapshot meta record
   (empty payload) and anything undecodable are dropped, but the
   applied high-water mark still advances past them — their sequence
   numbers are consumed either way. *)
let apply_batch t ~reset ~covered records =
  let mutations =
    List.filter_map
      (fun (_seq, payload) ->
        if payload = "" then None
        else
          match Persist.decode payload with Ok m -> Some m | Error _ -> None)
      records
  in
  ignore (Registry.apply_shipped t.registry ~reset mutations);
  let last =
    List.fold_left
      (fun acc (seq, _) -> if seq > acc then seq else acc)
      0L records
  in
  Mutex.protect t.lock (fun () ->
      if last > t.applied then t.applied <- last;
      if covered > t.covered then t.covered <- covered;
      t.error <- None)

let run t =
  (* one poll; [true] when a batch was applied (poll again at once) *)
  let step () =
    let after = Mutex.protect t.lock (fun () -> t.applied) in
    match t.transport.fetch ~after with
    | Ok { data; covered; reset } -> (
        match Store.Ship.decode data with
        | Ok [] when not reset ->
            Mutex.protect t.lock (fun () ->
                if covered > t.covered then t.covered <- covered;
                t.error <- None);
            false
        | Ok records ->
            apply_batch t ~reset ~covered records;
            true
        | Error e ->
            set_error t ("bad shipped batch: " ^ e);
            t.transport.shutdown ();
            false)
    | Error e ->
        set_error t e;
        false
    | exception e ->
        set_error t (Printexc.to_string e);
        t.transport.shutdown ();
        false
  in
  while not (Atomic.get t.stop) do
    let progressed = step () in
    publish t;
    if (not progressed) && not (Atomic.get t.stop) then t.sleep t.poll_interval
  done;
  t.transport.shutdown ()

let start ?(poll_interval = 0.02) ?transport ?(sleep = Unix.sleepf) ~registry
    ~metrics ~host ~port () =
  let transport =
    match transport with Some tr -> tr | None -> http_transport ~host ~port
  in
  let t =
    {
      primary = Printf.sprintf "%s:%d" host port;
      registry;
      metrics;
      transport;
      poll_interval;
      sleep;
      lock = Mutex.create ();
      applied = 0L;
      covered = 0L;
      error = None;
      sealed = false;
      stop = Atomic.make false;
      thread = None;
    }
  in
  publish t;
  t.thread <- Some (Thread.create run t);
  t

let seal t =
  let th =
    Mutex.protect t.lock (fun () ->
        if t.sealed then None
        else begin
          t.sealed <- true;
          Atomic.set t.stop true;
          let th = t.thread in
          t.thread <- None;
          th
        end)
  in
  Option.iter Thread.join th
