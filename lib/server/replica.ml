(* A follower's continuous apply loop: poll the primary's ship
   endpoint and fold each batch into the local registry while it
   serves reads. The loop owns one transport (by default an HTTP
   client connection) and survives the primary restarting (reconnect),
   compacting (reset batches), and dying (the error is surfaced,
   polling continues until {!seal}). *)

type shipped = { data : string; covered : int64; reset : bool }

type transport = {
  fetch : after:int64 -> (shipped, string) result;
  fetch_snapshot : unit -> (shipped option, string) result;
      (* the upstream's current snapshot as a reset batch, [None] when
         it has none yet — the fresh-replica bootstrap that skips
         full-journal replay *)
  shutdown : unit -> unit;
      (* drop whatever connection state the transport holds; the next
         [fetch] starts fresh. Called on apply errors and at loop
         exit. *)
}

type t = {
  primary : string;
  registry : Registry.t;
  metrics : Metrics.t;
  transport : transport;
  poll_interval : float;
  sleep : float -> unit;
  lock : Mutex.t;
  mutable applied : int64;  (* highest shipped seq applied locally *)
  mutable covered : int64;  (* upstream's covered seq, last seen *)
  mutable bootstrapped : bool;
      (* a snapshot catch-up was tried (or is unneeded): only a
         replica starting from nothing asks for one *)
  mutable error : string option;  (* last fetch/apply failure *)
  mutable sealed : bool;
  stop : bool Atomic.t;
  mutable thread : Thread.t option;
}

let primary_address t = t.primary

let applied_seq t = Mutex.protect t.lock (fun () -> t.applied)
let covered_seq t = Mutex.protect t.lock (fun () -> t.covered)

let lag t =
  Mutex.protect t.lock (fun () ->
      if t.covered > t.applied then Int64.sub t.covered t.applied else 0L)

let last_error t = Mutex.protect t.lock (fun () -> t.error)
let sealed t = Mutex.protect t.lock (fun () -> t.sealed)

let header name headers =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (k, v) -> if String.lowercase_ascii k = name then Some v else None)
    headers

(* the production transport: one keep-alive connection to the
   primary's ship endpoint, reopened on any failure *)
let http_transport ~host ~port =
  let conn = ref None in
  let drop () =
    (match !conn with Some c -> Client.close c | None -> ());
    conn := None
  in
  let with_conn f =
    try
      let c =
        match !conn with
        | Some c -> c
        | None ->
            let c = Client.connect ~host ~port () in
            conn := Some c;
            c
      in
      match f c with
      | Error e ->
          drop ();
          Error e
      | ok -> ok
    with e ->
      drop ();
      Error (Printexc.to_string e)
  in
  let parse_covered ~default headers =
    match
      Option.bind (header "x-sosae-covered" headers) Int64.of_string_opt
    with
    | Some v -> v
    | None -> default
  in
  let fetch ~after =
    with_conn (fun c ->
        match
          Client.get c (Printf.sprintf "/replication/log?after=%Ld" after)
        with
        | Ok { Client.status = 200; headers; body } ->
            let covered = parse_covered ~default:after headers in
            let reset = header "x-sosae-reset" headers = Some "1" in
            Ok { data = body; covered; reset }
        | Ok { Client.status; _ } ->
            Error (Printf.sprintf "primary answered %d" status)
        | Error e -> Error e)
  in
  let fetch_snapshot () =
    with_conn (fun c ->
        match Client.get c "/replication/snapshot" with
        | Ok { Client.status = 200; headers; body } ->
            let covered = parse_covered ~default:0L headers in
            Ok (Some { data = body; covered; reset = true })
        | Ok { Client.status = 404; _ } ->
            (* the upstream has never compacted: nothing to bootstrap
               from, tail the journal from the top instead *)
            Ok None
        | Ok { Client.status; _ } ->
            Error (Printf.sprintf "primary answered %d" status)
        | Error e -> Error e)
  in
  { fetch; fetch_snapshot; shutdown = drop }

let publish t =
  let applied, covered =
    Mutex.protect t.lock (fun () -> (t.applied, t.covered))
  in
  Metrics.set_replication t.metrics
    {
      Metrics.role = "replica";
      primary = Some t.primary;
      applied_seq = applied;
      covered_seq = covered;
      lag = (if covered > applied then Int64.sub covered applied else 0L);
    }

let set_error t msg =
  Mutex.protect t.lock (fun () -> t.error <- Some msg)

(* Fold one shipped batch into the registry (which journals it locally
   when it persists). The applied high-water mark advances to the
   batch's last record sequence — snapshot meta records and reset
   bootstraps consume their numbers too. *)
let apply_batch t ~reset ~covered data =
  match Registry.apply_shipped t.registry ~reset data with
  | Error e ->
      set_error t ("bad shipped batch: " ^ e);
      t.transport.shutdown ();
      false
  | Ok (_stats, last) ->
      Mutex.protect t.lock (fun () ->
          if last > t.applied then t.applied <- last;
          if covered > t.covered then t.covered <- covered;
          t.error <- None);
      true

let run t =
  (* one poll; [true] when a batch was applied (poll again at once) *)
  let step () =
    let after, bootstrapped =
      Mutex.protect t.lock (fun () -> (t.applied, t.bootstrapped))
    in
    if not bootstrapped then begin
      (* starting from nothing: ask for the upstream's snapshot first
         so catch-up is O(live state), not O(journal history) *)
      match t.transport.fetch_snapshot () with
      | Ok None ->
          Mutex.protect t.lock (fun () -> t.bootstrapped <- true);
          true
      | Ok (Some { data; covered; reset = _ }) ->
          let applied = apply_batch t ~reset:true ~covered data in
          if applied then
            Mutex.protect t.lock (fun () -> t.bootstrapped <- true);
          applied
      | Error e ->
          set_error t e;
          false
      | exception e ->
          set_error t (Printexc.to_string e);
          t.transport.shutdown ();
          false
    end
    else
      match t.transport.fetch ~after with
      | Ok { data; covered; reset } ->
          if data = "" && not reset then begin
            Mutex.protect t.lock (fun () ->
                if covered > t.covered then t.covered <- covered;
                t.error <- None);
            false
          end
          else apply_batch t ~reset ~covered data
      | Error e ->
          set_error t e;
          false
      | exception e ->
          set_error t (Printexc.to_string e);
          t.transport.shutdown ();
          false
  in
  while not (Atomic.get t.stop) do
    let progressed = step () in
    publish t;
    if (not progressed) && not (Atomic.get t.stop) then t.sleep t.poll_interval
  done;
  t.transport.shutdown ()

let start ?(poll_interval = 0.02) ?transport ?(sleep = Unix.sleepf) ~registry
    ~metrics ~host ~port () =
  let transport =
    match transport with Some tr -> tr | None -> http_transport ~host ~port
  in
  (* a durable replica resumes from its local journal frontier: the
     records below it were applied (and journaled) before the restart,
     so the first fetch tails instead of replaying history *)
  let applied =
    match Registry.persist registry with
    | Some p -> Int64.pred (Persist.next_seq p)
    | None -> 0L
  in
  let t =
    {
      primary = Printf.sprintf "%s:%d" host port;
      registry;
      metrics;
      transport;
      poll_interval;
      sleep;
      lock = Mutex.create ();
      applied;
      covered = applied;
      bootstrapped = applied > 0L;
      error = None;
      sealed = false;
      stop = Atomic.make false;
      thread = None;
    }
  in
  publish t;
  t.thread <- Some (Thread.create run t);
  t

let seal t =
  let th =
    Mutex.protect t.lock (fun () ->
        if t.sealed then None
        else begin
          t.sealed <- true;
          Atomic.set t.stop true;
          let th = t.thread in
          t.thread <- None;
          th
        end)
  in
  Option.iter Thread.join th
