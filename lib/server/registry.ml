type t = {
  lock : Mutex.t;
  sessions : (string, Core.Sosae.Session.t) Hashtbl.t;
  jobs : int;
}

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> Core.Sosae.default_jobs () in
  { lock = Mutex.create (); sessions = Hashtbl.create 8; jobs }

let jobs t = t.jobs

let add t ~id ?config project =
  Mutex.protect t.lock (fun () ->
      if Hashtbl.mem t.sessions id then Error `Conflict
      else begin
        Hashtbl.replace t.sessions id (Core.Sosae.Session.create ?config project);
        Ok ()
      end)

let remove t id =
  Mutex.protect t.lock (fun () ->
      if Hashtbl.mem t.sessions id then begin
        Hashtbl.remove t.sessions id;
        true
      end
      else false)

let ids t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.sessions [])
  |> List.sort String.compare

let with_session t id f =
  let session =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.sessions id)
  in
  match session with
  | None -> Error `Not_found
  | Some s -> Ok (Core.Sosae.Session.exclusively s (fun () -> f s))
