type cache_entry = { c_revision : int; c_etag : string; c_body : string }

type t = {
  lock : Mutex.t;
  sessions : (string, Core.Sosae.Session.t) Hashtbl.t;
  jobs : int;
  (* [mu] serializes mutations (create/diff/remove) end to end — apply
     in memory, then journal — so journal order always equals apply
     order. Reads and evaluations never take it. Lock order:
     mu > lock > cache_lock, with cache_lock a leaf. The per-session
     lock is taken only with none of these held — except that the
     response cache takes [lock] from inside an evaluation (to check
     the session is still the registered incarnation), so [lock] must
     never be held while taking a per-session lock. *)
  mu : Mutex.t;
  persist : Persist.t option;
  (* Serialized full-suite evaluate results, one per session, valid
     while the session's revision is unchanged. *)
  cache_lock : Mutex.t;
  cache : (string, cache_entry) Hashtbl.t;
  (* Etags embed a random per-boot component plus a registry-global
     mint counter, so an etag can never be minted twice for different
     content: the counter covers delete/recreate within one process
     lifetime (a namesake session's revision restarts at 0), the boot
     id covers daemon restarts (sessions are durable, the counter is
     not). *)
  etag_boot : string;
  mutable etag_token : int;
  (* [true] when a daemon maintenance thread owns compaction: the
     mutation path then never compacts inline (set once before serving
     starts, so a plain bool is enough) *)
  mutable background_compaction : bool;
}

let create ?jobs ?persist () =
  let jobs = match jobs with Some j -> j | None -> Core.Sosae.default_jobs () in
  let rng = Random.State.make_self_init () in
  {
    lock = Mutex.create ();
    sessions = Hashtbl.create 8;
    jobs;
    mu = Mutex.create ();
    persist;
    cache_lock = Mutex.create ();
    cache = Hashtbl.create 8;
    etag_boot =
      Printf.sprintf "%07x%07x"
        (Random.State.bits rng land 0xFFFFFFF)
        (Random.State.bits rng land 0xFFFFFFF);
    etag_token = 0;
    background_compaction = false;
  }

let set_background_compaction t flag = t.background_compaction <- flag

(* ------------------------------------------------------------------ *)
(* Serialized-response cache                                          *)
(* ------------------------------------------------------------------ *)

let drop_cached t id =
  Mutex.protect t.cache_lock (fun () -> Hashtbl.remove t.cache id)

(* The cache answers for a (session, revision) pair only while that
   exact session object is still the one registered under [id]:
   [with_session] holds no registry lock during the callback, so an
   in-flight evaluate can outlive a DELETE and a namesake re-create
   (whose revision counter restarts at 0 — same key, different
   content). Checking physical identity under [t.lock], held across
   the cache access, is race-free against [add]/[remove]: they mutate
   the session table under the same lock *before* invalidating the
   cache, so a stale session can never pass the check after the
   namesake's invalidation has run. *)
let is_registered t id session =
  match Hashtbl.find_opt t.sessions id with
  | Some s -> s == session
  | None -> false

let cached_response t id ~session ~revision =
  Mutex.protect t.lock (fun () ->
      if not (is_registered t id session) then None
      else
        Mutex.protect t.cache_lock (fun () ->
            match Hashtbl.find_opt t.cache id with
            | Some e when e.c_revision = revision -> Some (e.c_etag, e.c_body)
            | Some _ | None -> None))

let cache_response t id ~session ~revision ~body =
  Mutex.protect t.lock (fun () ->
      let live = is_registered t id session in
      Mutex.protect t.cache_lock (fun () ->
          match Hashtbl.find_opt t.cache id with
          | Some e when live && e.c_revision = revision ->
              (* a concurrent evaluate of the same revision won the race;
                 both bodies are bit-identical, keep the first etag *)
              e.c_etag
          | Some _ | None ->
              t.etag_token <- t.etag_token + 1;
              let etag =
                Printf.sprintf "\"r%d-%s-%d\"" revision t.etag_boot t.etag_token
              in
              (* a stale incarnation's body must not be stored (the
                 namesake would serve it); its response still carries
                 a fresh etag, which by construction never validates
                 again *)
              if live then
                Hashtbl.replace t.cache id
                  { c_revision = revision; c_etag = etag; c_body = body };
              etag))

let jobs t = t.jobs

let persist t = t.persist

(* ------------------------------------------------------------------ *)
(* Serialization of live state (journals and snapshots)               *)
(* ------------------------------------------------------------------ *)

let create_mutation ~id session =
  let project = Core.Sosae.Session.project session in
  Persist.Create
    {
      id;
      policy = (Core.Sosae.Session.config session).Walkthrough.Engine.policy;
      scenarios =
        Scenarioml.Xml_io.set_to_string project.Core.Sosae.scenarios;
      architecture = Adl.Xml_io.to_string project.Core.Sosae.architecture;
      mapping = Mapping.Xml_io.to_string project.Core.Sosae.mapping;
    }

(* Per-session consistency is enough for a snapshot: [mu] is held, so
   no mutation can interleave; evaluations may run but don't change
   the project. *)
let state_mutations t =
  let pairs =
    Mutex.protect t.lock (fun () ->
        Hashtbl.fold (fun id s acc -> (id, s) :: acc) t.sessions [])
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.map
    (fun (id, session) ->
      Core.Sosae.Session.exclusively session (fun () ->
          create_mutation ~id session))
    pairs

let maybe_compact t =
  match t.persist with
  | Some p when (not t.background_compaction) && Persist.should_compact p ->
      Persist.compact p ~state:(state_mutations t)
  | Some _ | None -> ()

(* The maintenance thread's compaction: runs with NO registry lock
   held, so mutations keep flowing while the snapshot is written. The
   rotation protocol captures the covered sequence number first;
   because every mutation is applied (under [mu]) before it is staged,
   [state_mutations] — called after the capture — reflects at least
   every covered mutation. A mutation whose effect the snapshot
   already contains but whose record lands in the mirrored tail merely
   double-applies on recovery, which the skip semantics absorb. *)
let maintenance_compact t =
  match t.persist with
  | Some p when Persist.should_compact p ->
      Persist.compact_background p ~state:(fun () -> state_mutations t);
      true
  | Some _ | None -> false

let checkpoint t =
  match t.persist with
  | None -> ()
  | Some p ->
      Mutex.protect t.mu (fun () -> Persist.compact p ~state:(state_mutations t))

(* ------------------------------------------------------------------ *)
(* Mutations (journaled before they are acknowledged)                 *)
(* ------------------------------------------------------------------ *)

(* The shape shared by every mutation: apply in memory and *stage* the
   journal record while holding [mu] (journal order = apply order),
   but wait for the record's durability with [mu] released — so under
   group commit concurrent mutators batch into one shared fsync
   instead of queuing behind eight sequential ones. The durability
   wait happens before the caller returns, so the journal-before-
   acknowledge contract is unchanged. *)
let settle t pending =
  match (pending, t.persist) with
  | Some seq, Some p -> Persist.await p seq
  | _, _ -> ()

let add t ~id ?config ?source project =
  let result, pending =
    Mutex.protect t.mu (fun () ->
        let inserted =
          Mutex.protect t.lock (fun () ->
              if Hashtbl.mem t.sessions id then Error `Conflict
              else begin
                Hashtbl.replace t.sessions id
                  (Core.Sosae.Session.create ?config project);
                Ok ()
              end)
        in
        (match inserted with Ok () -> drop_cached t id | Error _ -> ());
        match (inserted, t.persist) with
        | Ok (), Some p ->
            let session =
              Mutex.protect t.lock (fun () -> Hashtbl.find t.sessions id)
            in
            (* [source] skips re-serializing the project the caller
               just parsed from those very strings — the dominant cost
               of a journaled create after the fsync is amortized *)
            let mutation =
              match source with
              | Some (scenarios, architecture, mapping) ->
                  Persist.Create
                    {
                      id;
                      policy =
                        (Core.Sosae.Session.config session)
                          .Walkthrough.Engine.policy;
                      scenarios;
                      architecture;
                      mapping;
                    }
              | None -> create_mutation ~id session
            in
            (match Persist.stage p mutation with
            | seq ->
                maybe_compact t;
                (Ok (), Some seq)
            | exception e ->
                (* un-journaled means un-acknowledged: roll the insert
                   back so memory never outlives what recovery rebuilds *)
                Mutex.protect t.lock (fun () -> Hashtbl.remove t.sessions id);
                raise e)
        | result, _ -> (result, None))
  in
  settle t pending;
  result

let remove t id =
  let result, pending =
    Mutex.protect t.mu (fun () ->
        let removed =
          Mutex.protect t.lock (fun () ->
              match Hashtbl.find_opt t.sessions id with
              | Some session ->
                  Hashtbl.remove t.sessions id;
                  Some session
              | None -> None)
        in
        (match removed with Some _ -> drop_cached t id | None -> ());
        match (removed, t.persist) with
        | Some session, Some p ->
            (match Persist.stage p (Persist.Remove { id }) with
            | seq ->
                maybe_compact t;
                (true, Some seq)
            | exception e ->
                Mutex.protect t.lock (fun () ->
                    Hashtbl.replace t.sessions id session);
                raise e)
        | Some _, None -> (true, None)
        | None, _ -> (false, None))
  in
  settle t pending;
  result

let apply_diff t id ~ops =
  let result, pending =
    Mutex.protect t.mu (fun () ->
        let session =
          Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.sessions id)
        in
        match session with
        | None -> (Error `Not_found, None)
        | Some session -> (
            match
              Core.Sosae.Session.exclusively session (fun () ->
                  let ops = ops session in
                  Core.Sosae.Session.apply_diff session ops;
                  ops)
            with
            | ops ->
                let pending =
                  match t.persist with
                  | None -> None
                  | Some p ->
                      let mutation =
                        match Persist.encode_ops ops with
                        | Some _ -> Persist.Diff { id; ops }
                        | None ->
                            (* ops with no wire encoding (the Add_ ones):
                               journal the whole post-diff architecture *)
                            Persist.Set_architecture
                              {
                                id;
                                architecture =
                                  Adl.Xml_io.to_string
                                    (Core.Sosae.Session.project session)
                                      .Core.Sosae.architecture;
                              }
                      in
                      let seq = Persist.stage p mutation in
                      maybe_compact t;
                      Some seq
                in
                (Ok ops, pending)
            | exception Adl.Diff.Apply_error message ->
                (Error (`Apply_error message), None)))
  in
  settle t pending;
  result

(* ------------------------------------------------------------------ *)
(* Boot-time recovery                                                 *)
(* ------------------------------------------------------------------ *)

type recovery_stats = { applied : int; skipped : int }

(* Replay without journaling: the records being applied are the
   journal. A record that no longer applies is skipped, not fatal —
   the benign source is the compaction overlap window (a mutation
   journaled just before a snapshot that already contains its effect),
   and recovery must get the registry up regardless.

   [serving] distinguishes boot-time recovery (the registry is
   quiescent: no locks needed, no cache to invalidate) from a
   replica's live apply loop, where `/stats` and evaluates run
   concurrently: then every table access goes through [t.lock], every
   session edit through its own lock, and create/remove invalidate the
   response cache exactly like the primary's mutation path. *)
let apply_mutations t ~serving mutations =
  let applied = ref 0 and skipped = ref 0 in
  let ok () = incr applied in
  let skip () = incr skipped in
  let locked f = if serving then Mutex.protect t.lock f else f () in
  let exclusively s f =
    if serving then Core.Sosae.Session.exclusively s f else f ()
  in
  List.iter
    (fun mutation ->
      match mutation with
      | Persist.Create { id; policy; scenarios; architecture; mapping } -> (
          if locked (fun () -> Hashtbl.mem t.sessions id) then skip ()
          else
            match Core.Sosae.project_of_strings ~scenarios ~architecture ~mapping with
            | Ok project ->
                let config = Walkthrough.Engine.config ~policy () in
                let session = Core.Sosae.Session.create ~config project in
                locked (fun () -> Hashtbl.replace t.sessions id session);
                if serving then drop_cached t id;
                ok ()
            | Error _ -> skip ())
      | Persist.Diff { id; ops } -> (
          match locked (fun () -> Hashtbl.find_opt t.sessions id) with
          | None -> skip ()
          | Some session -> (
              match
                exclusively session (fun () ->
                    Core.Sosae.Session.apply_diff session ops)
              with
              | () -> ok ()
              | exception Adl.Diff.Apply_error _ -> skip ()))
      | Persist.Set_architecture { id; architecture } -> (
          match locked (fun () -> Hashtbl.find_opt t.sessions id) with
          | None -> skip ()
          | Some session -> (
              match Adl.Xml_io.of_string architecture with
              | arch ->
                  exclusively session (fun () ->
                      Core.Sosae.Session.set_architecture session arch);
                  ok ()
              | exception Adl.Xml_io.Malformed _ -> skip ()))
      | Persist.Remove { id } ->
          let removed =
            locked (fun () ->
                if Hashtbl.mem t.sessions id then begin
                  Hashtbl.remove t.sessions id;
                  true
                end
                else false)
          in
          if removed then begin
            if serving then drop_cached t id;
            ok ()
          end
          else skip ())
    mutations;
  { applied = !applied; skipped = !skipped }

let recover t mutations = apply_mutations t ~serving:false mutations

(* The replica apply loop. Takes the shipped batch raw — when the
   registry persists, the frames go into the local journal
   byte-for-byte (a reset batch becomes the local snapshot), so a
   durable replica is itself shippable-from and a promotion yields an
   immediately durable primary. Apply-then-journal, the same order as
   the primary's mutation path: background compaction relies on "every
   journaled mutation at the captured sequence is already applied"
   when it snapshots the live state, and a crash between the two just
   re-fetches the batch from the upstream (whose re-ship of an
   already-journaled record {!Store.Journal.ingest} skips, and whose
   re-applied mutations the skip semantics absorb). Holds [mu] for the
   batch — mutations on a replica come only from here (the API rejects
   writes), but holding the mutation lock keeps the invariant "journal
   order = apply order" stated once, and makes promotion safe: after
   [mu] is released and the loop stopped, the primary's mutation path
   finds the same ordering discipline it relies on. A [reset] batch
   (snapshot bootstrap after the upstream compacted away our position)
   clears every session and cached response first. *)
let apply_shipped t ~reset data =
  let ( let* ) = Result.bind in
  let* records = Store.Ship.decode data in
  let* mutations =
    List.fold_right
      (fun (_seq, payload) acc ->
        let* acc = acc in
        if payload = "" then Ok acc (* a snapshot's meta record *)
        else
          let* m = Persist.decode payload in
          Ok (m :: acc))
      records (Ok [])
  in
  Mutex.protect t.mu (fun () ->
      if reset then begin
        Mutex.protect t.lock (fun () -> Hashtbl.reset t.sessions);
        Mutex.protect t.cache_lock (fun () -> Hashtbl.reset t.cache)
      end;
      let stats = apply_mutations t ~serving:true mutations in
      (match t.persist with
      | Some p ->
          if reset then ignore (Persist.install_snapshot p data)
          else Persist.ingest p data
      | None -> ());
      let last_seq =
        List.fold_left
          (fun acc (seq, _) -> if seq > acc then seq else acc)
          0L records
      in
      Ok (stats, last_seq))

(* ------------------------------------------------------------------ *)
(* Reads                                                              *)
(* ------------------------------------------------------------------ *)

let ids t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold (fun id _ acc -> id :: acc) t.sessions [])
  |> List.sort String.compare

let with_session t id f =
  let session =
    Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.sessions id)
  in
  match session with
  | None -> Error `Not_found
  | Some s -> Ok (Core.Sosae.Session.exclusively s (fun () -> f s))
