(** The daemon's collection of named evaluation sessions.

    The registry map itself is guarded by its own lock (creation,
    lookup, removal); each held {!Core.Sosae.Session.t} is additionally
    serialized through {!Core.Sosae.Session.exclusively} by
    {!with_session}, so concurrent requests against the same session
    queue up while requests against distinct sessions run in
    parallel.

    With a {!Persist.t}, every mutation — {!add}, {!apply_diff},
    {!remove} — is appended to the write-ahead journal before the call
    returns (and so before the API acknowledges it); a mutation lock
    serializes the apply-and-stage step so journal order equals apply
    order, but the durability wait happens with that lock released —
    under group commit, concurrent mutators share one fsync instead of
    queuing behind each other's. Evaluations and other reads never
    touch that lock. *)

type t

val create : ?jobs:int -> ?persist:Persist.t -> unit -> t
(** [jobs] is the domain-pool width handed to every
    [Session.evaluate] the server runs (default
    {!Core.Sosae.default_jobs}). [persist], when given, makes every
    mutation durable; the registry still starts empty — feed
    {!recover} the mutations {!Persist.open_} returned. *)

val jobs : t -> int

val persist : t -> Persist.t option

val add :
  t ->
  id:string ->
  ?config:Walkthrough.Engine.config ->
  ?source:string * string * string ->
  Core.Sosae.project ->
  (unit, [ `Conflict ]) result
(** Create a session named [id] over the project. [`Conflict] when the
    name is taken. Durable on return (per the fsync policy) when the
    registry persists; if journaling fails, the in-memory insert is
    rolled back and the exception propagates (the API answers 500 —
    never an acknowledged-but-lost session).

    [source] is the [(scenarios, architecture, mapping)] XML the
    project was parsed from; when given, those exact strings are
    journaled instead of re-serializing the project — callers that
    received artifacts over the wire already hold them, and skipping
    the three [to_string] passes roughly halves the CPU cost of a
    journaled create. *)

val remove : t -> string -> bool
(** [true] when a session was removed (journaled first, like {!add}). *)

val apply_diff :
  t ->
  string ->
  ops:(Core.Sosae.Session.t -> Adl.Diff.op list) ->
  (Adl.Diff.op list, [ `Not_found | `Apply_error of string ]) result
(** [apply_diff t id ~ops] runs [ops] under the session's lock (it may
    read the current architecture — the API expands [excise] there),
    applies the resulting op list, journals it, and returns it. Ops
    without a wire encoding ([Add_*]) are journaled as the whole
    post-diff architecture instead. *)

type recovery_stats = { applied : int; skipped : int }

val recover : t -> Persist.mutation list -> recovery_stats
(** Replay recovered mutations into the (empty, not-yet-serving)
    registry without re-journaling them. Records that no longer apply
    — the benign case is a mutation journaled in the compaction
    overlap window, whose effect the snapshot already contains — are
    counted in [skipped] and dropped. Not thread-safe; call before
    serving. *)

val apply_shipped :
  t -> reset:bool -> string -> (recovery_stats * int64, string) result
(** The replica apply loop's entry point: decode a shipped batch's raw
    frames and apply them — like {!recover} but safe while the
    registry is serving reads (the batch is applied under the mutation
    lock, table accesses under the registry lock, session edits under
    each session's own lock, and create/remove invalidate the response
    cache). Returns the apply statistics plus the highest record
    sequence in the batch ([0L] for an empty one). When the registry
    persists, the batch is journaled locally first, byte-for-byte and
    under the same mutation lock, so a durable replica is itself
    shippable-from and immediately durable after promotion. [reset]
    (the batch is a snapshot bootstrap: the primary compacted away the
    records after this replica's position) installs the batch as the
    local snapshot, re-bases the journal, and clears every session and
    cached response before applying. [Error] means the batch failed
    CRC validation or carried an undecodable payload — a transport
    bug, nothing was applied. *)

val checkpoint : t -> unit
(** Compact now: snapshot the current state and empty the journal.
    No-op without persistence. The daemon calls this during SIGTERM
    drain so restarts recover from a snapshot instead of a long
    journal. *)

val set_background_compaction : t -> bool -> unit
(** [true] hands compaction to a maintenance thread: the mutation path
    stops compacting inline (it only checks the threshold) and the
    daemon periodically calls {!maintenance_compact}. Set before
    serving starts. *)

val maintenance_compact : t -> bool
(** If the journal is past its compaction threshold, snapshot and
    rotate it {e without} stopping mutations (see
    {!Persist.compact_background}); [true] when a compaction ran.
    Only called from the daemon's maintenance thread — never
    concurrently with {!checkpoint}. *)

val ids : t -> string list
(** Sorted. *)

(** {1 Serialized-response cache}

    The warm evaluate path is dominated by serializing the full-suite
    result, not by evaluating it (verdicts are already cached in the
    session). The registry therefore keeps, per session, one serialized
    result body keyed on {!Core.Sosae.Session.revision} — valid exactly
    while no architecture edit lands — together with a strong entity
    tag the API surfaces as [ETag] / answers [If-None-Match] with.
    Entries are dropped when a session is created or removed under the
    same id; both accessors verify (under the registry lock) that
    [session] is still physically the one registered for [id], so an
    evaluate that outlives a delete/recreate can neither poison the
    namesake's cache nor serve its bytes. Etags carry a random
    per-boot component plus a registry-global mint counter, so an etag
    handed out for one incarnation of a session — or by an earlier
    run of the daemon — can never validate against a later one. *)

val cached_response :
  t -> string -> session:Core.Sosae.Session.t -> revision:int ->
  (string * string) option
(** [cached_response t id ~session ~revision] is [Some (etag, body)]
    when a serialized result for exactly that session revision is
    cached and [session] is still the session registered for [id]. *)

val cache_response :
  t -> string -> session:Core.Sosae.Session.t -> revision:int ->
  body:string -> string
(** Store the serialized result for [revision] and return its freshly
    minted etag. If a concurrent caller already stored the same
    revision, its (equivalent) entry and etag are kept. When [session]
    is no longer the one registered for [id], nothing is stored and
    the returned etag will never validate. *)

val with_session :
  t -> string -> (Core.Sosae.Session.t -> 'a) -> ('a, [ `Not_found ]) result
(** Run the callback holding the session's private lock
    ({!Core.Sosae.Session.exclusively}). The registry lock is NOT held
    during the callback, so slow evaluations don't block unrelated
    requests; a concurrent [remove] only unlinks the name, the session
    stays valid for callbacks already running. *)
