(** The daemon's collection of named evaluation sessions.

    The registry map itself is guarded by its own lock (creation,
    lookup, removal); each held {!Core.Sosae.Session.t} is additionally
    serialized through {!Core.Sosae.Session.exclusively} by
    {!with_session}, so concurrent requests against the same session
    queue up while requests against distinct sessions run in
    parallel. *)

type t

val create : ?jobs:int -> unit -> t
(** [jobs] is the domain-pool width handed to every
    [Session.evaluate] the server runs (default
    {!Core.Sosae.default_jobs}). *)

val jobs : t -> int

val add :
  t ->
  id:string ->
  ?config:Walkthrough.Engine.config ->
  Core.Sosae.project ->
  (unit, [ `Conflict ]) result
(** Create a session named [id] over the project. [`Conflict] when the
    name is taken. *)

val remove : t -> string -> bool
(** [true] when a session was removed. *)

val ids : t -> string list
(** Sorted. *)

val with_session :
  t -> string -> (Core.Sosae.Session.t -> 'a) -> ('a, [ `Not_found ]) result
(** Run the callback holding the session's private lock
    ({!Core.Sosae.Session.exclusively}). The registry lock is NOT held
    during the callback, so slow evaluations don't block unrelated
    requests; a concurrent [remove] only unlinks the name, the session
    stays valid for callbacks already running. *)
