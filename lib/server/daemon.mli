(** The long-running evaluation server: a TCP (and optionally Unix
    domain) listener in front of {!Api.handle}.

    Concurrency model: one accept thread per listener pushes connections
    into a bounded queue drained by a fixed pool of worker threads.
    Workers do blocking socket IO; the CPU-parallel part — walking
    scenarios — happens on {!Core.Sosae.Session.evaluate}'s domain pool
    inside the request. When the queue is full, the accept thread writes
    a best-effort 429 and closes the connection instead of queueing it
    (bounded memory, fast failure).

    Connection lifecycle: connections are keep-alive by default
    (HTTP/1.1 semantics, pipelining included — see {!Http.parser_}) and
    close when the client says [Connection: close], after
    [max_requests] responses (the response that hits the cap carries
    [Connection: close]), on a framing error, or on timeout. Two
    timeouts guard the reads: [read_timeout] while a request is partly
    buffered (a timeout there answers 408 and closes) and
    [idle_timeout] between requests on a quiescent keep-alive
    connection (reaped silently). Request head and body sizes are
    bounded ({!Http.parser_} limits). [SIGPIPE] is ignored for the
    process (writes to dead peers fail with [EPIPE] instead). Each
    connection serializes every response into one reused buffer.

    {!stop} drains gracefully: the listeners close (no new
    connections), queued connections are still served, then the workers
    exit and [stop] returns. {!run} wires this to [SIGTERM]/[SIGINT]
    for the CLI. *)

type config = {
  port : int;  (** 0 picks an ephemeral port — see {!port} *)
  host : string;  (** bind address, default ["127.0.0.1"] *)
  unix_path : string option;  (** additional Unix-domain listener *)
  jobs : int option;  (** domain-pool width per evaluation;
                          [None] = {!Core.Sosae.default_jobs} *)
  workers : int;  (** worker-thread pool size *)
  queue_capacity : int;  (** accepted-but-unserved connection bound *)
  read_timeout : float;  (** seconds, while a request is in flight *)
  write_timeout : float;  (** seconds *)
  idle_timeout : float;
      (** seconds a quiescent keep-alive connection may sit between
          requests before being reaped; default 30 *)
  max_requests : int;
      (** requests served per connection before it is closed
          ([Connection: close] on the last response); [0] = unlimited;
          default 1000 *)
  max_head : int;  (** request-head byte limit *)
  max_body : int;  (** request-body byte limit *)
  data_dir : string option;
      (** durability directory for the write-ahead journal and
          snapshots; [None] (the default) keeps the registry purely
          in-memory, exactly as before *)
  fsync : Store.Journal.fsync_policy;
      (** when journal appends reach the disk (only meaningful with
          [data_dir]); default {!Store.Journal.Always} *)
  group_window : float;
      (** group-commit accumulation window in seconds (the CLI flag is
          in milliseconds): how long a batch leader waits for more
          writers before the shared fsync. [0.0] (the default) still
          batches — writers arriving during an in-flight fsync share
          the next one — it just never delays an uncontended writer.
          Only meaningful with [data_dir] and [fsync = Always]. *)
  compact_threshold : int;
      (** journal bytes past which the maintenance thread snapshots
          and rotates it (off the request path); default 8 MiB *)
  replica_of : (string * int) option;
      (** boot as a read replica of the upstream at [(host, port)]: a
          background loop tails the upstream's journal over
          [GET /replication/log] (bootstrapping a fresh copy from
          [GET /replication/snapshot] when one exists) and applies it
          locally, reads are served from the applied copy, and
          mutations answer [421] [read_only] naming the upstream.
          Composes with [data_dir]: a durable replica journals every
          shipped batch byte-for-byte, recovers and resumes from its
          local frontier after a restart, serves the ship endpoints to
          chained replicas of its own, and is immediately durable and
          shippable-from when promoted. The upstream may itself be a
          replica — chains form fan-out trees, and a link never
          applies a record its upstream hadn't already made durable. *)
  replica_poll : float;
      (** seconds the apply loop sleeps between polls once caught up;
          default 0.02 *)
}

val default_config : config
(** Port 8080 on 127.0.0.1, no Unix listener, 4 workers, queue of 64,
    10 s timeouts, {!Http.parser_}'s default size limits. *)

type t

val start : ?config:config -> unit -> t
(** Bind, spawn the pool, return immediately. The registry starts
    empty — unless [config.data_dir] is set, in which case the journal
    and snapshot found there are replayed into the registry first
    (tolerating a torn tail from a crash) and every subsequent
    mutation is journaled before it is acknowledged. Recovery
    statistics appear under ["journal"."recovery"] in [GET /metrics].
    @raise Unix.Unix_error when binding fails (port in use, bad
    path). *)

val port : t -> int
(** The actual bound TCP port — equals [config.port] unless that was 0,
    in which case this is the kernel-assigned ephemeral port (how the
    tests and bench run servers without port coordination). *)

val ctx : t -> Api.ctx
(** The live registry + metrics, for in-process inspection. *)

val promote : t -> unit
(** Replica → primary: seal the apply loop (no further shipped record
    is applied), then flip the role so mutations are accepted. The
    sealed state is exactly the applied prefix of the old primary's
    journal. No-op on a primary or an already-promoted replica.
    {!run} wires this to [SIGUSR1]. *)

val stop : t -> unit
(** Graceful drain; idempotent. Returns once every worker has exited.
    With persistence, the drained state is then checkpointed into a
    snapshot and the journal closed, so the next boot recovers from
    the snapshot instead of replaying a long journal. *)

val run : ?config:config -> unit -> unit
(** [start], print the bound address on stdout, then block until
    [SIGTERM] or [SIGINT], then [stop]. When booted with
    [replica_of], [SIGUSR1] triggers {!promote}. The CLI entry
    point. *)
