(** Durable registry mutations: the encoding layer between
    {!Registry} and {!Store.Wal}.

    Every state change the API acknowledges — session creation (with
    the full project payload), an applied diff, a removal — is encoded
    as one payload and appended to the write-ahead journal before the
    2xx response is sent; {!Store.Journal.fsync_policy} decides what
    "durable" means. Creates carry their three XML artifacts verbatim
    behind a small length-prefixed header (escaping whole documents
    into JSON strings was the dominant CPU cost of a journaled
    create); every other mutation is one JSON object, and journals
    written with JSON-encoded creates still replay. On boot, {!open_}
    replays snapshot + journal into a mutation list the registry
    re-applies.

    Thread-safety: {!log}, {!compact} and {!flush} take an internal
    lock, but callers must additionally serialize mutations against
    each other so journal order equals apply order — {!Registry} does
    this with its mutation lock. *)

type mutation =
  | Create of {
      id : string;
      policy : Adl.Graph.policy;
      scenarios : string;  (** ScenarioML XML *)
      architecture : string;  (** xADL XML *)
      mapping : string;  (** mapping XML *)
    }
  | Diff of { id : string; ops : Adl.Diff.op list }
  | Set_architecture of { id : string; architecture : string }
      (** fallback for diffs whose ops the wire format cannot encode:
          the whole post-diff architecture *)
  | Remove of { id : string }

val encode_ops : Adl.Diff.op list -> Jsonlight.t option
(** The removal/rename vocabulary of the [/diff] endpoint; [None] when
    some op (an [Add_*]) has no wire encoding — the caller journals a
    {!Set_architecture} instead. *)

val encode : mutation -> string

val decode : string -> (mutation, string) result

type recovery = {
  mutations : mutation list;
      (** snapshot state (all [Create]s) followed by journal entries,
          in acknowledgement order *)
  entries : int;  (** total records read (snapshot + journal) *)
  undecodable : int;  (** records whose payload failed to decode *)
  truncated_bytes : int;  (** torn/corrupt journal tail discarded *)
  corrupt_tail : bool;
}

type t

val open_ :
  ?fsync:Store.Journal.fsync_policy ->
  ?group:Store.Journal.Group.config ->
  ?compact_bytes:int ->
  ?env:Store.Fsenv.t ->
  string ->
  t * recovery
(** [open_ dir] recovers from [dir] (creating it if needed).
    [?group] enables group commit: concurrent [Always] writers share
    fsyncs (see {!Store.Journal.enable_group}). [compact_bytes]
    (default 8 MiB) is the journal size past which {!should_compact}
    asks for a snapshot. [?env] injects the filesystem effects
    (default {!Store.Fsenv.real}) — how the simulation harness runs
    the whole persistence stack against an in-memory fault model. *)

val set_metrics : t -> Metrics.t -> unit
(** Mirror journal counters into the given metrics after every
    operation. *)

val log : t -> mutation -> unit
(** Append one mutation; on return it is durable per the fsync
    policy. Equivalent to {!stage} followed by {!await}. *)

val stage : t -> mutation -> int64
(** Write one mutation to the journal without waiting for durability;
    returns its sequence number. The caller must hold whatever lock
    makes journal order equal apply order while staging — but should
    release it before {!await}, so concurrent writers batch into one
    fsync instead of queuing behind each other's. *)

val await : t -> int64 -> unit
(** Block until the staged mutation is durable per the fsync policy
    (a no-op except under group commit with [Always]). *)

val should_compact : t -> bool

val compact : t -> state:mutation list -> unit
(** Snapshot the given full state (a [Create] per live session) and
    empty the journal. The caller guarantees [state] reflects every
    mutation logged so far (it holds the registry mutation lock). *)

val compact_background : t -> state:(unit -> mutation list) -> unit
(** Compaction that runs while mutations keep flowing: the journal
    mirrors everything staged after the covered point and is
    atomically replaced with just that tail once the snapshot is
    durable (see {!Store.Wal.compact_background}). [state] is called
    after the covered point is captured and must reflect at least
    every mutation applied up to it — the registry guarantees this
    because it applies before staging, under its mutation lock. *)

val flush : t -> unit

val fsync_policy : t -> Store.Journal.fsync_policy

val covered_seq : t -> int64
(** Highest journaled sequence number safe to ship to a replica —
    see {!Store.Ship.covered_seq}. *)

val next_seq : t -> int64
(** The sequence number the next staged mutation will receive — how
    the simulation harness predicts a mutation's identity before
    executing it. *)

val ship : ?max_bytes:int -> t -> after:int64 -> Store.Ship.batch
(** Serve the next batch of framed journal records to a replica —
    see {!Store.Ship.fetch}. *)

val snapshot : t -> (int64 * string) option
(** The current snapshot file's raw frames plus the sequence it
    covers, for [GET /replication/snapshot] — see {!Store.Ship.snapshot}. *)

val ship_stats : t -> Store.Ship.stats
(** Cursor-cache hit/miss counts, reset-batch count and per-cursor
    ship lag — what a primary's [GET /replication] reports. *)

val ingest : t -> string -> unit
(** Replica side: append a shipped batch's raw frames to the local
    journal, keeping upstream sequence numbers — see
    {!Store.Wal.ingest}. Durable per the fsync policy on return. *)

val install_snapshot : t -> string -> int64
(** Replica side: install a shipped reset batch as the local snapshot,
    empty the journal, and re-base sequence numbering past the
    returned covered sequence — see {!Store.Wal.install_snapshot}. *)

val stats : t -> Store.Wal.counters
(** Lifetime journal counters (appends, bytes, fsyncs, compactions). *)

val group_stats : t -> Store.Journal.Group.stats option
(** Group-commit batching counters; [None] unless [?group] was passed
    to {!open_}. *)

val dir : t -> string

val close : t -> unit
(** Flush and close the journal. Idempotent. *)
