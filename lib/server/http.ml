type meth = GET | HEAD | POST | PUT | DELETE | OPTIONS | Other of string

let meth_to_string = function
  | GET -> "GET"
  | HEAD -> "HEAD"
  | POST -> "POST"
  | PUT -> "PUT"
  | DELETE -> "DELETE"
  | OPTIONS -> "OPTIONS"
  | Other m -> m

let meth_of_string = function
  | "GET" -> GET
  | "HEAD" -> HEAD
  | "POST" -> POST
  | "PUT" -> PUT
  | "DELETE" -> DELETE
  | "OPTIONS" -> OPTIONS
  | m -> Other m

type request = {
  meth : meth;
  target : string;
  path : string list;
  query : (string * string) list;
  version : [ `Http_1_0 | `Http_1_1 ];
  headers : (string * string) list;
  body : string;
}

let header r name =
  let name = String.lowercase_ascii name in
  List.assoc_opt name r.headers

let keep_alive r =
  match (r.version, Option.map String.lowercase_ascii (header r "connection")) with
  | _, Some "close" -> false
  | `Http_1_1, _ -> true
  | `Http_1_0, Some "keep-alive" -> true
  | `Http_1_0, _ -> false

(* If-None-Match: "*" matches anything; otherwise a comma-separated
   list of (quoted) entity tags. RFC 9110 §13.1.2 mandates weak
   comparison here, so a "W/" prefix (e.g. added by an intermediary)
   is stripped from each candidate; the opaque tags themselves are
   compared byte-for-byte — this server only mints strong tags. *)
let strip_weak_prefix tag =
  if String.length tag >= 2 && tag.[0] = 'W' && tag.[1] = '/' then
    String.sub tag 2 (String.length tag - 2)
  else tag

let if_none_match_matches r ~etag =
  match header r "if-none-match" with
  | None -> false
  | Some "*" -> true
  | Some value ->
      String.split_on_char ',' value
      |> List.exists (fun candidate ->
             String.equal (strip_weak_prefix (String.trim candidate)) etag)

type parse_error =
  | Bad_request of string
  | Head_too_large
  | Body_too_large
  | Unsupported of string

let parse_error_message = function
  | Bad_request m -> m
  | Head_too_large -> "request head exceeds the configured limit"
  | Body_too_large -> "request body exceeds the configured limit"
  | Unsupported m -> m

(* ------------------------------------------------------------------ *)
(* Target decoding                                                    *)
(* ------------------------------------------------------------------ *)

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Percent-decoding; [plus_is_space] for query components. Invalid
   escapes are kept verbatim rather than rejected: the target already
   passed the token checks, and a literal '%' in a session id should
   round-trip rather than kill the request. *)
let percent_decode ?(plus_is_space = false) s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' when !i + 2 < n -> (
        match (hex_value s.[!i + 1], hex_value s.[!i + 2]) with
        | Some hi, Some lo ->
            Buffer.add_char buf (Char.chr ((hi * 16) + lo));
            i := !i + 2
        | _ -> Buffer.add_char buf '%')
    | '+' when plus_is_space -> Buffer.add_char buf ' '
    | c -> Buffer.add_char buf c);
    incr i
  done;
  Buffer.contents buf

let split_target target =
  let raw_path, raw_query =
    match String.index_opt target '?' with
    | Some q ->
        (String.sub target 0 q, String.sub target (q + 1) (String.length target - q - 1))
    | None -> (target, "")
  in
  let path =
    String.split_on_char '/' raw_path
    |> List.filter (fun seg -> seg <> "")
    |> List.map percent_decode
  in
  let query =
    if raw_query = "" then []
    else
      String.split_on_char '&' raw_query
      |> List.filter (fun kv -> kv <> "")
      |> List.map (fun kv ->
             match String.index_opt kv '=' with
             | Some e ->
                 ( percent_decode ~plus_is_space:true (String.sub kv 0 e),
                   percent_decode ~plus_is_space:true
                     (String.sub kv (e + 1) (String.length kv - e - 1)) )
             | None -> (percent_decode ~plus_is_space:true kv, ""))
  in
  (path, query)

(* ------------------------------------------------------------------ *)
(* Incremental parsing                                                *)
(* ------------------------------------------------------------------ *)

type parser_ = {
  max_head : int;
  max_body : int;
  mutable buf : string;  (** unconsumed bytes *)
  mutable failed : parse_error option;  (** sticky *)
}

let parser_ ?(max_head = 16 * 1024) ?(max_body = 4 * 1024 * 1024) () =
  { max_head; max_body; buf = ""; failed = None }

let feed p s = if s <> "" then p.buf <- p.buf ^ s

let buffered p = String.length p.buf

(* index of "\r\n\r\n" in [s], if any *)
let find_head_end s =
  let n = String.length s in
  let rec go i =
    if i + 3 >= n then None
    else if
      s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r' && s.[i + 3] = '\n'
    then Some i
    else go (i + 1)
  in
  go 0

let is_tchar c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_' | '`'
  | '|' | '~' ->
      true
  | _ -> false

let is_token s = s <> "" && String.for_all is_tchar s

let trim_ows s = String.trim s

let ( let* ) = Result.bind

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      let* () =
        if is_token meth then Ok ()
        else Error (Bad_request (Printf.sprintf "malformed method %S" meth))
      in
      let* () =
        if target <> "" && target.[0] = '/' then Ok ()
        else Error (Bad_request (Printf.sprintf "malformed request target %S" target))
      in
      let* version =
        match version with
        | "HTTP/1.1" -> Ok `Http_1_1
        | "HTTP/1.0" -> Ok `Http_1_0
        | v -> Error (Bad_request (Printf.sprintf "unsupported protocol version %S" v))
      in
      Ok (meth_of_string meth, target, version)
  | _ -> Error (Bad_request (Printf.sprintf "malformed request line %S" line))

let parse_header_line line =
  match String.index_opt line ':' with
  | None -> Error (Bad_request (Printf.sprintf "malformed header line %S" line))
  | Some colon ->
      let name = String.sub line 0 colon in
      let value = String.sub line (colon + 1) (String.length line - colon - 1) in
      if not (is_token name) then
        Error (Bad_request (Printf.sprintf "malformed header name %S" name))
      else Ok (String.lowercase_ascii name, trim_ows value)

let rec split_crlf_lines s =
  match
    let n = String.length s in
    let rec go i = if i + 1 >= n then None else if s.[i] = '\r' && s.[i + 1] = '\n' then Some i else go (i + 1) in
    go 0
  with
  | Some i ->
      String.sub s 0 i
      :: split_crlf_lines (String.sub s (i + 2) (String.length s - i - 2))
  | None -> if s = "" then [] else [ s ]

let parse_headers lines =
  List.fold_left
    (fun acc line ->
      let* acc = acc in
      if line <> "" && (line.[0] = ' ' || line.[0] = '\t') then
        Error (Bad_request "obsolete header folding is not supported")
      else
        let* kv = parse_header_line line in
        Ok (kv :: acc))
    (Ok []) lines
  |> Result.map List.rev

let content_length p headers =
  match List.filter (fun (k, _) -> k = "content-length") headers with
  | [] -> Ok 0
  | (_, v) :: rest ->
      if List.exists (fun (_, v') -> v' <> v) rest then
        Error (Bad_request "conflicting Content-Length headers")
      else if not (v <> "" && String.for_all (function '0' .. '9' -> true | _ -> false) v)
      then Error (Bad_request (Printf.sprintf "malformed Content-Length %S" v))
      else (
        (* lengths within the limit always fit in an int *)
        match int_of_string_opt v with
        | Some n when n <= p.max_body -> Ok n
        | Some _ | None -> Error Body_too_large)

let parse_head p head =
  let* lines =
    match split_crlf_lines head with
    | [] -> Error (Bad_request "empty request head")
    | request_line :: header_lines -> Ok (request_line, header_lines)
  in
  let request_line, header_lines = lines in
  let* meth, target, version = parse_request_line request_line in
  let* headers = parse_headers header_lines in
  let* () =
    if List.mem_assoc "transfer-encoding" headers then
      Error (Unsupported "Transfer-Encoding is not supported; use Content-Length")
    else Ok ()
  in
  let* length = content_length p headers in
  let path, query = split_target target in
  Ok ({ meth; target; path; query; version; headers; body = "" }, length)

let next p =
  match p.failed with
  | Some e -> `Error e
  | None -> (
      (* tolerate CRLFs preceding the request line (RFC 9112 §2.2) *)
      let skip = ref 0 in
      let n = String.length p.buf in
      while
        !skip + 1 < n && p.buf.[!skip] = '\r' && p.buf.[!skip + 1] = '\n'
      do
        skip := !skip + 2
      done;
      if !skip > 0 then p.buf <- String.sub p.buf !skip (n - !skip);
      match find_head_end p.buf with
      | None ->
          if String.length p.buf > p.max_head then begin
            p.failed <- Some Head_too_large;
            `Error Head_too_large
          end
          else `Need_more
      | Some head_end ->
          if head_end > p.max_head then begin
            p.failed <- Some Head_too_large;
            `Error Head_too_large
          end
          else (
            let head = String.sub p.buf 0 head_end in
            match parse_head p head with
            | Error e ->
                p.failed <- Some e;
                `Error e
            | Ok (request, length) ->
                let body_start = head_end + 4 in
                if String.length p.buf - body_start < length then `Need_more
                else begin
                  let body = String.sub p.buf body_start length in
                  let consumed = body_start + length in
                  p.buf <-
                    String.sub p.buf consumed (String.length p.buf - consumed);
                  `Request { request with body }
                end))

(* ------------------------------------------------------------------ *)
(* Responses                                                          *)
(* ------------------------------------------------------------------ *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let reason_phrase = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 304 -> "Not Modified"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Content Too Large"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 501 -> "Not Implemented"
  | 503 -> "Service Unavailable"
  | s when s >= 200 && s < 300 -> "OK"
  | s when s >= 400 && s < 500 -> "Client Error"
  | _ -> "Server Error"

let response ?(headers = []) status body =
  { status; reason = reason_phrase status; resp_headers = headers; resp_body = body }

(* 204 and 304 are defined body-less (RFC 9110 §6.4.1); 1xx cannot
   carry one either. The [Content-Length] stays explicit — 0 for the
   body-less statuses — so keep-alive clients always know where the
   response ends without waiting for a close. *)
let body_suppressed status = status = 204 || status = 304 || status / 100 = 1

let serialize_to buf ?request_meth ~close r =
  let suppressed = body_suppressed r.status in
  Buffer.add_string buf (Printf.sprintf "HTTP/1.1 %d %s\r\n" r.status r.reason);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    r.resp_headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n"
       (if suppressed then 0 else String.length r.resp_body));
  if close then Buffer.add_string buf "Connection: close\r\n";
  Buffer.add_string buf "\r\n";
  (match request_meth with
  | Some HEAD -> ()
  | Some _ | None -> if not suppressed then Buffer.add_string buf r.resp_body)

let serialize ?request_meth ~close r =
  let buf = Buffer.create (String.length r.resp_body + 256) in
  serialize_to buf ?request_meth ~close r;
  Buffer.contents buf
