let src = Logs.Src.create "sosae.server" ~doc:"evaluation server"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  port : int;
  host : string;
  unix_path : string option;
  jobs : int option;
  workers : int;
  queue_capacity : int;
  read_timeout : float;
  write_timeout : float;
  idle_timeout : float;
  max_requests : int;
  max_head : int;
  max_body : int;
  data_dir : string option;
  fsync : Store.Journal.fsync_policy;
  group_window : float;
  compact_threshold : int;
  replica_of : (string * int) option;
  replica_poll : float;
}

let default_config =
  {
    port = 8080;
    host = "127.0.0.1";
    unix_path = None;
    jobs = None;
    workers = 4;
    queue_capacity = 64;
    read_timeout = 10.0;
    write_timeout = 10.0;
    idle_timeout = 30.0;
    max_requests = 1000;
    max_head = 16 * 1024;
    max_body = 4 * 1024 * 1024;
    data_dir = None;
    fsync = Store.Journal.Always;
    group_window = 0.0;
    compact_threshold = 8 * 1024 * 1024;
    replica_of = None;
    replica_poll = 0.02;
  }

(* ------------------------------------------------------------------ *)
(* Bounded connection queue                                           *)
(* ------------------------------------------------------------------ *)

type queue = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : Unix.file_descr Queue.t;
  capacity : int;
  mutable closed : bool;
}

let queue_create capacity =
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    capacity;
    closed = false;
  }

(* [`Full] instead of blocking: the accept thread must keep accepting
   to answer 429, so saturation is reported, not absorbed. *)
let queue_push q fd =
  Mutex.protect q.lock (fun () ->
      if q.closed then `Closed
      else if Queue.length q.items >= q.capacity then `Full
      else begin
        Queue.push fd q.items;
        Condition.signal q.nonempty;
        `Queued
      end)

(* Blocks until an item or close+empty: workers drain what was accepted
   before exiting, which is the graceful part of the drain. *)
let queue_pop q =
  Mutex.protect q.lock (fun () ->
      let rec wait () =
        if not (Queue.is_empty q.items) then Some (Queue.pop q.items)
        else if q.closed then None
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
      in
      wait ())

let queue_close q =
  Mutex.protect q.lock (fun () ->
      q.closed <- true;
      Condition.broadcast q.nonempty)

(* ------------------------------------------------------------------ *)
(* Connection handling                                                *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let n = String.length s in
  let b = Bytes.unsafe_of_string s in
  let rec go off =
    if off < n then begin
      let written = Unix.write fd b off (n - off) in
      go (off + written)
    end
  in
  go 0

let best_effort f = try f () with _ -> ()

let serve_connection config api_ctx fd =
  let metrics = api_ctx.Api.metrics in
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.read_timeout;
  Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.write_timeout;
  let parser_ = Http.parser_ ~max_head:config.max_head ~max_body:config.max_body () in
  let chunk = Bytes.create 8192 in
  (* one response buffer per connection: keep-alive steady state
     serializes every response into the same grown-to-size buffer *)
  let out = Buffer.create 8192 in
  let served = ref 0 in
  (* SO_RCVTIMEO switches between the two waits — [read_timeout] while
     a request is partly buffered, [idle_timeout] between requests on a
     quiescent keep-alive connection — but only when the mode actually
     flips, so pipelined bursts pay no extra syscalls *)
  let timeout_is_idle = ref false in
  let set_timeout ~idle =
    if idle <> !timeout_is_idle then begin
      timeout_is_idle := idle;
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO
        (if idle then config.idle_timeout else config.read_timeout)
    end
  in
  let respond request response =
    incr served;
    let close =
      (not (Http.keep_alive request))
      || (config.max_requests > 0 && !served >= config.max_requests)
    in
    Buffer.clear out;
    Http.serialize_to out ~request_meth:request.Http.meth ~close response;
    write_all fd (Buffer.contents out);
    close
  in
  let rec loop () =
    match Http.next parser_ with
    | `Request request ->
        Metrics.incr_in_flight metrics;
        let started = Unix.gettimeofday () in
        let route, response =
          Fun.protect
            ~finally:(fun () -> Metrics.decr_in_flight metrics)
            (fun () -> Api.handle api_ctx request)
        in
        Metrics.observe metrics ~route ~status:response.Http.status
          ~seconds:(Unix.gettimeofday () -. started);
        if not (respond request response) then loop ()
    | `Error e ->
        (* the connection cannot be re-synced after a framing error *)
        best_effort (fun () ->
            write_all fd (Http.serialize ~close:true (Api.response_of_parse_error e)))
    | `Need_more -> (
        set_timeout ~idle:(Http.buffered parser_ = 0);
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> ()  (* peer closed; a torn request just dies with it *)
        | n ->
            Http.feed parser_ (Bytes.sub_string chunk 0 n);
            loop ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* read timeout: mid-request gets a 408, idle keep-alive
               connections are reaped silently *)
            if Http.buffered parser_ > 0 then begin
              Metrics.reject_timeout metrics;
              best_effort (fun () ->
                  write_all fd
                    (Http.serialize ~close:true
                       (Api.error_response 408 ~category:"timeout"
                          "timed out reading the request")))
            end)
  in
  Fun.protect
    ~finally:(fun () -> best_effort (fun () -> Unix.close fd))
    (fun () ->
      try loop () with
      | Unix.Unix_error _ | Sys_error _ -> ()
      | e ->
          Log.err (fun m ->
              m "connection handler escaped: %s" (Printexc.to_string e)))

(* ------------------------------------------------------------------ *)
(* Daemon                                                             *)
(* ------------------------------------------------------------------ *)

type t = {
  config : config;
  api_ctx : Api.ctx;
  tcp_listener : Unix.file_descr;
  tcp_port : int;
  unix_listener : Unix.file_descr option;
  queue : queue;
  threads : Thread.t list;
  replica : Replica.t option;
  maintenance : Thread.t option;
  maintenance_stop : bool Atomic.t;
  stop_lock : Mutex.t;
  mutable stopped : bool;
}

let listen_tcp ~host ~port =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd Unix.SO_REUSEADDR true;
     Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen fd 128
   with e ->
     Unix.close fd;
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> assert false
  in
  (fd, bound_port)

let listen_unix path =
  if Sys.file_exists path then Unix.unlink path;
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind fd (Unix.ADDR_UNIX path);
     Unix.listen fd 128
   with e ->
     Unix.close fd;
     raise e);
  fd

let accept_loop t listener =
  let rec loop () =
    match Unix.accept ~cloexec:true listener with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | exception Unix.Unix_error _ -> ()  (* listener closed: stop *)
    | fd, _peer -> (
        match queue_push t.queue fd with
        | `Queued -> loop ()
        | `Closed ->
            best_effort (fun () -> Unix.close fd);
            ()
        | `Full ->
            Metrics.reject_overload t.api_ctx.Api.metrics;
            best_effort (fun () ->
                Unix.setsockopt_float fd Unix.SO_SNDTIMEO 1.0;
                write_all fd (Http.serialize ~close:true Api.overloaded_response));
            best_effort (fun () -> Unix.close fd);
            loop ())
  in
  loop ()

let worker_loop t =
  let rec loop () =
    match queue_pop t.queue with
    | None -> ()
    | Some fd ->
        serve_connection t.config t.api_ctx fd;
        loop ()
  in
  loop ()

(* Off-the-request-path compaction: poll the journal size and rotate
   it when past the threshold, while mutations keep flowing (the
   snapshot/rotation protocol in {!Store.Wal.compact_background} makes
   the overlap safe). The poll is cheap — an int comparison — so a
   short period keeps the journal close to its bound. *)
let maintenance_loop t =
  while not (Atomic.get t.maintenance_stop) do
    (match Registry.maintenance_compact t.api_ctx.Api.registry with
    | true -> Log.info (fun m -> m "background compaction complete")
    | false -> ()
    | exception e ->
        Log.err (fun m ->
            m "background compaction failed: %s" (Printexc.to_string e)));
    if not (Atomic.get t.maintenance_stop) then Unix.sleepf 0.05
  done

let start ?(config = default_config) () =
  (* writes to peers that hung up must fail with EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (* [replica_of] composes with [data_dir]: a durable replica journals
     every shipped batch byte-for-byte, so it recovers its own state,
     resumes tailing from its local frontier, serves the ship endpoints
     to chained replicas, and is immediately durable when promoted *)
  let persist =
    Option.map
      (fun dir ->
        Persist.open_ ~fsync:config.fsync
          ~group:
            {
              Store.Journal.Group.window = config.group_window;
              max_batch = Store.Journal.Group.default.Store.Journal.Group.max_batch;
            }
          ~compact_bytes:config.compact_threshold dir)
      config.data_dir
  in
  let api_ctx = Api.make_ctx ?jobs:config.jobs ?persist:(Option.map fst persist) () in
  (match persist with
  | None -> ()
  | Some (p, (recovery : Persist.recovery)) ->
      Persist.set_metrics p api_ctx.Api.metrics;
      let stats = Registry.recover api_ctx.Api.registry recovery.Persist.mutations in
      Metrics.set_recovery api_ctx.Api.metrics
        {
          Metrics.sessions = List.length (Registry.ids api_ctx.Api.registry);
          entries = recovery.Persist.entries;
          skipped = stats.Registry.skipped + recovery.Persist.undecodable;
          truncated_bytes = recovery.Persist.truncated_bytes;
          corrupt_tail = recovery.Persist.corrupt_tail;
        };
      Log.info (fun m ->
          m "recovered %d session(s) from %s (%d record(s), %d skipped%s)"
            (List.length (Registry.ids api_ctx.Api.registry))
            (Persist.dir p) recovery.Persist.entries
            (stats.Registry.skipped + recovery.Persist.undecodable)
            (if recovery.Persist.truncated_bytes > 0 then
               Printf.sprintf ", %d torn tail byte(s) discarded"
                 recovery.Persist.truncated_bytes
             else "")));
  (* the role is fixed before the first connection is accepted, so no
     request ever races a half-initialized replica *)
  let replica =
    Option.map
      (fun (host, port) ->
        let r =
          Replica.start ~poll_interval:config.replica_poll
            ~registry:api_ctx.Api.registry ~metrics:api_ctx.Api.metrics ~host
            ~port ()
        in
        api_ctx.Api.role <- Api.Replica r;
        Log.info (fun m -> m "replicating from %s" (Replica.primary_address r));
        r)
      config.replica_of
  in
  let tcp_listener, tcp_port = listen_tcp ~host:config.host ~port:config.port in
  let unix_listener =
    match config.unix_path with
    | None -> None
    | Some path -> (
        try Some (listen_unix path)
        with e ->
          Unix.close tcp_listener;
          raise e)
  in
  let queue = queue_create config.queue_capacity in
  let t =
    {
      config;
      api_ctx;
      tcp_listener;
      tcp_port;
      unix_listener;
      queue;
      threads = [];
      replica;
      maintenance = None;
      maintenance_stop = Atomic.make false;
      stop_lock = Mutex.create ();
      stopped = false;
    }
  in
  let maintenance =
    match persist with
    | Some _ ->
        Registry.set_background_compaction api_ctx.Api.registry true;
        Some (Thread.create (fun () -> maintenance_loop t) ())
    | None -> None
  in
  let acceptors =
    Thread.create (fun () -> accept_loop t tcp_listener) ()
    ::
    (match unix_listener with
    | None -> []
    | Some fd -> [ Thread.create (fun () -> accept_loop t fd) () ])
  in
  let workers =
    List.init (max 1 config.workers) (fun _ ->
        Thread.create (fun () -> worker_loop t) ())
  in
  let t = { t with threads = acceptors @ workers; maintenance } in
  Log.info (fun m ->
      m "listening on %s:%d (%d workers, queue %d)" config.host tcp_port
        config.workers config.queue_capacity);
  t

let port t = t.tcp_port
let ctx t = t.api_ctx

let promote t =
  match t.replica with
  | None -> ()
  | Some r ->
      if not (Replica.sealed r) then begin
        (* seal first: once the role flips to [Primary], mutations are
           accepted, and a still-running apply loop could overwrite
           them with stale shipped records *)
        Replica.seal r;
        t.api_ctx.Api.role <- Api.Primary;
        Metrics.set_replication t.api_ctx.Api.metrics
          {
            Metrics.role = "primary";
            primary = None;
            applied_seq = Replica.applied_seq r;
            covered_seq = Replica.applied_seq r;
            lag = 0L;
          };
        Log.info (fun m ->
            m "promoted to primary at seq %Ld (was replicating from %s)"
              (Replica.applied_seq r)
              (Replica.primary_address r))
      end

let stop t =
  let first =
    Mutex.protect t.stop_lock (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          true
        end)
  in
  if first then begin
    (* shutdown() before close(): merely closing a listening fd does
       not wake a thread blocked in accept(), shutting it down does;
       closing the queue then lets workers exit once it is drained *)
    let kill_listener fd =
      best_effort (fun () -> Unix.shutdown fd Unix.SHUTDOWN_ALL);
      best_effort (fun () -> Unix.close fd)
    in
    kill_listener t.tcp_listener;
    Option.iter kill_listener t.unix_listener;
    queue_close t.queue;
    List.iter Thread.join t.threads;
    (* the maintenance thread must be gone before the drain
       checkpoint: both write the snapshot temp file *)
    Atomic.set t.maintenance_stop true;
    Option.iter Thread.join t.maintenance;
    Option.iter Replica.seal t.replica;
    (* workers are drained, so the state is quiescent: checkpoint it
       into a snapshot and close the journal cleanly *)
    (match Registry.persist t.api_ctx.Api.registry with
    | None -> ()
    | Some p ->
        (try Registry.checkpoint t.api_ctx.Api.registry
         with e ->
           Log.err (fun m ->
               m "checkpoint on drain failed: %s" (Printexc.to_string e)));
        best_effort (fun () -> Persist.close p));
    Option.iter
      (fun path -> best_effort (fun () -> Unix.unlink path))
      t.config.unix_path;
    Log.info (fun m -> m "stopped")
  end

let run ?(config = default_config) () =
  let t = start ~config () in
  Printf.printf "sosae serve: listening on %s:%d%s\n%!" config.host (port t)
    (match config.unix_path with
    | Some p -> Printf.sprintf " and %s" p
    | None -> "");
  let shutdown = Atomic.make false in
  let promote_requested = Atomic.make false in
  let request_stop _ = Atomic.set shutdown true in
  let request_promote _ = Atomic.set promote_requested true in
  let previous =
    List.map
      (fun s -> (s, Sys.signal s (Sys.Signal_handle request_stop)))
      [ Sys.sigterm; Sys.sigint ]
    @
    match t.replica with
    | None -> []
    | Some _ -> [ (Sys.sigusr1, Sys.signal Sys.sigusr1 (Sys.Signal_handle request_promote)) ]
  in
  (* the handlers only flip flags — stop() and promote() join threads,
     which is not async-signal-safe work, so they run here on the main
     thread *)
  while not (Atomic.get shutdown) do
    if Atomic.get promote_requested then begin
      Atomic.set promote_requested false;
      promote t
    end;
    Unix.sleepf 0.1
  done;
  stop t;
  List.iter (fun (s, b) -> try Sys.set_signal s b with Invalid_argument _ -> ()) previous
