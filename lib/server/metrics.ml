(* All counters behind one mutex: every update is a few integer bumps,
   so a single lock is cheaper than per-counter atomics and keeps the
   /metrics snapshot consistent. *)

let bucket_bounds =
  [| 0.0005; 0.001; 0.0025; 0.005; 0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0 |]

type recovery = {
  sessions : int;
  entries : int;
  skipped : int;
  truncated_bytes : int;
  corrupt_tail : bool;
}

type t = {
  lock : Mutex.t;
  requests : (string * int, int) Hashtbl.t;  (** (route, status) -> count *)
  buckets : int array;  (** cumulative-by-render; stored per-bucket here *)
  mutable latency_sum : float;
  mutable latency_count : int;
  mutable in_flight : int;
  mutable rejected_overload : int;
  mutable rejected_timeout : int;
  (* write-ahead journal counters; [journal_enabled] keeps /metrics
     byte-identical to the journal-less server unless durability is on *)
  mutable journal_enabled : bool;
  mutable journal_records : int;
  mutable journal_bytes : int;
  mutable journal_fsyncs : int;
  mutable journal_compactions : int;
  (* group-commit batching counters; rendered only once a batch has
     actually completed, so an enabled-but-idle group keeps /metrics
     byte-identical *)
  mutable group : Store.Journal.Group.stats option;
  mutable recovery : recovery option;
  (* replication status; rendered only when the daemon has a role
     worth reporting (replica, or primary after a promotion), so a
     plain single-process server keeps /metrics byte-identical *)
  mutable replication : replication option;
  (* log-shipping serving stats; rendered only once a follower has
     actually fetched, so a primary nobody tails stays byte-identical *)
  mutable ship : ship option;
}

and replication = {
  role : string;  (** "primary" or "replica" *)
  primary : string option;  (** the upstream, when a replica *)
  applied_seq : int64;
  covered_seq : int64;
  lag : int64;
}

and ship = {
  cursor_hits : int;
  cursor_misses : int;
  reset_batches : int;
  cursor_lags : int64 list;
}

let create () =
  {
    lock = Mutex.create ();
    requests = Hashtbl.create 16;
    buckets = Array.make (Array.length bucket_bounds + 1) 0;
    latency_sum = 0.0;
    latency_count = 0;
    in_flight = 0;
    rejected_overload = 0;
    rejected_timeout = 0;
    journal_enabled = false;
    journal_records = 0;
    journal_bytes = 0;
    journal_fsyncs = 0;
    journal_compactions = 0;
    group = None;
    recovery = None;
    replication = None;
    ship = None;
  }

let with_lock t f = Mutex.protect t.lock f

let incr_in_flight t = with_lock t (fun () -> t.in_flight <- t.in_flight + 1)
let decr_in_flight t = with_lock t (fun () -> t.in_flight <- t.in_flight - 1)

let bucket_index seconds =
  let n = Array.length bucket_bounds in
  let rec go i = if i >= n || seconds <= bucket_bounds.(i) then i else go (i + 1) in
  go 0

let observe t ~route ~status ~seconds =
  with_lock t (fun () ->
      let key = (route, status) in
      let prev = Option.value ~default:0 (Hashtbl.find_opt t.requests key) in
      Hashtbl.replace t.requests key (prev + 1);
      let i = bucket_index seconds in
      t.buckets.(i) <- t.buckets.(i) + 1;
      t.latency_sum <- t.latency_sum +. seconds;
      t.latency_count <- t.latency_count + 1)

let reject_overload t =
  with_lock t (fun () -> t.rejected_overload <- t.rejected_overload + 1)

let reject_timeout t =
  with_lock t (fun () -> t.rejected_timeout <- t.rejected_timeout + 1)

(* Absolute counters, not deltas: the journal layer snapshots its own
   totals after each operation, so a missed sync cannot drift. *)
let set_journal t ~records ~bytes ~fsyncs ~compactions =
  with_lock t (fun () ->
      t.journal_enabled <- true;
      t.journal_records <- records;
      t.journal_bytes <- bytes;
      t.journal_fsyncs <- fsyncs;
      t.journal_compactions <- compactions)

let set_group_commit t stats = with_lock t (fun () -> t.group <- Some stats)

let set_recovery t recovery =
  with_lock t (fun () ->
      t.journal_enabled <- true;
      t.recovery <- Some recovery)

let set_replication t r = with_lock t (fun () -> t.replication <- Some r)

let set_ship t s = with_lock t (fun () -> t.ship <- Some s)

let ship_json s =
  Jsonlight.Obj
    [
      ("cursor_hits", Jsonlight.Int s.cursor_hits);
      ("cursor_misses", Jsonlight.Int s.cursor_misses);
      ("reset_batches", Jsonlight.Int s.reset_batches);
      ( "cursor_lags",
        Jsonlight.List
          (List.map (fun l -> Jsonlight.Int (Int64.to_int l)) s.cursor_lags) );
    ]

let to_json t ~extra =
  with_lock t (fun () ->
      let requests =
        Hashtbl.fold
          (fun (route, status) count acc ->
            Jsonlight.Obj
              [
                ("route", Jsonlight.String route);
                ("status", Jsonlight.Int status);
                ("count", Jsonlight.Int count);
              ]
            :: acc)
          t.requests []
        |> List.sort compare
      in
      let cumulative = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i count ->
               cumulative := !cumulative + count;
               let le =
                 if i < Array.length bucket_bounds then
                   Jsonlight.Float bucket_bounds.(i)
                 else Jsonlight.String "+inf"
               in
               Jsonlight.Obj [ ("le", le); ("count", Jsonlight.Int !cumulative) ])
             t.buckets)
      in
      let group_commit =
        match t.group with
        | Some g when g.Store.Journal.Group.batches > 0 ->
            let cumulative = ref 0 in
            let bounds = Store.Journal.Group.hist_bounds in
            let batch_buckets =
              Array.to_list
                (Array.mapi
                   (fun i count ->
                     cumulative := !cumulative + count;
                     let le =
                       if i < Array.length bounds then Jsonlight.Int bounds.(i)
                       else Jsonlight.String "+inf"
                     in
                     Jsonlight.Obj
                       [ ("le", le); ("count", Jsonlight.Int !cumulative) ])
                   g.Store.Journal.Group.hist)
            in
            [
              ( "group_commit",
                Jsonlight.Obj
                  [
                    ("batches", Jsonlight.Int g.Store.Journal.Group.batches);
                    ( "batched_appends",
                      Jsonlight.Int g.Store.Journal.Group.batched_appends );
                    ( "fsyncs_saved",
                      Jsonlight.Int g.Store.Journal.Group.fsyncs_saved );
                    ( "largest_batch",
                      Jsonlight.Int g.Store.Journal.Group.largest_batch );
                    ("batch_size", Jsonlight.List batch_buckets);
                  ] );
            ]
        | Some _ | None -> []
      in
      let journal =
        if not t.journal_enabled then []
        else
          [
            ( "journal",
              Jsonlight.Obj
                ([
                   ("records", Jsonlight.Int t.journal_records);
                   ("bytes", Jsonlight.Int t.journal_bytes);
                   ("fsyncs", Jsonlight.Int t.journal_fsyncs);
                   ("compactions", Jsonlight.Int t.journal_compactions);
                 ]
                @ group_commit
                @
                match t.recovery with
                | None -> []
                | Some r ->
                    [
                      ( "recovery",
                        Jsonlight.Obj
                          [
                            ("sessions", Jsonlight.Int r.sessions);
                            ("entries", Jsonlight.Int r.entries);
                            ("skipped", Jsonlight.Int r.skipped);
                            ("truncated_bytes", Jsonlight.Int r.truncated_bytes);
                            ("corrupt_tail", Jsonlight.Bool r.corrupt_tail);
                          ] );
                    ]) );
          ]
      in
      let ship =
        match t.ship with
        | None -> []
        | Some s -> [ ("ship", ship_json s) ]
      in
      let replication =
        match t.replication with
        | None -> []
        | Some r ->
            [
              ( "replication",
                Jsonlight.Obj
                  ([ ("role", Jsonlight.String r.role) ]
                  @ (match r.primary with
                    | Some p -> [ ("primary", Jsonlight.String p) ]
                    | None -> [])
                  @ [
                      ("applied_seq", Jsonlight.Int (Int64.to_int r.applied_seq));
                      ("covered_seq", Jsonlight.Int (Int64.to_int r.covered_seq));
                      ("lag", Jsonlight.Int (Int64.to_int r.lag));
                    ]) );
            ]
      in
      Jsonlight.Obj
        ([
           ("requests", Jsonlight.List requests);
           ( "latency",
             Jsonlight.Obj
               [
                 ("buckets", Jsonlight.List buckets);
                 ("sum_seconds", Jsonlight.Float t.latency_sum);
                 ("count", Jsonlight.Int t.latency_count);
               ] );
           ("in_flight", Jsonlight.Int t.in_flight);
           ("rejected_overload", Jsonlight.Int t.rejected_overload);
           ("rejected_timeout", Jsonlight.Int t.rejected_timeout);
         ]
        @ journal @ ship @ replication @ extra))

let write t ~extra w = Jsonlight.Writer.json w (to_json t ~extra)
