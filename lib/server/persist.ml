type mutation =
  | Create of {
      id : string;
      policy : Adl.Graph.policy;
      scenarios : string;
      architecture : string;
      mapping : string;
    }
  | Diff of { id : string; ops : Adl.Diff.op list }
  | Set_architecture of { id : string; architecture : string }
  | Remove of { id : string }

(* ------------------------------------------------------------------ *)
(* JSON encoding (one payload per journal record)                     *)
(* ------------------------------------------------------------------ *)

let policy_to_string = function
  | Adl.Graph.Routed -> "routed"
  | Adl.Graph.Direct -> "direct"

let policy_of_string = function
  | "routed" -> Some Adl.Graph.Routed
  | "direct" -> Some Adl.Graph.Direct
  | _ -> None

(* the wire vocabulary of the /diff endpoint (excise arrives here
   already expanded to Remove_link ops) *)
let encode_op = function
  | Adl.Diff.Remove_link id ->
      Some
        (Jsonlight.Obj
           [ ("op", Jsonlight.String "remove_link"); ("id", Jsonlight.String id) ])
  | Adl.Diff.Remove_component id ->
      Some
        (Jsonlight.Obj
           [ ("op", Jsonlight.String "remove_component"); ("id", Jsonlight.String id) ])
  | Adl.Diff.Remove_connector id ->
      Some
        (Jsonlight.Obj
           [ ("op", Jsonlight.String "remove_connector"); ("id", Jsonlight.String id) ])
  | Adl.Diff.Rename_element { old_id; new_id } ->
      Some
        (Jsonlight.Obj
           [
             ("op", Jsonlight.String "rename");
             ("old_id", Jsonlight.String old_id);
             ("new_id", Jsonlight.String new_id);
           ])
  | Adl.Diff.Add_component _ | Adl.Diff.Add_connector _ | Adl.Diff.Add_link _ ->
      None

let encode_ops ops =
  let rec go acc = function
    | [] -> Some (Jsonlight.List (List.rev acc))
    | op :: rest -> (
        match encode_op op with
        | Some j -> go (j :: acc) rest
        | None -> None)
  in
  go [] ops

let encode_json m =
  match m with
    | Create { id; policy; scenarios; architecture; mapping } ->
        Jsonlight.Obj
          [
            ("op", Jsonlight.String "create");
            ("id", Jsonlight.String id);
            ("policy", Jsonlight.String (policy_to_string policy));
            ("scenarios", Jsonlight.String scenarios);
            ("architecture", Jsonlight.String architecture);
            ("mapping", Jsonlight.String mapping);
          ]
    | Diff { id; ops } ->
        let encoded =
          match encode_ops ops with
          | Some j -> j
          | None -> invalid_arg "Persist.encode: diff ops have no wire encoding"
        in
        Jsonlight.Obj
          [
            ("op", Jsonlight.String "diff");
            ("id", Jsonlight.String id);
            ("ops", encoded);
          ]
    | Set_architecture { id; architecture } ->
        Jsonlight.Obj
          [
            ("op", Jsonlight.String "set_architecture");
            ("id", Jsonlight.String id);
            ("architecture", Jsonlight.String architecture);
          ]
    | Remove { id } ->
        Jsonlight.Obj
          [ ("op", Jsonlight.String "remove"); ("id", Jsonlight.String id) ]

(* [Create] dominates journal traffic — tens of kilobytes of XML per
   record — and JSON-escaping (then unescaping) three whole documents
   is the single largest CPU cost of a journaled create. Creates are
   therefore framed with the artifacts verbatim: a magic line, a small
   JSON header carrying id/policy and the three byte lengths, then the
   raw documents back to back. Every other mutation stays JSON, and
   {!decode} still accepts JSON creates, so journals written before
   this framing replay unchanged. *)
let raw_create_magic = "sosae-create-v1\n"

let write_mutation w m =
  match m with
  | Create { id; policy; scenarios; architecture; mapping } ->
      Jsonlight.Writer.raw w raw_create_magic;
      Jsonlight.Writer.json w
        (Jsonlight.Obj
           [
             ("id", Jsonlight.String id);
             ("policy", Jsonlight.String (policy_to_string policy));
             ("scenarios", Jsonlight.Int (String.length scenarios));
             ("architecture", Jsonlight.Int (String.length architecture));
             ("mapping", Jsonlight.Int (String.length mapping));
           ]);
      Jsonlight.Writer.raw w "\n";
      Jsonlight.Writer.raw w scenarios;
      Jsonlight.Writer.raw w architecture;
      Jsonlight.Writer.raw w mapping
  | m -> Jsonlight.Writer.json w (encode_json m)

let encode m =
  let w = Jsonlight.Writer.create ~size:256 () in
  write_mutation w m;
  Jsonlight.Writer.contents w

let ( let* ) = Result.bind

let field name json =
  match Option.bind (Jsonlight.member name json) Jsonlight.string_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let decode_op json =
  let* op = field "op" json in
  match op with
  | "remove_link" ->
      let* id = field "id" json in
      Ok (Adl.Diff.Remove_link id)
  | "remove_component" ->
      let* id = field "id" json in
      Ok (Adl.Diff.Remove_component id)
  | "remove_connector" ->
      let* id = field "id" json in
      Ok (Adl.Diff.Remove_connector id)
  | "rename" ->
      let* old_id = field "old_id" json in
      let* new_id = field "new_id" json in
      Ok (Adl.Diff.Rename_element { old_id; new_id })
  | op -> Error (Printf.sprintf "unknown diff op %S" op)

let int_field name json =
  match Jsonlight.member name json with
  | Some (Jsonlight.Int i) when i >= 0 -> Ok i
  | Some _ | None ->
      Error (Printf.sprintf "missing or invalid length field %S" name)

let decode_raw_create payload =
  let hstart = String.length raw_create_magic in
  match String.index_from_opt payload hstart '\n' with
  | None -> Error "raw create: unterminated header"
  | Some nl ->
      let* header = Jsonlight.of_string (String.sub payload hstart (nl - hstart)) in
      let* id = field "id" header in
      let* policy_s = field "policy" header in
      let* policy =
        match policy_of_string policy_s with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown policy %S" policy_s)
      in
      let* slen = int_field "scenarios" header in
      let* alen = int_field "architecture" header in
      let* mlen = int_field "mapping" header in
      let body = nl + 1 in
      if String.length payload - body <> slen + alen + mlen then
        Error "raw create: length mismatch"
      else
        Ok
          (Create
             {
               id;
               policy;
               scenarios = String.sub payload body slen;
               architecture = String.sub payload (body + slen) alen;
               mapping = String.sub payload (body + slen + alen) mlen;
             })

let decode payload =
  if String.starts_with ~prefix:raw_create_magic payload then
    decode_raw_create payload
  else
  let* json = Jsonlight.of_string payload in
  let* op = field "op" json in
  match op with
  | "create" ->
      let* id = field "id" json in
      let* policy_s = field "policy" json in
      let* policy =
        match policy_of_string policy_s with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "unknown policy %S" policy_s)
      in
      let* scenarios = field "scenarios" json in
      let* architecture = field "architecture" json in
      let* mapping = field "mapping" json in
      Ok (Create { id; policy; scenarios; architecture; mapping })
  | "diff" ->
      let* id = field "id" json in
      let* ops =
        match Option.bind (Jsonlight.member "ops" json) Jsonlight.list_opt with
        | Some items ->
            List.fold_right
              (fun item acc ->
                let* acc = acc in
                let* op = decode_op item in
                Ok (op :: acc))
              items (Ok [])
        | None -> Error "missing \"ops\" list"
      in
      Ok (Diff { id; ops })
  | "set_architecture" ->
      let* id = field "id" json in
      let* architecture = field "architecture" json in
      Ok (Set_architecture { id; architecture })
  | "remove" ->
      let* id = field "id" json in
      Ok (Remove { id })
  | op -> Error (Printf.sprintf "unknown mutation %S" op)

(* ------------------------------------------------------------------ *)
(* The durable log                                                    *)
(* ------------------------------------------------------------------ *)

type recovery = {
  mutations : mutation list;
  entries : int;
  undecodable : int;
  truncated_bytes : int;
  corrupt_tail : bool;
}

type t = {
  wal : Store.Wal.t;
  lock : Mutex.t;
  compact_bytes : int;
  fsync : Store.Journal.fsync_policy;
  mutable metrics : Metrics.t option;
  (* journal records serialize into one reused buffer; [lock] already
     serializes every append, so the writer needs no lock of its own *)
  writer : Jsonlight.Writer.t;
  shipper : Store.Ship.t;  (* serves the journal to replicas *)
}

let sync_metrics t =
  match t.metrics with
  | None -> ()
  | Some m ->
      let s = Store.Wal.stats t.wal in
      Metrics.set_journal m ~records:s.Store.Wal.appends ~bytes:s.Store.Wal.bytes
        ~fsyncs:s.Store.Wal.fsyncs ~compactions:s.Store.Wal.compactions;
      Option.iter (Metrics.set_group_commit m) (Store.Wal.group_stats t.wal);
      let sh = Store.Ship.stats t.shipper in
      if sh.Store.Ship.cursor_hits + sh.Store.Ship.cursor_misses > 0 then
        Metrics.set_ship m
          {
            Metrics.cursor_hits = sh.Store.Ship.cursor_hits;
            cursor_misses = sh.Store.Ship.cursor_misses;
            reset_batches = sh.Store.Ship.reset_batches;
            cursor_lags = sh.Store.Ship.cursor_lags;
          }

let open_ ?(fsync = Store.Journal.Always) ?group
    ?(compact_bytes = 8 * 1024 * 1024) ?env dir =
  let wal, (r : Store.Wal.recovery) = Store.Wal.open_ ~fsync ?group ?env dir in
  let decoded payloads =
    List.fold_left
      (fun (mutations, bad) payload ->
        match decode payload with
        | Ok m -> (m :: mutations, bad)
        | Error _ -> (mutations, bad + 1))
      ([], 0) payloads
  in
  let state_mutations, state_bad = decoded r.Store.Wal.state in
  let entry_mutations, entry_bad = decoded r.Store.Wal.entries in
  ( {
      wal;
      lock = Mutex.create ();
      compact_bytes;
      fsync;
      metrics = None;
      writer = Jsonlight.Writer.create ~size:(16 * 1024) ();
      shipper = Store.Ship.create wal;
    },
    {
      mutations = List.rev_append state_mutations (List.rev entry_mutations);
      entries = List.length r.Store.Wal.state + List.length r.Store.Wal.entries;
      undecodable = state_bad + entry_bad;
      truncated_bytes = r.Store.Wal.truncated_bytes;
      corrupt_tail = r.Store.Wal.corrupt_tail;
    } )

let set_metrics t m =
  t.metrics <- Some m;
  sync_metrics t

let stage t m =
  Mutex.protect t.lock (fun () ->
      Jsonlight.Writer.clear t.writer;
      write_mutation t.writer m;
      Store.Wal.stage t.wal (Jsonlight.Writer.contents t.writer))

let await t seq =
  Store.Wal.await t.wal seq;
  sync_metrics t

let log t m =
  let seq = stage t m in
  await t seq

let should_compact t = Store.Wal.journal_bytes t.wal >= t.compact_bytes

let compact t ~state =
  Mutex.protect t.lock (fun () ->
      Store.Wal.compact t.wal ~state:(List.map encode state));
  sync_metrics t

let compact_background t ~state =
  (* no [t.lock]: stagers keep flowing — the Wal rotation protocol
     serializes against them internally *)
  Store.Wal.compact_background t.wal ~state:(fun () -> List.map encode (state ()));
  sync_metrics t

let flush t = Mutex.protect t.lock (fun () -> ignore (Store.Wal.flush t.wal))

let fsync_policy t = t.fsync

let covered_seq t = Store.Ship.covered_seq t.shipper

let next_seq t = Store.Journal.next_seq (Store.Wal.journal t.wal)

let ship ?max_bytes t ~after =
  let batch = Store.Ship.fetch ?max_bytes t.shipper ~after in
  sync_metrics t;
  batch

let snapshot t = Store.Ship.snapshot t.shipper

let ship_stats t = Store.Ship.stats t.shipper

let ingest t data =
  Mutex.protect t.lock (fun () -> Store.Wal.ingest t.wal data);
  sync_metrics t

let install_snapshot t data =
  let covers =
    Mutex.protect t.lock (fun () -> Store.Wal.install_snapshot t.wal data)
  in
  sync_metrics t;
  covers

let stats t = Store.Wal.stats t.wal

let group_stats t = Store.Wal.group_stats t.wal

let dir t = Store.Wal.dir t.wal

let close t = Mutex.protect t.lock (fun () -> Store.Wal.close t.wal)
